"""Quickstart: build a small audit game and compute an optimal policy.

Models a tiny database team: three analysts (potential insiders), four
sensitive tables, two alert types raised by the TDMT ("off-hours access"
and "bulk export").  The auditor has a daily budget of 4 investigation
hours and wants the randomized alert-prioritization policy that minimizes
the best-responding insiders' expected gain.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    AlertType,
    AlertTypeSet,
    AttackTypeMap,
    AuditGame,
    PayoffModel,
)
from repro.distributions import DiscretizedGaussian, JointCountModel
from repro.engine import AuditEngine
from repro.solvers import response_report


def build_game() -> AuditGame:
    """Two alert types, three insiders, four tables."""
    alert_types = AlertTypeSet(
        (
            AlertType("off-hours-access", audit_cost=1.0,
                      description="access outside the user's shift"),
            AlertType("bulk-export", audit_cost=2.0,
                      description="row-count anomaly on SELECT"),
        )
    )
    # Benign alert volume per day (learned from historical logs).
    counts = JointCountModel(
        [
            DiscretizedGaussian(mean=8.0, std=2.0),
            DiscretizedGaussian(mean=3.0, std=1.0),
        ]
    )
    # Which alert type an attack on each table raises, per insider
    # (-1 = the access would look entirely benign).
    type_matrix = np.array(
        [
            [0, 0, 1, -1],
            [0, 1, 1, 0],
            [-1, 0, 1, 1],
        ]
    )
    attack_map = AttackTypeMap.from_type_matrix(type_matrix, n_types=2)
    benefit = np.where(type_matrix == 1, 9.0,
                       np.where(type_matrix == 0, 5.0, 0.0))
    payoffs = PayoffModel.create(
        n_adversaries=3,
        n_victims=4,
        benefit=benefit,
        penalty=12.0,           # getting fired / prosecuted
        attack_cost=0.5,
        attack_prior=1.0,
        attackers_can_refrain=True,
    )
    return AuditGame(
        alert_types=alert_types,
        counts=counts,
        attack_map=attack_map,
        payoffs=payoffs,
        budget=4.0,
        adversary_names=("alice", "bob", "carol"),
        victim_names=("billing", "salaries", "patients", "credentials"),
    )


def main() -> None:
    game = build_game()
    print(game.describe())
    print()

    # The engine owns one shared scenario set: every candidate policy is
    # scored on the same joint realizations of benign alert counts, and
    # repeated solves reuse already-priced threshold vectors.  The with
    # block shuts down any pricing worker pool on the way out.
    with AuditEngine(game) as engine:
        scenarios = engine.scenario_set()
        print(f"scenario set: {scenarios.n_scenarios} joint outcomes "
              f"(exact={scenarios.exact})")

        result = engine.solve("ishm", step_size=0.1)
    print(f"\nISHM objective (auditor loss): {result.objective:.4f}")
    print(f"threshold vectors explored:     "
          f"{result.diagnostics['lp_calls']}")
    print("\nOptimal randomized policy:")
    print(result.policy.describe(game.alert_types.names))

    print("\nAttacker best responses:")
    print(response_report(game, result.policy, scenarios).describe())


if __name__ == "__main__":
    main()
