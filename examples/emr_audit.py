"""End-to-end EMR auditing pipeline (the paper's Rea A scenario).

Walks the full chain a hospital privacy office would run:

1. simulate 28 workdays of EMR access logs (raw, with repeated accesses);
2. filter repeats and label alerts with the TDMT rule engine
   (same-last-name / co-worker / neighbor / same-address composites);
3. learn the per-type daily alert-count distributions;
4. build the Stackelberg audit game (50 employees x 50 patients);
5. solve it with ISHM + CGGS and compare against the paper's baselines.

Run:  python examples/emr_audit.py        (takes a couple of minutes)
      python examples/emr_audit.py fast   (smaller solve, ~30 s)
"""

import sys

from repro.datasets import (
    EMR_TYPE_NAMES,
    build_emr_world,
    rea_a,
    simulate_emr_log,
)
from repro.engine import AuditEngine
from repro.tdmt import (
    filter_repeated_accesses,
    period_type_counts,
    summarize_counts,
)


def inspect_log() -> None:
    """Steps 1-3: simulate, filter, label, learn."""
    world = build_emr_world()
    log = simulate_emr_log(world)
    print(f"raw access events:       {len(log.events):,}")
    distinct, repeats = filter_repeated_accesses(log.events)
    print(f"repeated accesses:       {repeats:,} "
          f"({log.repeat_fraction:.1%}; paper observed 79.5%)")
    print(f"distinct daily accesses: {len(distinct):,}")
    alerts = world.engine.label_events(distinct)
    print(f"alerts raised:           {len(alerts):,}")
    counts = period_type_counts(alerts, EMR_TYPE_NAMES, log.n_days)
    print("\nPer-day alert counts by composite type "
          "(compare to Table VIII):")
    print(summarize_counts(counts, EMR_TYPE_NAMES))


def solve_game(fast: bool) -> None:
    """Steps 4-5: build the audit game, solve, compare baselines."""
    budget = 50.0
    step_size = 0.3 if fast else 0.2
    n_scenarios = 500 if fast else 1000
    game = rea_a(budget=budget)
    print(f"\n{game.describe()}")

    # One engine for the whole comparison: the proposed solve and every
    # baseline share one scenario set and one fixed-solve cache; the
    # with block guarantees any pricing worker pool is shut down.
    with AuditEngine(game, seed=42, n_samples=n_scenarios) as engine:
        result = engine.solve("ishm", step_size=step_size)
        print(f"\nproposed model (ISHM+CGGS, eps={step_size}):")
        print(f"  auditor loss: {result.objective:.2f}")
        print(f"  thresholds:   {result.thresholds.astype(int).tolist()}")
        print(f"  deterred:     {result.n_deterred}/"
              f"{game.n_adversaries} employees")

        rand_orders = engine.solve(
            "random-order",
            thresholds=tuple(result.thresholds.tolist()),
            n_orderings=500,
        )
        rand_thresholds = engine.solve(
            "random-threshold", n_draws=10 if fast else 30
        )
        greedy = engine.solve("benefit-greedy")
    print("\nbaseline auditor losses (lower is better):")
    print(f"  random orders:     {rand_orders.objective:10.2f}")
    print(f"  random thresholds: {rand_thresholds.objective:10.2f}")
    print(f"  benefit greedy:    {greedy.objective:10.2f}")
    print(f"  proposed:          {result.objective:10.2f}   <-- ")


def main() -> None:
    fast = len(sys.argv) > 1 and sys.argv[1] == "fast"
    inspect_log()
    solve_game(fast)


if __name__ == "__main__":
    main()
