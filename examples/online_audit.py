"""Online audit operations: the multi-period simulator end to end.

The paper solves the Optimal Auditing Problem once from a historical
distribution fit.  In production the loop never stops: new alert logs
arrive, the distributions are re-estimated, the policy is re-solved (with
warm caches), attacks play out and the outcomes land in the next period's
logs.  This example runs that loop three ways on the Syn A game:

1. a stationary world with the paper's fixed distributions — warm
   re-solving makes every period after the first nearly free;
2. the same world re-solved cold each period, to show the warm-start
   guarantee (identical decisions) and its speedup;
3. a drifting world tracked by a rolling empirical estimator and attacked
   by quantal (boundedly rational) adversaries.

Run:  python examples/online_audit.py
"""

from repro.datasets import syn_a
from repro.sim import SimConfig, simulate

STEP = {"step_size": 0.5}  # per-period ISHM config (coarse = fast)


def stationary_warm_vs_cold() -> None:
    game = syn_a(budget=10)
    print(game.describe())

    warm = simulate(
        game, n_periods=8, solver_options=STEP, warm_start=True
    )
    cold = simulate(
        game, n_periods=8, solver_options=STEP, warm_start=False
    )
    print("\n--- stationary world, fixed (paper) distributions ---")
    print(warm.to_text(game.alert_types.names))
    print(
        f"\nwarm re-solving: {warm.total_solve_seconds:.2f}s "
        f"({warm.n_memoized}/{warm.n_periods} periods replayed from "
        f"the solve memo) vs cold {cold.total_solve_seconds:.2f}s"
    )
    print(
        "warm decisions identical to cold: "
        f"{warm.records == cold.records}"
    )


def drifting_world() -> None:
    game = syn_a(budget=10)
    config = SimConfig(
        n_periods=10,
        solver_options=STEP,
        source="drift",
        source_options={"drift": 0.15},
        estimator="rolling-empirical",
        estimator_options={"window": 6, "min_periods": 3},
        adversary="quantal",
        adversary_options={"rationality": 2.0},
        budget_carryover=True,
    )
    trajectory = simulate(game, config)
    print("\n--- drifting world, rolling refit, quantal attackers ---")
    print(trajectory.to_text(game.alert_types.names))
    print(
        "\nalert volume grows 15%/period; every refit (*) re-prices the "
        "game,\nso thresholds track the stream (and any unspent budget "
        "rolls over)."
    )


def main() -> None:
    stationary_warm_vs_cold()
    drifting_world()


if __name__ == "__main__":
    main()
