"""Deterrence analysis: how much budget buys total deterrence?

Figure 1 of the paper shows the proposed policy driving the auditor's
loss to exactly 0 at roughly a quarter of the mean alert volume — every
strategic insider prefers not to attack at all.  This example sweeps the
budget on the Syn A game (with refraining enabled) to find that point,
then probes robustness with the bounded-rationality extension: quantal
attackers sometimes attack even when it is irrational to do so, and the
residual loss quantifies how much the full-deterrence guarantee relies
on attacker rationality.

Run:  python examples/deterrence_analysis.py
"""

from dataclasses import replace

from repro.datasets import syn_a
from repro.engine import AuditEngine
from repro.extensions import evaluate_quantal


def deterrable_game(budget: float):
    """Syn A variant where adversaries may refrain (as in Rea A/B)."""
    game = syn_a(budget=budget)
    return replace(
        game, payoffs=replace(game.payoffs, attackers_can_refrain=True)
    )


def main() -> None:
    print(f"{'B':>4} {'loss':>9} {'deterred':>9}")
    policies = {}
    deterrence_budget = None
    for budget in (2, 6, 10, 14, 18, 22, 26, 30):
        game = deterrable_game(budget)
        with AuditEngine(game) as engine:
            result = engine.solve("ishm", step_size=0.1)
            policies[budget] = (game, result.policy,
                                engine.scenario_set())
        print(f"{budget:4d} {result.objective:9.4f} "
              f"{result.n_deterred:6d}/5")
        if deterrence_budget is None and result.objective <= 1e-9:
            deterrence_budget = budget
    if deterrence_budget is None:
        print("\nno budget in the sweep reaches full deterrence")
        return
    print(f"\nfull deterrence at B = {deterrence_budget}")

    game, policy, scenarios = policies[deterrence_budget]
    print("\nBut deterrence assumes perfectly rational attackers.")
    print("Loss under quantal-response (bounded-rational) attackers:")
    print(f"{'rationality':>12} {'loss':>9} {'refrain rate':>13}")
    for rationality in (0.0, 0.5, 1.0, 2.0, 5.0, 25.0):
        q = evaluate_quantal(game, policy, scenarios, rationality)
        print(f"{rationality:12.1f} {q.auditor_loss:9.4f} "
              f"{q.refrain_rate:13.2%}")
    print("\nlambda -> inf recovers the best-response loss of 0; "
          "low-rationality attackers leak a small residual loss.")


if __name__ == "__main__":
    main()
