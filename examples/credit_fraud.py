"""Credit-card fraud auditing (the paper's Rea B scenario).

Synthesizes Statlog-shaped credit applications, labels them with the
Table IX alert rules, builds the 100-applicant x 8-purpose audit game and
compares the game-theoretic policy with the paper's baselines across a
small budget sweep — a miniature of Figure 2.

Run:  python examples/credit_fraud.py
"""

from repro.datasets import (
    CREDIT_TYPE_NAMES,
    rea_b,
    simulate_credit_batches,
)
from repro.engine import AuditEngine
from repro.tdmt import summarize_counts


def inspect_alert_stream() -> None:
    """Synthesize application batches and tabulate Table IX-style stats."""
    counts = simulate_credit_batches(n_periods=12)
    print("Per-batch alert counts by type (compare to Table IX):")
    print(summarize_counts(counts, CREDIT_TYPE_NAMES))


def budget_sweep() -> None:
    """Mini Figure 2: auditor loss vs budget, proposed vs baselines."""
    budgets = (50.0, 150.0, 250.0)
    print(f"\n{'B':>6} {'proposed':>10} {'rand-order':>11} "
          f"{'benefit-greedy':>15}")
    for budget in budgets:
        with AuditEngine(
            rea_b(budget=budget), seed=7, n_samples=500
        ) as engine:
            result = engine.solve("ishm", step_size=0.3)
            rand = engine.solve(
                "random-order",
                thresholds=tuple(result.thresholds.tolist()),
                n_orderings=120,
            )
            greedy = engine.solve("benefit-greedy")
        print(
            f"{budget:6.0f} {result.objective:10.2f} "
            f"{rand.objective:11.2f} {greedy.objective:15.2f}"
        )
    print("\nAs the budget grows the proposed policy drives the loss "
          "toward 0 (full deterrence), as in Figure 2.")


def main() -> None:
    inspect_alert_stream()
    budget_sweep()


if __name__ == "__main__":
    main()
