"""Define a custom TDMT rule set and audit policy for your own database.

Shows the substrate the datasets are built on: relationship rules,
composite alert typing, event labeling, repeat filtering, distribution
learning — and how to go from a raw event log to a solved audit policy
without any of the canned dataset builders.

Scenario: a SaaS company audits CRM record accesses.  Two base rules —
"support agent accesses an account with an open billing dispute" and
"agent accesses an account in their own postal region" — plus their
combination form three composite alert types.

Run:  python examples/custom_rules.py
"""

import numpy as np

from repro.core import (
    AlertTypeSet,
    AlertType,
    AttackTypeMap,
    AuditGame,
    PayoffModel,
)
from repro.distributions import JointCountModel
from repro.engine import AuditEngine
from repro.solvers import response_report
from repro.tdmt import (
    AccessEvent,
    CompositeScheme,
    RelationshipRule,
    TDMTEngine,
    filter_repeated_accesses,
    fit_count_models,
    period_type_counts,
)

RULES = (
    RelationshipRule(
        name="dispute",
        predicate=lambda agent, account: account["open_dispute"],
        description="target account has an open billing dispute",
    ),
    RelationshipRule(
        name="same-region",
        predicate=lambda agent, account: (
            agent["region"] == account["region"]
        ),
        description="agent and account share a postal region",
    ),
)

SCHEME = CompositeScheme(
    {
        frozenset({"dispute"}): "dispute-access",
        frozenset({"same-region"}): "neighbor-account",
        frozenset({"dispute", "same-region"}): "dispute+neighbor",
    },
    strict=True,
)
TYPE_NAMES = ("dispute-access", "neighbor-account", "dispute+neighbor")


def build_world(rng: np.random.Generator):
    """Random agents/accounts and 60 days of access events."""
    agents = {
        f"agent-{i:02d}": {"region": f"R{rng.integers(0, 6)}"}
        for i in range(12)
    }
    accounts = {
        f"acct-{j:03d}": {
            "region": f"R{rng.integers(0, 6)}",
            "open_dispute": bool(rng.random() < 0.15),
        }
        for j in range(300)
    }
    events = []
    agent_names = list(agents)
    account_names = list(accounts)
    for day in range(60):
        for _ in range(int(rng.normal(220, 30))):
            events.append(
                AccessEvent(
                    period=day,
                    actor=agent_names[rng.integers(0, len(agent_names))],
                    target=account_names[
                        rng.integers(0, len(account_names))
                    ],
                )
            )
    return agents, accounts, events


def main() -> None:
    rng = np.random.default_rng(5)
    agents, accounts, events = build_world(rng)
    engine = TDMTEngine(
        rules=RULES, scheme=SCHEME, actors=agents, targets=accounts
    )

    distinct, repeats = filter_repeated_accesses(events)
    alerts = engine.label_events(distinct)
    print(f"{len(events)} raw events, {repeats} repeats filtered, "
          f"{len(alerts)} alerts")

    counts = period_type_counts(alerts, TYPE_NAMES, n_periods=60)
    models = fit_count_models(counts, TYPE_NAMES, method="gaussian")
    for name, model in zip(TYPE_NAMES, models):
        print(f"  {name:<18} mean {model.mean():6.2f} "
              f"support [{model.min_count}, {model.max_count}]")

    # The audit game: each agent might snoop on any of 10 high-value
    # accounts; the TDMT labels each potential attack.
    targets = list(accounts)[:10]
    type_matrix = np.asarray(
        engine.type_matrix(list(agents), targets, TYPE_NAMES)
    )
    game = AuditGame(
        alert_types=AlertTypeSet(
            tuple(AlertType(n, audit_cost=1.0) for n in TYPE_NAMES)
        ),
        counts=JointCountModel(models),
        attack_map=AttackTypeMap.from_type_matrix(type_matrix, 3),
        payoffs=PayoffModel.create(
            n_adversaries=len(agents),
            n_victims=len(targets),
            benefit=np.where(type_matrix >= 0, 8.0, 0.0),
            penalty=20.0,
            attack_cost=1.0,
            attackers_can_refrain=True,
        ),
        budget=6.0,
        adversary_names=tuple(agents),
        victim_names=tuple(targets),
    )
    with AuditEngine(game, seed=5, n_samples=800) as audit_engine:
        result = audit_engine.solve("ishm", step_size=0.2)
        scenarios = audit_engine.scenario_set()
    print(f"\nauditor loss: {result.objective:.3f}")
    print(result.policy.describe(TYPE_NAMES))
    print()
    print(response_report(game, result.policy, scenarios).describe())


if __name__ == "__main__":
    main()
