"""Extension E12: the zero-sum assumption under a general-sum lens.

Section VII: the real auditor's loss need not mirror the attacker's
gain.  We compare (a) the zero-sum-optimal policy *evaluated* under a
proportional-damage auditor loss model against (b) the exact
single-adversary general-sum Stackelberg solution, per adversary — the
gap is what the zero-sum simplification costs.
"""

import numpy as np
from conftest import emit, pick, write_bench_json

from repro.analysis import render_table
from repro.datasets import syn_a
from repro.extensions import (
    AuditorLossModel,
    evaluate_general_sum,
    solve_single_adversary,
)
from repro.solvers import EnumerationSolver


def test_general_sum_gap(benchmark):
    game = syn_a(budget=10)
    scenarios = game.scenario_set()
    loss_model = AuditorLossModel.proportional(game, damage_factor=2.0)
    thresholds = np.array([3.0, 3.0, 3.0, 3.0])
    zero_sum = EnumerationSolver(game, scenarios).solve(thresholds)
    adversaries = pick(
        smoke=range(1),
        fast=range(2),
        full=range(game.n_adversaries),
    )

    def run():
        outcome = evaluate_general_sum(
            game, loss_model, zero_sum.policy, scenarios
        )
        detection = game.attack_map.detection_probability(
            game.evaluate(zero_sum.policy, scenarios).mixed_pal
        )
        loss_matrix = loss_model.expected_loss_matrix(detection)
        rows = []
        for adversary in adversaries:
            victim = outcome.attacked_victims[adversary]
            zero_sum_loss = (
                0.0 if victim < 0
                else float(loss_matrix[adversary, victim])
            )
            _, stackelberg = solve_single_adversary(
                game, loss_model, thresholds, scenarios,
                adversary=adversary,
            )
            rows.append((adversary, zero_sum_loss, stackelberg))
        return outcome, rows

    outcome, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = benchmark.stats.stats.total
    write_bench_json(
        "ext_general_sum",
        {
            "n_adversaries": len(list(adversaries)),
            "wall_seconds": wall,
            "total_evaluated_loss": float(outcome.auditor_loss),
            "gaps": [float(zs - st) for _, zs, st in rows],
        },
    )
    table = [
        [game.adversary_names[e], f"{zs:.4f}", f"{st:.4f}",
         f"{zs - st:.4f}"]
        for e, zs, st in rows
    ]
    emit(
        "Extension — zero-sum policy under general-sum losses "
        f"(total evaluated loss {outcome.auditor_loss:.4f})",
        render_table(
            ["adversary", "zero-sum policy", "general-sum optimum",
             "gap"],
            table,
        ),
    )

    for _, zero_sum_loss, stackelberg in rows:
        # The tailored general-sum solution is never worse for the
        # auditor than repurposing the zero-sum policy.
        assert stackelberg <= zero_sum_loss + 1e-6
