"""Ablation E8: ISHM quality/effort trade-off in the step size.

Section IV-C discusses eps as the key knob: finer steps approach the
optimum but explore more threshold vectors.  This bench quantifies both
sides on one Syn A instance.
"""

import numpy as np
from conftest import emit, full_mode

from repro.analysis import render_table
from repro.datasets import syn_a
from repro.solvers import iterative_shrink, solve_optimal


def test_ablation_step_size(benchmark):
    steps = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5) if full_mode() \
        else (0.1, 0.3, 0.5)
    game = syn_a(budget=10)
    scenarios = game.scenario_set()
    optimal = solve_optimal(game, scenarios)

    def run():
        return [
            iterative_shrink(game, scenarios, step_size=s)
            for s in steps
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for step, result in zip(steps, results):
        gap = result.objective - optimal.objective
        rows.append(
            [
                f"{step:g}",
                f"{result.objective:.4f}",
                f"{gap:.4f}",
                str(result.lp_calls),
                np.array2string(result.thresholds.astype(int)),
            ]
        )
    emit(
        "Ablation — ISHM step size (Syn A, B=10, optimal "
        f"{optimal.objective:.4f})",
        render_table(
            ["eps", "objective", "gap to optimal", "LP calls",
             "thresholds"],
            rows,
        ),
    )

    # Finer steps must cost more probes and end (weakly) closer.
    calls = [r.lp_calls for r in results]
    assert all(b <= a for a, b in zip(calls, calls[1:]))
    assert results[0].objective <= results[-1].objective + 1e-6
    assert results[0].objective >= optimal.objective - 1e-9
