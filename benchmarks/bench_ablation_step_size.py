"""Ablation E8: ISHM quality/effort trade-off in the step size.

Section IV-C discusses eps as the key knob: finer steps approach the
optimum but explore more threshold vectors.  This bench quantifies both
sides on one Syn A instance.  The timed sweep runs through one cold
:class:`~repro.engine.AuditEngine`, so vectors shared *between* step
sizes are priced once while the measurement stays independent of other
benchmarks' caches.
"""

import numpy as np
from conftest import emit, engine_for, pick, write_bench_json

from repro.analysis import render_table


def test_ablation_step_size(benchmark):
    steps = pick(
        smoke=(0.3, 0.5),
        fast=(0.1, 0.3, 0.5),
        full=(0.05, 0.1, 0.2, 0.3, 0.4, 0.5),
    )
    # Time the sweep on a cold, dedicated engine so the measurement
    # reflects solver work, not cache hits seeded by other benchmarks
    # (or by the brute-force reference, which therefore runs after).
    from repro.datasets import syn_a
    from repro.engine import AuditEngine

    engine = AuditEngine(syn_a(budget=10))

    def run():
        return [engine.solve("ishm", step_size=s) for s in steps]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = benchmark.stats.stats.total
    optimal = engine_for("syn_a", 10).solve("bruteforce")
    write_bench_json(
        "ablation_step_size",
        {
            "step_sizes": list(steps),
            "wall_seconds": wall,
            "objectives": [float(r.objective) for r in results],
            "lp_calls": [
                int(r.diagnostics["lp_calls"]) for r in results
            ],
            "optimal_objective": float(optimal.objective),
        },
    )
    rows = []
    for step, result in zip(steps, results, strict=True):
        gap = result.objective - optimal.objective
        rows.append(
            [
                f"{step:g}",
                f"{result.objective:.4f}",
                f"{gap:.4f}",
                str(result.diagnostics["lp_calls"]),
                np.array2string(result.thresholds.astype(int)),
            ]
        )
    emit(
        "Ablation — ISHM step size (Syn A, B=10, optimal "
        f"{optimal.objective:.4f})",
        render_table(
            ["eps", "objective", "gap to optimal", "LP calls",
             "thresholds"],
            rows,
        ),
    )

    # Finer steps must cost more probes and end (weakly) closer.
    calls = [r.diagnostics["lp_calls"] for r in results]
    assert all(b <= a for a, b in zip(calls, calls[1:], strict=False))
    assert results[0].objective <= results[-1].objective + 1e-6
    assert results[0].objective >= optimal.objective - 1e-9
