"""Engine ablation: the scenario/kernel cache win on a step-size sweep.

A parameter sweep re-solves the same game many times; without the
:class:`~repro.engine.AuditEngine` each run regenerates the scenario set
and re-prices every threshold vector from scratch.  This bench runs the
same ISHM step-size sweep twice — cold (a fresh engine per step, the
pre-engine behavior) and warm (one shared engine) — and reports the
timings plus the cache counters.  Results are bitwise identical: the
cache only ever returns solutions for exactly-equal threshold vectors.
"""

import time

from conftest import emit, pick, write_bench_json

from repro.analysis import render_table
from repro.datasets import syn_a
from repro.engine import AuditEngine


def test_engine_cache_speedup(benchmark):
    steps = pick(
        smoke=(0.3, 0.5),
        fast=(0.1, 0.2, 0.3, 0.5),
        full=(0.05, 0.1, 0.15, 0.2, 0.3, 0.5),
    )

    def cold_sweep():
        results = []
        for step in steps:
            engine = AuditEngine(syn_a(budget=10))
            results.append(engine.solve("ishm", step_size=step))
        return results

    def warm_sweep():
        engine = AuditEngine(syn_a(budget=10))
        return (
            engine,
            [engine.solve("ishm", step_size=s) for s in steps],
        )

    started = time.perf_counter()
    cold = cold_sweep()
    cold_time = time.perf_counter() - started

    started = time.perf_counter()
    engine, warm = benchmark.pedantic(warm_sweep, rounds=1, iterations=1)
    warm_time = time.perf_counter() - started

    info = engine.cache_info()
    emit(
        "Engine cache — ISHM step-size sweep (Syn A, B=10)",
        render_table(
            ["variant", "wall time", "scenario sets built",
             "LP solves", "cache hits"],
            [
                ["cold (fresh engine per step)", f"{cold_time:.2f}s",
                 str(len(steps)), "-", "0"],
                ["warm (one shared engine)", f"{warm_time:.2f}s",
                 str(info.scenario_misses), str(info.solution_misses),
                 str(info.solution_hits)],
            ],
        ),
    )

    write_bench_json(
        "engine_cache",
        {
            "step_sizes": list(steps),
            "cold_seconds": cold_time,
            "warm_seconds": warm_time,
            "speedup": cold_time / warm_time if warm_time else None,
            "solution_hits": info.solution_hits,
            "solution_misses": info.solution_misses,
        },
    )

    # The cache must actually fire, and never change the answers.
    assert info.scenario_misses == 1
    assert info.solution_hits > 0
    for c, w in zip(cold, warm, strict=True):
        assert c.objective == w.objective
        assert c.thresholds.tolist() == w.thresholds.tolist()
    # Warm runs strictly less work than cold; allow generous noise slack.
    assert warm_time <= cold_time * 1.25
