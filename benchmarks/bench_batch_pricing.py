"""Batch-parallel threshold pricing: the workers knob on an ISHM sweep.

Every solver prices threshold vectors through the engine's
``FixedSolveCache``; this bench runs the same ISHM step-size sweep on
the 4-type Syn A game twice — ``workers=1`` (the serial reference path)
and ``workers=4`` (each probe round priced as one batch: vectorized
kernel construction, master LPs fanned out over a process pool) — and
reports the wall-clock ratio.

Correctness is asserted unconditionally: the parallel sweep must return
bit-for-bit the same objectives, thresholds and probe counts as the
serial one.  The >= 2x speedup is asserted only when the machine
actually exposes >= 4 CPUs to this process (and not in smoke mode,
where grids are too small for stable timing); on fewer cores the
numbers are still printed.
"""

import os
import time

from conftest import emit, pick, smoke_mode, write_bench_json

from repro.analysis import render_table
from repro.datasets import syn_a
from repro.engine import AuditEngine

WORKERS = 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity (macOS)
        return os.cpu_count() or 1


def _sweep(engine: AuditEngine, steps) -> tuple[list, float]:
    started = time.perf_counter()
    results = [engine.solve("ishm", step_size=s) for s in steps]
    return results, time.perf_counter() - started


def test_batch_pricing_speedup(benchmark):
    steps = pick(
        smoke=(0.5,),
        fast=(0.1, 0.2, 0.3),
        full=(0.05, 0.1, 0.2, 0.3, 0.5),
    )
    budget = 10

    serial_engine = AuditEngine(syn_a(budget=budget), workers=1)
    serial, serial_time = _sweep(serial_engine, steps)

    def parallel_sweep():
        with AuditEngine(syn_a(budget=budget), workers=WORKERS) as eng:
            return _sweep(eng, steps)

    parallel, parallel_time = benchmark.pedantic(
        parallel_sweep, rounds=1, iterations=1
    )

    speedup = serial_time / parallel_time if parallel_time else float("inf")
    cpus = _usable_cpus()
    emit(
        f"Batch-parallel pricing — ISHM step sweep (Syn A, B={budget}, "
        f"{cpus} usable CPUs)",
        render_table(
            ["variant", "wall time", "LP solves", "speedup"],
            [
                [
                    "serial (workers=1)",
                    f"{serial_time:.2f}s",
                    str(sum(r.diagnostics["lp_calls"] for r in serial)),
                    "1.00x",
                ],
                [
                    f"batched (workers={WORKERS})",
                    f"{parallel_time:.2f}s",
                    str(
                        sum(r.diagnostics["lp_calls"] for r in parallel)
                    ),
                    f"{speedup:.2f}x",
                ],
            ],
        ),
    )

    write_bench_json(
        "batch_pricing",
        {
            "step_sizes": list(steps),
            "budget": budget,
            "workers": WORKERS,
            "usable_cpus": cpus,
            "serial_seconds": serial_time,
            "parallel_seconds": parallel_time,
            "speedup": speedup,
        },
    )

    # The determinism guarantee: identical results, bit for bit.
    for s, p in zip(serial, parallel, strict=True):
        assert p.objective == s.objective
        assert p.thresholds.tolist() == s.thresholds.tolist()
        assert (
            p.diagnostics["lp_calls"] == s.diagnostics["lp_calls"]
        )

    # The speedup claim needs real cores to be meaningful; a 1-2 core
    # box (or the tiny smoke grid) only measures pool overhead.
    if cpus >= WORKERS and not smoke_mode():
        assert speedup >= 2.0, (
            f"expected >= 2x on {cpus} CPUs, measured {speedup:.2f}x"
        )
