"""Table VI: budget-averaged precision gamma of ISHM and ISHM+CGGS.

Paper reference: gamma1 ~= 0.998 for eps <= 0.2, still ~0.90 at
eps = 0.5; gamma2 trails gamma1 only slightly.
"""

from conftest import emit, pick, write_bench_json

from repro.analysis import (
    FULL_STEP_SIZES,
    run_ishm_grid,
    run_table3,
    run_table6,
)
from repro.datasets import SYN_A_BUDGETS

FAST_BUDGETS = (2, 6, 10)
FAST_STEPS = (0.1, 0.3, 0.5)


def test_table6_gamma_precision(benchmark):
    budgets = pick(
        smoke=(2, 6), fast=FAST_BUDGETS, full=SYN_A_BUDGETS
    )
    steps = pick(
        smoke=(0.1, 0.5), fast=FAST_STEPS, full=FULL_STEP_SIZES
    )

    def run():
        optimal = run_table3(budgets=budgets)
        ishm = run_ishm_grid(budgets=budgets, step_sizes=steps,
                             method="enumeration")
        cggs = run_ishm_grid(budgets=budgets, step_sizes=steps,
                             method="cggs")
        return run_table6(optimal, ishm, cggs_grid=cggs)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = benchmark.stats.stats.total
    emit("Table VI — precision vs the optimum (Syn A)",
         result.to_text())
    write_bench_json(
        "table6_gamma",
        {
            "budgets": [float(b) for b in budgets],
            "step_sizes": list(steps),
            "wall_seconds": wall,
            "gamma_ishm": [float(g) for g in result.gamma_ishm],
            "gamma_cggs": [float(g) for g in result.gamma_cggs],
        },
    )

    # Paper: near-optimal at fine steps, graceful degradation after.
    assert result.gamma_ishm[0] > 0.97
    assert min(result.gamma_ishm) > 0.80
    assert all(0.0 < g <= 1.0 for g in result.gamma_cggs)
