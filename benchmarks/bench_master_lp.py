"""Warm-started, structure-exploiting master-LP layer benchmarks.

PR 4 collapsed the detection-kernel cost; the hot path moved one layer
up into the eq.-5 master LP.  This bench measures the three LP-layer
features end to end:

* **CGGS column loop** — Algorithm 1 with the legacy per-candidate
  oracle + cold master solves versus the lazy-PalTable oracle + warm
  basis re-entry, on the ``"simplex"`` backend (the only one with a
  basis interface).  Acceptance (non-smoke): >= 2x at ``T = 6``.
* **Warm vs cold master re-solves** — a column-generation add/solve
  loop timed through :attr:`MasterProblem.lp_seconds`, checking the
  warm-start contract along the way (same-LP re-entry bitwise, cold
  objective to 1e-9 after every column add).
* **ISHM LP seconds** — one engine-dispatched ISHM run per backend,
  recording the new :attr:`SolveResult.solve_seconds` field so the
  LP layer's share of a real solver run lands in the perf record.
* **Sparse master factorization** — the same warm-started scenario LP
  solved with ``factorization="dense"`` (the historical explicit
  ``B^{-1}``) versus ``"sparse"`` (LU + product-form etas) at 10^4
  scenario rows, objectives and bases checked identical.  Acceptance
  (non-smoke): >= 5x; the ``lp_factorization`` fields record which
  engine produced each arm.

Measured numbers land in ``BENCH_master_lp.json``;
``benchmarks/check_perf_trend.py`` diffs the ``speedup`` fields against
the committed baselines with a 30% regression tolerance.
"""

import time

import numpy as np
from conftest import emit, pick, smoke_mode, write_bench_json

from repro.analysis import render_table
from repro.core import (
    AlertType,
    AlertTypeSet,
    AttackTypeMap,
    AuditGame,
    PayoffModel,
    all_orderings,
)
from repro.distributions import DiscretizedGaussian, JointCountModel
from repro.engine import AuditEngine
from repro.solvers import CGGSSolver, MasterProblem, PolicyContext
from repro.solvers.lp import LinearProgram, LPStatus, SimplexSolver

N_SAMPLES = 1500


def make_game(
    n_types: int, n_adversaries: int = 8, budget: float | None = None
) -> AuditGame:
    """A T-type game with several adversaries per type (wider masters)."""
    alert_types = AlertTypeSet(
        tuple(
            AlertType(f"type-{t + 1}", audit_cost=1.0 + 0.5 * (t % 2))
            for t in range(n_types)
        )
    )
    counts = JointCountModel(
        [
            DiscretizedGaussian(3.0 + 0.4 * t, 1.0 + 0.1 * t)
            for t in range(n_types)
        ]
    )
    type_matrix = np.tile(
        np.arange(n_types, dtype=np.int64).reshape(1, -1),
        (n_adversaries, 1),
    )
    attack_map = AttackTypeMap.from_type_matrix(
        type_matrix, n_types=n_types
    )
    payoffs = PayoffModel.create(
        n_adversaries=n_adversaries,
        n_victims=n_types,
        benefit=3.0
        + 0.3 * type_matrix.astype(np.float64)
        + 0.1 * np.arange(n_adversaries).reshape(-1, 1),
        penalty=4.0,
        attack_cost=0.4,
        attack_prior=1.0,
        attackers_can_refrain=False,
    )
    return AuditGame(
        alert_types=alert_types,
        counts=counts,
        attack_map=attack_map,
        payoffs=payoffs,
        budget=float(budget if budget is not None else 2 * n_types),
    )


def scenarios_for(game: AuditGame):
    return game.counts.sample_scenarios(
        N_SAMPLES, np.random.default_rng(0)
    )


def test_cggs_column_loop_speedup(benchmark):
    """Legacy oracle + cold solves vs lazy table + warm re-entry."""
    type_grid = pick(smoke=(4,), fast=(4, 5, 6), full=(4, 5, 6, 7))
    reps = pick(smoke=1, fast=3, full=5)
    rows = []
    records = []
    speedups = {}

    def sweep():
        for n_types in type_grid:
            game = make_game(n_types)
            scenarios = scenarios_for(game)
            thresholds = np.minimum(
                game.threshold_upper_bounds(), game.budget
            ).astype(np.float64)
            timings = {}
            for label, options in (
                ("legacy", dict(subset_table=False, warm_start=False)),
                ("fast", dict(subset_table=None, warm_start=True)),
            ):
                best = float("inf")
                columns = 0
                objective = 0.0
                for _ in range(reps):
                    solver = CGGSSolver(
                        game,
                        scenarios,
                        backend="simplex",
                        rng=np.random.default_rng(0),
                        **options,
                    )
                    started = time.perf_counter()
                    result = solver.solve(thresholds)
                    best = min(best, time.perf_counter() - started)
                    columns = max(1, result.columns_generated)
                    objective = result.objective
                timings[label] = (best, columns, objective)
            (legacy_s, legacy_cols, legacy_obj) = timings["legacy"]
            (fast_s, fast_cols, fast_obj) = timings["fast"]
            speedup = legacy_s / fast_s if fast_s else float("inf")
            speedups[n_types] = speedup
            rows.append(
                [
                    str(n_types),
                    f"{legacy_s * 1e3:.1f}ms/{legacy_cols}",
                    f"{fast_s * 1e3:.1f}ms/{fast_cols}",
                    f"{legacy_s / legacy_cols * 1e3:.2f}ms",
                    f"{fast_s / fast_cols * 1e3:.2f}ms",
                    f"{speedup:.1f}x",
                    f"{abs(legacy_obj - fast_obj):.1e}",
                ]
            )
            records.append(
                {
                    "n_types": n_types,
                    "legacy_seconds": legacy_s,
                    "fast_seconds": fast_s,
                    "legacy_columns": legacy_cols,
                    "fast_columns": fast_cols,
                    "legacy_seconds_per_column": legacy_s / legacy_cols,
                    "fast_seconds_per_column": fast_s / fast_cols,
                    "speedup": speedup,
                    "objective_delta": abs(legacy_obj - fast_obj),
                }
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "CGGS column loop — legacy oracle/cold LP vs lazy table/warm LP",
        render_table(
            [
                "T",
                "legacy (total/cols)",
                "fast (total/cols)",
                "legacy per-col",
                "fast per-col",
                "speedup",
                "|dObj|",
            ],
            rows,
        ),
    )
    write_bench_json(
        "master_lp",
        {
            "cggs_column_loop": records,
            "type_grid": list(type_grid),
            "n_samples": N_SAMPLES,
            "reps": reps,
        },
    )
    if not smoke_mode():
        assert speedups[6] >= 2.0, (
            f"expected >= 2x on the CGGS column loop at T=6, "
            f"measured {speedups[6]:.2f}x"
        )


def test_warm_vs_cold_master_resolves(benchmark):
    """Basis re-entry across a column-add loop, equivalence checked."""
    n_types = pick(smoke=4, fast=5, full=6)
    game = make_game(n_types)
    scenarios = scenarios_for(game)
    thresholds = np.round(
        game.threshold_upper_bounds().astype(np.float64) * 0.6
    )
    orderings = all_orderings(n_types)[: pick(smoke=8, fast=24, full=48)]
    measured = {}

    def sweep():
        context = PolicyContext(
            game, scenarios, thresholds, subset_table="lazy"
        )
        warm = MasterProblem(
            context, backend="simplex", warm_start=True
        )
        cold_seconds = 0.0
        max_delta = 0.0
        for ordering in orderings:
            warm.add_ordering(ordering)
            _, warm_solution = warm.solve()
            cold = MasterProblem(
                context, backend="simplex", warm_start=False
            )
            for known in warm.orderings:
                cold.add_ordering(known)
            started = time.perf_counter()
            _, cold_solution = cold.solve()
            cold_seconds += time.perf_counter() - started
            max_delta = max(
                max_delta,
                abs(
                    warm_solution.objective_value
                    - cold_solution.objective_value
                ),
            )
        # Contract check: same-LP re-entry reproduces the solution
        # bitwise (path-independent extraction from the same basis).
        _, again = warm.solve()
        assert again.objective_value == warm_solution.objective_value
        assert np.array_equal(again.x, warm_solution.x)
        assert np.array_equal(again.dual_ub, warm_solution.dual_ub)
        assert max_delta <= 1e-9, (
            f"warm/cold objective drift {max_delta:.2e}"
        )
        measured["warm_seconds"] = warm.lp_seconds
        measured["cold_seconds"] = cold_seconds
        measured["warm_solves"] = warm.warm_solves
        measured["max_objective_delta"] = max_delta

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    speedup = (
        measured["cold_seconds"] / measured["warm_seconds"]
        if measured["warm_seconds"]
        else float("inf")
    )
    emit(
        "Warm vs cold master re-solves (simplex backend)",
        render_table(
            ["columns", "warm LP s", "cold LP s", "speedup", "max |dObj|"],
            [
                [
                    str(len(orderings)),
                    f"{measured['warm_seconds']:.3f}",
                    f"{measured['cold_seconds']:.3f}",
                    f"{speedup:.1f}x",
                    f"{measured['max_objective_delta']:.1e}",
                ]
            ],
        ),
    )
    payload = {
        "warm_vs_cold": {
            "n_types": n_types,
            "n_columns": len(orderings),
            "warm_lp_seconds": measured["warm_seconds"],
            "cold_lp_seconds": measured["cold_seconds"],
            "warm_solves": measured["warm_solves"],
            "speedup": speedup,
            "max_objective_delta": measured["max_objective_delta"],
        }
    }
    _merge_bench_json(payload)


def test_ishm_lp_seconds(benchmark):
    """Record the LP layer's share of a real ISHM run per backend."""
    from repro.datasets import syn_a

    step_size = pick(smoke=0.5, fast=0.3, full=0.1)
    budget = pick(smoke=2, fast=6, full=10)
    results = {}

    def sweep():
        for backend in ("scipy", "simplex"):
            with AuditEngine(
                syn_a(budget=budget), backend=backend
            ) as engine:
                result = engine.solve("ishm", step_size=step_size)
                results[backend] = {
                    "solve_seconds": result.solve_seconds,
                    "lp_calls": result.diagnostics["lp_calls"],
                    "objective": result.objective,
                }

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ISHM end-to-end (engine solve_seconds, both backends)",
        render_table(
            ["backend", "solve_seconds", "lp_calls", "objective"],
            [
                [
                    backend,
                    f"{info['solve_seconds']:.2f}s",
                    str(info["lp_calls"]),
                    f"{info['objective']:.4f}",
                ]
                for backend, info in results.items()
            ],
        ),
    )
    assert abs(
        results["scipy"]["objective"] - results["simplex"]["objective"]
    ) <= 1e-6
    _merge_bench_json(
        {
            "ishm": {
                "step_size": step_size,
                "budget": budget,
                **{
                    backend: info
                    for backend, info in results.items()
                },
            }
        }
    )


def _scenario_lp(m: int, n: int, seed: int = 3):
    """A sparse scenario-constraint LP and its all-slack warm basis.

    Shaped like a compressed restricted master: ``m`` rows (scenario
    inequalities plus variable bound rows) over ``n`` structural
    columns, ~6 nonzeros per scenario row.  ``b > 0`` keeps the origin
    feasible, so the all-slack basis warm-starts both factorization
    arms past phase 1 — the regime drift-triggered re-solves live in.
    """
    n_ub = m - n
    rng = np.random.default_rng(seed)
    a_ub = np.zeros((n_ub, n))
    for i in range(n_ub):
        cols = rng.choice(n, size=6, replace=False)
        a_ub[i, cols] = rng.uniform(0.1, 1.0, size=6)
    lp = LinearProgram(
        objective=rng.uniform(-1.0, 1.0, size=n),
        a_ub=a_ub,
        b_ub=rng.uniform(2.0, 4.0, size=n_ub),
        bounds=tuple((0.0, 1.0) for _ in range(n)),
    )
    warm = tuple(("s_ub", i) for i in range(n_ub)) + tuple(
        ("s_bnd", j) for j in range(n)
    )
    return lp, warm


def test_sparse_master_factorization(benchmark):
    """Dense explicit ``B^{-1}`` vs sparse-LU basis at 10^4 rows.

    Both arms warm-start from the same all-slack basis and terminate in
    the same final basis, so the size-keyed extraction makes the
    objectives (and primal points) bitwise-identical — the property the
    factorization-parity tests pin at small scale, demonstrated here at
    the scale where the sparse engine is the difference between seconds
    and minutes.
    """
    m = pick(smoke=300, fast=10_000, full=10_000)
    n = 64
    lp, warm = _scenario_lp(m, n)
    measured = {}

    def sweep():
        for mode in ("dense", "sparse"):
            solver = SimplexSolver(factorization=mode)
            started = time.perf_counter()
            solution = solver.solve(lp, warm_basis=warm)
            seconds = time.perf_counter() - started
            assert solution.status == LPStatus.OPTIMAL
            assert solver._factorization_used == mode
            measured[mode] = (seconds, solution)
        dense_seconds, dense_sol = measured["dense"]
        sparse_seconds, sparse_sol = measured["sparse"]
        assert dense_sol.objective_value == sparse_sol.objective_value
        assert dense_sol.basis == sparse_sol.basis
        assert np.array_equal(dense_sol.x, sparse_sol.x)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    dense_seconds, dense_sol = measured["dense"]
    sparse_seconds, sparse_sol = measured["sparse"]
    speedup = (
        dense_seconds / sparse_seconds
        if sparse_seconds
        else float("inf")
    )
    emit(
        f"Sparse master factorization — {m} rows, {n} structurals",
        render_table(
            ["rows", "dense", "sparse", "speedup", "iters"],
            [
                [
                    str(m),
                    f"{dense_seconds:.2f}s",
                    f"{sparse_seconds:.2f}s",
                    f"{speedup:.1f}x",
                    f"{dense_sol.iterations}/{sparse_sol.iterations}",
                ]
            ],
        ),
    )
    _merge_bench_json(
        {
            "sparse_master": {
                "m_rows": m,
                "n_structurals": n,
                "dense_seconds": dense_seconds,
                "sparse_seconds": sparse_seconds,
                "dense_iterations": dense_sol.iterations,
                "sparse_iterations": sparse_sol.iterations,
                "lp_factorization_dense": "dense",
                "lp_factorization_sparse": "sparse",
                "speedup": speedup,
            }
        }
    )
    if not smoke_mode():
        assert speedup >= 5.0, (
            f"expected >= 5x sparse-LU speedup at {m} rows, "
            f"measured {speedup:.2f}x"
        )


def _merge_bench_json(payload: dict) -> None:
    """Fold extra sections into BENCH_master_lp.json (tests run in
    file order, so the CGGS loop's record exists by the time the later
    sections land; a standalone run still writes a valid record)."""
    import json
    import os

    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    path = os.path.join(out_dir, "BENCH_master_lp.json")
    try:
        with open(path) as handle:
            record = json.load(handle)
    except (OSError, ValueError):
        record = {}
    record.update(payload)
    write_bench_json(
        "master_lp",
        {k: v for k, v in record.items() if k not in ("bench", "smoke", "full")},
    )
