"""Disabled-injection overhead bound for the :mod:`repro.faults` layer.

The fault-injection PR's performance contract: with injection off (the
default), every named fault point costs one module-global check — an
engine-dispatched ISHM solve must stay within **2%** of its
uninstrumented wall time.  Points sit at failure boundaries
(solve/pool dispatch/LP backend), never inside kernel loops, so the
bound follows from two measured quantities:

* the per-call cost of a disabled ``faults.point`` (one
  ``if not _enabled: return``, tens of nanoseconds);
* the number of fault-point calls one engine-dispatched ISHM solve
  actually makes (counted by wrapping ``faults.point``).

``overhead_disabled_fraction = calls_per_solve * per_call_seconds /
solve_seconds`` is asserted ``< 0.02`` in every mode.  The
enabled-empty-plan ratio (armed plan, no matching rules — the chaos-CI
configuration for untargeted points) is recorded alongside.

Measured numbers land in ``BENCH_faults_overhead.json``.
"""

import statistics
import time

from conftest import emit, pick, write_bench_json

from repro import faults
from repro.datasets import syn_a
from repro.engine import AuditEngine
from repro.faults import FaultPlan
from repro.faults import injection as faults_injection

MICRO_CALLS = 200_000


def _disabled_per_call_seconds() -> float:
    """Per-call cost of a disabled ``faults.point`` (injection off)."""
    assert not faults.enabled()
    started = time.perf_counter()
    for _ in range(MICRO_CALLS):
        faults.point("bench_x")
    return (time.perf_counter() - started) / MICRO_CALLS


def _count_point_calls(game, solve) -> int:
    """Fault-point calls one solve makes, via a wrapped entry point."""
    calls = {"n": 0}
    real_point = faults.point

    def counting_point(name):
        calls["n"] += 1
        return real_point(name)

    try:
        faults.point = counting_point
        solve(game)
    finally:
        faults.point = real_point
    return calls["n"]


def test_disabled_overhead_under_two_percent(benchmark):
    reps = pick(smoke=1, fast=5, full=10)
    game = syn_a(budget=6)

    def solve(g):
        return AuditEngine(g).solve("ishm", step_size=0.3)

    record = {}

    def sweep():
        saved = (faults_injection._enabled, faults_injection._plan)
        try:
            faults.disable()
            per_call = _disabled_per_call_seconds()
            n_calls = _count_point_calls(game, solve)
            off_times = []
            for _ in range(reps):
                started = time.perf_counter()
                solve(game)
                off_times.append(time.perf_counter() - started)
            t_off = statistics.median(off_times)

            # Armed-but-empty plan: every point pays the rule scan +
            # call accounting, the chaos-CI cost for untargeted points.
            faults.enable(FaultPlan())
            on_times = []
            for _ in range(reps):
                started = time.perf_counter()
                solve(game)
                on_times.append(time.perf_counter() - started)
            t_on = statistics.median(on_times)
        finally:
            faults_injection._enabled, faults_injection._plan = saved

        disabled_fraction = n_calls * per_call / t_off
        record.update(
            per_call_ns=per_call * 1e9,
            point_calls_per_solve=n_calls,
            solve_seconds_disabled=t_off,
            solve_seconds_enabled_empty_plan=t_on,
            overhead_disabled_fraction=disabled_fraction,
            overhead_enabled_empty_ratio=t_on / t_off,
            reps=reps,
        )
        # The PR's contract, asserted in every mode: boundary-only
        # fault points keep the disabled path under 2% of a solve.
        assert disabled_fraction < 0.02, record

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit(
        "faults overhead (disabled fast path)",
        "\n".join(
            [
                f"fault-point calls per ISHM solve: "
                f"{record['point_calls_per_solve']}",
                f"per-call disabled cost: "
                f"{record['per_call_ns']:.0f}ns",
                f"solve wall (off/empty plan): "
                f"{record['solve_seconds_disabled']:.3f}s / "
                f"{record['solve_seconds_enabled_empty_plan']:.3f}s",
                f"disabled overhead fraction: "
                f"{record['overhead_disabled_fraction']:.2e} "
                f"(bound 0.02)",
            ]
        ),
    )
    write_bench_json("faults_overhead", record)
