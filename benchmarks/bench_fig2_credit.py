"""Figure 2: auditor loss vs budget on the credit game (Rea B substitute).

Paper reference: same qualitative picture as Figure 1 on budgets
10..250 — the proposed policy dominates, random thresholds is the best
baseline, and the loss reaches 0 as the budget approaches the full
alert volume.
"""

from conftest import emit, pick, write_bench_json

from repro.analysis import run_loss_figure
from repro.datasets import rea_b

FULL_BUDGETS = tuple(range(10, 251, 20))
FAST_BUDGETS = (10, 90, 170, 250)
FULL_STEPS = (0.1, 0.2, 0.3)
FAST_STEPS = (0.3,)


def test_figure2_credit_loss_curves(benchmark):
    budgets = pick(
        smoke=(10, 250), fast=FAST_BUDGETS, full=FULL_BUDGETS
    )
    steps = pick(smoke=FAST_STEPS, fast=FAST_STEPS, full=FULL_STEPS)
    n_scenarios = pick(smoke=200, fast=400, full=1000)

    curves = benchmark.pedantic(
        lambda: run_loss_figure(
            game_factory=lambda budget: rea_b(budget=budget),
            dataset="Rea B (credit)",
            budgets=budgets,
            step_sizes=steps,
            n_scenarios=n_scenarios,
            n_random_orderings=pick(smoke=100, fast=300, full=2000),
            n_threshold_draws=pick(smoke=4, fast=8, full=40),
        ),
        rounds=1,
        iterations=1,
    )
    wall = benchmark.stats.stats.total
    emit("Figure 2 — auditor loss vs budget (credit)",
         curves.to_text())

    anchor = min(steps)
    proposed = curves.proposed[anchor]
    write_bench_json(
        "fig2_credit",
        {
            "budgets": [float(b) for b in budgets],
            "step_sizes": list(steps),
            "n_scenarios": n_scenarios,
            "wall_seconds": wall,
            "proposed_loss": [float(v) for v in proposed],
            "random_thresholds_loss": [
                float(v) for v in curves.random_thresholds
            ],
        },
    )
    assert all(
        b <= a + 1e-6 for a, b in zip(proposed, proposed[1:], strict=False)
    )
    for series in (
        curves.random_thresholds,
        curves.random_orders,
        curves.benefit_greedy,
    ):
        assert all(
            p <= s + 1e-6 for p, s in zip(proposed, series, strict=True)
        )
