"""Ablation E9: Monte-Carlo scenario count vs the exact expectation.

Eq. 1 is an expectation over joint alert counts; the paper approximates
it by sampling.  On Syn A the joint support is small enough to evaluate
exactly, so we can measure the sampling error directly: how far the
sampled-scenario objective drifts from the exact one as the sample count
grows.
"""

import numpy as np
from conftest import emit, pick, write_bench_json

from repro.analysis import render_table
from repro.datasets import syn_a
from repro.solvers import EnumerationSolver


def test_ablation_scenario_count(benchmark):
    sample_counts = pick(
        smoke=(50, 1000),
        fast=(50, 200, 1000),
        full=(50, 200, 1000, 5000),
    )
    game = syn_a(budget=10)
    exact = game.scenario_set()
    thresholds = np.array([3.0, 3.0, 3.0, 3.0])
    exact_objective = EnumerationSolver(game, exact).solve(
        thresholds
    ).objective

    def run():
        errors = []
        for n in sample_counts:
            drifts = []
            for seed in range(5):
                rng = np.random.default_rng(seed)
                sampled = game.counts.sample_scenarios(n, rng)
                objective = EnumerationSolver(game, sampled).solve(
                    thresholds
                ).objective
                drifts.append(abs(objective - exact_objective))
            errors.append(float(np.mean(drifts)))
        return errors

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = benchmark.stats.stats.total
    write_bench_json(
        "ablation_scenarios",
        {
            "sample_counts": list(sample_counts),
            "wall_seconds": wall,
            "exact_objective": float(exact_objective),
            "mean_abs_drift": [float(e) for e in errors],
        },
    )
    rows = [
        [str(n), f"{err:.4f}"]
        for n, err in zip(sample_counts, errors, strict=True)
    ]
    emit(
        "Ablation — sampling error of eq. 1 "
        f"(exact objective {exact_objective:.4f})",
        render_table(["n scenarios", "mean |drift|"], rows),
    )

    # More samples, less drift (allow noise between adjacent levels but
    # require the trend across the full range).
    assert errors[-1] < errors[0]
    assert errors[-1] < 0.25
