"""Table IV: ISHM approximation across budgets and step sizes (Syn A).

Paper reference: ISHM objectives track the Table III optimum closely for
eps <= 0.25 and degrade gently as eps grows; thresholds like [3,3,3,3]
at B=10 and [9,7,6,6] at B=20 are recovered.
"""

from conftest import emit, pick, write_bench_json

from repro.analysis import FULL_STEP_SIZES, run_ishm_grid
from repro.datasets import SYN_A_BUDGETS

FAST_BUDGETS = (2, 10, 20)
FAST_STEPS = (0.1, 0.3, 0.5)


def test_table4_ishm_grid(benchmark):
    budgets = pick(
        smoke=(2, 10), fast=FAST_BUDGETS, full=SYN_A_BUDGETS
    )
    steps = pick(
        smoke=(0.3, 0.5), fast=FAST_STEPS, full=FULL_STEP_SIZES
    )

    grid = benchmark.pedantic(
        lambda: run_ishm_grid(
            budgets=budgets, step_sizes=steps, method="enumeration"
        ),
        rounds=1,
        iterations=1,
    )
    wall = benchmark.stats.stats.total
    emit("Table IV — ISHM approximation (Syn A)", grid.to_text())
    write_bench_json(
        "table4_ishm",
        {
            "budgets": [float(b) for b in budgets],
            "step_sizes": list(steps),
            "wall_seconds": wall,
            "objectives": {
                str(step): [float(o) for o in grid.objectives(step)]
                for step in steps
            },
        },
    )

    # Paper trends: loss decreases in B at fixed eps; finer eps is never
    # (materially) worse at fixed B.
    for step in steps:
        series = grid.objectives(step)
        assert all(b < a for a, b in zip(series, series[1:], strict=False))
    for i in range(len(budgets)):
        fine = grid.cells[i][0].objective
        coarse = grid.cells[i][-1].objective
        assert fine <= coarse + 1e-6
