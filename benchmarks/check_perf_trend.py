"""Diff freshly written ``BENCH_<name>.json`` records against baselines.

Every benchmark writes a machine-readable perf record (see
``benchmarks/conftest.write_bench_json``); the records under
``benchmarks/baselines/`` are committed reference points.  This script
walks each baseline, finds the matching fresh record (``REPRO_BENCH_DIR``
or the working directory), and compares every numeric ``speedup`` field:
a fresh speedup more than ``TOLERANCE`` (30%) below its baseline fails
the run, turning the JSON records into an actual perf-trend guard.  A
fresh speedup more than ``TOLERANCE`` *above* its baseline only warns —
large improvements are welcome but usually mean the baseline is stale
(or the bench changed shape) and should be re-recorded.

Skipped whenever the comparison would be meaningless:

* ``REPRO_SMOKE=1``, or the fresh/baseline record was produced in smoke
  mode — smoke grids are minimal and their ratios are noise;
* no fresh record exists for a baseline (that bench didn't run).

Usage::

    python -m pytest benchmarks -q          # writes BENCH_*.json
    python benchmarks/check_perf_trend.py   # diffs against baselines
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

#: Allowed relative regression before the check fails.
TOLERANCE = 0.30

BENCH_DIR = Path(__file__).resolve().parent
BASELINE_DIR = BENCH_DIR / "baselines"
#: One-place list of bench record names, shared with CI's
#: record-presence check.
MANIFEST = BENCH_DIR / "bench_manifest.json"


def manifest_names() -> list[str]:
    """Bench names from ``bench_manifest.json`` (sorted)."""
    data = json.loads(MANIFEST.read_text())
    return sorted(data["benches"])


def iter_speedups(node, path=""):
    """Yield ``(json_path, value)`` for every numeric ``speedup`` field.

    List entries are labeled by an identifying key (``n_types`` /
    ``n_vectors`` / ``T``) when present so baseline and fresh entries
    align even if grid order changes; otherwise by index.
    """
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            here = f"{path}.{key}" if path else key
            if key == "speedup" and isinstance(value, (int, float)):
                yield path or key, float(value)
            else:
                yield from iter_speedups(value, here)
    elif isinstance(node, list):
        for index, item in enumerate(node):
            label = str(index)
            if isinstance(item, dict):
                for id_key in ("n_types", "n_vectors", "T"):
                    if id_key in item:
                        label = f"{id_key}={item[id_key]}"
                        break
            yield from iter_speedups(item, f"{path}[{label}]")


def main() -> int:
    if os.environ.get("REPRO_SMOKE", "0") == "1":
        print("perf-trend: skipped (REPRO_SMOKE=1)")
        return 0
    if not BASELINE_DIR.is_dir():
        print(f"perf-trend: no baseline directory {BASELINE_DIR}")
        return 0

    names = manifest_names()
    # The manifest is authoritative: a committed baseline for a bench
    # it doesn't list means the two drifted apart — fail loudly rather
    # than silently skipping the comparison.
    unmanifested = sorted(
        p.name
        for p in BASELINE_DIR.glob("BENCH_*.json")
        if p.stem.removeprefix("BENCH_") not in names
    )
    if unmanifested:
        for record in unmanifested:
            print(
                f"perf-trend FAILURE: baselines/{record} is not in "
                f"{MANIFEST.name}",
                file=sys.stderr,
            )
        return 1

    fresh_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    regressions: list[str] = []
    improvements: list[str] = []
    compared = 0
    for name in names:
        baseline_path = BASELINE_DIR / f"BENCH_{name}.json"
        if not baseline_path.is_file():
            continue  # no committed reference for this bench yet
        baseline = json.loads(baseline_path.read_text())
        fresh_path = fresh_dir / baseline_path.name
        if not fresh_path.is_file():
            print(f"perf-trend: {name}: no fresh record, skipped")
            continue
        fresh = json.loads(fresh_path.read_text())
        if baseline.get("smoke") or fresh.get("smoke"):
            print(f"perf-trend: {name}: smoke record, skipped")
            continue
        fresh_speedups = dict(iter_speedups(fresh))
        for path, base_value in iter_speedups(baseline):
            fresh_value = fresh_speedups.get(path)
            if fresh_value is None:
                print(
                    f"perf-trend: {name}:{path}: not in fresh record, "
                    "skipped"
                )
                continue
            compared += 1
            floor = base_value * (1.0 - TOLERANCE)
            ceiling = base_value * (1.0 + TOLERANCE)
            if fresh_value < floor:
                status = "REGRESSION"
            elif fresh_value > ceiling:
                status = "IMPROVEMENT"
            else:
                status = "ok"
            print(
                f"perf-trend: {name}:{path}: baseline "
                f"{base_value:.2f}x, fresh {fresh_value:.2f}x "
                f"(floor {floor:.2f}x) {status}"
            )
            if fresh_value < floor:
                regressions.append(
                    f"{name}:{path}: {fresh_value:.2f}x < "
                    f"{floor:.2f}x (baseline {base_value:.2f}x "
                    f"- {TOLERANCE:.0%})"
                )
            elif fresh_value > ceiling:
                improvements.append(
                    f"{name}:{path}: {fresh_value:.2f}x > "
                    f"{ceiling:.2f}x (baseline {base_value:.2f}x "
                    f"+ {TOLERANCE:.0%}) — baseline looks stale, "
                    "consider re-recording it"
                )
    print(
        f"perf-trend: {compared} speedup field(s) compared, "
        f"{len(regressions)} regression(s), "
        f"{len(improvements)} large improvement(s)"
    )
    # Improvements warn but never fail: a >30% jump is good news for
    # users and bad news only for the baseline's freshness.
    for line in improvements:
        print(f"perf-trend WARNING: {line}", file=sys.stderr)
    if regressions:
        for line in regressions:
            print(f"perf-trend FAILURE: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
