"""Figure 1: auditor loss vs budget on the EMR game (Rea A substitute).

Paper reference: the proposed model's loss falls with budget and hits 0
(full deterrence) by B ~= 90; baselines order as
benefit-greedy ~ random-orders > random-thresholds > proposed.
"""

from conftest import emit, pick, write_bench_json

from repro.analysis import run_loss_figure
from repro.datasets import rea_a

FULL_BUDGETS = tuple(range(10, 101, 10))
FAST_BUDGETS = (10, 40, 70, 100)
FULL_STEPS = (0.1, 0.2, 0.3)
FAST_STEPS = (0.3,)


def test_figure1_emr_loss_curves(benchmark):
    budgets = pick(
        smoke=(10, 100), fast=FAST_BUDGETS, full=FULL_BUDGETS
    )
    steps = pick(smoke=FAST_STEPS, fast=FAST_STEPS, full=FULL_STEPS)
    n_scenarios = pick(smoke=200, fast=400, full=1000)

    curves = benchmark.pedantic(
        lambda: run_loss_figure(
            game_factory=lambda budget: rea_a(budget=budget),
            dataset="Rea A (EMR)",
            budgets=budgets,
            step_sizes=steps,
            n_scenarios=n_scenarios,
            n_random_orderings=pick(smoke=100, fast=300, full=2000),
            n_threshold_draws=pick(smoke=4, fast=8, full=40),
        ),
        rounds=1,
        iterations=1,
    )
    wall = benchmark.stats.stats.total
    emit("Figure 1 — auditor loss vs budget (EMR)", curves.to_text())

    anchor = min(steps)
    proposed = curves.proposed[anchor]
    write_bench_json(
        "fig1_emr",
        {
            "budgets": [float(b) for b in budgets],
            "step_sizes": list(steps),
            "n_scenarios": n_scenarios,
            "wall_seconds": wall,
            "proposed_loss": [float(v) for v in proposed],
            "random_thresholds_loss": [
                float(v) for v in curves.random_thresholds
            ],
        },
    )
    # Loss falls (weakly) with budget and the proposed policy dominates
    # every baseline at every budget.
    assert all(
        b <= a + 1e-6 for a, b in zip(proposed, proposed[1:], strict=False)
    )
    for series in (
        curves.random_thresholds,
        curves.random_orders,
        curves.benefit_greedy,
    ):
        assert all(
            p <= s + 1e-6 for p, s in zip(proposed, series, strict=True)
        )
    # The fixed, predictable benefit-greedy policy is the weakest
    # baseline at the low-budget end (Figure 1's fourth finding).
    assert curves.benefit_greedy[0] >= \
        curves.random_thresholds[0] - 1e-6
