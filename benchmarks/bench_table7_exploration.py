"""Table VII + the T/T' vectors: ISHM search effort.

Paper reference: the number of threshold vectors checked falls as the
step size grows (403 -> 47 on average across budgets for
eps 0.05 -> 0.5), and ISHM explores only a small percentage of the full
brute-force grid (2.51% at eps = 0.2).
"""

import numpy as np
from conftest import emit, pick, write_bench_json

from repro.analysis import exploration_ratio, render_table, run_ishm_grid
from repro.datasets import SYN_A_BUDGETS, syn_a

FAST_BUDGETS = (2, 10, 20)
#: Table VII's step-size rows (identical in fast and full mode; only the
#: budget axis shrinks in fast mode).
TABLE7_STEPS = (0.1, 0.2, 0.3, 0.4, 0.5)


def test_table7_exploration_counts(benchmark):
    budgets = pick(
        smoke=(2, 10), fast=FAST_BUDGETS, full=SYN_A_BUDGETS
    )
    steps = pick(
        smoke=(0.1, 0.2, 0.5), fast=TABLE7_STEPS, full=TABLE7_STEPS
    )

    grid = benchmark.pedantic(
        lambda: run_ishm_grid(budgets=budgets, step_sizes=steps,
                              method="enumeration"),
        rounds=1,
        iterations=1,
    )
    wall = benchmark.stats.stats.total
    emit("Table VII — threshold vectors checked by ISHM",
         grid.exploration_text())

    # T vector: mean vectors checked per step size, and T': the ratio
    # against the paper's full naive grid prod_t (J_t + 1) = 7680 for
    # Syn A (the base the paper's 2.51% refers to).
    calls = np.asarray(grid.lp_call_grid(), dtype=float)  # [B][eps]
    mean_calls = calls.mean(axis=0)
    naive_grid = int(
        np.prod(syn_a().counts.upper_bounds() + 1)
    )
    ratios = np.asarray(
        [
            exploration_ratio(calls[:, j], naive_grid).mean()
            for j in range(len(steps))
        ]
    )
    rows = [
        ["T (mean vectors checked)"]
        + [f"{v:.1f}" for v in mean_calls],
        ["T' (fraction of grid)"] + [f"{r:.4f}" for r in ratios],
    ]
    emit(
        "T / T' vectors",
        render_table(["metric"] + [f"eps={s:g}" for s in steps], rows),
    )

    write_bench_json(
        "table7_exploration",
        {
            "budgets": [float(b) for b in budgets],
            "step_sizes": list(steps),
            "wall_seconds": wall,
            "mean_vectors_checked": [float(v) for v in mean_calls],
            "grid_fraction": [float(r) for r in ratios],
            "naive_grid": naive_grid,
        },
    )

    # Paper trend: coarser steps explore (weakly) less.
    assert all(
        b <= a + 1e-9 for a, b in zip(mean_calls, mean_calls[1:], strict=False)
    )
    # ISHM explores only a small fraction of the brute-force grid.
    assert ratios[1] < 0.25
