"""Disabled-telemetry overhead bound for the :mod:`repro.obs` layer.

The observability PR's performance contract: with telemetry off (the
default), every instrumented hot path costs one module-global check per
boundary call — engine solves must stay within **2%** of their
uninstrumented wall time.  Instrumentation sits at call boundaries
(solve/price_batch/build), never inside kernel loops (enforced by lint
rule RPL701), so the bound follows from two measured quantities:

* the per-call cost of a disabled ``obs.counter``/``obs.span`` (one
  ``if not _enabled: return``, tens of nanoseconds);
* the number of telemetry calls one engine-dispatched ISHM solve
  actually makes (counted by wrapping the ``repro.obs`` entry points).

``overhead_disabled_fraction = calls_per_solve * per_call_seconds /
solve_seconds`` is asserted ``< 0.02`` in every mode.  The
enabled-telemetry ratio is recorded alongside (not asserted — enabled
recording is allowed to cost what it costs).

Measured numbers land in ``BENCH_obs_overhead.json``.
"""

import statistics
import time

from conftest import emit, pick, write_bench_json

from repro import obs
from repro.datasets import syn_a
from repro.engine import AuditEngine
from repro.obs import metrics as obs_metrics

MICRO_CALLS = 200_000


def _disabled_per_call_seconds() -> dict:
    """Per-call cost of each disabled entry point (telemetry off)."""
    assert not obs.enabled()
    costs = {}
    for label, fn in (
        ("counter", lambda: obs.counter("bench_x")),
        ("observe", lambda: obs.observe("bench_x", 0.1)),
        ("span", lambda: obs.span("bench_x").__enter__()),
    ):
        started = time.perf_counter()
        for _ in range(MICRO_CALLS):
            fn()
        costs[label] = (time.perf_counter() - started) / MICRO_CALLS
    return costs


def _count_telemetry_calls(game, solve) -> int:
    """Telemetry calls one solve makes, via wrapped obs entry points."""
    calls = {"n": 0}
    originals = {
        name: getattr(obs, name) for name in ("counter", "gauge", "observe")
    }

    def counting(fn):
        def wrapper(*args, **kwargs):
            calls["n"] += 1
            return fn(*args, **kwargs)

        return wrapper

    real_span = obs.span

    def counting_span(name, **attrs):
        calls["n"] += 1
        return real_span(name, **attrs)

    try:
        for name, fn in originals.items():
            setattr(obs, name, counting(fn))
        obs.span = counting_span
        solve(game)
    finally:
        for name, fn in originals.items():
            setattr(obs, name, fn)
        obs.span = real_span
    return calls["n"]


def test_disabled_overhead_under_two_percent(benchmark):
    reps = pick(smoke=1, fast=5, full=10)
    game = syn_a(budget=6)

    def solve(g):
        return AuditEngine(g).solve("ishm", step_size=0.3)

    record = {}

    def sweep():
        saved_enabled = obs_metrics._enabled
        saved_registry = obs_metrics._registry
        try:
            obs.disable()
            per_call = _disabled_per_call_seconds()
            off_times = []
            for _ in range(reps):
                started = time.perf_counter()
                solve(game)
                off_times.append(time.perf_counter() - started)
            t_off = statistics.median(off_times)

            obs.enable(obs.MetricsRegistry())
            n_calls = _count_telemetry_calls(game, solve)
            on_times = []
            for _ in range(reps):
                started = time.perf_counter()
                solve(game)
                on_times.append(time.perf_counter() - started)
            t_on = statistics.median(on_times)
        finally:
            obs_metrics._enabled = saved_enabled
            obs_metrics._registry = saved_registry

        worst_per_call = max(per_call.values())
        disabled_fraction = n_calls * worst_per_call / t_off
        record.update(
            per_call_ns={
                k: v * 1e9 for k, v in sorted(per_call.items())
            },
            telemetry_calls_per_solve=n_calls,
            solve_seconds_disabled=t_off,
            solve_seconds_enabled=t_on,
            overhead_disabled_fraction=disabled_fraction,
            overhead_enabled_ratio=t_on / t_off,
            reps=reps,
        )
        # The PR's contract, asserted in every mode: boundary-only
        # instrumentation keeps the disabled path under 2% of a solve.
        assert disabled_fraction < 0.02, record

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit(
        "obs overhead (disabled fast path)",
        "\n".join(
            [
                f"telemetry calls per ISHM solve: "
                f"{record['telemetry_calls_per_solve']}",
                "per-call disabled cost (ns): "
                + ", ".join(
                    f"{k}={v:.0f}"
                    for k, v in record["per_call_ns"].items()
                ),
                f"solve wall (off/on): "
                f"{record['solve_seconds_disabled']:.3f}s / "
                f"{record['solve_seconds_enabled']:.3f}s",
                f"disabled overhead fraction: "
                f"{record['overhead_disabled_fraction']:.2e} "
                f"(bound 0.02)",
            ]
        ),
    )
    write_bench_json("obs_overhead", record)
