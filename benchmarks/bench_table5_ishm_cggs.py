"""Table V: ISHM with the CGGS inner solver (Syn A).

Paper reference: the column-generation approximation costs very little
quality versus solving the master LP to optimality — gamma2 stays within
a fraction of a percent of gamma1 (Table VI).
"""

from conftest import emit, pick, write_bench_json

from repro.analysis import FULL_STEP_SIZES, run_ishm_grid
from repro.datasets import SYN_A_BUDGETS

FAST_BUDGETS = (2, 10, 20)
FAST_STEPS = (0.1, 0.3, 0.5)


def test_table5_ishm_cggs_grid(benchmark):
    budgets = pick(
        smoke=(2, 10), fast=FAST_BUDGETS, full=SYN_A_BUDGETS
    )
    steps = pick(
        smoke=(0.5,), fast=FAST_STEPS, full=FULL_STEP_SIZES
    )

    grid = benchmark.pedantic(
        lambda: run_ishm_grid(
            budgets=budgets, step_sizes=steps, method="cggs"
        ),
        rounds=1,
        iterations=1,
    )
    wall = benchmark.stats.stats.total
    emit("Table V — ISHM + CGGS approximation (Syn A)", grid.to_text())
    write_bench_json(
        "table5_ishm_cggs",
        {
            "budgets": [float(b) for b in budgets],
            "step_sizes": list(steps),
            "wall_seconds": wall,
            "objectives": {
                str(step): [float(o) for o in grid.objectives(step)]
                for step in steps
            },
        },
    )

    for step in steps:
        series = grid.objectives(step)
        assert all(b < a for a, b in zip(series, series[1:], strict=False)), (
            "loss must fall as the budget grows"
        )
