"""Extension E11: robustness to bounded-rational attackers.

Section VII lists bounded rationality as future work.  We evaluate the
zero-sum optimal Syn A policy against logit quantal-response attackers
across rationality levels: the best-response loss is the upper envelope,
and the curve quantifies how conservative the rational-attacker
assumption is.
"""

import numpy as np
from conftest import emit, engine_for, pick, write_bench_json

from repro.analysis import render_table
from repro.datasets import syn_a
from repro.extensions import rationality_sweep


def test_quantal_rationality_sweep(benchmark):
    rationalities = pick(
        smoke=(0.0, 2.0, 25.0),
        fast=(0.0, 0.5, 2.0, 25.0),
        full=(0.0, 0.25, 0.5, 1.0, 2.0, 5.0, 25.0, 100.0),
    )
    game = syn_a(budget=10)
    engine = engine_for("syn_a", 10)
    scenarios = engine.scenario_set()
    solved = engine.solve("ishm", step_size=0.2)

    sweep = benchmark.pedantic(
        lambda: rationality_sweep(
            game, solved.policy, scenarios, rationalities
        ),
        rounds=1,
        iterations=1,
    )
    wall = benchmark.stats.stats.total
    write_bench_json(
        "ext_quantal",
        {
            "rationalities": list(rationalities),
            "wall_seconds": wall,
            "losses": [float(q.auditor_loss) for q in sweep],
            "best_response_loss": float(solved.objective),
        },
    )
    rows = [
        [f"{q.rationality:g}", f"{q.auditor_loss:.4f}",
         f"{q.refrain_rate:.2%}"]
        for q in sweep
    ]
    emit(
        "Extension — loss vs attacker rationality "
        f"(best-response loss {solved.objective:.4f})",
        render_table(["lambda", "auditor loss", "refrain rate"], rows),
    )

    losses = [q.auditor_loss for q in sweep]
    # Monotone in rationality, converging to the best-response loss.
    assert all(b >= a - 1e-9 for a, b in zip(losses, losses[1:], strict=False))
    assert abs(losses[-1] - solved.objective) < 0.05


def test_quantal_evaluation_speed(benchmark):
    """Micro-benchmark: one quantal evaluation (policy fixed)."""
    from repro.extensions import evaluate_quantal

    game = syn_a(budget=10)
    engine = engine_for("syn_a", 10)
    scenarios = engine.scenario_set()
    solved = engine.solve("ishm", step_size=0.3)
    result = benchmark(
        lambda: evaluate_quantal(
            game, solved.policy, scenarios, rationality=2.0
        )
    )
    assert np.isfinite(result.auditor_loss)
