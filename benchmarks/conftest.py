"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper and prints
its rows.  Two grid sizes exist:

* default ("fast") — reduced budget/step grids so the whole suite runs
  in minutes;
* full — the paper's exact grids; enable with ``REPRO_FULL=1``.
"""

from __future__ import annotations

import os

import pytest


def full_mode() -> bool:
    """True when REPRO_FULL=1 requests the paper's full grids."""
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def is_full() -> bool:
    return full_mode()


def emit(title: str, body: str) -> None:
    """Print a labeled block (visible with pytest -s or on bench output)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
