"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper and prints
its rows.  Three grid sizes exist:

* default ("fast") — reduced budget/step grids so the whole suite runs
  in minutes;
* full — the paper's exact grids; enable with ``REPRO_FULL=1``;
* smoke — minimal grids (tiny games, one repetition) so CI can exercise
  every benchmark path, including parallel pricing, in seconds; enable
  with ``REPRO_SMOKE=1`` (wins over ``REPRO_FULL``).

Benchmarks select grids with :func:`pick`, e.g.
``pick(smoke=(0.5,), fast=(0.1, 0.3), full=FULL_STEP_SIZES)``.

Benchmarks that repeatedly solve the *same* game share one
:class:`repro.engine.AuditEngine` via :func:`engine_for`, so scenario
sets and fixed-threshold master solutions persist across the whole
benchmark session instead of being regenerated per test.

Every benchmark also records its measurements machine-readably with
:func:`write_bench_json`: one ``BENCH_<name>.json`` per bench (wall
times, speedup ratios, grid parameters, run mode) written to
``REPRO_BENCH_DIR`` (default: the working directory), so the perf
trajectory accumulates across runs/commits instead of living only in
captured stdout.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import datasets
from repro.engine import AuditEngine

_ENGINES: dict[tuple, AuditEngine] = {}


def full_mode() -> bool:
    """True when REPRO_FULL=1 requests the paper's full grids."""
    return os.environ.get("REPRO_FULL", "0") == "1"


def smoke_mode() -> bool:
    """True when REPRO_SMOKE=1 requests minimal CI grids."""
    return os.environ.get("REPRO_SMOKE", "0") == "1"


def pick(smoke, fast, full):
    """Select a grid by run mode: smoke > full > fast (the default)."""
    if smoke_mode():
        return smoke
    if full_mode():
        return full
    return fast


@pytest.fixture(scope="session")
def is_full() -> bool:
    return full_mode()


def engine_for(dataset: str, budget: float, **engine_kwargs) -> AuditEngine:
    """Session-shared engine for one ``(dataset, budget)`` pair.

    ``dataset`` is a builder name from :mod:`repro.datasets` (``syn_a``,
    ``rea_a``, ``rea_b``).  All benchmarks asking for the same key get
    the same engine — and therefore warm scenario/solution caches.
    """
    key = (dataset, float(budget), tuple(sorted(engine_kwargs.items())))
    engine = _ENGINES.get(key)
    if engine is None:
        factory = getattr(datasets, dataset)
        engine = AuditEngine(factory(budget=budget), **engine_kwargs)
        _ENGINES[key] = engine
    return engine


def emit(title: str, body: str) -> None:
    """Print a labeled block (visible with pytest -s or on bench output)."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


def write_bench_json(name: str, payload: dict) -> str:
    """Persist one benchmark's measurements as ``BENCH_<name>.json``.

    ``payload`` holds the bench-specific numbers (wall times in seconds,
    speedup ratios, grid parameters); the run mode (``smoke``/``full``)
    is stamped automatically so downstream tooling can separate CI smoke
    points from real measurements.  Values must be JSON-serializable —
    keep them to plain ints/floats/strings/lists.  Returns the path
    written (``REPRO_BENCH_DIR`` or the working directory).
    """
    record = {
        "bench": name,
        "smoke": smoke_mode(),
        "full": full_mode(),
        **payload,
    }
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    _append_run_table_row(name, record)
    return path


def _append_run_table_row(name: str, record: dict) -> None:
    """Mirror one bench record into the canonical run_table artifact.

    Active under the same gates as every adopter (``REPRO_RUN_DIR`` or
    ``REPRO_OBS=1``): ordinary bench runs still produce only the
    ``BENCH_<name>.json`` files.
    """
    from repro import obs

    writer = obs.maybe_writer()
    if writer is None:
        return
    run_id = writer.new_run_id(f"bench-{name}")
    writer.append(
        run_id=run_id,
        kind="bench",
        name=name,
        config_hash=obs.config_hash(
            {"bench": name, "smoke": record["smoke"],
             "full": record["full"]}
        ),
        repetition=0,
        **{
            k: v for k, v in record.items()
            if k not in (
                "bench", "smoke", "full",
                "run_id", "kind", "name", "config_hash", "repetition",
            )
        },
    )
    writer.write_raw(run_id, "bench.json", record)
