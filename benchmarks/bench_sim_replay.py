"""Multi-period replay: warm-started vs cold per-period re-solving.

The simulator re-solves the Optimal Auditing Problem every period.  With
``warm_start=True`` it keeps one engine per distinct (count model,
budget) pair, so a period whose distributions did not change re-solves
against warm scenario/fixed-solution caches; ``warm_start=False``
rebuilds the engine (and re-prices every ISHM probe) each period.

This bench replays the same stationary Syn A trajectory both ways and
reports the wall-clock ratio.  Correctness is asserted unconditionally —
the warm replay must make bit-for-bit the same decisions as the cold
one — and the warm path must come out >= 1.5x faster (the acceptance
bar; in practice the warm solve memo makes every period after the first
nearly free, so the ratio approaches n_periods x).
"""

from conftest import emit, pick, smoke_mode, write_bench_json

from repro.analysis import render_table
from repro.datasets import syn_a
from repro.sim import simulate

#: Minimum accepted warm-over-cold speedup across the replay.
MIN_SPEEDUP = 1.5


def _replay(warm: bool, n_periods: int, step_size: float):
    return simulate(
        syn_a(budget=10),
        n_periods=n_periods,
        warm_start=warm,
        solver_options={"step_size": step_size},
    )


def test_sim_replay_warm_vs_cold(benchmark):
    n_periods = pick(smoke=4, fast=8, full=16)
    step_size = pick(smoke=0.5, fast=0.3, full=0.1)

    cold = _replay(False, n_periods, step_size)

    warm = benchmark.pedantic(
        lambda: _replay(True, n_periods, step_size),
        rounds=1,
        iterations=1,
    )

    cold_time = cold.total_solve_seconds
    warm_time = warm.total_solve_seconds
    speedup = cold_time / warm_time if warm_time else float("inf")
    emit(
        f"Simulator replay — warm vs cold re-solving (Syn A, B=10, "
        f"{n_periods} periods, eps={step_size})",
        render_table(
            ["variant", "solve time", "pricings", "memoized periods",
             "speedup"],
            [
                [
                    "cold (fresh engine per period)",
                    f"{cold_time:.2f}s",
                    str(cold.total_lp_calls),
                    f"{cold.n_memoized}/{n_periods}",
                    "1.00x",
                ],
                [
                    "warm (engines reused across periods)",
                    f"{warm_time:.2f}s",
                    str(warm.total_lp_calls),
                    f"{warm.n_memoized}/{n_periods}",
                    f"{speedup:.2f}x",
                ],
            ],
        ),
    )

    write_bench_json(
        "sim_replay",
        {
            "n_periods": n_periods,
            "step_size": step_size,
            "cold_seconds": cold_time,
            "warm_seconds": warm_time,
            "speedup": cold_time / warm_time if warm_time else None,
        },
    )

    # The warm-start guarantee: identical decision trajectories.
    assert warm.records == cold.records

    # Every period after the first replays the memoized solve when
    # warm; the cold path never does.
    assert warm.n_memoized == n_periods - 1
    assert cold.n_memoized == 0

    # The timing claim is skipped on the tiny smoke grid, where a
    # single scheduler stall dwarfs the one real solve being measured
    # (same convention as bench_batch_pricing.py); the numbers above
    # are still printed.
    if not smoke_mode():
        assert speedup >= MIN_SPEEDUP, (
            f"expected >= {MIN_SPEEDUP}x warm speedup, "
            f"measured {speedup:.2f}x"
        )
