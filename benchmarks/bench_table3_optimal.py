"""Table III: brute-force optimal OAP solution on Syn A per budget.

Paper reference (Table III): objective falls monotonically from 12.2945
at B=2 (thresholds [1,1,1,1]) to -8.1561 at B=20 ([9,7,6,6]).
"""

from conftest import emit, pick, write_bench_json

from repro.analysis import run_table3
from repro.datasets import SYN_A_BUDGETS

FAST_BUDGETS = (2, 6, 10)
SMOKE_BUDGETS = (2, 6)

PAPER_OBJECTIVES = {
    2: 12.2945, 4: 7.7176, 6: 3.2651, 8: -0.4517, 10: -2.1314,
    12: -3.7345, 14: -5.1645, 16: -6.4510, 18: -7.4649, 20: -8.1561,
}


def test_table3_optimal(benchmark):
    budgets = pick(
        smoke=SMOKE_BUDGETS, fast=FAST_BUDGETS, full=SYN_A_BUDGETS
    )

    result = benchmark.pedantic(
        lambda: run_table3(budgets=budgets), rounds=1, iterations=1
    )
    wall = benchmark.stats.stats.total

    lines = [result.to_text(), "", "paper-vs-measured objective:"]
    for row in result.rows:
        paper = PAPER_OBJECTIVES[int(row.budget)]
        lines.append(
            f"  B={row.budget:4.0f}  paper {paper:9.4f}   "
            f"measured {row.objective:9.4f}"
        )
    emit("Table III — optimal auditing policy (Syn A)", "\n".join(lines))

    objectives = result.objectives()
    write_bench_json(
        "table3_optimal",
        {
            "budgets": [float(b) for b in budgets],
            "wall_seconds": wall,
            "objectives": [float(o) for o in objectives],
            "paper_objectives": [
                PAPER_OBJECTIVES[int(b)] for b in budgets
            ],
        },
    )
    assert all(
        b < a for a, b in zip(objectives, objectives[1:], strict=False)
    ), "objective must decrease monotonically in budget"
    # The B=2 optimum is pinned by the paper: thresholds [1,1,1,1].
    assert result.rows[0].thresholds.astype(int).tolist() == [1, 1, 1, 1]
