"""Serving-layer benchmark: ingest throughput, score latency, re-solve lag.

Drives the stdlib app of :mod:`repro.serve` end to end with the
simulator's event sources as load generator:

1. **ingest** — stream stationary alert batches (drawn from the game's
   own count model via the ``model`` event source) through
   ``POST /alerts`` and report events/sec;
2. **score** — time individual ``POST /score`` requests against the
   published policy and report the p95 latency;
3. **drift** — switch the stream to inflated counts until the drift
   detector schedules a background re-solve, then measure the lag from
   trigger to the new policy version being published — while verifying
   the old version kept serving in between.

Results land in ``BENCH_serve.json`` (``events_per_sec``,
``score_p95_ms``, ``resolve_lag_seconds``).
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
from conftest import emit, pick, smoke_mode, write_bench_json

from repro.datasets import syn_a
from repro.serve import AuditService, StdlibApp
from repro.sim import EVENT_SOURCES

#: Floor on accepted ingest throughput (events/sec).
MIN_EVENTS_PER_SEC = 50.0
#: Ceiling on accepted p95 score latency (milliseconds).
MAX_SCORE_P95_MS = 250.0


async def _run_bench():
    n_ingest_batches = pick(smoke=10, fast=40, full=200)
    batch_rows = pick(smoke=16, fast=64, full=256)
    n_score_requests = pick(smoke=50, fast=200, full=1000)

    game = syn_a(budget=2)
    rng = np.random.default_rng(0)
    source = EVENT_SOURCES.create("model", game, {})

    async with AuditService(
        game,
        solver="ishm",
        solver_options={"step_size": 0.5},
        estimator="rolling-empirical",
        estimator_options={"window": 64, "min_periods": 8},
        drift_threshold=0.5,
        max_batch=max(batch_rows, 4096),
    ) as service:
        app = StdlibApp(service)

        # -- phase 1: stationary ingest throughput --------------------
        batches = [
            [source.counts(p, rng).tolist() for _ in range(batch_rows)]
            for p in range(n_ingest_batches)
        ]
        started = time.perf_counter()
        for batch in batches:
            status, payload = await app.handle(
                "POST", "/alerts", {"counts": batch}
            )
            assert status == 200, payload
        ingest_seconds = time.perf_counter() - started
        n_events = n_ingest_batches * batch_rows
        events_per_sec = n_events / ingest_seconds
        assert not payload["resolve_scheduled"], (
            "stationary stream must not trigger a re-solve; drift="
            f"{payload['drift']:.3f}"
        )

        # -- phase 2: score latency -----------------------------------
        row = source.counts(0, rng).tolist()
        latencies = []
        for _ in range(n_score_requests):
            t0 = time.perf_counter()
            status, scored = await app.handle(
                "POST", "/score", {"alerts": [row]}
            )
            latencies.append(time.perf_counter() - t0)
            assert status == 200, scored
        score_p50_ms = float(np.percentile(latencies, 50) * 1e3)
        score_p95_ms = float(np.percentile(latencies, 95) * 1e3)
        fingerprint_before = scored["fingerprint"]

        # -- phase 3: drift -> background re-solve --------------------
        drifted = EVENT_SOURCES.create(
            "drift", game, {"drift": 3.0, "std_scale": 0.5}
        )
        completed_before = service.resolves_completed
        triggered = time.perf_counter()
        scheduled = False
        for _period in range(64):
            batch = [
                drifted.counts(8, rng).tolist()
                for _ in range(batch_rows)
            ]
            status, payload = await app.handle(
                "POST", "/alerts", {"counts": batch}
            )
            assert status == 200, payload
            if payload["resolve_scheduled"]:
                scheduled = True
                break
        assert scheduled, "drifted stream never crossed the threshold"

        # The old version keeps serving until the publish lands.
        status, mid = await app.handle(
            "POST", "/score", {"alerts": [row]}
        )
        assert status == 200
        if service.resolves_completed == completed_before:
            assert mid["fingerprint"] == fingerprint_before

        while service.resolves_completed == completed_before:
            await asyncio.sleep(0.005)
        swap_seconds = time.perf_counter() - triggered
        resolve_lag_seconds = service.last_resolve_lag_seconds

        status, after = await app.handle(
            "POST", "/score", {"alerts": [row]}
        )
        assert status == 200
        assert after["fingerprint"] != fingerprint_before

        return {
            "events_per_sec": events_per_sec,
            "ingest_seconds": ingest_seconds,
            "n_events": n_events,
            "batch_rows": batch_rows,
            "score_requests": n_score_requests,
            "score_p50_ms": score_p50_ms,
            "score_p95_ms": score_p95_ms,
            "resolve_lag_seconds": resolve_lag_seconds,
            "drift_to_swap_seconds": swap_seconds,
            "drift_at_trigger": payload["drift"],
            "resolves_completed": service.resolves_completed,
        }


def test_serve_throughput_latency_and_resolve_lag():
    stats = asyncio.run(_run_bench())

    emit(
        "repro.serve: stdlib app end to end",
        "\n".join(
            [
                f"ingest      {stats['events_per_sec']:>10.0f} events/s "
                f"({stats['n_events']} events in "
                f"{stats['ingest_seconds']:.2f}s, "
                f"batches of {stats['batch_rows']})",
                f"score       p50={stats['score_p50_ms']:.2f}ms  "
                f"p95={stats['score_p95_ms']:.2f}ms  "
                f"({stats['score_requests']} requests)",
                f"re-solve    lag={stats['resolve_lag_seconds']:.3f}s "
                f"(trigger->swap {stats['drift_to_swap_seconds']:.3f}s, "
                f"drift={stats['drift_at_trigger']:.2f})",
            ]
        ),
    )
    write_bench_json("serve", stats)

    assert stats["events_per_sec"] > MIN_EVENTS_PER_SEC
    if not smoke_mode():
        assert stats["score_p95_ms"] < MAX_SCORE_P95_MS
    assert stats["resolve_lag_seconds"] > 0
