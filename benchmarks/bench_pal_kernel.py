"""Subset-memoized detection kernel vs the legacy per-ordering walk.

Pricing the full ordering set for one threshold vector costs the legacy
kernel ``T! * T`` scenario sweeps; the subset table
(:class:`repro.core.PalTable`) does ``T * 2^(T-1)`` sweeps plus ``2^T``
DP vector adds and assembles every ``Pal`` row by lookup — 448 vs 35 280
sweeps at ``T = 7``.  This bench measures that end to end:

* **kernel level** — all ``T!`` ``Pal`` rows from the legacy walk
  (validate-once :class:`repro.core.OrderingPricer`) versus one
  :class:`~repro.core.PalTable` build + lookups, for ``T in {4..7}``
  on exact and Monte-Carlo scenario sets;
* **solver level** — ``EnumerationSolver.solve_batch`` over a stack of
  threshold vectors with ``subset_table=True`` versus ``False`` (both
  with scenario compression), checking the objectives agree to 1e-9.
* **kernel backends** — the same :class:`~repro.core.PalTable` build
  through the ``kernel_backend`` knob (``numpy`` vs ``numba`` when the
  ``kernels`` extra is installed), tables checked bitwise-equal.

Acceptance (non-smoke): >= 3x kernel-level speedup at ``T = 6``; with
numba installed, >= 3x numba-vs-numpy build speedup at ``T = 8``.
Measured ratios for every grid point land in ``BENCH_pal_kernel.json``
(the ``kernel_backend`` / ``numba_available`` fields record which
compiled path produced them).
"""

import time

import numpy as np
from conftest import emit, pick, smoke_mode, write_bench_json

from repro.analysis import render_table
from repro.core import (
    AlertType,
    AlertTypeSet,
    AttackTypeMap,
    AuditGame,
    OrderingPricer,
    PalTable,
    PayoffModel,
    all_orderings,
)
from repro.core.kernels import HAS_NUMBA, resolve_kernel_backend
from repro.distributions import DiscretizedGaussian, JointCountModel
from repro.solvers.enumeration import EnumerationSolver

#: Joint supports beyond this size are sampled instead of enumerated.
EXACT_LIMIT = 40_000
N_SAMPLES = 1500


def make_game(n_types: int, budget: float | None = None) -> AuditGame:
    """A T-type game: one adversary per type, heterogeneous costs."""
    alert_types = AlertTypeSet(
        tuple(
            AlertType(f"type-{t + 1}", audit_cost=1.0 + 0.5 * (t % 2))
            for t in range(n_types)
        )
    )
    counts = JointCountModel(
        [
            DiscretizedGaussian(3.0 + 0.4 * t, 1.0 + 0.1 * t)
            for t in range(n_types)
        ]
    )
    type_matrix = np.arange(n_types, dtype=np.int64).reshape(1, -1)
    attack_map = AttackTypeMap.from_type_matrix(
        type_matrix, n_types=n_types
    )
    payoffs = PayoffModel.create(
        n_adversaries=1,
        n_victims=n_types,
        benefit=3.0 + 0.3 * type_matrix.astype(np.float64),
        penalty=4.0,
        attack_cost=0.4,
        attack_prior=1.0,
        attackers_can_refrain=False,
    )
    return AuditGame(
        alert_types=alert_types,
        counts=counts,
        attack_map=attack_map,
        payoffs=payoffs,
        budget=float(budget if budget is not None else 2 * n_types),
    )


def scenarios_for(game: AuditGame, exact: bool):
    if exact:
        return game.counts.exact_scenarios(max_scenarios=EXACT_LIMIT)
    return game.counts.sample_scenarios(
        N_SAMPLES, np.random.default_rng(0)
    )


def time_kernels(game, scenarios, thresholds):
    """(legacy_seconds, table_seconds, max |delta Pal|) for all T!."""
    orderings = all_orderings(game.n_types)
    started = time.perf_counter()
    pricer = OrderingPricer(
        thresholds, scenarios, game.costs, game.budget
    )
    legacy = np.stack([pricer.pal(o) for o in orderings])
    legacy_time = time.perf_counter() - started

    started = time.perf_counter()
    table = PalTable(thresholds, scenarios, game.costs, game.budget)
    fast = table.pal_rows(orderings)
    table_time = time.perf_counter() - started
    return legacy_time, table_time, float(np.abs(fast - legacy).max())


def test_pal_kernel_speedup(benchmark):
    type_grid = pick(
        smoke=(4,), fast=(4, 5, 6, 7, 8), full=(4, 5, 6, 7, 8)
    )
    rows = []
    records = []
    speedups = {}

    def sweep():
        for n_types in type_grid:
            game = make_game(n_types)
            exact = game.counts.n_exact_scenarios() <= EXACT_LIMIT
            scenarios = scenarios_for(game, exact)
            thresholds = np.minimum(
                game.threshold_upper_bounds(), game.budget
            ).astype(np.float64)
            legacy_time, table_time, max_delta = time_kernels(
                game, scenarios, thresholds
            )
            speedup = (
                legacy_time / table_time if table_time else float("inf")
            )
            speedups[n_types] = speedup
            assert max_delta <= 1e-9
            rows.append(
                [
                    str(n_types),
                    "exact" if exact else f"mc({N_SAMPLES})",
                    str(scenarios.n_scenarios),
                    f"{legacy_time * 1e3:.1f}ms",
                    f"{table_time * 1e3:.1f}ms",
                    f"{speedup:.1f}x",
                    f"{max_delta:.1e}",
                ]
            )
            records.append(
                {
                    "n_types": n_types,
                    "scenario_mode": "exact" if exact else "sampled",
                    "n_scenarios": scenarios.n_scenarios,
                    "n_orderings": len(all_orderings(n_types)),
                    "legacy_seconds": legacy_time,
                    "table_seconds": table_time,
                    "speedup": speedup,
                    "max_abs_delta": max_delta,
                }
            )
        return speedups

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Subset-memoized detection kernel — full ordering set, one vector",
        render_table(
            [
                "T",
                "scenarios",
                "rows",
                "legacy walk",
                "subset table",
                "speedup",
                "max |dPal|",
            ],
            rows,
        ),
    )
    write_bench_json(
        "pal_kernel",
        {
            "kernel": records,
            "type_grid": list(type_grid),
            "kernel_backend": resolve_kernel_backend("auto"),
            "numba_available": HAS_NUMBA,
        },
    )
    if not smoke_mode():
        assert speedups[6] >= 3.0, (
            f"expected >= 3x at T=6, measured {speedups[6]:.2f}x"
        )


def test_enumeration_solver_batch_speedup(benchmark):
    type_grid = pick(smoke=(4,), fast=(4, 5, 6), full=(4, 5, 6, 7))
    n_vectors = pick(smoke=2, fast=4, full=6)
    rows = []
    records = []

    def sweep():
        for n_types in type_grid:
            game = make_game(n_types)
            exact = game.counts.n_exact_scenarios() <= EXACT_LIMIT
            scenarios = scenarios_for(game, exact)
            rng = np.random.default_rng(7)
            upper = np.minimum(
                np.ceil(game.threshold_upper_bounds()), game.budget
            )
            batch = rng.integers(
                0, upper + 1, size=(n_vectors, n_types)
            ).astype(np.float64)

            started = time.perf_counter()
            legacy = EnumerationSolver(
                game, scenarios, subset_table=False
            ).solve_batch(batch)
            legacy_time = time.perf_counter() - started

            started = time.perf_counter()
            fast = EnumerationSolver(
                game, scenarios, subset_table=True
            ).solve_batch(batch)
            table_time = time.perf_counter() - started

            worst = max(
                abs(a.objective - b.objective)
                for a, b in zip(fast, legacy, strict=True)
            )
            assert worst <= 1e-9
            speedup = (
                legacy_time / table_time if table_time else float("inf")
            )
            rows.append(
                [
                    str(n_types),
                    str(scenarios.n_scenarios),
                    f"{legacy_time:.2f}s",
                    f"{table_time:.2f}s",
                    f"{speedup:.1f}x",
                    f"{worst:.1e}",
                ]
            )
            records.append(
                {
                    "n_types": n_types,
                    "n_vectors": n_vectors,
                    "n_scenarios": scenarios.n_scenarios,
                    "legacy_seconds": legacy_time,
                    "table_seconds": table_time,
                    "speedup": speedup,
                    "max_abs_objective_delta": worst,
                }
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        f"EnumerationSolver.solve_batch — {n_vectors} vectors, "
        "legacy vs subset-table pricing",
        render_table(
            [
                "T",
                "scenarios",
                "legacy",
                "subset table",
                "speedup",
                "max |dObj|",
            ],
            rows,
        ),
    )
    write_bench_json(
        "pal_kernel_solver",
        {
            "solve_batch": records,
            "type_grid": list(type_grid),
            "n_vectors": n_vectors,
        },
    )


def test_kernel_backend_comparison(benchmark):
    """One PalTable build per ``kernel_backend``, tables bitwise-equal.

    Without the ``kernels`` extra this records the numpy build times
    alone (CI's smoke rows stay numpy-only by design); with numba
    importable it times the JIT path against numpy on the same build —
    compilation happens outside the timed region, since ``cache=True``
    amortizes it across processes — and enforces the >= 3x acceptance
    at ``T = 8``.
    """
    type_grid = pick(smoke=(4,), fast=(6, 8), full=(6, 8))
    reps = pick(smoke=1, fast=3, full=5)
    backends = ["numpy"] + (["numba"] if HAS_NUMBA else [])
    rows = []
    records = []
    speedups = {}

    def sweep():
        for n_types in type_grid:
            game = make_game(n_types)
            exact = game.counts.n_exact_scenarios() <= EXACT_LIMIT
            scenarios = scenarios_for(game, exact)
            thresholds = np.minimum(
                game.threshold_upper_bounds(), game.budget
            ).astype(np.float64)
            timings = {}
            reference = None
            for backend in backends:
                if backend == "numba":
                    # Warm the JIT cache outside the timed region.
                    PalTable(
                        thresholds, scenarios, game.costs, game.budget,
                        kernel_backend=backend,
                    )
                best = float("inf")
                for _ in range(reps):
                    started = time.perf_counter()
                    table = PalTable(
                        thresholds, scenarios, game.costs, game.budget,
                        kernel_backend=backend,
                    )
                    best = min(best, time.perf_counter() - started)
                timings[backend] = best
                if reference is None:
                    reference = table.table.copy()
                else:
                    assert np.array_equal(table.table, reference)
            record = {
                "n_types": n_types,
                "n_scenarios": scenarios.n_scenarios,
                "numpy_seconds": timings["numpy"],
                "numba_available": HAS_NUMBA,
            }
            speedup_text = "n/a"
            if HAS_NUMBA:
                speedup = (
                    timings["numpy"] / timings["numba"]
                    if timings["numba"]
                    else float("inf")
                )
                speedups[n_types] = speedup
                record["numba_seconds"] = timings["numba"]
                record["speedup"] = speedup
                speedup_text = f"{speedup:.1f}x"
            records.append(record)
            rows.append(
                [
                    str(n_types),
                    str(scenarios.n_scenarios),
                    f"{timings['numpy'] * 1e3:.1f}ms",
                    (
                        f"{timings['numba'] * 1e3:.1f}ms"
                        if HAS_NUMBA
                        else "not installed"
                    ),
                    speedup_text,
                ]
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "PalTable build — kernel_backend=numpy vs numba",
        render_table(
            ["T", "rows", "numpy build", "numba build", "speedup"],
            rows,
        ),
    )
    _merge_bench_json({"backend_comparison": records})
    if not smoke_mode() and HAS_NUMBA:
        assert speedups[8] >= 3.0, (
            f"expected >= 3x numba speedup at T=8, "
            f"measured {speedups[8]:.2f}x"
        )


def _merge_bench_json(payload: dict) -> None:
    """Fold extra sections into BENCH_pal_kernel.json (tests run in
    file order, so the kernel sweep's record exists by the time this
    lands; a standalone run still writes a valid record)."""
    import json
    import os

    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    path = os.path.join(out_dir, "BENCH_pal_kernel.json")
    try:
        with open(path) as handle:
            record = json.load(handle)
    except (OSError, ValueError):
        record = {}
    record.update(payload)
    write_bench_json(
        "pal_kernel",
        {
            k: v
            for k, v in record.items()
            if k not in ("bench", "smoke", "full")
        },
    )
