"""Ablation E10: LP backends — HiGHS vs the from-scratch simplex.

Verifies the two engines agree on the master problems this library
actually emits, and times them (HiGHS is expected to win; the simplex
exists for dependency-freedom and cross-validation).
"""

import numpy as np
from conftest import emit, write_bench_json

from repro.core import all_orderings
from repro.datasets import syn_a
from repro.solvers import MasterProblem, PolicyContext

#: Objective of the Syn A B=10 master at thresholds [3,3,3,3]; anchored
#: once here so each backend's bench validates independently.
EXPECTED_OBJECTIVE = -3.3868


def build_master(backend: str) -> MasterProblem:
    game = syn_a(budget=10)
    scenarios = game.scenario_set()
    context = PolicyContext(
        game, scenarios, np.array([3.0, 3.0, 3.0, 3.0])
    )
    master = MasterProblem(context, backend=backend)
    for ordering in all_orderings(4):
        master.add_ordering(ordering)
    return master


def _record(backend: str, benchmark, objective: float) -> None:
    stats = benchmark.stats.stats
    write_bench_json(
        f"lp_backend_{backend}",
        {
            "backend": backend,
            "mean_seconds": float(stats.mean),
            "min_seconds": float(stats.min),
            "objective": float(objective),
        },
    )


def test_lp_backend_scipy(benchmark):
    master = build_master("scipy")
    fixed, _ = benchmark(master.solve)
    emit("LP backend — scipy/HiGHS",
         f"objective {fixed.objective:.6f}")
    _record("scipy", benchmark, fixed.objective)
    assert abs(fixed.objective - EXPECTED_OBJECTIVE) < 5e-3


def test_lp_backend_simplex(benchmark):
    master = build_master("simplex")
    fixed, _ = benchmark(master.solve)
    emit("LP backend — simplex (from scratch)",
         f"objective {fixed.objective:.6f}")
    _record("simplex", benchmark, fixed.objective)
    assert abs(fixed.objective - EXPECTED_OBJECTIVE) < 5e-3
