"""Extensions beyond the paper's evaluated model (its Section VII list)."""

from .general_sum import (
    AuditorLossModel,
    GeneralSumEvaluation,
    evaluate_general_sum,
    solve_single_adversary,
)
from .quantal import (
    QuantalEvaluation,
    evaluate_quantal,
    quantal_response_distribution,
    rationality_sweep,
)
from .sensitivity import (
    SensitivityRow,
    scale_payoffs,
    sensitivity_sweep,
)

__all__ = [
    "AuditorLossModel",
    "GeneralSumEvaluation",
    "QuantalEvaluation",
    "SensitivityRow",
    "evaluate_general_sum",
    "evaluate_quantal",
    "quantal_response_distribution",
    "rationality_sweep",
    "scale_payoffs",
    "sensitivity_sweep",
    "solve_single_adversary",
]
