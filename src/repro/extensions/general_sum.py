"""General-sum audit games.

The paper assumes the game is zero-sum and flags that as a limitation
(Section VII): a real auditor cares about organizational damage, not the
attacker's net profit — e.g. the attacker's cost ``K`` is irrelevant to
the hospital, and a privacy breach may hurt the organization far more
than it benefits the insider.  This module decouples the two sides:

* :class:`AuditorLossModel` assigns the auditor's own loss to every
  undetected attack (and a loss, usually 0 or negative, to detected
  ones);
* :func:`evaluate_general_sum` scores any policy: attackers best-respond
  to *their* utility, the auditor pays *their own* loss;
* :func:`solve_single_adversary` computes the exact strong-Stackelberg
  ordering mixture for a one-adversary game with fixed thresholds via the
  classic multiple-LPs method (one LP per candidate best response,
  keeping the best feasible one).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.game import AuditGame
from ..core.objective import best_responses
from ..core.policy import AuditPolicy, all_orderings
from ..distributions.joint import ScenarioSet
from ..solvers.lp import LinearProgram, solve_lp
from ..solvers.master import PolicyContext

__all__ = [
    "AuditorLossModel",
    "GeneralSumEvaluation",
    "evaluate_general_sum",
    "solve_single_adversary",
]


@dataclass(frozen=True)
class AuditorLossModel:
    """Auditor-side payoffs, decoupled from the adversary's utility.

    ``undetected_loss[e, v]`` is what the auditor loses when attack
    ``<e, v>`` succeeds; ``detected_loss[e, v]`` when it is caught
    (usually 0, or negative if catching an insider has positive value).
    The auditor's expected loss for an attack is
    ``Pat * detected + (1 - Pat) * undetected``.
    """

    undetected_loss: np.ndarray
    detected_loss: np.ndarray

    @classmethod
    def proportional(
        cls, game: AuditGame, damage_factor: float = 2.0
    ) -> "AuditorLossModel":
        """Losses proportional to attacker benefit (damage > benefit)."""
        benefit = game.payoffs.benefit
        return cls(
            undetected_loss=damage_factor * benefit,
            detected_loss=np.zeros_like(benefit),
        )

    def expected_loss_matrix(self, detection: np.ndarray) -> np.ndarray:
        """Auditor loss per attack given detection probabilities."""
        return (
            detection * self.detected_loss
            + (1.0 - detection) * self.undetected_loss
        )


@dataclass(frozen=True)
class GeneralSumEvaluation:
    """Outcome of a policy in the general-sum game."""

    auditor_loss: float
    adversary_utilities: np.ndarray
    attacked_victims: tuple[int, ...]  # REFRAIN (-1) when deterred


def evaluate_general_sum(
    game: AuditGame,
    loss_model: AuditorLossModel,
    policy: AuditPolicy,
    scenarios: ScenarioSet,
) -> GeneralSumEvaluation:
    """Attackers best-respond to their utility; auditor pays own loss."""
    evaluation = game.evaluate(policy, scenarios)
    mixed_pal = evaluation.mixed_pal
    detection = game.attack_map.detection_probability(mixed_pal)
    loss_matrix = loss_model.expected_loss_matrix(detection)
    responses = best_responses(
        evaluation.expected_utilities, game.payoffs
    )
    total = 0.0
    victims: list[int] = []
    for response in responses:
        victims.append(response.victim)
        if not response.deterred:
            prior = game.payoffs.attack_prior[response.adversary]
            total += prior * float(
                loss_matrix[response.adversary, response.victim]
            )
    return GeneralSumEvaluation(
        auditor_loss=total,
        adversary_utilities=np.array(
            [r.utility for r in responses]
        ),
        attacked_victims=tuple(victims),
    )


def solve_single_adversary(
    game: AuditGame,
    loss_model: AuditorLossModel,
    thresholds: np.ndarray,
    scenarios: ScenarioSet,
    adversary: int = 0,
    backend: str = "scipy",
) -> tuple[AuditPolicy, float]:
    """Exact strong-Stackelberg mixture for one adversary, fixed ``b``.

    Multiple-LPs method: for every candidate response ``v*`` (including
    refraining when allowed), find the ordering mixture minimizing the
    auditor's loss subject to ``v*`` being utility-maximizing for the
    adversary; return the best feasible branch.  Exponential ordering
    enumeration restricts this to small ``|T|`` (as with the paper's
    LP-to-optimality reference).
    """
    context = PolicyContext(game, scenarios, thresholds)
    orderings = all_orderings(game.n_types)
    n_q = len(orderings)

    # Adversary utility and auditor loss per (ordering, victim).
    utility_rows = np.stack(
        [context.utilities(o)[adversary] for o in orderings], axis=0
    )
    loss_rows = np.stack(
        [
            loss_model.expected_loss_matrix(
                game.attack_map.detection_probability(context.pal(o))
            )[adversary]
            for o in orderings
        ],
        axis=0,
    )

    candidates: list[int] = list(range(game.n_victims))
    if game.payoffs.attackers_can_refrain:
        candidates.append(-1)

    best_policy: AuditPolicy | None = None
    best_loss = np.inf
    for target in candidates:
        if target >= 0:
            c = loss_rows[:, target]
            target_utility = utility_rows[:, target]
        else:
            c = np.zeros(n_q)  # refraining costs the auditor nothing
            target_utility = np.zeros(n_q)
        # Constraints: target weakly better than every alternative.
        rows = []
        rhs = []
        for v in range(game.n_victims):
            if v == target:
                continue
            rows.append(utility_rows[:, v] - target_utility)
            rhs.append(0.0)
        if game.payoffs.attackers_can_refrain and target >= 0:
            rows.append(-target_utility)  # refrain utility 0 <= target
            rhs.append(0.0)
        a_ub = np.vstack(rows) if rows else None
        b_ub = np.asarray(rhs) if rows else None
        problem = LinearProgram(
            objective=c,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=np.ones((1, n_q)),
            b_eq=np.array([1.0]),
            bounds=tuple((0.0, None) for _ in range(n_q)),
        )
        solution = solve_lp(problem, backend=backend)
        if not solution.is_optimal:
            continue  # this best-response branch is unattainable
        prior = float(game.payoffs.attack_prior[adversary])
        loss = prior * float(solution.objective_value)
        if loss < best_loss - 1e-12:
            best_loss = loss
            probs = np.clip(solution.x, 0.0, None)
            probs = probs / probs.sum()
            best_policy = AuditPolicy(
                orderings=tuple(orderings),
                probabilities=probs,
                thresholds=np.asarray(thresholds, dtype=np.float64),
            ).pruned()
    if best_policy is None:
        raise RuntimeError("no feasible best-response branch found")
    return best_policy, best_loss
