"""Bounded-rational (quantal response) attackers.

Section VII of the paper lists fully rational adversaries as a modeling
limitation and proposes bounded rationality as an extension.  This module
implements the standard logit quantal response model: adversary ``e``
attacks victim ``v`` with probability proportional to
``exp(rationality * Ua(e, v))`` (the refrain option enters with utility 0
when the game allows it).  ``rationality -> inf`` recovers the paper's
best-response attacker; ``rationality = 0`` is a uniformly random one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.game import AuditGame
from ..core.policy import AuditPolicy
from ..distributions.joint import ScenarioSet

__all__ = [
    "quantal_response_distribution",
    "QuantalEvaluation",
    "evaluate_quantal",
    "rationality_sweep",
]


def quantal_response_distribution(
    expected_utilities: np.ndarray,
    rationality: float,
    include_refrain: bool,
) -> np.ndarray:
    """Per-adversary logit choice probabilities over victims (+ refrain).

    Returns shape ``(E, V + 1)``; the last column is the refrain
    probability (all-zero column when refraining is not allowed).
    """
    if rationality < 0:
        raise ValueError(
            f"rationality must be >= 0, got {rationality}"
        )
    eu = np.asarray(expected_utilities, dtype=np.float64)
    n_e, n_v = eu.shape
    options = np.concatenate([eu, np.zeros((n_e, 1))], axis=1)
    logits = rationality * options
    if not include_refrain:
        logits[:, -1] = -np.inf
    # Stable softmax row-wise.
    logits -= logits.max(axis=1, keepdims=True)
    weights = np.exp(logits)
    return weights / weights.sum(axis=1, keepdims=True)


@dataclass(frozen=True)
class QuantalEvaluation:
    """Auditor loss against quantal-response attackers."""

    rationality: float
    auditor_loss: float
    attack_probabilities: np.ndarray  # (E, V + 1), last col = refrain
    expected_utilities: np.ndarray

    @property
    def refrain_rate(self) -> float:
        """Average probability mass adversaries put on refraining."""
        return float(self.attack_probabilities[:, -1].mean())


def evaluate_quantal(
    game: AuditGame,
    policy: AuditPolicy,
    scenarios: ScenarioSet,
    rationality: float,
) -> QuantalEvaluation:
    """Zero-sum auditor loss when attackers quantal-respond.

    The loss is ``sum_e p_e sum_v q_e(v) * Ua(e, v)`` — the expectation of
    the adversary utility under the logit choice rule instead of the max.
    """
    evaluation = game.evaluate(policy, scenarios)
    eu = evaluation.expected_utilities
    choice = quantal_response_distribution(
        eu, rationality, game.payoffs.attackers_can_refrain
    )
    per_adversary = np.sum(choice[:, :-1] * eu, axis=1)  # refrain adds 0
    loss = float(game.payoffs.attack_prior @ per_adversary)
    return QuantalEvaluation(
        rationality=rationality,
        auditor_loss=loss,
        attack_probabilities=choice,
        expected_utilities=eu,
    )


def rationality_sweep(
    game: AuditGame,
    policy: AuditPolicy,
    scenarios: ScenarioSet,
    rationalities,
) -> list[QuantalEvaluation]:
    """Evaluate one policy across attacker rationality levels.

    Useful for the robustness question of Section VII: how much does a
    policy optimized for perfectly rational attackers overstate (or
    understate) the loss against imperfect ones?
    """
    return [
        evaluate_quantal(game, policy, scenarios, float(lam))
        for lam in rationalities
    ]
