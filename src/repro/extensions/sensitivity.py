"""Sensitivity of the audit policy to payoff parameterization.

Section VII: "while our experiments show the proposed audit model
outperforms natural alternatives, it is unclear how sensitive this result
is to parameter variations."  These helpers answer that question
empirically: scale one payoff component (penalty, benefit, attack cost or
attack prior), re-solve, and report how the objective and thresholds
move.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from ..core.game import AuditGame
from ..engine import AuditEngine, SolveResult
from ..solvers.ishm import ISHMResult

__all__ = ["SensitivityRow", "scale_payoffs", "sensitivity_sweep"]

_COMPONENTS = ("penalty", "benefit", "attack_cost", "attack_prior")


def scale_payoffs(
    game: AuditGame, component: str, scale: float
) -> AuditGame:
    """A copy of the game with one payoff component multiplied by scale."""
    if component not in _COMPONENTS:
        raise ValueError(
            f"component must be one of {_COMPONENTS}, got {component!r}"
        )
    if scale < 0:
        raise ValueError(f"scale must be >= 0, got {scale}")
    payoffs = game.payoffs
    if component == "penalty":
        new = replace(payoffs, penalty=payoffs.penalty * scale)
    elif component == "benefit":
        new = replace(payoffs, benefit=payoffs.benefit * scale)
    elif component == "attack_cost":
        new = replace(payoffs, attack_cost=payoffs.attack_cost * scale)
    else:
        new = replace(
            payoffs,
            attack_prior=np.clip(payoffs.attack_prior * scale, 0.0, 1.0),
        )
    return replace(game, payoffs=new)


@dataclass(frozen=True)
class SensitivityRow:
    """Re-solved objective at one parameter scale."""

    component: str
    scale: float
    objective: float
    thresholds: np.ndarray
    n_deterred: int


def sensitivity_sweep(
    game: AuditGame,
    component: str,
    scales: Sequence[float],
    step_size: float = 0.2,
    n_scenarios: int = 500,
    seed: int = 0,
    solve: Callable[[AuditGame], ISHMResult | SolveResult] | None = None,
) -> list[SensitivityRow]:
    """Re-solve the game across payoff scales; one row per scale."""
    rows: list[SensitivityRow] = []
    for scale in scales:
        scaled = scale_payoffs(game, component, float(scale))
        if solve is None:
            engine = AuditEngine(
                scaled, seed=seed, n_samples=n_scenarios
            )
            result = engine.solve("ishm", step_size=step_size)
            n_deterred = result.n_deterred
        else:
            result = solve(scaled)
            n_deterred = -1
        rows.append(
            SensitivityRow(
                component=component,
                scale=float(scale),
                objective=result.objective,
                thresholds=result.thresholds,
                n_deterred=n_deterred,
            )
        )
    return rows
