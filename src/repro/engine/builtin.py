"""Registry adapters for every solver and baseline in the repository.

Each adapter translates one native solver (Algorithms 1-2, the
brute-force optimum, the three Section V-B baselines) into the uniform
``(game, scenarios, config) -> SolveResult`` shape.  All of them accept
an optional shared :class:`~repro.engine.cache.FixedSolveCache` so the
:class:`~repro.engine.AuditEngine` can reuse fixed-threshold master
solutions across calls.
"""

from __future__ import annotations

import time

import numpy as np

from ..baselines import (
    GreedyBenefitBaseline,
    RandomOrderBaseline,
    RandomThresholdBaseline,
)
from ..core.game import AuditGame
from ..distributions.joint import ScenarioSet
from ..solvers.bruteforce import run_solve_optimal
from ..solvers.enumeration import DEFAULT_MAX_ORDERINGS
from ..solvers.ishm import FixedSolver, run_iterative_shrink
from .cache import FixedSolveCache
from .config import (
    BruteForceConfig,
    CGGSConfig,
    EnumerationConfig,
    GreedyBenefitConfig,
    ISHMConfig,
    RandomOrderConfig,
    RandomThresholdConfig,
)
from .registry import register_solver
from .result import SolveResult, finalize_result

__all__: list[str] = []


def _full_coverage(
    game: AuditGame, thresholds: tuple[float, ...] | None
) -> np.ndarray:
    """Config thresholds, or the full-coverage bounds ``J_t * C_t``."""
    if thresholds is None:
        return game.threshold_upper_bounds().astype(np.float64)
    b = np.asarray(thresholds, dtype=np.float64)
    if b.shape != (game.n_types,):
        raise ValueError(
            f"thresholds must have shape ({game.n_types},), got {b.shape}"
        )
    return b


@register_solver(
    "ishm",
    config=ISHMConfig,
    summary="Iterative Shrink Heuristic over thresholds + master LP",
    paper_section="IV-C (Algorithm 2), Tables IV/V/VII",
    aliases=("iterative-shrink",),
)
def _solve_ishm(
    game: AuditGame,
    scenarios: ScenarioSet,
    config: ISHMConfig,
    *,
    cache: FixedSolveCache | None = None,
    fixed_solver: FixedSolver | None = None,
) -> SolveResult:
    started = time.perf_counter()
    owned_cache = None
    if fixed_solver is None:
        if cache is None:
            # One-shot dispatch (no engine): the throwaway cache must
            # not leak its worker pool past this call.
            cache = owned_cache = FixedSolveCache(game, scenarios)
        batch_solver = cache.batch_solver(
            method=config.inner,
            backend=config.backend,
            seed=config.seed,
            workers=config.workers,
        )
        solver_args = {"batch_solver": batch_solver}
    else:
        solver_args = {"solver": fixed_solver}
    try:
        raw = run_iterative_shrink(
            game,
            scenarios,
            step_size=config.step_size,
            initial_thresholds=config.initial_thresholds,
            improvement_tol=config.improvement_tol,
            max_probes=config.max_probes,
            quantize=config.quantize,
            quantum=config.quantum,
            **solver_args,
        )
    finally:
        if owned_cache is not None:
            owned_cache.close()
    return finalize_result(
        game,
        scenarios,
        solver="ishm",
        policy=raw.policy,
        objective=raw.objective,
        config=config,
        started=started,
        diagnostics={
            "lp_calls": raw.lp_calls,
            "improvements": len(raw.history) - 1,
        },
        raw=raw,
    )


@register_solver(
    "bruteforce",
    config=BruteForceConfig,
    summary="Exact optimum over the integer threshold grid",
    paper_section="V-C1 (Table III reference optimum)",
    aliases=("optimal",),
)
def _solve_bruteforce(
    game: AuditGame,
    scenarios: ScenarioSet,
    config: BruteForceConfig,
    *,
    cache: FixedSolveCache | None = None,
) -> SolveResult:
    started = time.perf_counter()
    owned_cache = None
    if cache is None:
        cache = owned_cache = FixedSolveCache(game, scenarios)
    try:
        raw = run_solve_optimal(
            game,
            scenarios,
            backend=config.backend,
            max_vectors=config.max_vectors,
            enforce_budget_floor=config.enforce_budget_floor,
            tie_break=config.tie_break,
            batch_solver=cache.batch_solver(
                method="enumeration",
                backend=config.backend,
                seed=config.seed,
                workers=config.workers,
            ),
            chunk_size=config.chunk_size,
        )
    finally:
        if owned_cache is not None:
            owned_cache.close()
    return finalize_result(
        game,
        scenarios,
        solver="bruteforce",
        policy=raw.policy,
        objective=raw.objective,
        config=config,
        started=started,
        diagnostics={
            "n_vectors_evaluated": raw.n_vectors_evaluated,
            "n_vectors_total": raw.n_vectors_total,
        },
        raw=raw,
    )


@register_solver(
    "enumeration",
    config=EnumerationConfig,
    summary="Exact master LP over all |T|! orderings at fixed thresholds",
    paper_section="III (eq. 5), exact reference for Tables III-VII",
)
def _solve_enumeration(
    game: AuditGame,
    scenarios: ScenarioSet,
    config: EnumerationConfig,
    *,
    cache: FixedSolveCache | None = None,
) -> SolveResult:
    started = time.perf_counter()
    cache = cache or FixedSolveCache(game, scenarios)
    thresholds = _full_coverage(game, config.thresholds)
    # Pass kernel knobs only when they differ from their defaults: kwargs
    # enter the cache's memo scope, and a defaulted value must share
    # solutions with the kwarg-less enumeration solvers used by
    # ishm/bruteforce.
    extra: dict[str, object] = {}
    if config.max_orderings != DEFAULT_MAX_ORDERINGS:
        extra["max_orderings"] = config.max_orderings
    if config.subset_table is not None:
        extra["subset_table"] = config.subset_table
    if config.kernel_backend != "auto":
        extra["kernel_backend"] = config.kernel_backend
    if not config.compress:
        extra["compress"] = config.compress
    if config.prune:
        extra["prune"] = config.prune
    solution = cache.solver(
        method="enumeration",
        backend=config.backend,
        seed=config.seed,
        **extra,
    )(thresholds)
    return finalize_result(
        game,
        scenarios,
        solver="enumeration",
        policy=solution.policy,
        objective=solution.objective,
        config=config,
        started=started,
        diagnostics={"n_columns": solution.n_columns},
        raw=solution,
    )


@register_solver(
    "cggs",
    config=CGGSConfig,
    summary="Column Generation Greedy Search at fixed thresholds",
    paper_section="IV-B (Algorithm 1), Tables V/VI",
)
def _solve_cggs(
    game: AuditGame,
    scenarios: ScenarioSet,
    config: CGGSConfig,
    *,
    cache: FixedSolveCache | None = None,
) -> SolveResult:
    started = time.perf_counter()
    cache = cache or FixedSolveCache(game, scenarios)
    thresholds = _full_coverage(game, config.thresholds)
    solution = cache.solver(
        method="cggs",
        backend=config.backend,
        seed=config.seed,
        max_columns=config.max_columns,
        reduced_cost_tol=config.reduced_cost_tol,
        warm_start_pool=config.warm_start_pool,
        subset_table=config.subset_table,
        kernel_backend=config.kernel_backend,
        warm_start=config.warm_start,
    )(thresholds)
    return finalize_result(
        game,
        scenarios,
        solver="cggs",
        policy=solution.policy,
        objective=solution.objective,
        config=config,
        started=started,
        diagnostics={
            "n_columns": solution.n_columns,
            "columns_generated": getattr(
                solution, "columns_generated", 0
            ),
            "converged": getattr(solution, "converged", True),
        },
        raw=solution,
    )


@register_solver(
    "random-order",
    config=RandomOrderConfig,
    summary="Baseline: uniform mixture over random orderings",
    paper_section="V-B ('audit with random orders')",
)
def _solve_random_order(
    game: AuditGame,
    scenarios: ScenarioSet,
    config: RandomOrderConfig,
    *,
    cache: FixedSolveCache | None = None,
) -> SolveResult:
    started = time.perf_counter()
    baseline = RandomOrderBaseline(
        game,
        scenarios,
        n_orderings=config.n_orderings,
        rng=np.random.default_rng(config.seed),
    )
    outcome = baseline.run(_full_coverage(game, config.thresholds))
    return finalize_result(
        game,
        scenarios,
        solver="random-order",
        policy=outcome.policy,
        objective=outcome.auditor_loss,
        config=config,
        started=started,
        diagnostics={"support_size": len(outcome.policy.orderings)},
        raw=outcome,
        evaluation=outcome.evaluation,
    )


@register_solver(
    "random-threshold",
    config=RandomThresholdConfig,
    summary="Baseline: random thresholds, LP-optimal orderings per draw",
    paper_section="V-B ('audit with random thresholds')",
)
def _solve_random_threshold(
    game: AuditGame,
    scenarios: ScenarioSet,
    config: RandomThresholdConfig,
    *,
    cache: FixedSolveCache | None = None,
    fixed_solver: FixedSolver | None = None,
) -> SolveResult:
    started = time.perf_counter()
    owned_cache = None
    if fixed_solver is None:
        if cache is None:
            cache = owned_cache = FixedSolveCache(game, scenarios)
        solver_args = {
            "batch_solver": cache.batch_solver(
                method=config.inner,
                backend=config.backend,
                seed=config.seed,
                workers=config.workers,
            )
        }
    else:
        solver_args = {"solver": fixed_solver}
    baseline = RandomThresholdBaseline(
        game,
        scenarios,
        n_draws=config.n_draws,
        rng=np.random.default_rng(config.seed),
        **solver_args,
    )
    try:
        outcome = baseline.run()
    finally:
        if owned_cache is not None:
            owned_cache.close()
    # The headline objective is the paper's aggregate (mean over draws);
    # the returned policy is the best single draw.
    return finalize_result(
        game,
        scenarios,
        solver="random-threshold",
        policy=outcome.best_policy,
        objective=outcome.mean_loss,
        config=config,
        started=started,
        diagnostics={
            "std_loss": outcome.std_loss,
            "min_loss": outcome.min_loss,
            "max_loss": outcome.max_loss,
            "n_draws": outcome.n_draws,
        },
        raw=outcome,
    )


@register_solver(
    "benefit-greedy",
    config=GreedyBenefitConfig,
    summary="Baseline: deterministic benefit-ranked exhaustive audit",
    paper_section="V-B ('audit based on benefit')",
)
def _solve_benefit_greedy(
    game: AuditGame,
    scenarios: ScenarioSet,
    config: GreedyBenefitConfig,
    *,
    cache: FixedSolveCache | None = None,
) -> SolveResult:
    started = time.perf_counter()
    outcome = GreedyBenefitBaseline(game, scenarios).run()
    return finalize_result(
        game,
        scenarios,
        solver="benefit-greedy",
        policy=outcome.policy,
        objective=outcome.auditor_loss,
        config=config,
        started=started,
        diagnostics={"ordering": tuple(outcome.ordering)},
        raw=outcome,
        evaluation=outcome.evaluation,
    )
