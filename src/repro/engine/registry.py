"""String-keyed solver registry and module-level dispatch.

Solvers register themselves with :func:`register_solver`::

    @register_solver(
        "ishm",
        config=ISHMConfig,
        summary="threshold shrink heuristic",
        paper_section="IV-C, Algorithm 2",
    )
    def _solve_ishm(game, scenarios, config, *, cache=None, **kwargs):
        ...
        return finalize_result(...)

Every registered callable follows the :class:`Solver` protocol: it takes
``(game, scenarios, config)`` plus an optional shared
:class:`~repro.engine.cache.FixedSolveCache`, and returns a
:class:`~repro.engine.result.SolveResult`.  Dispatch by name happens via
:func:`solve` (or :meth:`repro.engine.AuditEngine.solve`, which adds
scenario/kernel caching on top).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Protocol, runtime_checkable

from .config import SolverConfig
from .result import SolveResult

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..core.game import AuditGame
    from ..distributions.joint import ScenarioSet
    from .cache import FixedSolveCache

__all__ = [
    "Solver",
    "SolverSpec",
    "all_names",
    "available",
    "get_solver",
    "make_config",
    "register_solver",
    "solve",
    "solver_table",
]


@runtime_checkable
class Solver(Protocol):
    """Callable contract every registry solver satisfies."""

    def __call__(
        self,
        game: "AuditGame",
        scenarios: "ScenarioSet",
        config: SolverConfig,
        *,
        cache: "FixedSolveCache | None" = None,
        **kwargs: object,
    ) -> SolveResult: ...


@dataclass(frozen=True)
class SolverSpec:
    """One registry entry: the solver plus its metadata."""

    name: str
    func: Callable[..., SolveResult]
    config_cls: type[SolverConfig]
    summary: str
    paper_section: str
    aliases: tuple[str, ...] = ()


_REGISTRY: dict[str, SolverSpec] = {}
_ALIASES: dict[str, str] = {}


def register_solver(
    name: str,
    *,
    config: type[SolverConfig] = SolverConfig,
    summary: str = "",
    paper_section: str = "",
    aliases: tuple[str, ...] = (),
) -> Callable[[Callable[..., SolveResult]], Callable[..., SolveResult]]:
    """Class/function decorator adding a solver under ``name``."""
    if not issubclass(config, SolverConfig):
        raise TypeError(
            f"config must subclass SolverConfig, got {config!r}"
        )

    def decorator(
        func: Callable[..., SolveResult]
    ) -> Callable[..., SolveResult]:
        for key in (name, *aliases):
            if key in _REGISTRY or key in _ALIASES:
                raise ValueError(f"solver {key!r} is already registered")
        spec = SolverSpec(
            name=name,
            func=func,
            config_cls=config,
            summary=summary,
            paper_section=paper_section,
            aliases=tuple(aliases),
        )
        _REGISTRY[name] = spec
        for alias in aliases:
            _ALIASES[alias] = name
        return func

    return decorator


def available() -> tuple[str, ...]:
    """Canonical names of every registered solver, sorted."""
    return tuple(sorted(_REGISTRY))


def all_names() -> tuple[str, ...]:
    """Every accepted solver name — canonical names plus aliases."""
    return tuple(sorted({*_REGISTRY, *_ALIASES}))


def get_solver(name: str) -> SolverSpec:
    """Resolve a name or alias to its :class:`SolverSpec`."""
    canonical = _ALIASES.get(name, name)
    spec = _REGISTRY.get(canonical)
    if spec is None:
        raise KeyError(
            f"no solver registered under {name!r}; available: "
            f"{', '.join(available())}"
        )
    return spec


def make_config(
    spec: SolverSpec,
    config: SolverConfig | Mapping[str, object] | None = None,
    /,
    **overrides: object,
) -> SolverConfig:
    """Normalize whatever the caller passed into the spec's config type.

    ``config`` may be ``None`` (defaults), a mapping (string values are
    coerced, for CLI/JSON runs) or an existing config instance;
    ``overrides`` are applied on top in all three cases.
    """
    if config is None:
        base = spec.config_cls()
    elif isinstance(config, SolverConfig):
        if not isinstance(config, spec.config_cls):
            raise TypeError(
                f"solver {spec.name!r} expects {spec.config_cls.__name__}, "
                f"got {type(config).__name__}"
            )
        base = config
    else:
        base = spec.config_cls.from_dict(config)
    if overrides:
        base = dataclasses.replace(base, **overrides)
    return base


def solve(
    game: "AuditGame",
    scenarios: "ScenarioSet",
    method: str,
    config: SolverConfig | Mapping[str, object] | None = None,
    **kwargs: object,
) -> SolveResult:
    """One-shot registry dispatch (no cross-call caching).

    For repeated solves on the same game — sweeps, grids, baselines
    sharing scenario sets — prefer :class:`repro.engine.AuditEngine`,
    which reuses scenario sets and fixed-threshold solutions between
    calls.
    """
    spec = get_solver(method)
    cfg = make_config(spec, config)
    return spec.func(game, scenarios, cfg, **kwargs)


def solver_table() -> str:
    """Registry overview: name, paper section, config options, summary."""
    rows = [("name", "paper section", "config", "summary")]
    for name in available():
        spec = _REGISTRY[name]
        options = ", ".join(
            f.name for f in dataclasses.fields(spec.config_cls)
        )
        label = name
        if spec.aliases:
            label += f" ({', '.join(spec.aliases)})"
        rows.append((label, spec.paper_section, options, spec.summary))
    widths = [
        max(len(row[i]) for row in rows) for i in range(len(rows[0]))
    ]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths, strict=True)).rstrip()
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
