"""Unified solving API: facade, solver registry, and result contract.

This package is the one true entry point for solving the Optimal
Auditing Problem.  Every solver — the exact brute force, Algorithm 1
(CGGS), Algorithm 2 (ISHM) and the three Section V-B baselines — is
registered under a string key with a typed config, and returns the same
frozen :class:`SolveResult`::

    from repro.datasets import syn_a
    from repro.engine import AuditEngine

    engine = AuditEngine(syn_a(budget=10))
    result = engine.solve("ishm", step_size=0.1)
    print(result.objective, result.diagnostics["lp_calls"])
    print(result.policy.describe())

``engine.solve`` caches scenario sets and fixed-threshold master
solutions across calls, so sweeps (step sizes, configs, baselines on the
same game) stop re-pricing identical threshold vectors.  For one-shot
use without an engine, :func:`solve` dispatches directly.

Register your own solver with :func:`register_solver`; it becomes
reachable from the CLI (``python -m repro.run_experiments --solver
NAME``) and everywhere else with no further wiring.
"""

from .cache import CacheInfo, FixedSolveCache
from .config import (
    BruteForceConfig,
    CGGSConfig,
    EnumerationConfig,
    GreedyBenefitConfig,
    ISHMConfig,
    RandomOrderConfig,
    RandomThresholdConfig,
    SolverConfig,
)
from .facade import AuditEngine, EngineCacheInfo
from .registry import (
    Solver,
    SolverSpec,
    all_names,
    available,
    get_solver,
    register_solver,
    solve,
    solver_table,
)
from .result import SolveResult, finalize_result

# Importing the adapters populates the registry as a side effect.
from . import builtin as _builtin  # noqa: E402,F401  (registration)

__all__ = [
    "AuditEngine",
    "BruteForceConfig",
    "CGGSConfig",
    "CacheInfo",
    "EngineCacheInfo",
    "EnumerationConfig",
    "FixedSolveCache",
    "GreedyBenefitConfig",
    "ISHMConfig",
    "RandomOrderConfig",
    "RandomThresholdConfig",
    "Solver",
    "SolverConfig",
    "SolverSpec",
    "SolveResult",
    "all_names",
    "available",
    "finalize_result",
    "get_solver",
    "register_solver",
    "solve",
    "solver_table",
]
