"""The :class:`AuditEngine` facade — one entry point for repeated solves.

The engine binds one :class:`~repro.core.game.AuditGame` and owns the
expensive shared state that parameter sweeps otherwise regenerate per
call:

* **scenario sets** — keyed by ``(seed, n_samples, prefer_exact_below)``
  so a step-size/gamma/config sweep scores every candidate policy on the
  same joint benign-count realizations without re-sampling them;
* **fixed-threshold solutions** — one
  :class:`~repro.engine.cache.FixedSolveCache` per scenario set, so a
  threshold vector priced exactly by one solve (an ISHM probe, a
  brute-force grid point, a random-threshold draw) is never priced
  again by a later one.  Reuse is limited to the deterministic
  enumeration master, so warm results always equal cold ones.

Usage::

    engine = AuditEngine(syn_a(budget=10))
    optimal = engine.solve("bruteforce")
    for step in (0.5, 0.25, 0.1):
        result = engine.solve("ishm", step_size=step)   # warm cache
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .. import faults, obs
from ..core.game import AuditGame
from ..core.objective import PolicyEvaluation
from ..core.policy import AuditPolicy
from ..distributions.joint import ScenarioSet
from ..solvers.master import FixedThresholdSolution
from . import registry
from .cache import FixedSolveCache
from .config import SolverConfig
from .result import SolveResult

__all__ = ["AuditEngine", "EngineCacheInfo"]


@dataclass(frozen=True)
class EngineCacheInfo:
    """Aggregate cache effectiveness counters for one engine."""

    scenario_sets: int
    scenario_hits: int
    scenario_misses: int
    fixed_solutions: int
    solution_hits: int
    solution_misses: int


class AuditEngine:
    """Facade over the solver registry with scenario/kernel caching.

    The engine is thread-safe: scenario-set and solution-cache creation
    are locked here, and each :class:`FixedSolveCache` locks its own
    memo, so the serve layer can share one engine across request
    handlers and background re-solve threads.  Concurrent pricing
    through one cache serializes (the underlying solvers keep mutable
    state); use ``workers > 1`` for actual parallelism.

    Parameters
    ----------
    game:
        The audit game instance every solve targets.  Budget sweeps use
        one engine per budget (``AuditEngine(game.with_budget(b))``) —
        detection kernels depend on the budget, so caches cannot be
        shared across budgets.
    backend:
        Default LP backend injected into solver configs that don't name
        one explicitly.
    seed:
        Default seed for scenario generation and solver randomness.
    workers:
        Default worker-process count for batched threshold pricing
        (:meth:`price_batch` and solver configs with a ``workers``
        field).  1 (the default) prices serially; >1 fans enumeration
        master solves out over a process pool with results guaranteed
        bit-for-bit equal to the serial path.
    n_samples, prefer_exact_below:
        Defaults for :meth:`scenario_set`.
    """

    def __init__(
        self,
        game: AuditGame,
        *,
        backend: str = "scipy",
        seed: int = 0,
        workers: int = 1,
        n_samples: int = 2000,
        prefer_exact_below: int = 100_000,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.game = game
        self.backend = backend
        self.seed = seed
        self.workers = workers
        self.n_samples = n_samples
        self.prefer_exact_below = prefer_exact_below
        self._scenarios: dict[tuple, ScenarioSet] = {}
        self._caches: dict[int, FixedSolveCache] = {}
        # Guards cache-map mutation so one engine can be shared across
        # threads (the serve layer's request handlers and background
        # re-solve workers).  Rank and ordering constraints live in
        # repro/devtools/lock_hierarchy.py (lint-enforced).
        self._lock = threading.RLock()
        self._scenario_hits = 0
        self._scenario_misses = 0

    # ------------------------------------------------------------------
    # Cached resources
    # ------------------------------------------------------------------

    def scenario_set(
        self,
        *,
        seed: int | None = None,
        n_samples: int | None = None,
        prefer_exact_below: int | None = None,
    ) -> ScenarioSet:
        """The shared scenario set for the given sampling parameters.

        Repeated calls with equal parameters return the *same* object
        (common random numbers across every solve in a sweep).
        """
        key = (
            self.seed if seed is None else seed,
            self.n_samples if n_samples is None else n_samples,
            (
                self.prefer_exact_below
                if prefer_exact_below is None
                else prefer_exact_below
            ),
        )
        with self._lock:
            cached = self._scenarios.get(key)
            if cached is not None:
                self._scenario_hits += 1
                return cached
            self._scenario_misses += 1
            scenarios = self.game.scenario_set(
                rng=np.random.default_rng(key[0]),
                n_samples=key[1],
                prefer_exact_below=key[2],
            )
            self._scenarios[key] = scenarios
            return scenarios

    #: Bound on per-scenario-set solution caches kept alive at once.
    #: Engine-generated scenario sets are few (one per sampling key);
    #: the bound protects against callers passing a fresh externally
    #: built ScenarioSet on every solve, which would otherwise grow
    #: (and pin) caches without limit.
    MAX_SOLUTION_CACHES = 8

    def solution_cache(self, scenarios: ScenarioSet) -> FixedSolveCache:
        """The engine's :class:`FixedSolveCache` for a scenario set."""
        with self._lock:
            cache = self._caches.get(id(scenarios))
            if cache is None:
                cache = FixedSolveCache(self.game, scenarios)
                self._caches[id(scenarios)] = cache
                while len(self._caches) > self.MAX_SOLUTION_CACHES:
                    # Evict the oldest (dict keeps insertion order).
                    evicted = self._caches.pop(
                        next(iter(self._caches))
                    )
                    evicted.close()
            return cache

    # ------------------------------------------------------------------
    # Solving and evaluation
    # ------------------------------------------------------------------

    def solve(
        self,
        method: str = "ishm",
        config: SolverConfig | Mapping[str, object] | None = None,
        *,
        scenarios: ScenarioSet | None = None,
        **overrides: object,
    ) -> SolveResult:
        """Run one registry solver against this game.

        ``method`` is any name in :func:`repro.engine.available`;
        ``config`` is the solver's typed config, a plain dict (string
        values are coerced — the CLI path), or ``None`` for defaults.
        Keyword ``overrides`` update individual config fields, so quick
        sweeps read naturally: ``engine.solve("ishm", step_size=0.2)``.

        The engine's ``backend`` and ``seed`` fill any field the caller
        left at its default when no explicit config object is given.

        The returned result carries ``solve_seconds`` — the end-to-end
        wall clock of this call — so cache warmth and LP-layer speedups
        are visible run over run without a benchmark harness.
        """
        started = time.perf_counter()
        faults.point("engine.solve")
        spec = registry.get_solver(method)
        if config is None or isinstance(config, Mapping):
            merged = dict(config or {})
            for key in merged:
                if key in overrides:
                    raise TypeError(
                        f"config option {key!r} given both in config and "
                        "as an override"
                    )
            merged.update(overrides)
            if "lp_backend" not in merged:
                # The config layer accepts lp_backend as an alias for
                # backend; only fill the engine default when the caller
                # named neither spelling.
                merged.setdefault("backend", self.backend)
            merged.setdefault("seed", self.seed)
            if any(
                f.name == "workers"
                for f in dataclasses.fields(spec.config_cls)
            ):
                merged.setdefault("workers", self.workers)
            cfg = registry.make_config(spec, merged)
        else:
            cfg = registry.make_config(spec, config, **overrides)
        if scenarios is None:
            scenarios = self.scenario_set()
        with obs.span("engine.solve", method=method):
            result = spec.func(
                self.game,
                scenarios,
                cfg,
                cache=self.solution_cache(scenarios),
            )
        elapsed = time.perf_counter() - started
        obs.counter("repro_engine_solves_total", method=method)
        obs.observe("repro_engine_solve_seconds", elapsed, method=method)
        return dataclasses.replace(result, solve_seconds=elapsed)

    def price_batch(
        self,
        vectors: np.ndarray | Sequence[Sequence[float]],
        *,
        method: str = "auto",
        backend: str | None = None,
        seed: int | None = None,
        workers: int | None = None,
        chunk_size: int | None = None,
        scenarios: ScenarioSet | None = None,
        **kwargs: object,
    ) -> list[FixedThresholdSolution]:
        """Price a stack of threshold vectors through the shared cache.

        ``vectors`` is a ``(B, T)`` array (or one vector); the result
        holds one fixed-threshold master solution per row, in input
        order.  Already-priced vectors come from the cache; the rest are
        solved — in parallel over ``workers`` processes for the
        deterministic enumeration method, serially otherwise — and
        cached for later :meth:`solve`/:meth:`price_batch` calls.
        ``workers > 1`` is guaranteed to return bit-for-bit the same
        solutions as ``workers=1``.
        """
        if scenarios is None:
            scenarios = self.scenario_set()
        started = time.perf_counter()
        with obs.span("engine.price_batch", method=method):
            solutions = self.solution_cache(scenarios).price_batch(
                vectors,
                method=method,
                backend=self.backend if backend is None else backend,
                seed=self.seed if seed is None else seed,
                workers=self.workers if workers is None else workers,
                chunk_size=chunk_size,
                **kwargs,
            )
        obs.counter(
            "repro_engine_vectors_priced_total",
            len(solutions),
            method=method,
        )
        obs.observe(
            "repro_engine_price_batch_seconds",
            time.perf_counter() - started,
            method=method,
        )
        return solutions

    def evaluate(
        self,
        policy: AuditPolicy,
        scenarios: ScenarioSet | None = None,
    ) -> PolicyEvaluation:
        """Score any policy on the engine's (cached) scenario set."""
        if scenarios is None:
            scenarios = self.scenario_set()
        return self.game.evaluate(policy, scenarios)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def cache_info(self) -> EngineCacheInfo:
        """Aggregated scenario- and solution-cache counters."""
        with self._lock:
            infos = [cache.info() for cache in self._caches.values()]
            return EngineCacheInfo(
                scenario_sets=len(self._scenarios),
                scenario_hits=self._scenario_hits,
                scenario_misses=self._scenario_misses,
                fixed_solutions=sum(i.solutions for i in infos),
                solution_hits=sum(i.hits for i in infos),
                solution_misses=sum(i.misses for i in infos),
            )

    def clear_caches(self) -> None:
        """Drop every cached scenario set and solution."""
        with self._lock:
            self.close()
            self._scenarios.clear()
            self._caches.clear()
            self._scenario_hits = 0
            self._scenario_misses = 0

    def close(self) -> None:
        """Shut down every cache's worker pool (caches stay usable)."""
        with self._lock:
            for cache in self._caches.values():
                cache.close()

    def __enter__(self) -> "AuditEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        info = self.cache_info()
        return (
            f"AuditEngine({self.game.describe()}; "
            f"{info.scenario_sets} scenario sets, "
            f"{info.fixed_solutions} cached solutions)"
        )
