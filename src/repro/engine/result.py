"""The unified :class:`SolveResult` contract.

Every registry solver — exact, heuristic or baseline — returns this one
frozen record: the solved policy, the headline objective, the
per-adversary best responses to that policy, solver diagnostics, wall
clock timing and an echo of the configuration that produced it.  The
experiments layer, CLI, benchmarks and examples consume only this type,
so new solvers plug in without touching any of them.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..core.objective import BestResponse, PolicyEvaluation
from ..core.policy import AuditPolicy, Ordering

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..core.game import AuditGame
    from ..distributions.joint import ScenarioSet
    from .config import SolverConfig

__all__ = ["SolveResult", "finalize_result"]


def _jsonable(value: object) -> object:
    """Coerce one value to plain JSON types (numpy scalars included).

    Python's ``json`` serializes floats with ``repr``, which round-trips
    every finite float64 bit for bit — so coercing to plain ``float``
    here keeps :meth:`SolveResult.to_dict` lossless for the numeric
    payload.  Values with no JSON shape fall back to ``repr`` (they are
    diagnostics, not contract).
    """
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def _config_class(name: str) -> type:
    """Resolve a ``SolverConfig`` subclass by its serialized class name."""
    from .config import SolverConfig

    def walk(cls: type):
        yield cls
        for sub in cls.__subclasses__():
            yield from walk(sub)

    for cls in walk(SolverConfig):
        if cls.__name__ == name:
            return cls
    raise ValueError(f"unknown solver config class {name!r}")


@dataclass(frozen=True, eq=False)
class SolveResult:
    """Outcome of one :func:`repro.engine.solve` call.

    Attributes
    ----------
    solver:
        Registry name of the solver that produced the result.
    objective:
        The solver's headline auditor loss.  For most solvers this is the
        loss of ``policy``; aggregate baselines (``random-threshold``)
        report their aggregate (mean over draws) here while ``policy``
        holds the best single draw.
    policy:
        The (mixed) audit policy returned by the solver.
    best_responses:
        Each adversary's best response *to* ``policy`` — attacked victim
        (or refrain) and attained utility.
    diagnostics:
        Read-only solver-specific counters (LP calls, columns generated,
        vectors enumerated, ...).
    wall_time:
        Wall-clock seconds spent inside the solver call.
    config:
        The fully-resolved :class:`~repro.engine.config.SolverConfig`
        echo, so a result is reproducible from itself.
    raw:
        The solver's native result object (e.g.
        :class:`~repro.solvers.ishm.ISHMResult`) for power users; ``None``
        when the solver has no richer representation.
    solve_seconds:
        End-to-end wall clock of the :meth:`AuditEngine.solve` call that
        produced this result (config resolution, cache lookups and the
        solver itself), stamped by the engine so LP-layer speedups are
        observable without a benchmark harness.  ``None`` when the
        solver was dispatched without an engine.
    """

    solver: str
    objective: float
    policy: AuditPolicy
    best_responses: tuple[BestResponse, ...]
    diagnostics: Mapping[str, object]
    wall_time: float
    config: "SolverConfig"
    raw: object = field(default=None, repr=False)
    solve_seconds: float | None = None

    @property
    def thresholds(self) -> np.ndarray:
        """The policy's threshold vector ``b``."""
        return self.policy.thresholds

    @property
    def adversary_utilities(self) -> np.ndarray:
        """``u_e`` per adversary under ``policy``."""
        return np.array([r.utility for r in self.best_responses])

    @property
    def n_deterred(self) -> int:
        """Adversaries for whom refraining beats every attack."""
        return sum(1 for r in self.best_responses if r.deterred)

    def summary(self, type_names: Sequence[str] | None = None) -> str:
        """Multi-line human-readable report (CLI / examples output)."""
        diag = ", ".join(f"{k}={v}" for k, v in self.diagnostics.items())
        timing = (
            f"wall_time={self.wall_time:.2f}s"
            if self.solve_seconds is None
            else f"wall_time={self.wall_time:.2f}s  "
                 f"solve_seconds={self.solve_seconds:.2f}s"
        )
        lines = [
            f"solver={self.solver}  objective={self.objective:.4f}  "
            f"{timing}",
            f"deterred {self.n_deterred}/{len(self.best_responses)} "
            "adversaries",
        ]
        if diag:
            lines.append(f"diagnostics: {diag}")
        lines.append(self.policy.describe(type_names))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # JSON round-trip (the policy store / HTTP wire format)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """Lossless JSON-ready representation of this result.

        Orderings, mixed weights, thresholds, objective, timings and
        the config echo survive a ``json.dumps``/``loads`` round trip
        bit for bit (Python's float repr is exact for float64).  The
        ``raw`` solver-native object is intentionally dropped — it is a
        power-user handle, not part of the result contract — so
        ``from_dict`` restores it as ``None``.
        """
        return {
            "solver": self.solver,
            "objective": self.objective,
            "policy": {
                "orderings": [
                    list(o.positions) for o in self.policy.orderings
                ],
                "probabilities": [
                    float(p) for p in self.policy.probabilities
                ],
                "thresholds": [
                    float(b) for b in self.policy.thresholds
                ],
            },
            "best_responses": [
                {
                    "adversary": int(r.adversary),
                    "victim": int(r.victim),
                    "utility": float(r.utility),
                }
                for r in self.best_responses
            ],
            "diagnostics": {
                str(k): _jsonable(v)
                for k, v in self.diagnostics.items()
            },
            "wall_time": self.wall_time,
            "solve_seconds": self.solve_seconds,
            "config": {
                "class": type(self.config).__name__,
                "values": {
                    f.name: _jsonable(getattr(self.config, f.name))
                    for f in dataclasses.fields(self.config)
                },
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SolveResult":
        """Rebuild a result from :meth:`to_dict` output (post-JSON ok)."""
        policy_data = data["policy"]
        policy = AuditPolicy(
            orderings=tuple(
                Ordering(tuple(int(t) for t in o))
                for o in policy_data["orderings"]
            ),
            probabilities=np.asarray(
                policy_data["probabilities"], dtype=np.float64
            ),
            thresholds=np.asarray(
                policy_data["thresholds"], dtype=np.float64
            ),
        )
        config_data = data["config"]
        config_cls = _config_class(config_data["class"])
        values = {
            # JSON has no tuples; tuple-typed config fields (e.g.
            # initial_thresholds) come back as lists.
            key: tuple(v) if isinstance(v, list) else v
            for key, v in config_data["values"].items()
        }
        return cls(
            solver=str(data["solver"]),
            objective=float(data["objective"]),
            policy=policy,
            best_responses=tuple(
                BestResponse(
                    adversary=int(r["adversary"]),
                    victim=int(r["victim"]),
                    utility=float(r["utility"]),
                )
                for r in data["best_responses"]
            ),
            diagnostics=MappingProxyType(dict(data["diagnostics"])),
            wall_time=float(data["wall_time"]),
            config=config_cls(**values),
            raw=None,
            solve_seconds=(
                None
                if data.get("solve_seconds") is None
                else float(data["solve_seconds"])
            ),
        )


def finalize_result(
    game: "AuditGame",
    scenarios: "ScenarioSet",
    *,
    solver: str,
    policy: AuditPolicy,
    objective: float,
    config: "SolverConfig",
    started: float,
    diagnostics: Mapping[str, object] | None = None,
    raw: object = None,
    evaluation: PolicyEvaluation | None = None,
) -> SolveResult:
    """Assemble a :class:`SolveResult`, evaluating the best responses.

    ``started`` is the ``time.perf_counter()`` reading taken when the
    solver began; the wall time is stamped here so every solver measures
    the same span (including this final evaluation).  Solvers that have
    already evaluated ``policy`` on ``scenarios`` pass their
    ``evaluation`` to skip the duplicate work.
    """
    if evaluation is None:
        evaluation = game.evaluate(policy, scenarios)
    diag = dict(diagnostics or {})
    diag.setdefault("n_scenarios", scenarios.n_scenarios)
    return SolveResult(
        solver=solver,
        objective=float(objective),
        policy=policy,
        best_responses=evaluation.responses,
        diagnostics=MappingProxyType(diag),
        wall_time=time.perf_counter() - started,
        config=config,
        raw=raw,
    )
