"""Cross-call caching of fixed-threshold master solves.

The expensive primitive every solver shares is "price one threshold
vector ``b``": build the detection kernels for candidate orderings and
solve the master LP of eq. 5.  ISHM probes hundreds of vectors, the
brute-force optimum enumerates a grid of them, and the random-threshold
baseline draws yet more — and a parameter sweep (step sizes, gamma,
budgets at fixed game) re-prices many of the *same* vectors run after
run.

:class:`FixedSolveCache` memoizes
:class:`~repro.solvers.master.FixedThresholdSolution` objects per
``(inner method, backend, thresholds)`` for one ``(game, scenarios)``
pair.  :class:`repro.engine.AuditEngine` keeps one instance per scenario
set, which is what makes warm sweeps cheap (see
``benchmarks/bench_engine_cache.py``).  Cross-call reuse is restricted
to the deterministic enumeration method so cached answers are always
identical to what a cold engine would compute.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.game import AuditGame
from ..distributions.joint import ScenarioSet
from ..solvers.ishm import (
    ENUMERATION_TYPE_LIMIT,
    FixedSolver,
    make_fixed_solver,
)
from ..solvers.master import FixedThresholdSolution

__all__ = ["CacheInfo", "FixedSolveCache"]


@dataclass(frozen=True)
class CacheInfo:
    """Counters describing one cache's effectiveness."""

    solutions: int
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FixedSolveCache:
    """Memoized fixed-threshold solving for one ``(game, scenarios)``.

    Only the deterministic inner method (enumeration) shares solutions
    *across* :meth:`solver` calls — and across seeds, since its answers
    do not depend on them.  CGGS is stateful (its warm-start column pool
    and rng advance as it solves), so each :meth:`solver` call gets a
    fresh :class:`~repro.solvers.cggs.CGGSSolver` and a private memo
    scope: within one call (e.g. one ISHM run) repeated vectors are
    still deduplicated, but results never depend on what the engine
    solved earlier, preserving the equal-seed ⇒ equal-result guarantee.
    """

    def __init__(self, game: AuditGame, scenarios: ScenarioSet) -> None:
        self.game = game
        self.scenarios = scenarios
        self._solvers: dict[tuple, FixedSolver] = {}
        self._solutions: dict[tuple, FixedThresholdSolution] = {}
        self.hits = 0
        self.misses = 0

    def _resolve(self, method: str) -> str:
        if method == "auto":
            return (
                "enumeration"
                if self.game.n_types <= ENUMERATION_TYPE_LIMIT
                else "cggs"
            )
        return method

    def solver(
        self,
        method: str = "auto",
        backend: str = "scipy",
        seed: int = 0,
        **kwargs: object,
    ) -> FixedSolver:
        """A memoizing fixed-threshold solver closure.

        ``kwargs`` pass through to
        :func:`~repro.solvers.ishm.make_fixed_solver` (and into the memo
        key, so differently-tuned solvers never share entries).
        """
        method = self._resolve(method)
        options = tuple(sorted(kwargs.items()))
        if method == "enumeration":
            # Deterministic: share the solver and its solutions across
            # calls, and drop the seed so runs with different seeds
            # still share solutions.
            solver_key = (method, backend, options)
            solution_scope = (method, backend, options)
            base = self._solvers.get(solver_key)
            if base is None:
                base = make_fixed_solver(
                    self.game,
                    self.scenarios,
                    method=method,
                    backend=backend,
                    **kwargs,
                )
                self._solvers[solver_key] = base
            solutions = self._solutions
        else:
            # Stateful (CGGS): fresh solver + a memo local to this call,
            # so earlier engine solves cannot leak into this one and the
            # engine-lifetime dict does not grow with unreusable entries.
            solution_scope = (method, backend, seed, options)
            base = make_fixed_solver(
                self.game,
                self.scenarios,
                method=method,
                backend=backend,
                rng=np.random.default_rng(seed),
                **kwargs,
            )
            solutions = {}

        def cached(thresholds: np.ndarray) -> FixedThresholdSolution:
            b = np.asarray(thresholds, dtype=np.float64)
            key = solution_scope + (tuple(np.round(b, 9).tolist()),)
            hit = solutions.get(key)
            if hit is not None:
                self.hits += 1
                return hit
            self.misses += 1
            solution = base(b)
            solutions[key] = solution
            return solution

        return cached

    def info(self) -> CacheInfo:
        return CacheInfo(
            solutions=len(self._solutions),
            hits=self.hits,
            misses=self.misses,
        )
