"""Cross-call caching of fixed-threshold master solves.

The expensive primitive every solver shares is "price one threshold
vector ``b``": build the detection kernels for candidate orderings and
solve the master LP of eq. 5.  ISHM probes hundreds of vectors, the
brute-force optimum enumerates a grid of them, and the random-threshold
baseline draws yet more — and a parameter sweep (step sizes, gamma,
budgets at fixed game) re-prices many of the *same* vectors run after
run.

:class:`FixedSolveCache` memoizes
:class:`~repro.solvers.master.FixedThresholdSolution` objects per
``(inner method, backend, thresholds)`` for one ``(game, scenarios)``
pair.  :class:`repro.engine.AuditEngine` keeps one instance per scenario
set, which is what makes warm sweeps cheap (see
``benchmarks/bench_engine_cache.py``).  Cross-call reuse is restricted
to the deterministic enumeration method so cached answers are always
identical to what a cold engine would compute.

Beyond the single-vector :meth:`FixedSolveCache.solver` closure, the
cache exposes batched pricing: :meth:`FixedSolveCache.batch_solver` /
:meth:`FixedSolveCache.price_batch` dedupe a ``(B, T)`` stack of
candidate vectors against the memo, build the remaining detection
kernels vectorized, and — for the deterministic enumeration method with
``workers > 1`` — fan the leftover master LP solves out over a process
pool (:mod:`repro.engine.parallel`).  Results come back in input order
and are bit-for-bit identical to the ``workers=1`` serial path.

Because enumeration solvers are memoized per ``(backend, options)``
(here and inside each pool worker), every vector priced through one
shares that solver's LP skeleton and representative-row set — the
structurally identical master LPs of a sweep are assembled from one set
of static blocks instead of being rebuilt per vector (see
:class:`repro.solvers.master.MasterSkeleton`).
"""

from __future__ import annotations

import threading
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import obs
from ..core.game import AuditGame
from ..distributions.joint import ScenarioSet
from ..solvers.ishm import (
    ENUMERATION_TYPE_LIMIT,
    BatchFixedSolver,
    FixedSolver,
    make_fixed_solver,
)
from ..solvers.master import FixedThresholdSolution
from . import parallel

__all__ = ["CacheInfo", "FixedSolveCache"]


@dataclass(frozen=True)
class CacheInfo:
    """Counters describing one cache's effectiveness."""

    solutions: int
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FixedSolveCache:
    """Memoized fixed-threshold solving for one ``(game, scenarios)``.

    Only the deterministic inner method (enumeration) shares solutions
    *across* :meth:`solver` calls — and across seeds, since its answers
    do not depend on them.  CGGS is stateful (its warm-start column pool
    and rng advance as it solves), so each :meth:`solver` call gets a
    fresh :class:`~repro.solvers.cggs.CGGSSolver` and a private memo
    scope: within one call (e.g. one ISHM run) repeated vectors are
    still deduplicated, but results never depend on what the engine
    solved earlier, preserving the equal-seed ⇒ equal-result guarantee.

    The cache is **thread-safe**: memo mutation, hit/miss counters,
    solver construction and executor lifecycle all run under one
    reentrant lock, so a service can share one engine (and therefore
    one cache) across request-handler and background-worker threads.
    The underlying enumeration solver keeps mutable per-solve state
    (LP skeletons, subset tables), so pricing through a shared solver
    is *serialized* by the same lock — concurrency across threads is
    for safety, not speedup; use ``workers > 1`` for parallel pricing.
    """

    def __init__(self, game: AuditGame, scenarios: ScenarioSet) -> None:
        self.game = game
        self.scenarios = scenarios
        self._solvers: dict[tuple, FixedSolver] = {}
        self._solutions: dict[tuple, FixedThresholdSolution] = {}
        self._executor = None
        self._executor_workers = 0
        # Rank 30 ("cache") in repro/devtools/lock_hierarchy.py: may be
        # taken under the engine lock, must call back into nothing
        # above it.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def _resolve(self, method: str) -> str:
        if method == "auto":
            return (
                "enumeration"
                if self.game.n_types <= ENUMERATION_TYPE_LIMIT
                else "cggs"
            )
        return method

    def solver(
        self,
        method: str = "auto",
        backend: str = "scipy",
        seed: int = 0,
        **kwargs: object,
    ) -> FixedSolver:
        """A memoizing fixed-threshold solver closure.

        ``kwargs`` pass through to
        :func:`~repro.solvers.ishm.make_fixed_solver` (and into the memo
        key, so differently-tuned solvers never share entries).
        """
        method = self._resolve(method)
        options = tuple(sorted(kwargs.items()))
        if method == "enumeration":
            # Deterministic: share the solver and its solutions across
            # calls, and drop the seed so runs with different seeds
            # still share solutions.
            solver_key = (method, backend, options)
            solution_scope = (method, backend, options)
            with self._lock:
                base = self._solvers.get(solver_key)
                if base is None:
                    base = make_fixed_solver(
                        self.game,
                        self.scenarios,
                        method=method,
                        backend=backend,
                        **kwargs,
                    )
                    self._solvers[solver_key] = base
            solutions = self._solutions
        else:
            # Stateful (CGGS): fresh solver + a memo local to this call,
            # so earlier engine solves cannot leak into this one and the
            # engine-lifetime dict does not grow with unreusable entries.
            solution_scope = (method, backend, seed, options)
            base = make_fixed_solver(
                self.game,
                self.scenarios,
                method=method,
                backend=backend,
                rng=np.random.default_rng(seed),
                **kwargs,
            )
            solutions = {}

        def cached(thresholds: np.ndarray) -> FixedThresholdSolution:
            b = np.asarray(thresholds, dtype=np.float64)
            key = solution_scope + (tuple(np.round(b, 9).tolist()),)
            # The solve stays inside the lock: the shared enumeration
            # solver mutates internal state (skeletons, tables) while
            # pricing, so concurrent walks through it are not safe.
            with self._lock:
                hit = solutions.get(key)
                if hit is not None:
                    self.hits += 1
                    return hit
                self.misses += 1
                solution = base(b)
                solutions[key] = solution
                return solution

        return cached

    # ------------------------------------------------------------------
    # Batched pricing
    # ------------------------------------------------------------------

    def batch_solver(
        self,
        method: str = "auto",
        backend: str = "scipy",
        seed: int = 0,
        workers: int = 1,
        chunk_size: int | None = None,
        **kwargs: object,
    ) -> BatchFixedSolver:
        """A memoizing *batched* fixed-threshold pricer.

        The returned callable takes a ``(B, T)`` stack (or a single
        vector) and returns one
        :class:`~repro.solvers.master.FixedThresholdSolution` per row,
        in input order.  Vectors already priced — earlier in the batch,
        by a previous batch, or by the single-vector :meth:`solver`
        closures — are served from the memo.

        With ``workers > 1`` and the deterministic enumeration method,
        the remaining misses fan out over a process pool in chunks
        (``chunk_size`` vectors per task; default
        :func:`repro.engine.parallel.default_chunk_size`), and the
        results are gathered back in submission order — bit-for-bit
        identical to ``workers=1``.  CGGS is stateful, so it always
        prices serially in input order regardless of ``workers``.
        """
        method = self._resolve(method)
        if method != "enumeration" or workers <= 1:
            serial = self.solver(
                method=method, backend=backend, seed=seed, **kwargs
            )

            def price_serial(
                vectors: np.ndarray,
            ) -> list[FixedThresholdSolution]:
                return [serial(b) for b in self._as_batch(vectors)]

            return price_serial

        options = tuple(sorted(kwargs.items()))
        scope = (method, backend, options)

        def price(vectors: np.ndarray) -> list[FixedThresholdSolution]:
            arr = self._as_batch(vectors)
            keys = [
                scope + (tuple(np.round(b, 9).tolist()),) for b in arr
            ]
            # One lock span for dedupe + solve + insert: a concurrent
            # batch must not observe a half-filled memo, and the pool
            # executor is single-ownership state.
            with self._lock:
                fresh: dict[tuple, np.ndarray] = {}
                for key, b in zip(keys, arr, strict=True):
                    if key in self._solutions or key in fresh:
                        self.hits += 1
                    else:
                        self.misses += 1
                        fresh[key] = b
                if fresh:
                    stack = np.stack(list(fresh.values()))
                    chunk = (
                        chunk_size
                        if chunk_size is not None
                        else parallel.default_chunk_size(
                            len(stack), workers
                        )
                    )
                    solutions = self._price_resilient(
                        workers, backend, options, stack, chunk
                    )
                    for key, solution in zip(fresh, solutions, strict=True):
                        self._solutions[key] = solution
                return [self._solutions[key] for key in keys]

        return price

    def price_batch(
        self,
        vectors: np.ndarray | Sequence[Sequence[float]],
        *,
        method: str = "auto",
        backend: str = "scipy",
        seed: int = 0,
        workers: int = 1,
        chunk_size: int | None = None,
        **kwargs: object,
    ) -> list[FixedThresholdSolution]:
        """One-shot convenience wrapper around :meth:`batch_solver`."""
        return self.batch_solver(
            method=method,
            backend=backend,
            seed=seed,
            workers=workers,
            chunk_size=chunk_size,
            **kwargs,
        )(vectors)

    def _as_batch(self, vectors) -> np.ndarray:
        arr = np.asarray(vectors, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2 or arr.shape[1] != self.game.n_types:
            raise ValueError(
                "batch must have shape (B, "
                f"{self.game.n_types}), got {arr.shape}"
            )
        return arr

    def _price_resilient(
        self,
        workers: int,
        backend: str,
        options: tuple[tuple[str, object], ...],
        stack: np.ndarray,
        chunk: int,
    ) -> list[FixedThresholdSolution]:
        """Parallel pricing with pool-crash degradation (lock held).

        A dead worker (OOM kill, segfault — or an injected
        ``engine.parallel.pool`` fault) raises
        :class:`~concurrent.futures.BrokenExecutor`.  First occurrence:
        discard the pool, rebuild once, retry.  Second: fall back to
        pricing serially through the same memoized enumeration solver
        the ``workers=1`` path uses, so the answers stay bit-identical.
        """
        for rebuilds in range(2):
            try:
                return parallel.price_parallel(
                    self._ensure_executor(workers),
                    backend,
                    options,
                    stack,
                    chunk,
                )
            except BrokenExecutor:
                self._discard_executor()
                if rebuilds == 0:
                    obs.counter("repro_engine_pool_rebuilds_total")
                else:
                    obs.counter("repro_engine_pool_serial_fallbacks_total")
        return self._price_serial(backend, options, stack)

    def _price_serial(
        self,
        backend: str,
        options: tuple[tuple[str, object], ...],
        stack: np.ndarray,
    ) -> list[FixedThresholdSolution]:
        """Serial pricing through the shared enumeration solver.

        Uses the same ``(method, backend, options)`` solver memo as
        :meth:`solver`'s enumeration path, so fallback results are
        exactly what ``workers=1`` would have produced.
        """
        solver_key = ("enumeration", backend, options)
        base = self._solvers.get(solver_key)
        if base is None:
            base = make_fixed_solver(
                self.game,
                self.scenarios,
                method="enumeration",
                backend=backend,
                **dict(options),
            )
            self._solvers[solver_key] = base
        return [base(b) for b in stack]

    def _discard_executor(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
                self._executor_workers = 0

    def _ensure_executor(self, workers: int):
        with self._lock:
            if self._executor is not None and (
                self._executor_workers != workers
                # A pool whose worker died (OOM kill, crash) stays
                # broken forever; rebuild instead of re-raising on
                # every batch.
                or getattr(self._executor, "_broken", False)
            ):
                self._executor.shutdown(wait=True)
                self._executor = None
            if self._executor is None:
                self._executor = parallel.make_executor(
                    self.game, self.scenarios, workers
                )
                self._executor_workers = workers
            return self._executor

    def close(self) -> None:
        """Shut down the worker pool (idempotent; memo stays usable)."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
                self._executor_workers = 0

    def __enter__(self) -> "FixedSolveCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                solutions=len(self._solutions),
                hits=self.hits,
                misses=self.misses,
            )
