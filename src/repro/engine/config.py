"""Typed per-solver configuration dataclasses.

Each registry solver declares a frozen ``SolverConfig`` subclass; the
fields are the solver's complete tuning surface.  Configs are
constructible from string-valued dictionaries (:meth:`SolverConfig.from_dict`)
so CLI and JSON-driven runs — ``--solver ishm --config step_size=0.2`` —
dispatch without bespoke argument parsing per solver.
"""

from __future__ import annotations

import dataclasses
import types
import typing
from dataclasses import dataclass

__all__ = [
    "coerce_value",
    "SolverConfig",
    "ISHMConfig",
    "BruteForceConfig",
    "EnumerationConfig",
    "CGGSConfig",
    "RandomOrderConfig",
    "RandomThresholdConfig",
    "GreedyBenefitConfig",
]

_NONE_WORDS = frozenset({"none", "null", ""})
_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})


def _coerce(text: str, annotation: object) -> object:
    """Parse one ``k=v`` string value according to a field annotation."""
    origin = typing.get_origin(annotation)
    if origin in (typing.Union, types.UnionType):
        args = [
            a for a in typing.get_args(annotation) if a is not type(None)
        ]
        if text.strip().lower() in _NONE_WORDS:
            return None
        # Try each union member in declaration order; the first parse
        # wins (e.g. ``bool | str`` accepts "true" as a bool and "lazy"
        # as a string).
        for candidate in args[:-1]:
            try:
                return _coerce(text, candidate)
            except ValueError:
                continue
        return _coerce(text, args[-1])
    if annotation is bool:
        word = text.strip().lower()
        if word in _TRUE_WORDS:
            return True
        if word in _FALSE_WORDS:
            return False
        raise ValueError(f"cannot parse {text!r} as a boolean")
    if annotation is int:
        return int(text)
    if annotation is float:
        return float(text)
    if origin is tuple:
        element = typing.get_args(annotation)[0]
        parts = [p for p in text.split(",") if p.strip()]
        return tuple(_coerce(p, element) for p in parts)
    return text


def coerce_value(text: str, annotation: object) -> object:
    """Public alias for the CLI string-to-type coercion rules.

    Used by consumers outside this module (e.g. the simulator's plugin
    option parsing) so every ``k=v`` surface coerces identically.
    """
    return _coerce(text, annotation)


@dataclass(frozen=True)
class SolverConfig:
    """Options shared by every registry solver.

    Attributes
    ----------
    backend:
        LP backend name (``"scipy"`` or ``"simplex"``).
    seed:
        Seed for every random draw the solver makes.  Two runs with equal
        seeds (and equal remaining config) produce identical
        :class:`~repro.engine.result.SolveResult` policies/objectives.
    """

    backend: str = "scipy"
    seed: int = 0

    @classmethod
    def from_dict(
        cls, data: typing.Mapping[str, object]
    ) -> "SolverConfig":
        """Build a config from (possibly all-string) key/value pairs.

        String values are coerced to the annotated field types, so the
        CLI's ``--config step_size=0.2 max_probes=none`` round-trips into
        proper ``float`` / ``None`` values.  Unknown keys raise with the
        list of valid options.

        ``lp_backend`` is accepted as an alias for ``backend`` (the LP
        layer's own vocabulary — see
        :func:`repro.solvers.lp.available_backends`); the resolved name
        is validated here so a typo'd backend fails at configuration
        time with the available choices rather than at the first LP
        solve.
        """
        hints = typing.get_type_hints(cls)
        valid = {f.name for f in dataclasses.fields(cls)}
        data = dict(data)
        if "lp_backend" in data:
            if "backend" in data:
                raise ValueError(
                    "give either backend or its alias lp_backend, "
                    "not both"
                )
            data["backend"] = data.pop("lp_backend")
        kwargs: dict[str, object] = {}
        for key, value in data.items():
            if key not in valid:
                raise ValueError(
                    f"{cls.__name__} has no option {key!r}; valid options: "
                    f"{', '.join(sorted(valid))} (and the lp_backend "
                    "alias for backend)"
                )
            kwargs[key] = (
                _coerce(value, hints[key])
                if isinstance(value, str)
                else value
            )
        if "backend" in kwargs:
            from ..solvers.lp import available_backends

            if kwargs["backend"] not in available_backends():
                raise ValueError(
                    f"unknown LP backend {kwargs['backend']!r}; "
                    f"choose from {available_backends()}"
                )
        if "kernel_backend" in kwargs:
            from ..core.kernels import resolve_kernel_backend

            # Validation only (typos and kernel_backend=numba without
            # the dependency fail at configuration time); the knob
            # itself is stored verbatim so configs echo what was asked.
            resolve_kernel_backend(str(kwargs["kernel_backend"]))
        return cls(**kwargs)

    def replace(self, **changes: object) -> "SolverConfig":
        """Functional update (alias for :func:`dataclasses.replace`)."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        """``k=v`` one-liner used by the CLI and result echoes."""
        pairs = (
            f"{f.name}={getattr(self, f.name)!r}"
            for f in dataclasses.fields(self)
        )
        return f"{type(self).__name__}({', '.join(pairs)})"


@dataclass(frozen=True)
class ISHMConfig(SolverConfig):
    """Algorithm 2 (Iterative Shrink Heuristic Method) options.

    ``workers > 1`` prices each probe round's candidate batch over a
    process pool (enumeration inner method only; results bit-for-bit
    equal to ``workers=1``).
    """

    step_size: float = 0.1
    inner: str = "auto"  # fixed-threshold master: enumeration/cggs/auto
    quantize: str = "round"
    quantum: float = 1.0
    improvement_tol: float = 1e-9
    max_probes: int | None = None
    initial_thresholds: tuple[float, ...] | None = None
    workers: int = 1


@dataclass(frozen=True)
class BruteForceConfig(SolverConfig):
    """Exact OAP search over the integer threshold grid (Table III).

    ``workers > 1`` prices the grid in parallel chunks of
    ``chunk_size`` vectors (identical optimum and tie-breaks).
    """

    max_vectors: int = 500_000
    enforce_budget_floor: bool = True
    tie_break: str = "smallest"
    workers: int = 1
    chunk_size: int = 64


@dataclass(frozen=True)
class _FixedThresholdConfig(SolverConfig):
    """Shared options for solvers that take the threshold vector as input.

    ``thresholds=None`` means the full-coverage upper bounds
    ``J_t * C_t`` (the ISHM starting point).
    """

    thresholds: tuple[float, ...] | None = None


@dataclass(frozen=True)
class EnumerationConfig(_FixedThresholdConfig):
    """Exact master LP over all ``|T|!`` ordering columns.

    ``subset_table=None`` auto-selects the subset-memoized detection
    kernel (``T * 2^(T-1)`` sweeps instead of ``T! * T``); ``compress``
    merges duplicate scenario rows before pricing.  Both default on —
    set ``subset_table=false`` / ``compress=false`` to pin the legacy
    per-ordering reference kernel.  ``prune=true`` additionally drops
    dominated rows/columns from each master LP before solving (lossless;
    off by default so cached solutions stay bitwise comparable).
    ``kernel_backend`` selects the compiled-kernel implementation for
    the subset tables (``auto``/``numba``/``numpy``, see
    :mod:`repro.core.kernels`); all choices are bitwise interchangeable.
    """

    max_orderings: int = 5040
    subset_table: bool | None = None
    kernel_backend: str = "auto"
    compress: bool = True
    prune: bool = False


@dataclass(frozen=True)
class CGGSConfig(_FixedThresholdConfig):
    """Algorithm 1 (Column Generation Greedy Search) options.

    ``subset_table`` picks the greedy-oracle kernel: ``none`` (default)
    auto-selects the lazy subset table for ``|T| >= 3``, ``lazy``/``true``
    force the lazy/eager table, ``false`` pins the legacy per-candidate
    walk.  ``warm_start`` re-enters master re-solves from the previous
    optimal basis on warm-capable LP backends (``backend=simplex``);
    the scipy/HiGHS backend always cold-solves.  ``kernel_backend``
    selects the compiled-kernel implementation for the subset tables
    (``auto``/``numba``/``numpy``, see :mod:`repro.core.kernels`).
    """

    max_columns: int = 200
    reduced_cost_tol: float = 1e-7
    warm_start_pool: int = 48
    subset_table: bool | str | None = None
    kernel_backend: str = "auto"
    warm_start: bool = True


@dataclass(frozen=True)
class RandomOrderConfig(_FixedThresholdConfig):
    """Baseline: uniform mixture over random orderings (Section V-B)."""

    n_orderings: int = 2000


@dataclass(frozen=True)
class RandomThresholdConfig(SolverConfig):
    """Baseline: random thresholds, LP-optimal orderings per draw.

    ``workers > 1`` prices all draws as one batch over a process pool
    (enumeration inner method only; identical losses and best draw).
    """

    n_draws: int = 100
    inner: str = "auto"
    workers: int = 1


@dataclass(frozen=True)
class GreedyBenefitConfig(SolverConfig):
    """Baseline: deterministic benefit-ranked exhaustive auditing."""
