"""Process-pool fan-out for batched fixed-threshold pricing.

:meth:`repro.engine.cache.FixedSolveCache.price_batch` dedupes a stack
of threshold vectors against its memo and hands the remaining misses
here.  Workers are seeded exactly once with the ``(game, scenarios)``
pair through the pool initializer (inherited for free under ``fork``,
pickled once under ``spawn``); each task then ships only ``(backend,
options, vectors)`` and returns the priced
:class:`~repro.solvers.master.FixedThresholdSolution` list.  Worker-side
:class:`~repro.solvers.enumeration.EnumerationSolver` instances are
memoized per ``(backend, options)`` so chunked batches reuse them.

Only the deterministic enumeration method is ever dispatched here: each
vector's solve is independent of every other, so scattering misses over
processes and gathering them back in submission order is bit-for-bit
identical to pricing them serially.  CGGS is stateful (warm-start column
pool, rng) and always prices serially — see ``FixedSolveCache``.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import Executor, Future, ProcessPoolExecutor

import numpy as np

from .. import faults, obs
from ..core.game import AuditGame
from ..distributions.joint import ScenarioSet
from ..solvers.enumeration import EnumerationSolver
from ..solvers.master import FixedThresholdSolution

__all__ = ["default_chunk_size", "make_executor", "price_parallel"]

#: Per-process state planted by the pool initializer.
_WORKER_STATE: dict = {}


def _init_worker(game: AuditGame, scenarios: ScenarioSet) -> None:
    _WORKER_STATE["game"] = game
    _WORKER_STATE["scenarios"] = scenarios
    _WORKER_STATE["solvers"] = {}


def _price_chunk(
    backend: str,
    options: tuple[tuple[str, object], ...],
    vectors: np.ndarray,
    span_path: tuple[str, ...] | None = None,
) -> list[FixedThresholdSolution]:
    # Worker-side injection point: under fork the plan/flag are
    # inherited from the submitter, so chaos plans reach in here too.
    faults.point("engine.parallel.worker")
    solvers = _WORKER_STATE["solvers"]
    key = (backend, options)
    solver = solvers.get(key)
    if solver is None:
        solver = EnumerationSolver(
            _WORKER_STATE["game"],
            _WORKER_STATE["scenarios"],
            backend=backend,
            **dict(options),
        )
        solvers[key] = solver
    if span_path is None:
        return solver.solve_batch(vectors)
    # The submitter had telemetry on: record into this worker's (local)
    # registry with the submitting solve's span chain as our parent, so
    # worker-side spans read `...engine.price_batch.price_chunk`.
    if not obs.enabled():
        obs.enable()
    with obs.adopt_span_path(span_path):
        with obs.span("price_chunk", vectors=len(vectors)):
            return solver.solve_batch(vectors)


def make_executor(
    game: AuditGame, scenarios: ScenarioSet, workers: int
) -> ProcessPoolExecutor:
    """A pool whose workers hold one shared ``(game, scenarios)`` pair.

    Prefers the ``fork`` start method where available (Linux): children
    inherit the parent's game and scenario matrices copy-on-write, so no
    per-worker pickling of the scenario set occurs.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_init_worker,
        initargs=(game, scenarios),
    )


def default_chunk_size(n_vectors: int, workers: int) -> int:
    """Chunk so every worker sees ~4 tasks (amortizes IPC, bounds skew)."""
    return max(1, -(-n_vectors // (workers * 4)))


def price_parallel(
    executor: Executor,
    backend: str,
    options: tuple[tuple[str, object], ...],
    vectors: np.ndarray,
    chunk_size: int,
) -> list[FixedThresholdSolution]:
    """Fan chunks of ``vectors`` out over the pool; gather in input order.

    A dead worker surfaces as :class:`BrokenProcessPool` out of
    ``future.result()`` and propagates to the caller —
    ``FixedSolveCache.price_batch`` owns the rebuild-then-serial
    degradation, since only it can discard and remake the executor.
    """
    # Parent-side injection point, before any task is submitted: a
    # BrokenProcessPool raised here models the pool dying deterministically.
    faults.point("engine.parallel.pool")
    # Contextvars do not cross process boundaries: capture the span
    # chain once at submit time and ship it with every task so worker
    # spans keep the submitting solve as their parent (None when
    # telemetry is off — workers then skip telemetry entirely).
    span_path = obs.current_span_path() if obs.enabled() else None
    futures: list[Future] = []
    for start in range(0, len(vectors), chunk_size):
        futures.append(
            executor.submit(
                _price_chunk,
                backend,
                options,
                vectors[start : start + chunk_size],
                span_path,
            )
        )
    solutions: list[FixedThresholdSolution] = []
    for future in futures:
        solutions.extend(future.result())
    return solutions
