"""Rea A substitute: a synthetic EMR access-log world (VUMC-like).

The paper's first real dataset is 28 workdays of Vanderbilt University
Medical Center EMR access logs.  Those logs are not publicly available,
so this module builds the closest synthetic equivalent that exercises the
same code paths end to end:

* a hospital **population** — employees and patients with last names,
  residential addresses, geocoded coordinates and department affiliations
  — planted so that exactly the seven composite alert types of Table VIII
  can arise (and no unnamed flag combination does);
* a 28-workday **access-log simulation**, with repeated accesses at the
  paper's observed 79.5% rate, calibrated so the per-day counts of each
  composite type match the published means/stds;
* the **audit game** of Section V (50 employees x 50 patients who generate
  at least one alert; benefit vector [10,12,12,24,25,25,27], penalty 15,
  unit attack/audit costs, p_e = 1, refraining allowed).

The game's count distributions default to the published Table VIII
Gaussians; pass ``distributions="simulated"`` to learn them from a fresh
simulated log instead (the round trip the paper performed on real data).

Base relationship flags (Section V-A):

* ``L`` — employee and patient share a last name;
* ``D`` — employee and patient work in the same department (the patient
  is also an employee);
* ``A`` — identical residential address string;
* ``N`` — geocoded residences within 0.5 miles.

``A`` without ``N`` occurs through stale geocodes (same recorded address,
coordinates displaced), matching how such contradictory flag combinations
appear in real EHR metadata.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.alert_types import AlertType, AlertTypeSet
from ..core.attack_map import AttackTypeMap
from ..core.game import AuditGame
from ..core.payoffs import PayoffModel
from ..distributions import DiscretizedGaussian, JointCountModel
from ..tdmt import (
    AccessEvent,
    CompositeScheme,
    RelationshipRule,
    TDMTEngine,
    filter_repeated_accesses,
    fit_count_models,
    period_type_counts,
)

__all__ = [
    "EMR_TYPE_NAMES",
    "EMR_TYPE_STATS",
    "EMR_BENEFITS",
    "EMRConfig",
    "EMRWorld",
    "EMRLog",
    "build_emr_world",
    "simulate_emr_log",
    "rea_a",
]

#: Table VIII composite alert types, in the paper's order.
EMR_TYPE_NAMES = (
    "same-last-name",
    "department-coworker",
    "neighbor",
    "lastname+address",
    "lastname+neighbor",
    "address+neighbor",
    "lastname+address+neighbor",
)

#: Table VIII per-day count statistics (mean, std) per composite type.
EMR_TYPE_STATS = (
    (183.21, 46.40),
    (32.18, 23.14),
    (113.89, 80.44),
    (15.43, 14.61),
    (23.75, 11.07),
    (20.07, 11.49),
    (32.07, 16.54),
)

#: Section V-A adversary benefit per composite type.
EMR_BENEFITS = (10.0, 12.0, 12.0, 24.0, 25.0, 25.0, 27.0)
EMR_PENALTY = 15.0
EMR_ATTACK_COST = 1.0
EMR_AUDIT_COST = 1.0

#: Base-flag combination defining each composite type.
_COMBOS: dict[frozenset[str], str] = {
    frozenset({"L"}): EMR_TYPE_NAMES[0],
    frozenset({"D"}): EMR_TYPE_NAMES[1],
    frozenset({"N"}): EMR_TYPE_NAMES[2],
    frozenset({"L", "A"}): EMR_TYPE_NAMES[3],
    frozenset({"L", "N"}): EMR_TYPE_NAMES[4],
    frozenset({"A", "N"}): EMR_TYPE_NAMES[5],
    frozenset({"L", "A", "N"}): EMR_TYPE_NAMES[6],
}

#: Neighbor threshold in miles (Section V-A).
NEIGHBOR_RADIUS_MILES = 0.5


@dataclass(frozen=True)
class EMRConfig:
    """Size and calibration knobs of the synthetic EMR world.

    The per-type pair pools must exceed the largest plausible daily draw
    (mean + 4 std of Table VIII), which the defaults guarantee.
    """

    n_days: int = 28
    pool_margin: float = 1.25
    benign_daily_mean: float = 2000.0
    benign_daily_std: float = 400.0
    repeat_fraction: float = 0.795
    seed: int = 20180417

    def pool_size(self, type_index: int) -> int:
        """Planted pairs for a composite type (covers mean + 4 std)."""
        mean, std = EMR_TYPE_STATS[type_index]
        return int(math.ceil((mean + 4.0 * std) * self.pool_margin))


def _neighbor(actor: Mapping, target: Mapping) -> bool:
    dx = actor["x"] - target["x"]
    dy = actor["y"] - target["y"]
    return math.hypot(dx, dy) <= NEIGHBOR_RADIUS_MILES


EMR_RULES = (
    RelationshipRule(
        name="L",
        predicate=lambda a, t: a["last_name"] == t["last_name"],
        description="employee and patient share the same last name",
    ),
    RelationshipRule(
        name="D",
        predicate=lambda a, t: (
            t.get("department") is not None
            and a["department"] == t["department"]
        ),
        description="employee and patient work in the same department",
    ),
    RelationshipRule(
        name="A",
        predicate=lambda a, t: a["address"] == t["address"],
        description="employee and patient share a residential address",
    ),
    RelationshipRule(
        name="N",
        predicate=_neighbor,
        description=(
            "employee and patient geocodes within "
            f"{NEIGHBOR_RADIUS_MILES} miles"
        ),
    ),
)

EMR_SCHEME = CompositeScheme(_COMBOS, strict=True)


@dataclass(frozen=True)
class EMRWorld:
    """A planted population plus the pair pools per composite type."""

    employees: dict[str, dict]
    patients: dict[str, dict]
    pair_pools: tuple[tuple[tuple[str, str], ...], ...]
    benign_pairs: tuple[tuple[str, str], ...]
    engine: TDMTEngine
    config: EMRConfig


@dataclass(frozen=True)
class EMRLog:
    """A simulated multi-day access log with its ground-truth world."""

    world: EMRWorld
    events: tuple[AccessEvent, ...]
    n_repeats: int

    @property
    def n_days(self) -> int:
        return self.world.config.n_days

    @property
    def repeat_fraction(self) -> float:
        """Fraction of raw events that are repeated accesses."""
        total = len(self.events)
        return self.n_repeats / total if total else 0.0


# ----------------------------------------------------------------------
# Population construction
# ----------------------------------------------------------------------

def _far_location(
    rng: np.random.Generator, spacing: float, index: int
) -> tuple[float, float]:
    """A location on a sparse grid: everyone is > 0.5 mi from strangers."""
    row, col = divmod(index, 1000)
    jitter = rng.uniform(-0.1, 0.1, size=2)
    return (col * spacing + jitter[0], row * spacing + jitter[1])


def build_emr_world(config: EMRConfig | None = None) -> EMRWorld:
    """Plant a population realizing exactly the Table VIII combinations.

    Each composite type gets a dedicated pool of (employee, patient)
    pairs whose attributes satisfy that type's base flags and no others;
    names, addresses and blocks are drawn from reserved disjoint ranges so
    no unnamed flag combination can arise (validated by the strict
    composite scheme on every labeling call).
    """
    config = config or EMRConfig()
    rng = np.random.default_rng(config.seed)
    employees: dict[str, dict] = {}
    patients: dict[str, dict] = {}
    counters = {"surname": 0, "address": 0, "site": 0}
    spacing = 5.0  # miles between unrelated home sites

    def fresh_surname() -> str:
        counters["surname"] += 1
        return f"surname-{counters['surname']:05d}"

    def fresh_address() -> str:
        counters["address"] += 1
        return f"addr-{counters['address']:05d}"

    def fresh_site() -> tuple[float, float]:
        counters["site"] += 1
        return _far_location(rng, spacing, counters["site"])

    def add_employee(name: str, attrs: dict) -> str:
        employees[name] = attrs
        return name

    def add_patient(name: str, attrs: dict) -> str:
        patients[name] = attrs
        return name

    def nearby(site: tuple[float, float]) -> tuple[float, float]:
        angle = rng.uniform(0.0, 2.0 * math.pi)
        radius = rng.uniform(0.05, 0.9 * NEIGHBOR_RADIUS_MILES)
        return (
            site[0] + radius * math.cos(angle),
            site[1] + radius * math.sin(angle),
        )

    pools: list[list[tuple[str, str]]] = [[] for _ in EMR_TYPE_NAMES]
    person_id = 0

    def fresh_names() -> tuple[str, str]:
        nonlocal person_id
        person_id += 1
        return f"emp-{person_id:05d}", f"pat-{person_id:05d}"

    def fresh_department() -> str:
        return f"dept-{rng.integers(0, 40):02d}"

    def single_pair(type_index: int) -> None:
        """Create one fresh (employee, patient) pair of the given type."""
        surname = fresh_surname()
        other_surname = fresh_surname()
        site = fresh_site()
        address = fresh_address()
        other_address = fresh_address()
        e_name, p_name = fresh_names()
        dept = fresh_department()
        type_name = EMR_TYPE_NAMES[type_index]
        if type_name == "department-coworker":
            # Patient is a fellow employee of the same department.
            e = dict(last_name=surname, address=address, department=dept)
            p = dict(last_name=other_surname, address=other_address,
                     department=dept)
            e["x"], e["y"] = site
            p["x"], p["y"] = fresh_site()
        elif type_name == "lastname+address":
            # Family at the same recorded address whose geocode is stale:
            # the patient's coordinates point at an old home far away.
            e = dict(last_name=surname, address=address, department=dept)
            p = dict(last_name=surname, address=address, department=None)
            e["x"], e["y"] = site
            p["x"], p["y"] = fresh_site()
        elif type_name == "lastname+neighbor":
            # Family living on the same street, separate households.
            e = dict(last_name=surname, address=address, department=dept)
            p = dict(last_name=surname, address=other_address,
                     department=None)
            e["x"], e["y"] = site
            p["x"], p["y"] = nearby(site)
        elif type_name == "address+neighbor":
            # Roommates: shared address, different surnames.
            e = dict(last_name=surname, address=address, department=dept)
            p = dict(last_name=other_surname, address=address,
                     department=None)
            e["x"], e["y"] = site
            p["x"], p["y"] = nearby(site)
        elif type_name == "lastname+address+neighbor":
            # Spouses / same-household family.
            e = dict(last_name=surname, address=address, department=dept)
            p = dict(last_name=surname, address=address, department=None)
            e["x"], e["y"] = site
            p["x"], p["y"] = nearby(site)
        else:
            raise AssertionError(f"unhandled single type {type_name}")
        pools[type_index].append(
            (add_employee(e_name, e), add_patient(p_name, p))
        )

    def surname_family(type_index: int) -> None:
        """2 employees + 2 patients share a surname, homes far apart.

        All four cross pairs trigger exactly {L}; families give sampled
        employees *multiple* same-last-name victims, as in real data.
        """
        surname = fresh_surname()
        members_e: list[str] = []
        members_p: list[str] = []
        for _ in range(2):
            e_name, p_name = fresh_names()
            e = dict(last_name=surname, address=fresh_address(),
                     department=fresh_department())
            e["x"], e["y"] = fresh_site()
            p = dict(last_name=surname, address=fresh_address(),
                     department=None)
            p["x"], p["y"] = fresh_site()
            members_e.append(add_employee(e_name, e))
            members_p.append(add_patient(p_name, p))
        for e_name in members_e:
            for p_name in members_p:
                pools[type_index].append((e_name, p_name))

    def neighbor_cluster(type_index: int) -> None:
        """3 employees + 3 patients within one 0.4-mile block.

        Distinct surnames and addresses, so all nine cross pairs trigger
        exactly {N} (an apartment block around one site).
        """
        center = fresh_site()

        def block_spot() -> tuple[float, float]:
            angle = rng.uniform(0.0, 2.0 * math.pi)
            radius = rng.uniform(0.0, 0.2)
            return (
                center[0] + radius * math.cos(angle),
                center[1] + radius * math.sin(angle),
            )

        members_e: list[str] = []
        members_p: list[str] = []
        for _ in range(3):
            e_name, p_name = fresh_names()
            e = dict(last_name=fresh_surname(), address=fresh_address(),
                     department=fresh_department())
            e["x"], e["y"] = block_spot()
            p = dict(last_name=fresh_surname(), address=fresh_address(),
                     department=None)
            p["x"], p["y"] = block_spot()
            members_e.append(add_employee(e_name, e))
            members_p.append(add_patient(p_name, p))
        for e_name in members_e:
            for p_name in members_p:
                pools[type_index].append((e_name, p_name))

    group_planters = {
        "same-last-name": (surname_family, 4),
        "neighbor": (neighbor_cluster, 9),
    }
    for type_index, type_name in enumerate(EMR_TYPE_NAMES):
        target = config.pool_size(type_index)
        planter = group_planters.get(type_name)
        if planter is None:
            while len(pools[type_index]) < target:
                single_pair(type_index)
        else:
            plant_group, _ = planter
            while len(pools[type_index]) < target:
                plant_group(type_index)

    # Benign population: unrelated employees and patients, each on their
    # own far-apart site with unique surname and address.
    n_benign = int(
        math.ceil(config.benign_daily_mean + 4 * config.benign_daily_std)
    )
    benign_pairs: list[tuple[str, str]] = []
    for _ in range(n_benign):
        e_name, p_name = fresh_names()
        e = dict(
            last_name=fresh_surname(),
            address=fresh_address(),
            department=f"dept-{rng.integers(0, 40):02d}",
        )
        p = dict(
            last_name=fresh_surname(),
            address=fresh_address(),
            department=None,
        )
        e["x"], e["y"] = fresh_site()
        p["x"], p["y"] = fresh_site()
        add_employee(e_name, e)
        add_patient(p_name, p)
        benign_pairs.append((e_name, p_name))

    engine = TDMTEngine(
        rules=EMR_RULES,
        scheme=EMR_SCHEME,
        actors=employees,
        targets=patients,
    )
    return EMRWorld(
        employees=employees,
        patients=patients,
        pair_pools=tuple(tuple(pool) for pool in pools),
        benign_pairs=tuple(benign_pairs),
        engine=engine,
        config=config,
    )


# ----------------------------------------------------------------------
# Log simulation
# ----------------------------------------------------------------------

def simulate_emr_log(
    world: EMRWorld, rng: np.random.Generator | None = None
) -> EMRLog:
    """Generate the multi-day raw access log (with repeated accesses).

    Per day and composite type, a Gaussian draw (Table VIII calibration)
    decides how many *distinct* related pairs access the EMR; benign
    traffic is added on top; every distinct access is then repeated a
    geometric number of times so that the configured fraction of raw
    events are repeats (paper: 79.5%).
    """
    config = world.config
    rng = rng if rng is not None else np.random.default_rng(
        config.seed + 1
    )
    events: list[AccessEvent] = []
    n_repeats = 0
    # Mean multiplicity m gives repeat fraction (m - 1) / m.
    multiplicity = 1.0 / max(1.0 - config.repeat_fraction, 1e-9)
    repeat_p = 1.0 / multiplicity

    def emit(day: int, employee: str, patient: str) -> None:
        nonlocal n_repeats
        copies = int(rng.geometric(repeat_p))
        n_repeats += copies - 1
        for _ in range(copies):
            events.append(
                AccessEvent(period=day, actor=employee, target=patient)
            )

    for day in range(config.n_days):
        for type_index, (mean, std) in enumerate(EMR_TYPE_STATS):
            pool = world.pair_pools[type_index]
            count = int(np.clip(
                round(rng.normal(mean, std)), 0, len(pool)
            ))
            if count == 0:
                continue
            chosen = rng.choice(len(pool), size=count, replace=False)
            for idx in chosen:
                emit(day, *pool[idx])
        benign_count = int(np.clip(
            round(rng.normal(config.benign_daily_mean,
                             config.benign_daily_std)),
            0,
            len(world.benign_pairs),
        ))
        chosen = rng.choice(
            len(world.benign_pairs), size=benign_count, replace=False
        )
        for idx in chosen:
            emit(day, *world.benign_pairs[idx])
    return EMRLog(world=world, events=tuple(events), n_repeats=n_repeats)


def learn_count_models(
    log: EMRLog, method: str = "gaussian"
) -> list:
    """Fit per-type ``F_t`` from a simulated log (repeat-filtered)."""
    distinct, _ = filter_repeated_accesses(log.events)
    alerts = log.world.engine.label_events(distinct)
    counts = period_type_counts(alerts, EMR_TYPE_NAMES, log.n_days)
    return fit_count_models(counts, EMR_TYPE_NAMES, method=method)


# ----------------------------------------------------------------------
# The audit game (Section V parameters)
# ----------------------------------------------------------------------

def rea_a(
    budget: float = 50.0,
    n_employees: int = 50,
    n_patients: int = 50,
    distributions: str = "published",
    config: EMRConfig | None = None,
    seed: int = 7,
) -> AuditGame:
    """Build the Rea A-style EMR audit game.

    Parameters
    ----------
    budget:
        Audit budget ``B`` (Figure 1 sweeps 10..100).
    n_employees, n_patients:
        Attack-grid size; the paper samples 50 x 50 among entities that
        generate at least one alert.
    distributions:
        ``"published"`` uses the Table VIII Gaussians directly;
        ``"simulated"`` simulates a fresh 28-day log and fits Gaussians to
        it; ``"empirical"`` fits raw empirical distributions to the log.
    config:
        World configuration (sizes, repeat rate, seed).
    seed:
        Seed for the attack-grid sampling.
    """
    if distributions not in ("published", "simulated", "empirical"):
        raise ValueError(
            f"unknown distributions mode {distributions!r}"
        )
    world = build_emr_world(config)
    rng = np.random.default_rng(seed)

    # Sample the attack grid from alert-generating entities: walk the
    # typed pair pools round-robin so all seven types are represented.
    employees: list[str] = []
    patients: list[str] = []
    seen_e: set[str] = set()
    seen_p: set[str] = set()
    order = [
        (k, i)
        for i in range(max(len(p) for p in world.pair_pools))
        for k in range(len(world.pair_pools))
        if i < len(world.pair_pools[k])
    ]
    for k, i in order:
        employee, patient = world.pair_pools[k][i]
        if len(employees) < n_employees and employee not in seen_e:
            employees.append(employee)
            seen_e.add(employee)
        if len(patients) < n_patients and patient not in seen_p:
            patients.append(patient)
            seen_p.add(patient)
        if len(employees) >= n_employees and len(patients) >= n_patients:
            break
    rng.shuffle(employees)
    rng.shuffle(patients)

    type_matrix = np.asarray(
        world.engine.type_matrix(employees, patients, EMR_TYPE_NAMES),
        dtype=np.int64,
    )
    attack_map = AttackTypeMap.from_type_matrix(
        type_matrix, n_types=len(EMR_TYPE_NAMES)
    )

    if distributions == "published":
        marginals = [
            DiscretizedGaussian(mean, std) for mean, std in EMR_TYPE_STATS
        ]
    else:
        log = simulate_emr_log(world)
        method = (
            "gaussian" if distributions == "simulated" else "empirical"
        )
        marginals = learn_count_models(log, method=method)
    counts = JointCountModel(marginals)

    benefit = np.zeros(type_matrix.shape)
    triggered = type_matrix >= 0
    benefit[triggered] = np.asarray(EMR_BENEFITS)[type_matrix[triggered]]
    payoffs = PayoffModel.create(
        n_adversaries=len(employees),
        n_victims=len(patients),
        benefit=benefit,
        penalty=EMR_PENALTY,
        attack_cost=EMR_ATTACK_COST,
        attack_prior=1.0,
        attackers_can_refrain=True,
    )
    alert_types = AlertTypeSet(
        tuple(
            AlertType(
                name=name,
                audit_cost=EMR_AUDIT_COST,
                description=f"Table VIII composite type {i + 1}",
            )
            for i, name in enumerate(EMR_TYPE_NAMES)
        )
    )
    return AuditGame(
        alert_types=alert_types,
        counts=counts,
        attack_map=attack_map,
        payoffs=payoffs,
        budget=float(budget),
        adversary_names=tuple(employees),
        victim_names=tuple(patients),
    )
