"""Dataset builders: Syn A (Table II) and the Rea A / Rea B substitutes."""

from .credit import (
    CREDIT_BENEFITS,
    CREDIT_PURPOSES,
    CREDIT_TYPE_NAMES,
    CREDIT_TYPE_STATS,
    CreditApplicant,
    alert_type_for,
    rea_b,
    simulate_credit_batches,
    synthesize_applicants,
)
from .emr import (
    EMR_BENEFITS,
    EMR_TYPE_NAMES,
    EMR_TYPE_STATS,
    EMRConfig,
    EMRLog,
    EMRWorld,
    build_emr_world,
    rea_a,
    simulate_emr_log,
)
from .syn_a import (
    SYN_A_BENEFITS,
    SYN_A_BUDGETS,
    SYN_A_MEANS,
    SYN_A_RULES,
    SYN_A_STDS,
    syn_a,
)

__all__ = [
    "CREDIT_BENEFITS",
    "CREDIT_PURPOSES",
    "CREDIT_TYPE_NAMES",
    "CREDIT_TYPE_STATS",
    "CreditApplicant",
    "EMRConfig",
    "EMRLog",
    "EMRWorld",
    "EMR_BENEFITS",
    "EMR_TYPE_NAMES",
    "EMR_TYPE_STATS",
    "SYN_A_BENEFITS",
    "SYN_A_BUDGETS",
    "SYN_A_MEANS",
    "SYN_A_RULES",
    "SYN_A_STDS",
    "alert_type_for",
    "build_emr_world",
    "rea_a",
    "rea_b",
    "simulate_credit_batches",
    "simulate_emr_log",
    "syn_a",
    "synthesize_applicants",
]
