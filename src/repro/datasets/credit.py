"""Rea B substitute: a Statlog (German credit) shaped application world.

The paper's second dataset is the public Statlog German Credit Data (1000
applications, 20 attributes).  This module synthesizes applications with
the published attribute marginals, applies the five alert rules of
Table IX, and builds the Section V audit game: 100 alert-generating
applicants x 8 application purposes (the "victims"), benefit vector
[15, 15, 14, 20, 18], penalty 20, unit attack/audit costs, p_e = 1,
refraining allowed.

Table IX rules (first match wins, so every event maps to at most one
type, as the model requires):

1. no checking account, any purpose;
2. checking < 0 DM and purpose in {new car, education};
3. checking > 0 DM, unskilled job, purpose education;
4. checking > 0 DM, unskilled job, appliance purpose (furniture /
   radio-television / domestic appliances);
5. checking > 0 DM, critical credit history, purpose business.

Alert counts per audit period (one period = one batch of ~1000
applications) default to the published Table IX Gaussians; the simulator
path regenerates them from synthesized batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.alert_types import AlertType, AlertTypeSet
from ..core.attack_map import BENIGN, AttackTypeMap
from ..core.game import AuditGame
from ..core.payoffs import PayoffModel
from ..distributions import DiscretizedGaussian, JointCountModel
from ..tdmt import (
    fit_count_models,
    period_type_counts,
)
from ..tdmt.events import AlertRecord

__all__ = [
    "CREDIT_TYPE_NAMES",
    "CREDIT_TYPE_STATS",
    "CREDIT_BENEFITS",
    "CREDIT_PURPOSES",
    "CreditApplicant",
    "synthesize_applicants",
    "alert_type_for",
    "simulate_credit_batches",
    "rea_b",
]

CREDIT_TYPE_NAMES = (
    "no-checking-any-purpose",
    "overdrawn-car-or-education",
    "positive-unskilled-education",
    "positive-unskilled-appliance",
    "positive-critical-business",
)

#: Table IX per-period count statistics (mean, std).
CREDIT_TYPE_STATS = (
    (370.04, 15.81),
    (82.42, 7.87),
    (5.13, 2.08),
    (28.21, 5.25),
    (8.31, 2.96),
)

#: Section V-A adversary benefits per alert type.
CREDIT_BENEFITS = (15.0, 15.0, 14.0, 20.0, 18.0)
CREDIT_PENALTY = 20.0
CREDIT_ATTACK_COST = 1.0
CREDIT_AUDIT_COST = 1.0

#: The eight application purposes used as attack victims.
CREDIT_PURPOSES = (
    "new-car",
    "used-car",
    "furniture-equipment",
    "radio-television",
    "domestic-appliances",
    "repairs",
    "education",
    "business",
)

#: Purposes counted as "Appliance" by Table IX rule 4.
_APPLIANCE_PURPOSES = frozenset(
    {"furniture-equipment", "radio-television", "domestic-appliances"}
)

#: Statlog attribute marginals (approximate published frequencies).
_CHECKING_LEVELS = ("<0", "0<=x<200", ">=200", "none")
_CHECKING_PROBS = (0.274, 0.269, 0.063, 0.394)
_JOB_LEVELS = ("unemployed", "unskilled", "skilled", "management")
_JOB_PROBS = (0.022, 0.200, 0.630, 0.148)
_HISTORY_LEVELS = (
    "no-credits", "all-paid", "existing-paid", "delayed", "critical"
)
_HISTORY_PROBS = (0.040, 0.049, 0.530, 0.088, 0.293)
_PURPOSE_PROBS = (0.239, 0.105, 0.185, 0.286, 0.012, 0.023, 0.051, 0.099)

_POSITIVE_CHECKING = frozenset({"0<=x<200", ">=200"})


@dataclass(frozen=True)
class CreditApplicant:
    """One synthesized credit-card application."""

    name: str
    checking_status: str
    job: str
    credit_history: str
    declared_purpose: str
    credit_amount: float
    duration_months: int
    age: int

    def attributes(self) -> Mapping[str, object]:
        """Attribute view for rule evaluation."""
        return {
            "checking_status": self.checking_status,
            "job": self.job,
            "credit_history": self.credit_history,
        }


def alert_type_for(
    applicant: CreditApplicant | Mapping[str, object], purpose: str
) -> int:
    """Table IX alert type index for (applicant, purpose); BENIGN if none.

    Rules are evaluated in catalog order and the first match wins, which
    enforces the paper's one-type-per-event property.
    """
    if isinstance(applicant, CreditApplicant):
        attrs = applicant.attributes()
    else:
        attrs = applicant
    checking = attrs["checking_status"]
    job = attrs["job"]
    history = attrs["credit_history"]
    if purpose not in CREDIT_PURPOSES:
        raise ValueError(f"unknown purpose {purpose!r}")
    if checking == "none":
        return 0
    if checking == "<0" and purpose in ("new-car", "education"):
        return 1
    if checking in _POSITIVE_CHECKING and job == "unskilled":
        if purpose == "education":
            return 2
        if purpose in _APPLIANCE_PURPOSES:
            return 3
    if (
        checking in _POSITIVE_CHECKING
        and history == "critical"
        and purpose == "business"
    ):
        return 4
    return BENIGN


def synthesize_applicants(
    n_applicants: int, rng: np.random.Generator
) -> list[CreditApplicant]:
    """Draw applications from the Statlog-shaped attribute marginals."""
    if n_applicants <= 0:
        raise ValueError(
            f"n_applicants must be positive, got {n_applicants}"
        )
    checking = rng.choice(
        _CHECKING_LEVELS, size=n_applicants, p=_CHECKING_PROBS
    )
    job = rng.choice(_JOB_LEVELS, size=n_applicants, p=_JOB_PROBS)
    history = rng.choice(
        _HISTORY_LEVELS, size=n_applicants, p=_HISTORY_PROBS
    )
    purpose = rng.choice(
        CREDIT_PURPOSES, size=n_applicants, p=_PURPOSE_PROBS
    )
    amounts = np.exp(rng.normal(7.8, 0.9, size=n_applicants))
    durations = np.clip(
        rng.normal(21.0, 12.0, size=n_applicants), 4, 72
    ).astype(int)
    ages = np.clip(rng.normal(35.5, 11.4, size=n_applicants), 19, 75)
    return [
        CreditApplicant(
            name=f"app-{i + 1:05d}",
            checking_status=str(checking[i]),
            job=str(job[i]),
            credit_history=str(history[i]),
            declared_purpose=str(purpose[i]),
            credit_amount=float(round(amounts[i], 2)),
            duration_months=int(durations[i]),
            age=int(ages[i]),
        )
        for i in range(n_applicants)
    ]


def simulate_credit_batches(
    n_periods: int = 28,
    batch_size: int = 1000,
    rng: np.random.Generator | None = None,
) -> dict[str, np.ndarray]:
    """Per-period alert counts from synthesized application batches.

    Each period draws a fresh batch; every application is labeled with
    the Table IX rule applied to its *declared* purpose.  Returns the
    per-type count arrays (the raw material for Table IX's mean/std).
    """
    rng = rng if rng is not None else np.random.default_rng(1000)
    alerts: list[AlertRecord] = []
    for period in range(n_periods):
        for applicant in synthesize_applicants(batch_size, rng):
            type_index = alert_type_for(
                applicant, applicant.declared_purpose
            )
            if type_index != BENIGN:
                alerts.append(
                    AlertRecord(
                        period=period,
                        actor=applicant.name,
                        target=applicant.declared_purpose,
                        alert_type=CREDIT_TYPE_NAMES[type_index],
                    )
                )
    return period_type_counts(alerts, CREDIT_TYPE_NAMES, n_periods)


def rea_b(
    budget: float = 100.0,
    n_applicants: int = 100,
    distributions: str = "published",
    n_periods: int = 28,
    seed: int = 11,
) -> AuditGame:
    """Build the Rea B-style credit-fraud audit game.

    Parameters
    ----------
    budget:
        Audit budget ``B`` (Figure 2 sweeps 10..250).
    n_applicants:
        Number of adversaries; the paper randomly selects 100 applicants
        who can generate at least one alert.
    distributions:
        ``"published"`` uses the Table IX Gaussians; ``"simulated"`` /
        ``"empirical"`` learn them from synthesized application batches.
    n_periods:
        Batches to simulate when learning distributions.
    seed:
        Seed for applicant synthesis and selection.
    """
    if distributions not in ("published", "simulated", "empirical"):
        raise ValueError(f"unknown distributions mode {distributions!r}")
    rng = np.random.default_rng(seed)

    # Rejection-sample applicants until we have enough alert generators.
    selected: list[CreditApplicant] = []
    while len(selected) < n_applicants:
        for applicant in synthesize_applicants(4 * n_applicants, rng):
            fires = any(
                alert_type_for(applicant, purpose) != BENIGN
                for purpose in CREDIT_PURPOSES
            )
            if fires:
                selected.append(applicant)
                if len(selected) >= n_applicants:
                    break

    type_matrix = np.array(
        [
            [
                alert_type_for(applicant, purpose)
                for purpose in CREDIT_PURPOSES
            ]
            for applicant in selected
        ],
        dtype=np.int64,
    )
    attack_map = AttackTypeMap.from_type_matrix(
        type_matrix, n_types=len(CREDIT_TYPE_NAMES)
    )

    if distributions == "published":
        marginals = [
            DiscretizedGaussian(mean, std)
            for mean, std in CREDIT_TYPE_STATS
        ]
    else:
        counts = simulate_credit_batches(n_periods=n_periods, rng=rng)
        method = (
            "gaussian" if distributions == "simulated" else "empirical"
        )
        marginals = fit_count_models(
            counts, CREDIT_TYPE_NAMES, method=method
        )
    counts_model = JointCountModel(marginals)

    benefit = np.zeros(type_matrix.shape)
    triggered = type_matrix != BENIGN
    benefit[triggered] = np.asarray(CREDIT_BENEFITS)[
        type_matrix[triggered]
    ]
    payoffs = PayoffModel.create(
        n_adversaries=len(selected),
        n_victims=len(CREDIT_PURPOSES),
        benefit=benefit,
        penalty=CREDIT_PENALTY,
        attack_cost=CREDIT_ATTACK_COST,
        attack_prior=1.0,
        attackers_can_refrain=True,
    )
    alert_types = AlertTypeSet(
        tuple(
            AlertType(
                name=name,
                audit_cost=CREDIT_AUDIT_COST,
                description=f"Table IX alert type {i + 1}",
            )
            for i, name in enumerate(CREDIT_TYPE_NAMES)
        )
    )
    return AuditGame(
        alert_types=alert_types,
        counts=counts_model,
        attack_map=attack_map,
        payoffs=payoffs,
        budget=float(budget),
        adversary_names=tuple(a.name for a in selected),
        victim_names=CREDIT_PURPOSES,
    )
