"""Syn A — the paper's controlled synthetic dataset (Table II).

Five potential attackers, eight records, four alert types.  Alert counts
are discretized Gaussians truncated at 99.5% coverage; every access is
deterministically mapped to an alert type by the rule matrix of Table IIb
("-" entries are benign).  Benefits, attack costs and audit costs come
from Table IIa; the capture penalty is the constant 4.  Attackers cannot
refrain (Table III's optimal objectives go negative), and the artificially
high attack prior (p_e = 1/2, footnote 2) exists purely to make the
brute-force comparison meaningful.
"""

from __future__ import annotations

import numpy as np

from ..core.alert_types import AlertType, AlertTypeSet
from ..core.attack_map import BENIGN, AttackTypeMap
from ..core.game import AuditGame
from ..core.payoffs import PayoffModel
from ..distributions import DiscretizedGaussian, JointCountModel

__all__ = [
    "syn_a",
    "SYN_A_MEANS",
    "SYN_A_STDS",
    "SYN_A_BENEFITS",
    "SYN_A_RULES",
    "SYN_A_BUDGETS",
]

#: Table IIa — count-distribution and payoff parameters per alert type.
SYN_A_MEANS = (6.0, 5.0, 4.0, 4.0)
SYN_A_STDS = (2.0, 1.6, 1.3, 1.0)
SYN_A_BENEFITS = (3.4, 3.7, 4.0, 4.3)
SYN_A_ATTACK_COST = 0.4
SYN_A_AUDIT_COST = 1.0
SYN_A_PENALTY = 4.0
#: The text states p_e = 1/2 (footnote 2), but the objective values the
#: paper reports in Tables III-V match the *unscaled* sum of adversary
#: utilities (e.g. 12.2945 at B=2 is reachable only with p_e = 1, since
#: max_b sum_e u_e < 19 here).  We default to 1.0 to reproduce the
#: published scale; uniform p_e rescales the objective without changing
#: the optimal policy.
SYN_A_ATTACK_PRIOR = 1.0

#: Table IIb — alert type triggered by each (employee, record) access,
#: 0-indexed; BENIGN marks the "-" cells.
SYN_A_RULES = (
    (BENIGN, 2, 1, 1, 2, 3, 2, 0),
    (0, BENIGN, 0, 0, 0, 1, 0, 0),
    (0, 2, 3, BENIGN, 0, 2, 0, 3),
    (1, 0, 2, 0, 3, 3, 1, 1),
    (1, 2, 0, 3, 1, 0, 2, 1),
)

#: The budget sweep of Table III.
SYN_A_BUDGETS = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20)


def syn_a(
    budget: float = 10.0,
    attack_prior: float = SYN_A_ATTACK_PRIOR,
    coverage: float = 0.995,
) -> AuditGame:
    """Build the Syn A audit game of Section IV.

    Parameters
    ----------
    budget:
        Total audit budget ``B`` (Table III sweeps 2..20).
    attack_prior:
        ``p_e`` for every employee.  The paper's text says 1/2 but its
        reported objectives match 1.0 (see module constants); uniform
        ``p_e`` only rescales the objective.
    coverage:
        Truncation coverage of the count Gaussians (paper: 99.5%).
    """
    alert_types = AlertTypeSet(
        tuple(
            AlertType(
                name=f"type-{i + 1}",
                audit_cost=SYN_A_AUDIT_COST,
                description=(
                    f"synthetic alert category {i + 1} "
                    f"(mean {SYN_A_MEANS[i]:g}, std {SYN_A_STDS[i]:g})"
                ),
            )
            for i in range(4)
        )
    )
    counts = JointCountModel(
        [
            DiscretizedGaussian(mean, std, coverage=coverage)
            for mean, std in zip(SYN_A_MEANS, SYN_A_STDS, strict=True)
        ]
    )
    rules = np.asarray(SYN_A_RULES, dtype=np.int64)
    attack_map = AttackTypeMap.from_type_matrix(rules, n_types=4)

    benefit = np.zeros(rules.shape)
    triggered = rules != BENIGN
    benefit[triggered] = np.asarray(SYN_A_BENEFITS)[rules[triggered]]
    payoffs = PayoffModel.create(
        n_adversaries=rules.shape[0],
        n_victims=rules.shape[1],
        benefit=benefit,
        penalty=SYN_A_PENALTY,
        attack_cost=SYN_A_ATTACK_COST,
        attack_prior=attack_prior,
        attackers_can_refrain=False,
    )
    return AuditGame(
        alert_types=alert_types,
        counts=counts,
        attack_map=attack_map,
        payoffs=payoffs,
        budget=float(budget),
        adversary_names=tuple(f"e{i + 1}" for i in range(rules.shape[0])),
        victim_names=tuple(f"r{j + 1}" for j in range(rules.shape[1])),
    )
