"""Predicate rules and composite alert typing.

Rule-based TDMTs flag an access when a *relationship predicate* between
the actor and the target holds — "employee and patient share the same
last name", "…work in the same department", and so on (Section V-A).
One access can satisfy several base predicates at once; the paper handles
this by redefining the alert-type catalog over *combinations* of base
flags (Table VIII: "Last Name; Same address; Neighbor" is its own type).
:class:`CompositeScheme` implements that redefinition: it maps each exact
flag combination to a composite alert type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

__all__ = ["RelationshipRule", "CompositeScheme"]

Attributes = Mapping[str, Any]
Predicate = Callable[[Attributes, Attributes], bool]


@dataclass(frozen=True)
class RelationshipRule:
    """A named base predicate over (actor attributes, target attributes)."""

    name: str
    predicate: Predicate
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("rule name must not be empty")

    def matches(self, actor: Attributes, target: Attributes) -> bool:
        """Evaluate the predicate (exceptions propagate to the caller)."""
        return bool(self.predicate(actor, target))


@dataclass(frozen=True)
class CompositeScheme:
    """Map exact base-flag combinations to composite alert types.

    ``combos`` associates a frozenset of base-rule names with the name of
    the composite alert type it defines.  Combinations not present in the
    map are unnamed: by default they raise (to surface calibration bugs),
    or they can be ignored (treated as benign) with ``strict=False`` —
    matching deployments that only audit predefined categories.
    """

    combos: Mapping[frozenset[str], str]
    strict: bool = True

    def __post_init__(self) -> None:
        if not self.combos:
            raise ValueError("scheme needs at least one combination")
        names = list(self.combos.values())
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate composite type names in {names}")
        object.__setattr__(self, "combos", dict(self.combos))

    @classmethod
    def identity(cls, rule_names: Sequence[str]) -> "CompositeScheme":
        """One composite type per single base rule (no true composites)."""
        return cls(
            {frozenset((name,)): name for name in rule_names},
            strict=False,
        )

    @property
    def type_names(self) -> tuple[str, ...]:
        """Composite type names in deterministic (sorted-combo) order."""
        ordered = sorted(
            self.combos.items(), key=lambda kv: (len(kv[0]), sorted(kv[0]))
        )
        return tuple(name for _, name in ordered)

    def type_for_flags(self, flags: frozenset[str]) -> str | None:
        """Composite type for a set of raised base flags (None = benign)."""
        if not flags:
            return None
        name = self.combos.get(flags)
        if name is None and self.strict:
            raise KeyError(
                f"no composite alert type defined for flag combination "
                f"{sorted(flags)}"
            )
        return name
