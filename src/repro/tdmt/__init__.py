"""TDMT substrate: events, rule engine, composite typing, aggregation."""

from .aggregation import (
    filter_repeated_accesses,
    fit_count_models,
    period_type_counts,
    summarize_counts,
)
from .engine import TDMTEngine
from .events import AccessEvent, AlertRecord
from .rules import CompositeScheme, RelationshipRule

__all__ = [
    "AccessEvent",
    "AlertRecord",
    "CompositeScheme",
    "RelationshipRule",
    "TDMTEngine",
    "filter_repeated_accesses",
    "fit_count_models",
    "period_type_counts",
    "summarize_counts",
]
