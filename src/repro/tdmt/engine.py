"""The TDMT engine: label access events with composite alert types.

Given a population directory (attributes per person/entity), a set of
base relationship rules and a composite scheme, the engine evaluates each
event's base flags and assigns at most one composite alert type — the
"each event maps to at most one alert type" assumption of Section II-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from .events import AccessEvent, AlertRecord
from .rules import Attributes, CompositeScheme, RelationshipRule

__all__ = ["TDMTEngine"]


@dataclass(frozen=True)
class TDMTEngine:
    """Rule-based threat detection over access events."""

    rules: tuple[RelationshipRule, ...]
    scheme: CompositeScheme
    actors: Mapping[str, Attributes]
    targets: Mapping[str, Attributes]

    def __post_init__(self) -> None:
        rules = tuple(self.rules)
        if not rules:
            raise ValueError("engine needs at least one base rule")
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names {names}")
        object.__setattr__(self, "rules", rules)

    def flags_for(self, actor: str, target: str) -> frozenset[str]:
        """Names of all base rules the (actor, target) pair satisfies."""
        actor_attrs = self._lookup(self.actors, actor, "actor")
        target_attrs = self._lookup(self.targets, target, "target")
        return frozenset(
            rule.name
            for rule in self.rules
            if rule.matches(actor_attrs, target_attrs)
        )

    def label_pair(self, actor: str, target: str) -> str | None:
        """Composite alert type triggered by the pair (None = benign)."""
        return self.scheme.type_for_flags(self.flags_for(actor, target))

    def label_events(
        self, events: Iterable[AccessEvent]
    ) -> list[AlertRecord]:
        """Alert records for every event that triggers a type.

        Pair labels are memoized: audit logs contain many repeated
        (actor, target) pairs across periods.
        """
        cache: dict[tuple[str, str], str | None] = {}
        alerts: list[AlertRecord] = []
        for event in events:
            key = (event.actor, event.target)
            if key not in cache:
                cache[key] = self.label_pair(*key)
            alert_type = cache[key]
            if alert_type is not None:
                alerts.append(AlertRecord.for_event(event, alert_type))
        return alerts

    def type_matrix(
        self,
        actor_names: Sequence[str],
        target_names: Sequence[str],
        type_order: Sequence[str],
    ) -> list[list[int]]:
        """Event→type-index matrix for a grid of potential attacks.

        Rows follow ``actor_names``, columns ``target_names``; entries are
        indices into ``type_order`` or -1 (benign) — the shape consumed by
        :meth:`repro.core.attack_map.AttackTypeMap.from_type_matrix`.
        """
        index = {name: i for i, name in enumerate(type_order)}
        matrix: list[list[int]] = []
        for actor in actor_names:
            row: list[int] = []
            for target in target_names:
                label = self.label_pair(actor, target)
                if label is None:
                    row.append(-1)
                elif label in index:
                    row.append(index[label])
                else:
                    raise KeyError(
                        f"pair ({actor}, {target}) triggers {label!r} "
                        "which is missing from type_order"
                    )
            matrix.append(row)
        return matrix

    @staticmethod
    def _lookup(
        directory: Mapping[str, Attributes], name: str, kind: str
    ) -> Attributes:
        try:
            return directory[name]
        except KeyError:
            raise KeyError(f"unknown {kind} {name!r}") from None
