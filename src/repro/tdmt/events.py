"""Event and alert records for the TDMT substrate.

The threat detection and misuse tracking (TDMT) module of the paper
observes raw access events — "employee e touched record v during period
d" — and emits typed alerts.  These lightweight records are the wire
format between the log simulators (:mod:`repro.datasets.emr`,
:mod:`repro.datasets.credit`), the rule engine and the aggregation layer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AccessEvent", "AlertRecord"]


@dataclass(frozen=True)
class AccessEvent:
    """One raw access: ``actor`` touched ``target`` in period ``period``.

    ``period`` is an integer audit-period index (a workday in the EMR
    setting, an application batch in the credit setting).
    """

    period: int
    actor: str
    target: str

    def __post_init__(self) -> None:
        if self.period < 0:
            raise ValueError(f"period must be >= 0, got {self.period}")
        if not self.actor or not self.target:
            raise ValueError("actor and target must be non-empty")

    @property
    def key(self) -> tuple[int, str, str]:
        """Identity used for repeated-access filtering."""
        return (self.period, self.actor, self.target)


@dataclass(frozen=True)
class AlertRecord:
    """A typed alert raised for an access event."""

    period: int
    actor: str
    target: str
    alert_type: str

    @classmethod
    def for_event(cls, event: AccessEvent, alert_type: str) -> "AlertRecord":
        """Attach a type label to an event."""
        return cls(
            period=event.period,
            actor=event.actor,
            target=event.target,
            alert_type=alert_type,
        )
