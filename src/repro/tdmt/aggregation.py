"""Alert-log aggregation: repeat filtering, daily counts, model fitting.

Implements the data-preparation pipeline of Section V-A:

* *repeated accesses* — the same actor touching the same target within
  the same period — are filtered out (79.5% of the raw VUMC log), keeping
  the distinct daily actor-target relationships;
* per-period alert counts by type are tabulated;
* per-type count distributions ``F_t`` are fit, either as smoothed
  discretized Gaussians (matching the paper's mean/std reporting) or as
  raw empirical distributions.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np

from ..distributions import (
    AlertCountModel,
    DiscretizedGaussian,
    EmpiricalCounts,
)
from .events import AccessEvent, AlertRecord

__all__ = [
    "filter_repeated_accesses",
    "period_type_counts",
    "fit_count_models",
    "summarize_counts",
]


def filter_repeated_accesses(
    events: Iterable[AccessEvent],
) -> tuple[list[AccessEvent], int]:
    """Drop duplicate (period, actor, target) events.

    Returns the distinct events (first occurrence, input order preserved)
    and the number of repeats removed.
    """
    seen: set[tuple[int, str, str]] = set()
    distinct: list[AccessEvent] = []
    repeats = 0
    for event in events:
        if event.key in seen:
            repeats += 1
        else:
            seen.add(event.key)
            distinct.append(event)
    return distinct, repeats


def period_type_counts(
    alerts: Iterable[AlertRecord],
    type_names: Sequence[str],
    n_periods: int,
) -> dict[str, np.ndarray]:
    """Per-period alert counts, one length-``n_periods`` array per type.

    Alerts for the same (period, actor, target) pair are counted once —
    run :func:`filter_repeated_accesses` upstream, or rely on this
    dedupe for already-labeled records.
    """
    if n_periods <= 0:
        raise ValueError(f"n_periods must be positive, got {n_periods}")
    known = set(type_names)
    tallies: Counter[tuple[str, int]] = Counter()
    seen: set[tuple[int, str, str, str]] = set()
    for alert in alerts:
        if alert.alert_type not in known:
            raise ValueError(
                f"alert type {alert.alert_type!r} not in the catalog "
                f"{sorted(known)}"
            )
        if not 0 <= alert.period < n_periods:
            raise ValueError(
                f"alert period {alert.period} outside [0, {n_periods})"
            )
        key = (alert.period, alert.actor, alert.target, alert.alert_type)
        if key in seen:
            continue
        seen.add(key)
        tallies[(alert.alert_type, alert.period)] += 1
    out: dict[str, np.ndarray] = {}
    for name in type_names:
        counts = np.zeros(n_periods, dtype=np.int64)
        for period in range(n_periods):
            counts[period] = tallies.get((name, period), 0)
        out[name] = counts
    return out


def fit_count_models(
    counts_by_type: dict[str, np.ndarray],
    type_names: Sequence[str],
    method: str = "gaussian",
    coverage: float = 0.995,
) -> list[AlertCountModel]:
    """Fit one ``F_t`` per alert type from per-period count samples.

    ``method="gaussian"`` fits a :class:`DiscretizedGaussian` to the
    sample mean/std (the paper's Table VIII/IX presentation);
    ``method="empirical"`` keeps the raw empirical distribution.
    """
    if method not in ("gaussian", "empirical"):
        raise ValueError(f"unknown fit method {method!r}")
    models: list[AlertCountModel] = []
    for name in type_names:
        samples = np.asarray(counts_by_type[name], dtype=np.float64)
        if samples.size == 0:
            raise ValueError(f"no samples for alert type {name!r}")
        if method == "gaussian":
            mean = float(samples.mean())
            std = float(samples.std(ddof=1)) if samples.size > 1 else 1.0
            std = max(std, 0.5)  # degenerate logs still need a support
            models.append(
                DiscretizedGaussian(mean, std, coverage=coverage)
            )
        else:
            models.append(
                EmpiricalCounts.from_samples(samples.astype(np.int64))
            )
    return models


def summarize_counts(
    counts_by_type: dict[str, np.ndarray], type_names: Sequence[str]
) -> str:
    """Table VIII-style text summary (type, mean, std)."""
    lines = [f"{'alert type':<42} {'mean':>10} {'std':>10}"]
    for name in type_names:
        samples = np.asarray(counts_by_type[name], dtype=np.float64)
        std = samples.std(ddof=1) if samples.size > 1 else 0.0
        lines.append(f"{name:<42} {samples.mean():>10.2f} {std:>10.2f}")
    return "\n".join(lines)
