"""Solution-quality metrics used in the paper's evaluation.

Table VI summarizes heuristic quality as the budget-averaged relative
precision against the brute-force optimum:

``gamma = 1 - (1/|B|) * sum_i |S_hat(B_i) - S(B_i)| / |S(B_i)|``

(the paper writes the mean relative *error* formula but reports the
complementary precision — "solutions near 99% of the optimal").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "mean_relative_precision",
    "relative_errors",
    "exploration_ratio",
]


def relative_errors(
    approximate: Sequence[float], optimal: Sequence[float]
) -> np.ndarray:
    """Per-budget relative errors ``|S_hat - S| / |S|``."""
    approx = np.asarray(approximate, dtype=np.float64)
    opt = np.asarray(optimal, dtype=np.float64)
    if approx.shape != opt.shape:
        raise ValueError(
            f"shape mismatch: {approx.shape} vs {opt.shape}"
        )
    if np.any(np.abs(opt) < 1e-12):
        raise ValueError(
            "relative error undefined at zero optimal values"
        )
    return np.abs(approx - opt) / np.abs(opt)


def mean_relative_precision(
    approximate: Sequence[float], optimal: Sequence[float]
) -> float:
    """Table VI's gamma: 1 - mean relative error over the budget sweep."""
    return float(1.0 - relative_errors(approximate, optimal).mean())


def exploration_ratio(
    vectors_checked: Sequence[int], grid_size: int
) -> np.ndarray:
    """Paper's T' vector: explored threshold vectors / full grid size."""
    checked = np.asarray(vectors_checked, dtype=np.float64)
    if grid_size <= 0:
        raise ValueError(f"grid size must be positive, got {grid_size}")
    return checked / float(grid_size)
