"""Command-line experiment runner.

Three modes share one entry point (``python -m repro.run_experiments``):

**Experiment mode** regenerates the paper's tables and figures as text
artifacts (``--seed`` makes every run reproducible)::

    python -m repro.run_experiments --out results/          # fast grids
    python -m repro.run_experiments --out results/ --full   # paper grids
    python -m repro.run_experiments --only table3 fig2 --seed 7

**Solver mode** dispatches one registry solver against a dataset via the
:mod:`repro.engine` facade — any solver name from
``--list-solvers``, configured with ``k=v`` pairs coerced onto the
solver's typed config::

    python -m repro.run_experiments --solver ishm --dataset syn_a \
        --budget 10 --config step_size=0.2 inner=cggs
    python -m repro.run_experiments --list-solvers

**Simulation mode** (``--sim``) runs the multi-period audit-operations
loop of :mod:`repro.sim`: per-period alert streams, online distribution
re-estimation, warm-started re-solving and a pluggable adversary.
``--config`` configures the per-period solver; ``--sim-config`` sets
:class:`~repro.sim.SimConfig` fields and (dotted) plugin options::

    python -m repro.run_experiments --sim --dataset syn_a --budget 10 \
        --periods 12 --config step_size=0.5 \
        --sim-config estimator=rolling-empirical estimator.window=14 \
            adversary=quantal adversary.rationality=2.0
    python -m repro.run_experiments --list-sim-plugins

**Serve mode** (``--serve``) starts the long-running
:mod:`repro.serve` audit-policy service: it solves and publishes the
initial policy, then answers ``/score`` and ``/alerts`` over HTTP while
a background worker re-solves on distribution drift.  Uses
fastapi/uvicorn when installed, the stdlib asyncio server otherwise::

    python -m repro.run_experiments --serve --dataset syn_a --budget 10 \
        --port 8331 --serve-config drift_threshold=0.2 \
            estimator.window=32 solver.step_size=0.25

Each artifact is written to ``<out>/<name>.txt`` and echoed to stdout.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path
from typing import Callable

from .. import obs
from ..datasets import SYN_A_BUDGETS, rea_a, rea_b, syn_a
from ..engine import (
    AuditEngine,
    all_names,
    get_solver,
    solver_table,
)
from ..engine.registry import make_config
from ..sim import (
    ADVERSARIES,
    ESTIMATORS,
    EVENT_SOURCES,
    AuditSimulator,
    SimConfig,
)
from .experiments import (
    FULL_STEP_SIZES,
    run_ishm_grid,
    run_loss_figure,
    run_table3,
    run_table6,
)

__all__ = ["main", "EXPERIMENTS", "DATASETS"]

FAST_BUDGETS = (2, 6, 10)
FAST_STEPS = (0.1, 0.3, 0.5)

#: Dataset builders reachable from ``--dataset`` (each accepts budget=).
DATASETS: dict[str, Callable[..., object]] = {
    "syn_a": syn_a,
    "rea_a": rea_a,
    "rea_b": rea_b,
}


def _table3(full: bool, seed: int) -> str:
    budgets = SYN_A_BUDGETS if full else FAST_BUDGETS
    return run_table3(budgets=budgets, seed=seed).to_text()


def _table4(full: bool, seed: int) -> str:
    budgets = SYN_A_BUDGETS if full else FAST_BUDGETS
    steps = FULL_STEP_SIZES if full else FAST_STEPS
    return run_ishm_grid(
        budgets=budgets, step_sizes=steps, method="enumeration",
        seed=seed,
    ).to_text()


def _table5(full: bool, seed: int) -> str:
    budgets = SYN_A_BUDGETS if full else FAST_BUDGETS
    steps = FULL_STEP_SIZES if full else FAST_STEPS
    return run_ishm_grid(
        budgets=budgets, step_sizes=steps, method="cggs", seed=seed
    ).to_text()


def _table6(full: bool, seed: int) -> str:
    budgets = SYN_A_BUDGETS if full else FAST_BUDGETS
    steps = FULL_STEP_SIZES if full else FAST_STEPS
    optimal = run_table3(budgets=budgets, seed=seed)
    ishm = run_ishm_grid(budgets=budgets, step_sizes=steps,
                         method="enumeration", seed=seed)
    cggs = run_ishm_grid(budgets=budgets, step_sizes=steps,
                         method="cggs", seed=seed)
    return run_table6(optimal, ishm, cggs_grid=cggs).to_text()


def _table7(full: bool, seed: int) -> str:
    budgets = SYN_A_BUDGETS if full else FAST_BUDGETS
    grid = run_ishm_grid(
        budgets=budgets,
        step_sizes=(0.1, 0.2, 0.3, 0.4, 0.5),
        method="enumeration",
        seed=seed,
    )
    return grid.exploration_text()


def _fig1(full: bool, seed: int) -> str:
    budgets = tuple(range(10, 101, 10)) if full else (10, 40, 70, 100)
    return run_loss_figure(
        game_factory=lambda budget: rea_a(budget=budget),
        dataset="Rea A (EMR)",
        budgets=budgets,
        step_sizes=(0.1, 0.2, 0.3) if full else (0.3,),
        n_scenarios=1000 if full else 400,
        n_random_orderings=2000 if full else 300,
        n_threshold_draws=40 if full else 8,
        seed=seed,
    ).to_text()


def _fig2(full: bool, seed: int) -> str:
    budgets = tuple(range(10, 251, 20)) if full else (10, 90, 170, 250)
    return run_loss_figure(
        game_factory=lambda budget: rea_b(budget=budget),
        dataset="Rea B (credit)",
        budgets=budgets,
        step_sizes=(0.1, 0.2, 0.3) if full else (0.3,),
        n_scenarios=1000 if full else 400,
        n_random_orderings=2000 if full else 300,
        n_threshold_draws=40 if full else 8,
        seed=seed,
    ).to_text()


EXPERIMENTS: dict[str, Callable[[bool, int], str]] = {
    "table3": _table3,
    "table4": _table4,
    "table5": _table5,
    "table6": _table6,
    "table7": _table7,
    "fig1": _fig1,
    "fig2": _fig2,
}


def _parse_config_pairs(
    pairs: list[str], flag: str = "--config"
) -> dict[str, str]:
    """``["k=v", ...]`` -> dict, with a clear error on malformed items.

    Splits on the *first* ``=`` only, so values may themselves contain
    ``=`` (e.g. ``initial_thresholds=1,2,3`` stays intact whatever the
    value holds).  A bare key (``--config quantize``), an empty key
    (``--config =0.5``) and a repeated key each exit with a message
    naming the offending ``flag`` instead of a traceback.
    """
    config: dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"{flag} expects key=value pairs, got {pair!r} "
                f"(e.g. {flag} step_size=0.2 inner=cggs)"
            )
        if key in config:
            raise SystemExit(
                f"{flag} option {key!r} given more than once "
                f"({key}={config[key]!r} and {pair!r})"
            )
        config[key] = value
    return config


def _run_solver(args: argparse.Namespace) -> int:
    """Solver mode: registry dispatch through an :class:`AuditEngine`."""
    spec = get_solver(args.solver)  # KeyError -> argparse already checked
    game = DATASETS[args.dataset](budget=args.budget)
    config = _parse_config_pairs(args.config)
    started = time.perf_counter()
    with AuditEngine(game, seed=args.seed) as engine:
        try:
            result = engine.solve(spec.name, config)
        except (TypeError, ValueError) as exc:
            raise SystemExit(f"--config error: {exc}") from exc
    elapsed = time.perf_counter() - started
    text = "\n".join(
        [
            f"dataset={args.dataset} budget={args.budget:g} "
            f"solver={spec.name}",
            f"config: {result.config.describe()}",
            result.summary(game.alert_types.names),
        ]
    )
    args.out.mkdir(parents=True, exist_ok=True)
    path = args.out / f"solve_{spec.name}.txt"
    path.write_text(text + "\n")
    writer = obs.maybe_writer()
    if writer is not None:
        run_id = writer.new_run_id(f"solve-{spec.name}")
        writer.append(
            run_id=run_id,
            kind="solve",
            name=args.dataset,
            solver=spec.name,
            backend=str(getattr(result.config, "backend", "")),
            config_hash=obs.config_hash(
                {"describe": result.config.describe()}
            ),
            repetition=0,
            seed=args.seed,
            objective=float(result.objective),
            lp_calls=int(result.diagnostics.get("lp_calls", 0)),
            warm_solves=int(result.diagnostics.get("warm_solves", 0)),
            solve_seconds=elapsed,
        )
        writer.write_raw(
            run_id,
            "result.json",
            {
                "summary": text,
                "diagnostics": dict(result.diagnostics),
                "thresholds": [float(b) for b in result.thresholds],
            },
        )
        print(f"== run_table: {run_id} -> {writer.csv_path}")
    print(f"== solve:{spec.name} ({elapsed:.1f}s) -> {path}")
    print(text)
    return 0


def _run_sim(args: argparse.Namespace) -> int:
    """Simulation mode: the :mod:`repro.sim` multi-period loop."""
    game = DATASETS[args.dataset](budget=args.budget)
    pairs = _parse_config_pairs(args.sim_config, flag="--sim-config")
    try:
        config = SimConfig.from_pairs(pairs)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"--sim-config error: {exc}") from exc
    # Precedence: --periods/--solver default to None, so they are only
    # applied (and win) when passed explicitly.  --seed always carries a
    # value (default 0), so it cannot signal explicit use and instead
    # yields to a seed/solver_seed set via --sim-config.  Each flag
    # reports failures under its own name.
    if "seed" not in pairs:
        config = config.replace(seed=args.seed)
    if "solver_seed" not in pairs:
        config = config.replace(solver_seed=args.seed)
    if args.periods is not None:
        try:
            config = config.replace(n_periods=args.periods)
        except ValueError as exc:
            raise SystemExit(f"--periods error: {exc}") from exc
    if args.solver is not None:
        config = config.replace(solver=args.solver)

    def probe_solver_config(flag: str) -> None:
        # Materialize the per-period solver config so mistakes are
        # blamed on the flag whose pairs broke it.
        try:
            make_config(
                get_solver(config.solver), dict(config.solver_options)
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SystemExit(f"{flag} error: {exc}") from exc

    # First probe covers --sim-config's solver.* pairs (and the solver
    # name itself)...
    probe_solver_config("--sim-config")
    if args.config:
        # ...then --config pairs merge on top (per-key, the dedicated
        # flag wins) and get their own probe, so a failure here can
        # only come from --config.
        config = config.replace(
            solver_options={
                **dict(config.solver_options),
                **_parse_config_pairs(args.config),
            }
        )
        probe_solver_config("--config")
    try:
        # Constructing the simulator resolves and validates every
        # plugin, so configuration mistakes are caught here...
        simulator = AuditSimulator(game, config)
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"--sim-config error: {exc}") from exc
    # ...while genuine runtime failures inside the period loop keep
    # their honest tracebacks.
    started = time.perf_counter()
    with simulator:
        trajectory = simulator.run()
    elapsed = time.perf_counter() - started
    text = "\n".join(
        [
            f"dataset={args.dataset} budget={args.budget:g} sim",
            f"config: {config.describe()}",
            trajectory.to_text(game.alert_types.names),
        ]
    )
    args.out.mkdir(parents=True, exist_ok=True)
    path = args.out / f"sim_{args.dataset}.txt"
    path.write_text(text + "\n")
    writer = obs.maybe_writer()
    if writer is not None:
        run_id = writer.new_run_id(f"sim-{args.dataset}")
        writer.append(
            run_id=run_id,
            kind="sim",
            name=args.dataset,
            solver=config.solver,
            config_hash=obs.config_hash(
                {"describe": config.describe()}
            ),
            repetition=0,
            seed=config.seed,
            objective=trajectory.mean_objective,
            lp_calls=trajectory.total_lp_calls,
            solve_seconds=trajectory.total_solve_seconds,
            detection_rate=trajectory.detection_rate,
            deterrence_rate=trajectory.deterrence_rate,
            n_periods=trajectory.n_periods,
            n_refits=trajectory.n_refits,
            n_memoized=trajectory.n_memoized,
            mean_realized_loss=trajectory.mean_realized_loss,
            wall_seconds=elapsed,
        )
        writer.write_raw(
            run_id,
            "trajectory.json",
            {
                "summary": text,
                "objectives": list(trajectory.objectives()),
                "realized_losses": list(trajectory.realized_losses()),
            },
        )
        print(f"== run_table: {run_id} -> {writer.csv_path}")
    print(f"== sim:{args.dataset} ({elapsed:.1f}s) -> {path}")
    print(text)
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """Serve mode: the long-running :mod:`repro.serve` policy service."""
    import asyncio

    from ..serve import (
        AuditService,
        ServeConfig,
        StdlibApp,
        have_fastapi,
        make_fastapi_app,
    )

    game = DATASETS[args.dataset](budget=args.budget)
    pairs = _parse_config_pairs(args.serve_config, flag="--serve-config")
    try:
        config = ServeConfig.from_pairs(pairs)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"--serve-config error: {exc}") from exc
    if "solver_seed" not in pairs:
        config = config.replace(solver_seed=args.seed)
    if args.config:
        config = config.replace(
            solver_options={
                **dict(config.solver_options),
                **_parse_config_pairs(args.config),
            }
        )
    try:
        service = AuditService(game, config)
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"--serve-config error: {exc}") from exc

    def uvicorn_available() -> bool:
        if not have_fastapi():
            return False
        try:
            import uvicorn  # noqa: F401
        except ImportError:
            return False
        return True

    async def serve_forever() -> None:
        async with service:
            active = service.active()
            print(
                f"published v{active.version} "
                f"(objective={active.result.objective:.4f}, "
                f"fingerprint={active.fingerprint})"
            )
            if uvicorn_available():
                import uvicorn

                print(
                    f"serving on http://{args.host}:{args.port} "
                    "(fastapi/uvicorn backend)"
                )
                server = uvicorn.Server(
                    uvicorn.Config(
                        make_fastapi_app(service),
                        host=args.host,
                        port=args.port,
                        log_level="warning",
                    )
                )
                await server.serve()
            else:
                print(
                    f"serving on http://{args.host}:{args.port} "
                    "(stdlib backend; pip install -e '.[serve]' "
                    "for fastapi/uvicorn)"
                )
                await StdlibApp(service).run(args.host, args.port)

    print(
        f"dataset={args.dataset} budget={args.budget:g} "
        f"solver={config.solver} estimator={config.estimator} "
        f"drift_threshold={config.drift_threshold:g}"
    )
    try:
        asyncio.run(serve_forever())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _sim_plugin_tables() -> str:
    """Overview of every registered simulator plugin, by kind."""
    sections = []
    for title, registry in (
        ("event sources", EVENT_SOURCES),
        ("estimators", ESTIMATORS),
        ("adversaries", ADVERSARIES),
    ):
        sections.append(f"{title}:\n{registry.table()}")
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.run_experiments",
        description=(
            "Regenerate the paper's tables and figures, dispatch one "
            "registry solver (--solver), or run the multi-period "
            "audit-operations simulator (--sim)."
        ),
    )
    parser.add_argument(
        "--out", type=Path, default=Path("results"),
        help="output directory for the text artifacts",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="use the paper's full grids (slow)",
    )
    parser.add_argument(
        "--only", nargs="+", choices=sorted(EXPERIMENTS),
        help="run a subset of experiments",
    )
    parser.add_argument(
        "--solver",
        choices=all_names(),
        metavar="NAME",
        help=(
            "dispatch one registry solver instead of the experiment "
            "suite (see --list-solvers)"
        ),
    )
    parser.add_argument(
        "--config", nargs="*", default=[], metavar="K=V",
        help="solver config overrides, coerced onto the typed config",
    )
    parser.add_argument(
        "--dataset", choices=sorted(DATASETS), default="syn_a",
        help="dataset for --solver and --sim modes",
    )
    parser.add_argument(
        "--budget", type=float, default=10.0,
        help="audit budget for --solver and --sim modes",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help=(
            "seed threaded through every mode: experiment runners, the "
            "solver engine, and the simulator trajectory"
        ),
    )
    parser.add_argument(
        "--sim", action="store_true",
        help=(
            "run the multi-period audit-operations simulator instead "
            "of a one-shot solve (see --list-sim-plugins)"
        ),
    )
    parser.add_argument(
        "--periods", type=int, default=None,
        help="number of audit periods for --sim mode (default 12)",
    )
    parser.add_argument(
        "--sim-config", nargs="*", default=[], metavar="K=V",
        help=(
            "SimConfig fields (warm_start=false) and dotted plugin "
            "options (estimator.window=14) for --sim mode"
        ),
    )
    parser.add_argument(
        "--serve", action="store_true",
        help=(
            "run the long-running audit-policy service instead of a "
            "one-shot solve (fastapi/uvicorn when installed, stdlib "
            "asyncio otherwise)"
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for --serve mode",
    )
    parser.add_argument(
        "--port", type=int, default=8331,
        help="bind port for --serve mode",
    )
    parser.add_argument(
        "--serve-config", nargs="*", default=[], metavar="K=V",
        help=(
            "ServeConfig fields (drift_threshold=0.2) and dotted "
            "plugin options (estimator.window=32, solver.step_size=0.5) "
            "for --serve mode"
        ),
    )
    parser.add_argument(
        "--list-solvers", action="store_true",
        help="print the solver registry table and exit",
    )
    parser.add_argument(
        "--list-sim-plugins", action="store_true",
        help="print the simulator plugin registries and exit",
    )
    args = parser.parse_args(argv)

    if args.list_solvers:
        print(solver_table())
        return 0
    if args.list_sim_plugins:
        print(_sim_plugin_tables())
        return 0
    if args.serve:
        if args.sim or args.only or args.full:
            parser.error(
                "--serve runs the policy service; it cannot be "
                "combined with --sim or the experiment-mode flags "
                "--only/--full"
            )
        return _run_serve(args)
    if args.serve_config:
        parser.error(
            "--serve-config configures the policy service; add --serve"
        )
    if args.sim:
        if args.only or args.full:
            parser.error(
                "--sim runs the simulator; it cannot be combined with "
                "the experiment-mode flags --only/--full"
            )
        return _run_sim(args)
    if args.periods is not None or args.sim_config:
        parser.error(
            "--periods/--sim-config configure the simulator; add --sim"
        )
    if args.solver is not None:
        if args.only or args.full:
            parser.error(
                "--solver runs a single registry solver; it cannot be "
                "combined with the experiment-mode flags --only/--full"
            )
        return _run_solver(args)
    if args.config:
        parser.error(
            "--config configures a solver; add --solver or --sim"
        )

    names = args.only if args.only else list(EXPERIMENTS)
    args.out.mkdir(parents=True, exist_ok=True)
    writer = obs.maybe_writer()
    for name in names:
        started = time.perf_counter()
        text = EXPERIMENTS[name](args.full, args.seed)
        elapsed = time.perf_counter() - started
        path = args.out / f"{name}.txt"
        path.write_text(text + "\n")
        if writer is not None:
            run_id = writer.new_run_id(f"experiment-{name}")
            writer.append(
                run_id=run_id,
                kind="experiment",
                name=name,
                config_hash=obs.config_hash(
                    {"name": name, "full": args.full, "seed": args.seed}
                ),
                repetition=0,
                seed=args.seed,
                solve_seconds=elapsed,
                full=args.full,
            )
            writer.write_raw(run_id, "artifact.json", {"text": text})
            print(f"== run_table: {run_id} -> {writer.csv_path}")
        print(f"== {name} ({elapsed:.1f}s) -> {path}")
        print(text)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
