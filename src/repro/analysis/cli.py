"""Command-line experiment runner.

Two modes share one entry point (``python -m repro.run_experiments``):

**Experiment mode** regenerates the paper's tables and figures as text
artifacts::

    python -m repro.run_experiments --out results/          # fast grids
    python -m repro.run_experiments --out results/ --full   # paper grids
    python -m repro.run_experiments --only table3 fig2

**Solver mode** dispatches one registry solver against a dataset via the
:mod:`repro.engine` facade — any solver name from
``--list-solvers``, configured with ``k=v`` pairs coerced onto the
solver's typed config::

    python -m repro.run_experiments --solver ishm --dataset syn_a \
        --budget 10 --config step_size=0.2 inner=cggs
    python -m repro.run_experiments --list-solvers

Each artifact is written to ``<out>/<name>.txt`` and echoed to stdout.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path
from typing import Callable

from ..datasets import SYN_A_BUDGETS, rea_a, rea_b, syn_a
from ..engine import (
    AuditEngine,
    all_names,
    available,
    get_solver,
    solver_table,
)
from .experiments import (
    FULL_STEP_SIZES,
    run_ishm_grid,
    run_loss_figure,
    run_table3,
    run_table6,
)

__all__ = ["main", "EXPERIMENTS", "DATASETS"]

FAST_BUDGETS = (2, 6, 10)
FAST_STEPS = (0.1, 0.3, 0.5)

#: Dataset builders reachable from ``--dataset`` (each accepts budget=).
DATASETS: dict[str, Callable[..., object]] = {
    "syn_a": syn_a,
    "rea_a": rea_a,
    "rea_b": rea_b,
}


def _table3(full: bool) -> str:
    budgets = SYN_A_BUDGETS if full else FAST_BUDGETS
    return run_table3(budgets=budgets).to_text()


def _table4(full: bool) -> str:
    budgets = SYN_A_BUDGETS if full else FAST_BUDGETS
    steps = FULL_STEP_SIZES if full else FAST_STEPS
    return run_ishm_grid(
        budgets=budgets, step_sizes=steps, method="enumeration"
    ).to_text()


def _table5(full: bool) -> str:
    budgets = SYN_A_BUDGETS if full else FAST_BUDGETS
    steps = FULL_STEP_SIZES if full else FAST_STEPS
    return run_ishm_grid(
        budgets=budgets, step_sizes=steps, method="cggs"
    ).to_text()


def _table6(full: bool) -> str:
    budgets = SYN_A_BUDGETS if full else FAST_BUDGETS
    steps = FULL_STEP_SIZES if full else FAST_STEPS
    optimal = run_table3(budgets=budgets)
    ishm = run_ishm_grid(budgets=budgets, step_sizes=steps,
                         method="enumeration")
    cggs = run_ishm_grid(budgets=budgets, step_sizes=steps,
                         method="cggs")
    return run_table6(optimal, ishm, cggs_grid=cggs).to_text()


def _table7(full: bool) -> str:
    budgets = SYN_A_BUDGETS if full else FAST_BUDGETS
    grid = run_ishm_grid(
        budgets=budgets,
        step_sizes=(0.1, 0.2, 0.3, 0.4, 0.5),
        method="enumeration",
    )
    return grid.exploration_text()


def _fig1(full: bool) -> str:
    budgets = tuple(range(10, 101, 10)) if full else (10, 40, 70, 100)
    return run_loss_figure(
        game_factory=lambda budget: rea_a(budget=budget),
        dataset="Rea A (EMR)",
        budgets=budgets,
        step_sizes=(0.1, 0.2, 0.3) if full else (0.3,),
        n_scenarios=1000 if full else 400,
        n_random_orderings=2000 if full else 300,
        n_threshold_draws=40 if full else 8,
    ).to_text()


def _fig2(full: bool) -> str:
    budgets = tuple(range(10, 251, 20)) if full else (10, 90, 170, 250)
    return run_loss_figure(
        game_factory=lambda budget: rea_b(budget=budget),
        dataset="Rea B (credit)",
        budgets=budgets,
        step_sizes=(0.1, 0.2, 0.3) if full else (0.3,),
        n_scenarios=1000 if full else 400,
        n_random_orderings=2000 if full else 300,
        n_threshold_draws=40 if full else 8,
    ).to_text()


EXPERIMENTS: dict[str, Callable[[bool], str]] = {
    "table3": _table3,
    "table4": _table4,
    "table5": _table5,
    "table6": _table6,
    "table7": _table7,
    "fig1": _fig1,
    "fig2": _fig2,
}


def _parse_config_pairs(pairs: list[str]) -> dict[str, str]:
    """``["k=v", ...]`` -> dict, with a clear error on malformed items.

    Splits on the *first* ``=`` only, so values may themselves contain
    ``=`` (e.g. ``initial_thresholds=1,2,3`` stays intact whatever the
    value holds).  A bare key (``--config quantize``), an empty key
    (``--config =0.5``) and a repeated key each exit with a message
    instead of a traceback.
    """
    config: dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"--config expects key=value pairs, got {pair!r} "
                "(e.g. --config step_size=0.2 inner=cggs)"
            )
        if key in config:
            raise SystemExit(
                f"--config option {key!r} given more than once "
                f"({key}={config[key]!r} and {pair!r})"
            )
        config[key] = value
    return config


def _run_solver(args: argparse.Namespace) -> int:
    """Solver mode: registry dispatch through an :class:`AuditEngine`."""
    spec = get_solver(args.solver)  # KeyError -> argparse already checked
    game = DATASETS[args.dataset](budget=args.budget)
    engine = AuditEngine(game, seed=args.seed)
    config = _parse_config_pairs(args.config)
    started = time.time()
    try:
        result = engine.solve(spec.name, config)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"--config error: {exc}") from exc
    elapsed = time.time() - started
    text = "\n".join(
        [
            f"dataset={args.dataset} budget={args.budget:g} "
            f"solver={spec.name}",
            f"config: {result.config.describe()}",
            result.summary(game.alert_types.names),
        ]
    )
    args.out.mkdir(parents=True, exist_ok=True)
    path = args.out / f"solve_{spec.name}.txt"
    path.write_text(text + "\n")
    print(f"== solve:{spec.name} ({elapsed:.1f}s) -> {path}")
    print(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.run_experiments",
        description=(
            "Regenerate the paper's tables and figures, or dispatch one "
            "registry solver (--solver)."
        ),
    )
    parser.add_argument(
        "--out", type=Path, default=Path("results"),
        help="output directory for the text artifacts",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="use the paper's full grids (slow)",
    )
    parser.add_argument(
        "--only", nargs="+", choices=sorted(EXPERIMENTS),
        help="run a subset of experiments",
    )
    parser.add_argument(
        "--solver",
        choices=all_names(),
        metavar="NAME",
        help=(
            "dispatch one registry solver instead of the experiment "
            "suite (see --list-solvers)"
        ),
    )
    parser.add_argument(
        "--config", nargs="*", default=[], metavar="K=V",
        help="solver config overrides, coerced onto the typed config",
    )
    parser.add_argument(
        "--dataset", choices=sorted(DATASETS), default="syn_a",
        help="dataset for --solver mode",
    )
    parser.add_argument(
        "--budget", type=float, default=10.0,
        help="audit budget for --solver mode",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="engine seed (scenarios + solver randomness)",
    )
    parser.add_argument(
        "--list-solvers", action="store_true",
        help="print the solver registry table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_solvers:
        print(solver_table())
        return 0
    if args.solver is not None:
        if args.only or args.full:
            parser.error(
                "--solver runs a single registry solver; it cannot be "
                "combined with the experiment-mode flags --only/--full"
            )
        return _run_solver(args)

    names = args.only if args.only else list(EXPERIMENTS)
    args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        started = time.time()
        text = EXPERIMENTS[name](args.full)
        elapsed = time.time() - started
        path = args.out / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"== {name} ({elapsed:.1f}s) -> {path}")
        print(text)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
