"""Command-line experiment runner.

Regenerates the paper's tables and figures as text artifacts::

    python -m repro.run_experiments --out results/          # fast grids
    python -m repro.run_experiments --out results/ --full   # paper grids
    python -m repro.run_experiments --only table3 fig2

Each artifact is written to ``<out>/<name>.txt`` and echoed to stdout.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path
from typing import Callable

from ..datasets import SYN_A_BUDGETS, rea_a, rea_b
from .experiments import (
    FULL_STEP_SIZES,
    run_ishm_grid,
    run_loss_figure,
    run_table3,
    run_table6,
)

__all__ = ["main", "EXPERIMENTS"]

FAST_BUDGETS = (2, 6, 10)
FAST_STEPS = (0.1, 0.3, 0.5)


def _table3(full: bool) -> str:
    budgets = SYN_A_BUDGETS if full else FAST_BUDGETS
    return run_table3(budgets=budgets).to_text()


def _table4(full: bool) -> str:
    budgets = SYN_A_BUDGETS if full else FAST_BUDGETS
    steps = FULL_STEP_SIZES if full else FAST_STEPS
    return run_ishm_grid(
        budgets=budgets, step_sizes=steps, method="enumeration"
    ).to_text()


def _table5(full: bool) -> str:
    budgets = SYN_A_BUDGETS if full else FAST_BUDGETS
    steps = FULL_STEP_SIZES if full else FAST_STEPS
    return run_ishm_grid(
        budgets=budgets, step_sizes=steps, method="cggs"
    ).to_text()


def _table6(full: bool) -> str:
    budgets = SYN_A_BUDGETS if full else FAST_BUDGETS
    steps = FULL_STEP_SIZES if full else FAST_STEPS
    optimal = run_table3(budgets=budgets)
    ishm = run_ishm_grid(budgets=budgets, step_sizes=steps,
                         method="enumeration")
    cggs = run_ishm_grid(budgets=budgets, step_sizes=steps,
                         method="cggs")
    return run_table6(optimal, ishm, cggs_grid=cggs).to_text()


def _table7(full: bool) -> str:
    budgets = SYN_A_BUDGETS if full else FAST_BUDGETS
    grid = run_ishm_grid(
        budgets=budgets,
        step_sizes=(0.1, 0.2, 0.3, 0.4, 0.5),
        method="enumeration",
    )
    return grid.exploration_text()


def _fig1(full: bool) -> str:
    budgets = tuple(range(10, 101, 10)) if full else (10, 40, 70, 100)
    return run_loss_figure(
        game_factory=lambda budget: rea_a(budget=budget),
        dataset="Rea A (EMR)",
        budgets=budgets,
        step_sizes=(0.1, 0.2, 0.3) if full else (0.3,),
        n_scenarios=1000 if full else 400,
        n_random_orderings=2000 if full else 300,
        n_threshold_draws=40 if full else 8,
    ).to_text()


def _fig2(full: bool) -> str:
    budgets = tuple(range(10, 251, 20)) if full else (10, 90, 170, 250)
    return run_loss_figure(
        game_factory=lambda budget: rea_b(budget=budget),
        dataset="Rea B (credit)",
        budgets=budgets,
        step_sizes=(0.1, 0.2, 0.3) if full else (0.3,),
        n_scenarios=1000 if full else 400,
        n_random_orderings=2000 if full else 300,
        n_threshold_draws=40 if full else 8,
    ).to_text()


EXPERIMENTS: dict[str, Callable[[bool], str]] = {
    "table3": _table3,
    "table4": _table4,
    "table5": _table5,
    "table6": _table6,
    "table7": _table7,
    "fig1": _fig1,
    "fig2": _fig2,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.run_experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("results"),
        help="output directory for the text artifacts",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="use the paper's full grids (slow)",
    )
    parser.add_argument(
        "--only", nargs="+", choices=sorted(EXPERIMENTS),
        help="run a subset of experiments",
    )
    args = parser.parse_args(argv)

    names = args.only if args.only else list(EXPERIMENTS)
    args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        started = time.time()
        text = EXPERIMENTS[name](args.full)
        elapsed = time.time() - started
        path = args.out / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"== {name} ({elapsed:.1f}s) -> {path}")
        print(text)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
