"""Experiment runners regenerating every table and figure of the paper.

Each runner returns a structured result object with a ``to_text()``
rendering shaped like the corresponding table/figure series, so the
benchmark harness (and EXPERIMENTS.md) can print paper-vs-measured rows
directly.  Runners accept reduced budget/step grids so the default
benchmark run stays fast; the full paper grids are module constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.game import AuditGame
from ..datasets import SYN_A_BUDGETS, syn_a
from ..engine import AuditEngine
from .metrics import mean_relative_precision
from .reporting import format_thresholds, render_series, render_table

__all__ = [
    "FULL_STEP_SIZES",
    "OptimalRow",
    "Table3Result",
    "run_table3",
    "GridCell",
    "HeuristicGrid",
    "run_ishm_grid",
    "GammaResult",
    "run_table6",
    "FigureCurves",
    "run_loss_figure",
]

#: The paper's step-size sweep (Tables IV-VI).
FULL_STEP_SIZES = (
    0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50,
)


# ----------------------------------------------------------------------
# Table III: brute-force optimum per budget
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class OptimalRow:
    """One Table III row."""

    budget: float
    objective: float
    thresholds: np.ndarray
    support_orderings: tuple[tuple[int, ...], ...]
    support_probabilities: tuple[float, ...]


@dataclass(frozen=True)
class Table3Result:
    """Brute-force optimal policies across the budget sweep."""

    rows: tuple[OptimalRow, ...]

    def objectives(self) -> list[float]:
        return [row.objective for row in self.rows]

    def to_text(self) -> str:
        table_rows = []
        for i, row in enumerate(self.rows, start=1):
            orderings = " ".join(
                "[" + ",".join(str(t + 1) for t in o) + "]"
                for o in row.support_orderings
            )
            probs = "[" + ", ".join(
                f"{p:.4f}" for p in row.support_probabilities
            ) + "]"
            table_rows.append(
                (
                    i,
                    f"{row.budget:g}",
                    f"{row.objective:.4f}",
                    format_thresholds(row.thresholds),
                    orderings,
                    probs,
                )
            )
        return render_table(
            (
                "ID", "Budget", "Optimal Objective", "Optimal Threshold",
                "Effective Pure Strategy", "Optimal Mixed Strategy",
            ),
            table_rows,
        )


def run_table3(
    budgets: Sequence[float] = SYN_A_BUDGETS,
    backend: str = "scipy",
    seed: int = 0,
) -> Table3Result:
    """Brute-force the OAP on Syn A for each budget (Table III)."""
    rows = []
    for budget in budgets:
        with AuditEngine(
            syn_a(budget=budget), backend=backend, seed=seed
        ) as engine:
            result = engine.solve("bruteforce")
        policy = result.policy.pruned()
        rows.append(
            OptimalRow(
                budget=float(budget),
                objective=result.objective,
                thresholds=result.thresholds,
                support_orderings=tuple(
                    tuple(o) for o in policy.orderings
                ),
                support_probabilities=tuple(
                    float(p) for p in policy.probabilities
                ),
            )
        )
    return Table3Result(rows=tuple(rows))


# ----------------------------------------------------------------------
# Tables IV, V and VII: ISHM (+CGGS) approximation grids
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GridCell:
    """One (budget, step size) cell of Tables IV/V, with Table VII data."""

    budget: float
    step_size: float
    objective: float
    thresholds: np.ndarray
    lp_calls: int


@dataclass(frozen=True)
class HeuristicGrid:
    """ISHM results over a budget x step-size grid."""

    method: str
    budgets: tuple[float, ...]
    step_sizes: tuple[float, ...]
    cells: tuple[tuple[GridCell, ...], ...]  # [budget][step]

    def objectives(self, step_size: float) -> list[float]:
        j = self.step_sizes.index(step_size)
        return [row[j].objective for row in self.cells]

    def lp_call_grid(self) -> list[list[int]]:
        return [[cell.lp_calls for cell in row] for row in self.cells]

    def to_text(self) -> str:
        headers = ["B"] + [f"eps={s:g}" for s in self.step_sizes]
        rows = []
        for i, budget in enumerate(self.budgets):
            rows.append(
                [f"{budget:g}"]
                + [f"{cell.objective:.4f}" for cell in self.cells[i]]
            )
            rows.append(
                [""]
                + [
                    format_thresholds(cell.thresholds)
                    for cell in self.cells[i]
                ]
            )
        return render_table(headers, rows)

    def exploration_text(self) -> str:
        """Table VII: threshold vectors checked per (budget, step)."""
        headers = ["eps \\ B"] + [f"{b:g}" for b in self.budgets]
        rows = []
        for j, step in enumerate(self.step_sizes):
            rows.append(
                [f"{step:g}"]
                + [str(self.cells[i][j].lp_calls)
                   for i in range(len(self.budgets))]
            )
        return render_table(headers, rows)


def run_ishm_grid(
    budgets: Sequence[float] = SYN_A_BUDGETS,
    step_sizes: Sequence[float] = FULL_STEP_SIZES,
    method: str = "enumeration",
    backend: str = "scipy",
    seed: int = 0,
) -> HeuristicGrid:
    """Tables IV (method='enumeration') / V (method='cggs') on Syn A."""
    grid: list[tuple[GridCell, ...]] = []
    for budget in budgets:
        # One engine per budget: the step-size sweep shares its scenario
        # set (and, for the enumeration inner solver, every
        # fixed-threshold solution probed along the way).
        with AuditEngine(
            syn_a(budget=budget), backend=backend, seed=seed
        ) as engine:
            row: list[GridCell] = []
            for step in step_sizes:
                result = engine.solve(
                    "ishm", step_size=float(step), inner=method
                )
                row.append(
                    GridCell(
                        budget=float(budget),
                        step_size=float(step),
                        objective=result.objective,
                        thresholds=result.thresholds,
                        lp_calls=int(result.diagnostics["lp_calls"]),
                    )
                )
        grid.append(tuple(row))
    return HeuristicGrid(
        method=method,
        budgets=tuple(float(b) for b in budgets),
        step_sizes=tuple(float(s) for s in step_sizes),
        cells=tuple(grid),
    )


# ----------------------------------------------------------------------
# Table VI: gamma precision
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GammaResult:
    """Budget-averaged precision per step size (Table VI)."""

    step_sizes: tuple[float, ...]
    gamma_ishm: tuple[float, ...]
    gamma_cggs: tuple[float, ...] | None = None

    def to_text(self) -> str:
        headers = ["eps"] + [f"{s:g}" for s in self.step_sizes]
        rows = [
            ["gamma1 (ISHM)"]
            + [f"{g:.4f}" for g in self.gamma_ishm]
        ]
        if self.gamma_cggs is not None:
            rows.append(
                ["gamma2 (ISHM+CGGS)"]
                + [f"{g:.4f}" for g in self.gamma_cggs]
            )
        return render_table(headers, rows)


def run_table6(
    optimal: Table3Result,
    ishm_grid: HeuristicGrid,
    cggs_grid: HeuristicGrid | None = None,
) -> GammaResult:
    """Precision of the heuristic grids against the brute-force optimum."""
    reference = optimal.objectives()
    gammas1 = tuple(
        mean_relative_precision(ishm_grid.objectives(step), reference)
        for step in ishm_grid.step_sizes
    )
    gammas2 = None
    if cggs_grid is not None:
        gammas2 = tuple(
            mean_relative_precision(cggs_grid.objectives(step), reference)
            for step in cggs_grid.step_sizes
        )
    return GammaResult(
        step_sizes=ishm_grid.step_sizes,
        gamma_ishm=gammas1,
        gamma_cggs=gammas2,
    )


# ----------------------------------------------------------------------
# Figures 1 and 2: auditor loss, proposed model vs baselines
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FigureCurves:
    """Auditor-loss curves over a budget sweep (Figure 1 / Figure 2)."""

    dataset: str
    budgets: tuple[float, ...]
    proposed: dict[float, tuple[float, ...]]  # step size -> losses
    random_thresholds: tuple[float, ...] = ()
    random_orders: tuple[float, ...] = ()
    benefit_greedy: tuple[float, ...] = ()
    deterrence_budget: float | None = None

    def to_text(self) -> str:
        lines = [f"Auditor loss vs budget ({self.dataset})"]
        for step, series in sorted(self.proposed.items()):
            lines.append(
                render_series(
                    f"proposed eps={step:g}", self.budgets, series
                )
            )
        if self.random_thresholds:
            lines.append(render_series(
                "random thresholds", self.budgets, self.random_thresholds
            ))
        if self.random_orders:
            lines.append(render_series(
                "random orders", self.budgets, self.random_orders
            ))
        if self.benefit_greedy:
            lines.append(render_series(
                "benefit greedy", self.budgets, self.benefit_greedy
            ))
        if self.deterrence_budget is not None:
            lines.append(
                "full deterrence (loss == 0) reached at B = "
                f"{self.deterrence_budget:g}"
            )
        return "\n".join(lines)


def run_loss_figure(
    game_factory,
    dataset: str,
    budgets: Sequence[float],
    step_sizes: Sequence[float] = (0.1, 0.2, 0.3),
    n_scenarios: int = 1000,
    n_random_orderings: int = 2000,
    n_threshold_draws: int = 50,
    seed: int = 0,
    include_baselines: bool = True,
) -> FigureCurves:
    """Compute Figure 1/2-style curves for any game factory.

    ``game_factory(budget)`` must return the dataset's
    :class:`~repro.core.game.AuditGame` at that budget.  The thresholds
    used by the random-orders baseline follow the paper: the ISHM
    thresholds at the smallest requested step size.
    """
    budgets = tuple(float(b) for b in budgets)
    proposed: dict[float, list[float]] = {
        float(s): [] for s in step_sizes
    }
    rand_thresholds: list[float] = []
    rand_orders: list[float] = []
    greedy: list[float] = []
    anchor_step = float(min(step_sizes))
    deterrence: float | None = None

    for budget in budgets:
        game: AuditGame = game_factory(budget)
        # One engine per budget point: the proposed-policy sweep and all
        # three baselines share one scenario set and one solution cache.
        with AuditEngine(
            game, seed=seed, n_samples=n_scenarios
        ) as engine:
            anchor_thresholds = None
            for step in step_sizes:
                result = engine.solve(
                    "ishm", step_size=float(step), seed=seed + 1
                )
                proposed[float(step)].append(result.objective)
                if float(step) == anchor_step:
                    anchor_thresholds = result.thresholds
                    if deterrence is None and result.objective <= 1e-6:
                        deterrence = budget
            if include_baselines:
                rand_orders.append(
                    engine.solve(
                        "random-order",
                        thresholds=tuple(anchor_thresholds.tolist()),
                        n_orderings=n_random_orderings,
                        seed=seed + 2,
                    ).objective
                )
                rand_thresholds.append(
                    engine.solve(
                        "random-threshold",
                        n_draws=n_threshold_draws,
                        seed=seed + 3,
                    ).objective
                )
                greedy.append(engine.solve("benefit-greedy").objective)

    return FigureCurves(
        dataset=dataset,
        budgets=budgets,
        proposed={s: tuple(v) for s, v in proposed.items()},
        random_thresholds=tuple(rand_thresholds),
        random_orders=tuple(rand_orders),
        benefit_greedy=tuple(greedy),
        deterrence_budget=deterrence,
    )
