"""Plain-text rendering of experiment results (paper-shaped tables)."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "format_thresholds", "render_series"]


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Fixed-width text table: headers, separator, one line per row."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths, strict=True))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def format_thresholds(thresholds) -> str:
    """Compact ``[a, b, c]`` rendering with integers where possible."""
    parts = []
    for value in thresholds:
        value = float(value)
        if abs(value - round(value)) < 1e-9:
            parts.append(str(int(round(value))))
        else:
            parts.append(f"{value:.2f}")
    return "[" + ", ".join(parts) + "]"


def render_series(
    name: str, xs: Sequence[float], ys: Sequence[float]
) -> str:
    """One figure series as aligned (x, y) pairs."""
    pairs = "  ".join(
        f"({x:g}, {y:.2f})" for x, y in zip(xs, ys, strict=True)
    )
    return f"{name}: {pairs}"
