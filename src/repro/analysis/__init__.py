"""Experiment harness: runners, metrics and text reporting."""

from .experiments import (
    FULL_STEP_SIZES,
    FigureCurves,
    GammaResult,
    GridCell,
    HeuristicGrid,
    OptimalRow,
    Table3Result,
    run_ishm_grid,
    run_loss_figure,
    run_table3,
    run_table6,
)
from .metrics import (
    exploration_ratio,
    mean_relative_precision,
    relative_errors,
)
from .reporting import format_thresholds, render_series, render_table

__all__ = [
    "FULL_STEP_SIZES",
    "FigureCurves",
    "GammaResult",
    "GridCell",
    "HeuristicGrid",
    "OptimalRow",
    "Table3Result",
    "exploration_ratio",
    "format_thresholds",
    "mean_relative_precision",
    "relative_errors",
    "render_series",
    "render_table",
    "run_ishm_grid",
    "run_loss_figure",
    "run_table3",
    "run_table6",
]
