"""Pluggable compiled kernel backends for the PalTable hot paths.

The subset-table build (:class:`~repro.core.pal_table.PalTable`) spends
its time in two primitives: the predecessor-set **consumption DP** over
the ``2^T`` subset masks and the per-type **capacity/ratio sweep** that
turns consumed budget into audited-fraction products.  Both are pure
elementwise pipelines; this module exposes them behind a tiny backend
registry so they can run either as plain vectorized numpy (always
available) or as ``@numba.njit(cache=True)`` machine code when the
optional :mod:`numba` dependency is installed (the ``kernels`` extra).

Bit-compatibility contract
--------------------------
Backends must be **bitwise interchangeable** — the engine layer's
``workers>1 == workers=1`` determinism guarantee and the warm-start
equivalence tests all compare float results exactly.  Two rules deliver
that here:

* every kernel computes *elementwise products only* (subtract, divide,
  floor, clamp, multiply — each value depends on one scenario), where
  IEEE-754 semantics make compiled and interpreted code agree bit for
  bit; and
* the closing pairwise expectation reduction ``(ratio * weights)
  .sum(axis=-1)`` is **never** reimplemented per backend: every backend
  fills a product buffer and the caller reduces it through the one
  shared numpy implementation (:func:`expectation_reduce`).  Numpy's
  pairwise summation tree depends on its SIMD build; re-deriving it in
  another compiler would make "bitwise" a per-machine accident.

``numba`` absence is a silent no-op: ``resolve_kernel_backend("auto")``
falls back to numpy with a single debug-level log note, while an
explicit ``kernel_backend="numba"`` raises a configuration error that
names the missing extra.  No telemetry is emitted from this module —
``repro.core.kernels`` is on the RPL701 hot-loop list; callers
instrument at their build boundaries.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except Exception:  # pragma: no cover - the tested default in CI's dev rows
    numba = None

__all__ = [
    "HAS_NUMBA",
    "KERNEL_BACKENDS",
    "KernelImplementation",
    "available_kernel_backends",
    "expectation_reduce",
    "get_implementation",
    "register_kernel_implementation",
    "resolve_kernel_backend",
]

_log = logging.getLogger(__name__)

HAS_NUMBA = numba is not None

#: Accepted values of the ``kernel_backend`` knob.
KERNEL_BACKENDS = ("auto", "numba", "numpy")

# One debug note per process when "auto" falls back (numba missing).
_auto_fallback_noted = False


# ----------------------------------------------------------------------
# The backend contract
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class KernelImplementation:
    """One backend's kernel set; all functions fill preallocated buffers.

    ``dp_consumed(contrib, prev, bit, consumed)``
        Fill ``consumed[mask, s]`` — budget consumed by the types in
        ``mask`` — via the lowest-set-bit recursion ``consumed[mask] =
        consumed[prev[mask]] + contrib[:, bit[mask]]``.
    ``type_products(consumed, rows, cost, quota, effective, zsafe,
    weights, budget, out)``
        For one alert type: ``out[i, s] = (min(min(max(floor((budget -
        consumed[rows[i], s]) / cost), 0), quota), effective[s]) /
        zsafe[s]) * weights[s]`` — the expectation *summands*; callers
        reduce with :func:`expectation_reduce`.
    ``extension_products(consumed, costs, quota, effective, zsafe,
    weights, budget, out)``
        The lazy-table row sweep: same per-element pipeline, but one row
        per free type against a single consumed vector.
    ``consumed_step(prev, contrib_col, out)``
        One DP step ``out = prev + contrib_col`` (the lazy table's
        per-mask recursion).
    """

    name: str
    dp_consumed: Callable
    type_products: Callable
    extension_products: Callable
    consumed_step: Callable


_FACTORIES: dict[str, Callable[[], KernelImplementation]] = {}
_INSTANCES: dict[str, KernelImplementation] = {}


def register_kernel_implementation(
    name: str, factory: Callable[[], KernelImplementation]
) -> None:
    """Register a backend factory (built lazily on first resolve)."""
    if name in _FACTORIES:
        raise ValueError(f"kernel backend {name!r} already registered")
    _FACTORIES[name] = factory


def available_kernel_backends() -> tuple[str, ...]:
    """Concrete backend names importable in this process."""
    return tuple(sorted(_FACTORIES))


def resolve_kernel_backend(backend: str = "auto") -> str:
    """Map a ``kernel_backend`` knob value onto a concrete backend.

    ``"auto"`` prefers numba and silently falls back to numpy (one
    debug-level note per process) when it is not importable; an explicit
    ``"numba"`` without the dependency raises a clear configuration
    error, so a run that *believes* it is compiled can never quietly
    interpret instead.
    """
    global _auto_fallback_noted
    if backend == "auto":
        if HAS_NUMBA:
            return "numba"
        if not _auto_fallback_noted:
            _auto_fallback_noted = True
            _log.debug(
                "kernel_backend=auto: numba not importable, using the "
                "pure-numpy kernels (install the 'kernels' extra for "
                "the JIT path)"
            )
        return "numpy"
    if backend == "numba" and not HAS_NUMBA:
        raise ValueError(
            "kernel_backend='numba' requires the optional numba "
            "dependency (pip install 'repro-audit-games[kernels]'); "
            "use kernel_backend='auto' to fall back automatically"
        )
    if backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel_backend {backend!r}; "
            f"choose from {KERNEL_BACKENDS}"
        )
    return backend


def get_implementation(backend: str = "auto") -> KernelImplementation:
    """The :class:`KernelImplementation` for a knob value (memoized)."""
    name = resolve_kernel_backend(backend)
    impl = _INSTANCES.get(name)
    if impl is None:
        impl = _INSTANCES.setdefault(name, _FACTORIES[name]())
    return impl


def expectation_reduce(products: np.ndarray) -> np.ndarray:
    """The one shared expectation reduction: pairwise sum over scenarios.

    Every backend funnels its product buffers through this exact numpy
    reduction (never a reimplementation), which is what makes backends
    bitwise interchangeable — see the module docstring.
    """
    return products.sum(axis=-1)


# ----------------------------------------------------------------------
# numpy backend — vectorized, allocation-free (buffers supplied)
# ----------------------------------------------------------------------


def _dp_consumed_numpy(
    contrib: np.ndarray,
    prev: np.ndarray,
    bit: np.ndarray,
    consumed: np.ndarray,
) -> None:
    consumed[0] = 0.0
    for mask in range(1, consumed.shape[0]):
        np.add(
            consumed[prev[mask]], contrib[:, bit[mask]],
            out=consumed[mask],
        )


def _type_products_numpy(
    consumed: np.ndarray,
    rows: np.ndarray,
    cost: float,
    quota: float,
    effective: np.ndarray,
    zsafe: np.ndarray,
    weights: np.ndarray,
    budget: float,
    out: np.ndarray,
) -> None:
    np.take(consumed, rows, axis=0, out=out)
    np.subtract(budget, out, out=out)
    np.divide(out, cost, out=out)
    np.floor(out, out=out)
    np.maximum(out, 0.0, out=out)
    np.minimum(out, quota, out=out)
    np.minimum(out, effective[None, :], out=out)
    np.divide(out, zsafe[None, :], out=out)
    np.multiply(out, weights[None, :], out=out)


def _extension_products_numpy(
    consumed: np.ndarray,
    costs: np.ndarray,
    quota: np.ndarray,
    effective: np.ndarray,
    zsafe: np.ndarray,
    weights: np.ndarray,
    budget: float,
    out: np.ndarray,
) -> None:
    np.subtract(budget, consumed[None, :], out=out)
    np.divide(out, costs[:, None], out=out)
    np.floor(out, out=out)
    np.maximum(out, 0.0, out=out)
    np.minimum(out, quota[:, None], out=out)
    np.minimum(out, effective, out=out)
    np.divide(out, zsafe, out=out)
    np.multiply(out, weights[None, :], out=out)


def _consumed_step_numpy(
    prev: np.ndarray, contrib_col: np.ndarray, out: np.ndarray
) -> None:
    np.add(prev, contrib_col, out=out)


def _numpy_implementation() -> KernelImplementation:
    return KernelImplementation(
        name="numpy",
        dp_consumed=_dp_consumed_numpy,
        type_products=_type_products_numpy,
        extension_products=_extension_products_numpy,
        consumed_step=_consumed_step_numpy,
    )


register_kernel_implementation("numpy", _numpy_implementation)


# ----------------------------------------------------------------------
# numba backend — identical per-element pipelines as explicit loops
# ----------------------------------------------------------------------
#
# These sources are written in the nopython subset and double as the
# interpreted reference in environments without numba: the parity tests
# run them *uncompiled* against the numpy backend, so the algorithms are
# verified everywhere even though only the kernels CI row compiles them.


def _dp_consumed_source(contrib, prev, bit, consumed):
    n_masks, n_s = consumed.shape
    for s in range(n_s):
        consumed[0, s] = 0.0
    for mask in range(1, n_masks):
        p = prev[mask]
        j = bit[mask]
        for s in range(n_s):
            consumed[mask, s] = consumed[p, s] + contrib[s, j]


def _type_products_source(
    consumed, rows, cost, quota, effective, zsafe, weights, budget, out
):
    n_rows = rows.shape[0]
    n_s = out.shape[1]
    for i in range(n_rows):
        r = rows[i]
        for s in range(n_s):
            capacity = np.floor((budget - consumed[r, s]) / cost)
            if capacity < 0.0:
                capacity = 0.0
            audited = capacity
            if quota < audited:
                audited = quota
            if effective[s] < audited:
                audited = effective[s]
            out[i, s] = (audited / zsafe[s]) * weights[s]


def _extension_products_source(
    consumed, costs, quota, effective, zsafe, weights, budget, out
):
    n_free = out.shape[0]
    n_s = out.shape[1]
    for i in range(n_free):
        for s in range(n_s):
            capacity = np.floor((budget - consumed[s]) / costs[i])
            if capacity < 0.0:
                capacity = 0.0
            audited = capacity
            if quota[i] < audited:
                audited = quota[i]
            if effective[i, s] < audited:
                audited = effective[i, s]
            out[i, s] = (audited / zsafe[i, s]) * weights[s]


def _consumed_step_source(prev, contrib_col, out):
    for s in range(prev.shape[0]):
        out[s] = prev[s] + contrib_col[s]


#: The uncompiled nopython sources, importable for interpreted parity
#: tests in numba-less environments.
KERNEL_SOURCES = KernelImplementation(
    name="source",
    dp_consumed=_dp_consumed_source,
    type_products=_type_products_source,
    extension_products=_extension_products_source,
    consumed_step=_consumed_step_source,
)


def _numba_implementation() -> KernelImplementation:  # pragma: no cover
    jit = numba.njit(cache=True)
    return KernelImplementation(
        name="numba",
        dp_consumed=jit(_dp_consumed_source),
        type_products=jit(_type_products_source),
        extension_products=jit(_extension_products_source),
        consumed_step=jit(_consumed_step_source),
    )


if HAS_NUMBA:  # pragma: no cover - kernels CI row only
    register_kernel_implementation("numba", _numba_implementation)
