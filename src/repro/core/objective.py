"""Attacker utilities, best responses and the auditor objective.

Ties the detection kernel (eq. 1-2) to the payoff model (eq. 3) and the
zero-sum objective (eq. 4/5).  The attacker observes the *mixed* policy, so
each adversary best-responds to the expectation ``E_o[Ua]`` over orderings
— this is exactly the constraint structure of the LP in eq. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..distributions.joint import ScenarioSet
from .attack_map import AttackTypeMap
from .detection import pal_for_orderings
from .payoffs import PayoffModel
from .policy import AuditPolicy

__all__ = [
    "utility_matrix_for_pal",
    "expected_utility_matrix",
    "BestResponse",
    "best_responses",
    "PolicyEvaluation",
    "evaluate_policy",
]

#: Victim index used to denote "refrain from attacking".
REFRAIN = -1


def utility_matrix_for_pal(
    pal: np.ndarray,
    attack_map: AttackTypeMap,
    payoffs: PayoffModel,
) -> np.ndarray:
    """``Ua[e, v]`` for one ordering's detection vector ``Pal``."""
    pat = attack_map.detection_probability(pal)
    return payoffs.utility_matrix(pat)


def expected_utility_matrix(
    pal_rows: np.ndarray,
    probabilities: np.ndarray,
    attack_map: AttackTypeMap,
    payoffs: PayoffModel,
) -> np.ndarray:
    """``E_o[Ua][e, v]`` for a mixed strategy over orderings.

    ``pal_rows`` has one ``Pal`` vector per supported ordering.  Utilities
    are affine in ``Pal``, so mixing the ``Pal`` vectors first is exact and
    cheaper than mixing per-ordering utility matrices.
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    if pal_rows.shape[0] != probs.shape[0]:
        raise ValueError(
            f"{pal_rows.shape[0]} pal rows vs {probs.shape[0]} "
            "probabilities"
        )
    mixed_pal = probs @ pal_rows
    return utility_matrix_for_pal(mixed_pal, attack_map, payoffs)


@dataclass(frozen=True)
class BestResponse:
    """One adversary's best response to a fixed audit policy.

    ``victim`` is the index of the attacked victim, or ``REFRAIN`` (-1)
    when refraining (utility 0) beats every attack and the adversary is
    deterred.
    """

    adversary: int
    victim: int
    utility: float

    @property
    def deterred(self) -> bool:
        """True when the adversary prefers not to attack at all."""
        return self.victim == REFRAIN


def best_responses(
    expected_utilities: np.ndarray,
    payoffs: PayoffModel,
    tie_tol: float = 1e-12,
) -> list[BestResponse]:
    """Per-adversary argmax over victims (and the refrain option)."""
    eu = np.asarray(expected_utilities, dtype=np.float64)
    out: list[BestResponse] = []
    for e in range(eu.shape[0]):
        v = int(np.argmax(eu[e]))
        value = float(eu[e, v])
        if payoffs.attackers_can_refrain and value < -tie_tol:
            out.append(BestResponse(adversary=e, victim=REFRAIN,
                                    utility=0.0))
        else:
            out.append(BestResponse(adversary=e, victim=v, utility=value))
    return out


@dataclass(frozen=True)
class PolicyEvaluation:
    """Full audit of a mixed policy against best-responding attackers.

    Attributes
    ----------
    auditor_loss:
        The objective of eq. 5: ``sum_e p_e * u_e``.
    adversary_utilities:
        ``u_e`` per adversary (clamped at 0 when refraining is allowed).
    responses:
        The attacking victim (or refrain) chosen by each adversary.
    expected_utilities:
        The full ``E_o[Ua][e, v]`` matrix.
    mixed_pal:
        Probability-mixed detection vector ``sum_o p_o Pal(o, b, .)``.
    pal_rows:
        Per-supported-ordering ``Pal`` vectors.
    """

    auditor_loss: float
    adversary_utilities: np.ndarray
    responses: tuple[BestResponse, ...]
    expected_utilities: np.ndarray
    mixed_pal: np.ndarray
    pal_rows: np.ndarray

    @property
    def n_deterred(self) -> int:
        """Number of adversaries for whom refraining is optimal."""
        return sum(1 for r in self.responses if r.deterred)


def evaluate_policy(
    policy: AuditPolicy,
    scenarios: ScenarioSet,
    attack_map: AttackTypeMap,
    payoffs: PayoffModel,
    costs: np.ndarray,
    budget: float,
    zero_count_rule: str = "unit",
) -> PolicyEvaluation:
    """Score a mixed audit policy against best-responding attackers."""
    # pal_for_orderings validates once for the whole support and prices
    # wide policies (e.g. the random-order baseline's thousands of
    # orderings) through the subset-memoized table.
    pal_rows = pal_for_orderings(
        policy.orderings,
        policy.thresholds,
        scenarios,
        costs,
        budget,
        zero_count_rule,
    )
    mixed_pal = policy.probabilities @ pal_rows
    eu = utility_matrix_for_pal(mixed_pal, attack_map, payoffs)
    responses = best_responses(eu, payoffs)
    utilities = np.array([r.utility for r in responses])
    return PolicyEvaluation(
        auditor_loss=payoffs.auditor_loss(utilities),
        adversary_utilities=utilities,
        responses=tuple(responses),
        expected_utilities=eu,
        mixed_pal=mixed_pal,
        pal_rows=pal_rows,
    )
