"""Core game model: the paper's primary contribution.

Exports the building blocks of the alert-prioritization Stackelberg game
(Section II of Yan et al., ICDE 2018): alert types, entities, the
attack→type map, payoffs, audit policies, the detection kernel and the
:class:`AuditGame` facade.
"""

from .alert_types import AlertType, AlertTypeSet
from .attack_map import BENIGN, AttackTypeMap
from .detection import (
    OrderingPricer,
    audited_counts,
    pal_for_ordering,
    pal_for_orderings,
    remaining_budget,
)
from .entities import Adversary, Event, Victim
from .pal_table import LazyPalTable, PalTable, subset_table_pays
from .game import AuditGame, make_game
from .objective import (
    REFRAIN,
    BestResponse,
    PolicyEvaluation,
    best_responses,
    evaluate_policy,
    expected_utility_matrix,
    utility_matrix_for_pal,
)
from .payoffs import PayoffModel
from .policy import (
    AuditPolicy,
    Ordering,
    PurePolicy,
    all_orderings,
    random_ordering,
    validate_thresholds,
)

__all__ = [
    "AlertType",
    "AlertTypeSet",
    "AttackTypeMap",
    "AuditGame",
    "AuditPolicy",
    "Adversary",
    "BENIGN",
    "BestResponse",
    "Event",
    "Ordering",
    "OrderingPricer",
    "LazyPalTable",
    "PalTable",
    "PayoffModel",
    "PolicyEvaluation",
    "PurePolicy",
    "REFRAIN",
    "Victim",
    "all_orderings",
    "audited_counts",
    "best_responses",
    "evaluate_policy",
    "expected_utility_matrix",
    "make_game",
    "pal_for_ordering",
    "pal_for_orderings",
    "random_ordering",
    "remaining_budget",
    "subset_table_pays",
    "utility_matrix_for_pal",
    "validate_thresholds",
]
