"""Attack-to-alert-type mapping ``P^t_ev``.

Section II-A: each event ``<e, v>`` maps to *at most one* alert type; the
mapping may be stochastic — the event raises an alert of its type ``t`` with
probability ``P^t_ev`` and no alert otherwise.  We store the full tensor
``P[e, v, t]`` and enforce the paper's single-type constraint (at most one
positive entry per ``(e, v)``) in :meth:`AttackTypeMap.validate_single_type`,
while the solvers themselves work with arbitrary sub-stochastic tensors
(useful for composite-alert extensions).
"""

from __future__ import annotations

import numpy as np

__all__ = ["AttackTypeMap", "BENIGN"]

#: Marker for "no alert" entries in deterministic type matrices.
BENIGN = -1


class AttackTypeMap:
    """Probability tensor mapping attacks to triggered alert types."""

    def __init__(self, probabilities: np.ndarray) -> None:
        probs = np.asarray(probabilities, dtype=np.float64)
        if probs.ndim != 3:
            raise ValueError(
                f"probabilities must have shape (E, V, T), got {probs.shape}"
            )
        # size guard: an adversary- or victim-free tensor is legal (the
        # empty game) but has no elements to reduce over.
        if probs.size and probs.min() < 0.0:
            raise ValueError("trigger probabilities must be non-negative")
        row_sums = probs.sum(axis=2)
        if row_sums.size and row_sums.max() > 1.0 + 1e-9:
            raise ValueError(
                "trigger probabilities of an event must sum to at most 1 "
                f"(max sum {row_sums.max():.6f})"
            )
        self._probs = probs

    @classmethod
    def from_type_matrix(
        cls,
        type_matrix: np.ndarray,
        n_types: int,
        trigger_probability: float = 1.0,
    ) -> "AttackTypeMap":
        """Build from a deterministic event->type matrix.

        ``type_matrix[e, v]`` holds the alert-type index triggered by the
        attack ``<e, v>``, or :data:`BENIGN` for events that raise no alert
        (the "-" entries in Table IIb of the paper).  Each alert fires with
        ``trigger_probability`` (1.0 = the rule-based deterministic case).
        """
        matrix = np.asarray(type_matrix, dtype=np.int64)
        if matrix.ndim != 2:
            raise ValueError(
                f"type matrix must be 2-D (E, V), got shape {matrix.shape}"
            )
        if not 0.0 < trigger_probability <= 1.0:
            raise ValueError(
                f"trigger probability must be in (0, 1], "
                f"got {trigger_probability}"
            )
        valid = (matrix == BENIGN) | (
            (matrix >= 0) & (matrix < n_types)
        )
        if not valid.all():
            bad = matrix[~valid]
            raise ValueError(
                f"type matrix contains invalid type indices {set(bad.flat)} "
                f"for n_types={n_types}"
            )
        n_adv, n_vic = matrix.shape
        probs = np.zeros((n_adv, n_vic, n_types))
        e_idx, v_idx = np.nonzero(matrix != BENIGN)
        probs[e_idx, v_idx, matrix[e_idx, v_idx]] = trigger_probability
        return cls(probs)

    @property
    def probabilities(self) -> np.ndarray:
        """The full ``(E, V, T)`` tensor (read-only view)."""
        view = self._probs.view()
        view.flags.writeable = False
        return view

    @property
    def n_adversaries(self) -> int:
        return int(self._probs.shape[0])

    @property
    def n_victims(self) -> int:
        return int(self._probs.shape[1])

    @property
    def n_types(self) -> int:
        return int(self._probs.shape[2])

    def validate_single_type(self, atol: float = 1e-12) -> None:
        """Enforce the paper's "at most one alert type per event" rule."""
        positive = (self._probs > atol).sum(axis=2)
        if positive.size and positive.max() > 1:
            e, v = np.unravel_index(
                int(np.argmax(positive)), positive.shape
            )
            raise ValueError(
                f"event ({e}, {v}) can trigger {positive[e, v]} distinct "
                "alert types; the paper's model allows at most one"
            )

    def detection_probability(self, pal: np.ndarray) -> np.ndarray:
        """``Pat[e, v] = sum_t P[e, v, t] * Pal[t]`` (eq. 2)."""
        pal = np.asarray(pal, dtype=np.float64)
        if pal.shape != (self.n_types,):
            raise ValueError(
                f"pal must have shape ({self.n_types},), got {pal.shape}"
            )
        return self._probs @ pal

    def deterministic_types(self) -> np.ndarray:
        """Inverse of :meth:`from_type_matrix` for one-hot tensors.

        Returns the ``(E, V)`` matrix of type indices with :data:`BENIGN`
        where no type fires; raises if the map is not deterministic.
        """
        totals = self._probs.sum(axis=2)
        is_zero = np.isclose(totals, 0.0)
        is_one = np.isclose(totals, 1.0)
        if not np.all(is_zero | is_one):
            raise ValueError("attack map is not deterministic")
        matrix = np.full(totals.shape, BENIGN, dtype=np.int64)
        e_idx, v_idx = np.nonzero(is_one)
        matrix[e_idx, v_idx] = np.argmax(
            self._probs[e_idx, v_idx, :], axis=1
        )
        return matrix

    def __repr__(self) -> str:
        return (
            f"AttackTypeMap(E={self.n_adversaries}, V={self.n_victims}, "
            f"T={self.n_types})"
        )
