"""Subset-memoized detection kernel: price all ``T!`` orderings from a
``T * 2^(T-1)`` table.

The budget consumed before type ``t`` under an ordering ``o``,
``sum_{s before t} min(b_s, Z_s C_s)``, is a *commutative* sum: the
remaining capacity ``B_t`` — and therefore ``Pal(o, b, t)`` — depends
only on the **set** of predecessor types, never on their relative order.
Enumeration-backed pricing (every LP column of eq. 5, every ISHM probe,
every brute-force grid point, every sim re-solve) walks all ``|T|!``
orderings, i.e. ``|T|! * |T|`` scenario sweeps per threshold vector;
this module computes instead

* one predecessor-set consumption DP over the ``2^T`` subset masks
  (one vector add per mask), and
* one vectorized scenario sweep per ``(type t, predecessor set S)``
  pair with ``t not in S`` — ``T * 2^(T-1)`` sweeps total

and then assembles any ordering's ``Pal`` row by pure table lookup.
For ``T = 7`` that is 448 sweeps instead of 35 280 (~79x less kernel
work); the win grows superexponentially with ``T``.

Equivalence: every elementwise operation and the closing pairwise
expectation reduction are identical to the reference walk
(:class:`~repro.core.detection.OrderingPricer`); the only divergence is
the *accumulation order* of the predecessor sum (lowest-set-bit DP order
versus ordering order), so table rows match the legacy kernel to within
float accumulation roundoff — ``max |delta Pal| <= 1e-9`` in practice and
*bit-for-bit* on integer-valued games, where the partial sums are exact.

The elementwise pipelines themselves live in
:mod:`repro.core.kernels` behind the ``kernel_backend`` knob
(``auto|numba|numpy``): with numba installed they run as
``@njit(cache=True)`` machine code, otherwise as the vectorized numpy
fallback — bitwise-equal either way, because every backend reduces its
product buffers through the one shared pairwise reduction
(:func:`~repro.core.kernels.expectation_reduce`).

The legacy walk remains the reference implementation and the better
choice when few orderings share one ``(b, Z)`` — CGGS column generation
(a handful of columns, many *partial* prefixes, large ``T``) and policy
evaluation (small supports).  :func:`subset_table_pays` encodes the
break-even point used by the dispatching call sites.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .. import obs
from ..distributions.joint import ScenarioSet
from . import kernels
from .detection import OrderingPricer
from .policy import Ordering

__all__ = [
    "LazyPalTable",
    "PalTable",
    "subset_table_pays",
    "SUBSET_TABLE_TYPE_LIMIT",
]

#: Beyond this many alert types the ``2^T`` subset space itself explodes
#: (memory and build time); callers must fall back to the legacy walk.
#: Enumeration solving is capped at 7 types (7! orderings) anyway.
SUBSET_TABLE_TYPE_LIMIT = 12

#: Cap on the consumption DP working set (mask rows x scenario columns,
#: in float64 elements); larger scenario sets are swept in chunks.
_DP_ELEMENT_BUDGET = 1 << 22


def subset_table_pays(
    n_orderings: int,
    n_types: int,
    type_limit: int = SUBSET_TABLE_TYPE_LIMIT,
) -> bool:
    """True when the subset table beats per-ordering walks.

    The table costs ``T * 2^(T-1)`` scenario sweeps (plus the ``2^T``
    consumption DP); pricing ``n`` orderings legacy-style costs
    ``n * T`` sweeps.  The table pays once ``n > 2^(T-1)`` — e.g. the
    full ordering set ``T!`` for every ``T >= 3``.  Above ``type_limit``
    the mask space itself is the bottleneck and the table never pays.
    """
    if n_types < 3 or n_types > type_limit:
        return False
    return n_orderings > (1 << (n_types - 1))


def _mask_recursion(n_masks: int) -> tuple[np.ndarray, np.ndarray]:
    """``(prev, bit)`` of the lowest-set-bit DP, one entry per mask."""
    prev = np.zeros(n_masks, dtype=np.int64)
    bit = np.zeros(n_masks, dtype=np.int64)
    for mask in range(1, n_masks):
        low = mask & -mask
        prev[mask] = mask ^ low
        bit[mask] = low.bit_length() - 1
    return prev, bit


class PalTable:
    """``Pal(o, b, t)`` for *every* ordering, from one subset table.

    Built once per ``(thresholds, scenarios)`` pair; :meth:`pal`
    assembles a complete or partial ordering's detection row with one
    table lookup per placed type.  Entries ``table[t, mask]`` hold
    ``E_Z[n_t / Z_t]`` given that exactly the types in ``mask`` were
    audited before ``t``; entries with ``t`` in ``mask`` are unused
    (an ordering never revisits a type).

    ``kernel_backend`` selects the compiled-kernel implementation
    (``"auto"`` | ``"numba"`` | ``"numpy"``, see
    :mod:`repro.core.kernels`); all choices build bitwise-identical
    tables.
    """

    __slots__ = ("_pricer", "_table", "_kernel_backend")

    def __init__(
        self,
        thresholds: np.ndarray,
        scenarios: ScenarioSet,
        costs: np.ndarray,
        budget: float,
        zero_count_rule: str = "unit",
        *,
        scenario_chunk: int | None = None,
        kernel_backend: str = "auto",
    ) -> None:
        self._pricer = OrderingPricer(
            thresholds, scenarios, costs, budget, zero_count_rule
        )
        self._kernel_backend = kernels.resolve_kernel_backend(
            kernel_backend
        )
        self._build(scenario_chunk)

    @classmethod
    def from_pricer(
        cls,
        pricer: OrderingPricer,
        scenario_chunk: int | None = None,
        kernel_backend: str = "auto",
    ) -> "PalTable":
        """Build from an already-validated :class:`OrderingPricer`."""
        table = object.__new__(cls)
        table._pricer = pricer
        table._kernel_backend = kernels.resolve_kernel_backend(
            kernel_backend
        )
        table._build(scenario_chunk)
        return table

    @property
    def n_types(self) -> int:
        return self._pricer.n_types

    @property
    def kernel_backend(self) -> str:
        """The resolved kernel backend this table was built with."""
        return self._kernel_backend

    @property
    def table(self) -> np.ndarray:
        """The raw ``(T, 2^T)`` lookup table (read-only view)."""
        view = self._table.view()
        view.flags.writeable = False
        return view

    def _build(self, scenario_chunk: int | None) -> None:
        p = self._pricer
        n_types = p.n_types
        if n_types > SUBSET_TABLE_TYPE_LIMIT:
            raise ValueError(
                f"{n_types} alert types give 2^{n_types} predecessor "
                f"sets (> 2^{SUBSET_TABLE_TYPE_LIMIT}); use the legacy "
                "per-ordering kernel instead"
            )
        # Telemetry at the build boundary only — the DP loops below stay
        # obs-free (RPL701).  The span covers the (first-call) JIT
        # compile too, so kernel-build time is observable per backend.
        obs.counter(
            "repro_kernel_builds_total", backend=self._kernel_backend
        )
        obs.counter("repro_pal_table_builds_total")
        with obs.span(
            "pal_table.build", types=n_types,
            backend=self._kernel_backend,
        ):
            self._build_table(scenario_chunk, n_types)

    def _build_table(self, scenario_chunk: int | None, n_types: int) -> None:
        p = self._pricer
        impl = kernels.get_implementation(self._kernel_backend)
        n_masks = 1 << n_types
        n_scenarios = p.counts.shape[0]
        if scenario_chunk is None:
            scenario_chunk = max(1, _DP_ELEMENT_BUDGET // n_masks)
        elif scenario_chunk < 1:
            raise ValueError(
                f"scenario_chunk must be >= 1, got {scenario_chunk}"
            )
        masks = np.arange(n_masks)
        rows_without = [
            masks[(masks >> t) & 1 == 0] for t in range(n_types)
        ]
        prev, bit = _mask_recursion(n_masks)
        n_rows = rows_without[0].shape[0]
        table = np.zeros((n_types, n_masks))
        # Working buffers are allocated once per distinct chunk width (at
        # most two: the full width and the final remainder) instead of
        # fresh temporaries per mask and per type — the allocation churn
        # dominated the numpy path at T=8.  Exact-width buffers keep the
        # closing reduction on contiguous rows, i.e. on the same numpy
        # pairwise path as before.
        consumed_bufs: dict[int, np.ndarray] = {}
        work_bufs: dict[int, np.ndarray] = {}
        # Chunking the scenario axis bounds the DP working set; the
        # per-chunk partial expectations accumulate deterministically in
        # scenario order, and the common case (everything in one chunk)
        # adds each full row sum to an exact 0.0 — bitwise a no-op.
        for start in range(0, n_scenarios, scenario_chunk):
            chunk = slice(start, min(start + scenario_chunk, n_scenarios))
            contrib = np.ascontiguousarray(p.contrib[chunk])
            weights = p.weights[chunk]
            width = contrib.shape[0]
            consumed = consumed_bufs.get(width)
            if consumed is None:
                consumed = consumed_bufs.setdefault(
                    width, np.empty((n_masks, width))
                )
            work = work_bufs.get(width)
            if work is None:
                work = work_bufs.setdefault(
                    width, np.empty((n_rows, width))
                )
            impl.dp_consumed(contrib, prev, bit, consumed)
            for t in range(n_types):
                rows = rows_without[t]
                impl.type_products(
                    consumed,
                    rows,
                    float(p.costs[t]),
                    float(p.quota[t]),
                    np.ascontiguousarray(p.effective[chunk, t]),
                    np.ascontiguousarray(p.zsafe[chunk, t]),
                    weights,
                    float(p.budget),
                    work,
                )
                table[t, rows] += kernels.expectation_reduce(work)
        self._table = table

    def pal(self, ordering: Ordering | Sequence[int]) -> np.ndarray:
        """``Pal(o, b, .)`` assembled by table lookup.

        Works for partial orderings too (unplaced types get 0), matching
        the legacy walk's semantics.
        """
        n_types = self._pricer.n_types
        pal = np.zeros(n_types)
        mask = 0
        for t in ordering:
            if not 0 <= t < n_types:
                raise ValueError(f"type index {t} out of range")
            pal[t] = self._table[t, mask]
            mask |= 1 << t
        return pal

    def pal_rows(
        self, orderings: Iterable[Ordering | Sequence[int]]
    ) -> np.ndarray:
        """Stack of ``Pal`` rows, one per ordering (in input order)."""
        rows = [self.pal(o) for o in orderings]
        if not rows:
            raise ValueError("need at least one ordering")
        return np.stack(rows, axis=0)

    def extension_values(
        self, mask: int, types: Sequence[int]
    ) -> np.ndarray:
        """``Pal`` entries for appending each ``t`` after predecessor
        set ``mask`` — the column-generation oracle's lookup."""
        return self._table[np.asarray(types, dtype=np.int64), mask]


class LazyPalTable:
    """Per-entry lazy variant of :class:`PalTable` for column generation.

    The full table pays ``T * 2^(T-1)`` scenario sweeps up front — the
    right trade when all ``T!`` orderings are priced (enumeration), but
    overkill for CGGS, whose greedy oracle only ever visits the ``~T^2``
    ``(type, predecessor set)`` entries along its construction paths.
    This variant computes the *same* entries on demand:

    * ``consumed(S)`` follows the full table's lowest-set-bit recursion
      (memoized per mask), so partial sums accumulate in the identical
      order;
    * one **vectorized sweep per prefix mask** prices every free type at
      once (:meth:`extension_values`) — exactly the greedy append step's
      need — with per-``(t, mask)`` scalar fills for stray lookups.

    Every elementwise operation and the closing pairwise expectation
    reduction mirror :meth:`PalTable._build` entry for entry, so lazy
    and eager tables agree bitwise; only the set of *computed* entries
    differs.  The per-mask fills ride the same compiled primitives as
    the eager build (:mod:`repro.core.kernels`, selected by the same
    ``kernel_backend`` knob).  Because no ``2^T`` array is ever
    allocated, this variant has no :data:`SUBSET_TABLE_TYPE_LIMIT` —
    memory scales with the masks actually visited.
    """

    __slots__ = ("_pricer", "_consumed", "_rows", "_entries",
                 "_kernel_backend")

    def __init__(
        self,
        thresholds: np.ndarray,
        scenarios: ScenarioSet,
        costs: np.ndarray,
        budget: float,
        zero_count_rule: str = "unit",
        *,
        kernel_backend: str = "auto",
    ) -> None:
        self._pricer = OrderingPricer(
            thresholds, scenarios, costs, budget, zero_count_rule
        )
        self._kernel_backend = kernels.resolve_kernel_backend(
            kernel_backend
        )
        self._init_caches()

    @classmethod
    def from_pricer(
        cls,
        pricer: OrderingPricer,
        kernel_backend: str = "auto",
    ) -> "LazyPalTable":
        """Build from an already-validated :class:`OrderingPricer`."""
        table = object.__new__(cls)
        table._pricer = pricer
        table._kernel_backend = kernels.resolve_kernel_backend(
            kernel_backend
        )
        table._init_caches()
        return table

    def _init_caches(self) -> None:
        self._consumed: dict[int, np.ndarray] = {}
        self._rows: dict[int, np.ndarray] = {}
        self._entries: dict[tuple[int, int], float] = {}

    @property
    def n_types(self) -> int:
        return self._pricer.n_types

    @property
    def kernel_backend(self) -> str:
        """The resolved kernel backend used for sweep fills."""
        return self._kernel_backend

    def _consumed_for(self, mask: int) -> np.ndarray:
        """Per-scenario budget consumed by the types in ``mask``.

        Same lowest-set-bit recursion (and therefore accumulation
        order) as the eager consumption DP.
        """
        mask = int(mask)
        cached = self._consumed.get(mask)
        if cached is None:
            if mask == 0:
                cached = np.zeros(self._pricer.counts.shape[0])
            else:
                impl = kernels.get_implementation(self._kernel_backend)
                low = mask & -mask
                prev = self._consumed_for(mask ^ low)
                cached = np.empty_like(prev)
                impl.consumed_step(
                    prev,
                    np.ascontiguousarray(
                        self._pricer.contrib[:, low.bit_length() - 1]
                    ),
                    cached,
                )
            self._consumed[mask] = cached
        return cached

    def extension_values(
        self, mask: int, types: Sequence[int]
    ) -> np.ndarray:
        """``Pal`` entries for appending each ``t`` after ``mask``.

        All free types of a first-seen mask are priced in one vectorized
        sweep and cached, so a greedy append step costs exactly one
        sweep however many candidates it scores.
        """
        row = self._row_for(mask)
        return row[np.asarray(types, dtype=np.int64)]

    def _row_for(self, mask: int) -> np.ndarray:
        mask = int(mask)
        row = self._rows.get(mask)
        if row is None:
            p = self._pricer
            impl = kernels.get_implementation(self._kernel_backend)
            free = [
                t for t in range(p.n_types) if not (mask >> t) & 1
            ]
            free_idx = np.asarray(free, dtype=np.int64)
            consumed = self._consumed_for(mask)
            products = np.empty((len(free), consumed.shape[0]))
            impl.extension_products(
                consumed,
                np.ascontiguousarray(p.costs[free_idx]),
                np.ascontiguousarray(p.quota[free_idx]),
                np.ascontiguousarray(p.effective[:, free_idx].T),
                np.ascontiguousarray(p.zsafe[:, free_idx].T),
                p.weights,
                float(p.budget),
                products,
            )
            row = np.zeros(p.n_types)
            row[free] = kernels.expectation_reduce(products)
            self._rows[mask] = row
        return row

    def pal(self, ordering: Ordering | Sequence[int]) -> np.ndarray:
        """``Pal(o, b, .)`` assembled from lazily computed entries.

        Works for partial orderings too (unplaced types get 0), matching
        the legacy walk's semantics.
        """
        p = self._pricer
        n_types = p.n_types
        pal = np.zeros(n_types)
        mask = 0
        for t in ordering:
            t = int(t)
            if not 0 <= t < n_types:
                raise ValueError(f"type index {t} out of range")
            row = self._rows.get(mask)
            if row is not None:
                pal[t] = row[t]
            else:
                pal[t] = self._entry(t, mask)
            mask |= 1 << t
        return pal

    def _entry(self, t: int, mask: int) -> float:
        """One scalar table entry (memoized) — no full-row sweep."""
        cached = self._entries.get((t, mask))
        if cached is None:
            p = self._pricer
            consumed = self._consumed_for(mask)
            capacity = np.floor((p.budget - consumed) / p.costs[t])
            np.maximum(capacity, 0.0, out=capacity)
            audited = np.minimum(
                np.minimum(capacity, p.quota[t]), p.effective[:, t]
            )
            ratio = audited / p.zsafe[:, t]
            cached = float((ratio * p.weights).sum())
            self._entries[(t, mask)] = cached
        return cached
