"""Adversaries (potential attackers) and victims.

In the paper's notation, ``E`` is the set of entities who might commit a
violation (hospital employees, credit-card applicants) and ``V`` the set of
potential victims (patient records, application purposes).  An *event* — and
equally an *attack* — is a pair ``<e, v>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Adversary", "Victim", "Event"]


@dataclass(frozen=True)
class Adversary:
    """A potential attacker ``e``.

    ``attack_probability`` is the paper's ``p_e``: the prior probability
    that this entity considers attacking at all.
    """

    name: str
    attack_probability: float = 1.0
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("adversary name must not be empty")
        if not 0.0 <= self.attack_probability <= 1.0:
            raise ValueError(
                f"p_e must be in [0, 1], got {self.attack_probability} "
                f"for {self.name!r}"
            )


@dataclass(frozen=True)
class Victim:
    """A potential victim ``v`` (record, file, application purpose...)."""

    name: str
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("victim name must not be empty")


@dataclass(frozen=True)
class Event:
    """An access event ``<e, v>`` (also the shape of an attack)."""

    adversary: str
    victim: str
