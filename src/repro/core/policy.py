"""Audit policies: orderings, thresholds, and mixed strategies.

A *pure* auditor strategy in the restricted space of Section II-B is a pair
``(o, b)``: a total order ``o`` over alert types and a vector ``b`` of
per-type budget thresholds.  The auditor commits to a *randomized* policy:
a probability distribution ``p_o`` over orderings combined with a single
deterministic threshold vector ``b``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "Ordering",
    "PurePolicy",
    "AuditPolicy",
    "all_orderings",
    "random_ordering",
    "validate_thresholds",
]


@dataclass(frozen=True)
class Ordering:
    """A (possibly partial) priority order over alert-type indices.

    ``positions[i]`` is the alert type audited ``i``-th.  A *partial*
    ordering (fewer entries than types) arises inside the CGGS greedy
    column construction; types absent from the order receive no budget.
    """

    positions: tuple[int, ...]

    def __post_init__(self) -> None:
        positions = tuple(int(p) for p in self.positions)
        if len(set(positions)) != len(positions):
            raise ValueError(f"duplicate types in ordering {positions}")
        if positions and min(positions) < 0:
            raise ValueError(f"negative type index in ordering {positions}")
        object.__setattr__(self, "positions", positions)

    def __len__(self) -> int:
        return len(self.positions)

    def __iter__(self) -> Iterator[int]:
        return iter(self.positions)

    def is_complete(self, n_types: int) -> bool:
        """True when the order places every one of ``n_types`` types."""
        return len(self.positions) == n_types and (
            not self.positions or max(self.positions) < n_types
        )

    def extended(self, type_index: int) -> "Ordering":
        """New ordering with ``type_index`` appended."""
        return Ordering(self.positions + (int(type_index),))

    def position_of(self, type_index: int) -> int:
        """Zero-based position of a type (ValueError if unplaced)."""
        try:
            return self.positions.index(type_index)
        except ValueError:
            raise ValueError(
                f"type {type_index} not present in ordering "
                f"{self.positions}"
            ) from None


def all_orderings(n_types: int) -> list[Ordering]:
    """All ``n_types!`` complete orderings (the full set ``O``)."""
    if n_types <= 0:
        raise ValueError(f"n_types must be positive, got {n_types}")
    return [
        Ordering(perm) for perm in itertools.permutations(range(n_types))
    ]


def random_ordering(n_types: int, rng: np.random.Generator) -> Ordering:
    """A uniformly random complete ordering."""
    return Ordering(tuple(rng.permutation(n_types).tolist()))


def validate_thresholds(thresholds, n_types: int) -> np.ndarray:
    """Coerce thresholds to a non-negative float vector of length T."""
    b = np.asarray(thresholds, dtype=np.float64)
    if b.shape != (n_types,):
        raise ValueError(
            f"thresholds must have shape ({n_types},), got {b.shape}"
        )
    if b.min() < 0:
        raise ValueError(f"thresholds must be non-negative, got {b}")
    return b.copy()


@dataclass(frozen=True)
class PurePolicy:
    """A deterministic audit policy ``(o, b)``."""

    ordering: Ordering
    thresholds: np.ndarray

    def __post_init__(self) -> None:
        b = validate_thresholds(self.thresholds, len(self.thresholds))
        object.__setattr__(self, "thresholds", b)


@dataclass(frozen=True)
class AuditPolicy:
    """A randomized audit policy: mixed orderings + fixed thresholds.

    Attributes
    ----------
    orderings:
        Support of the mixed strategy over orderings.
    probabilities:
        ``p_o`` for each supported ordering (sums to 1).
    thresholds:
        Deterministic per-type budget caps ``b`` (shared by all orderings,
        as the paper requires).
    """

    orderings: tuple[Ordering, ...]
    probabilities: np.ndarray
    thresholds: np.ndarray

    def __post_init__(self) -> None:
        orderings = tuple(self.orderings)
        if not orderings:
            raise ValueError("mixed policy needs at least one ordering")
        probs = np.asarray(self.probabilities, dtype=np.float64)
        if probs.shape != (len(orderings),):
            raise ValueError(
                f"got {len(orderings)} orderings but probability vector "
                f"of shape {probs.shape}"
            )
        if probs.min() < -1e-9:
            raise ValueError(f"negative ordering probability in {probs}")
        total = float(probs.sum())
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"ordering probabilities sum to {total}")
        n_types = len(self.thresholds)
        for o in orderings:
            if not o.is_complete(n_types):
                raise ValueError(
                    f"ordering {o.positions} is not a complete order over "
                    f"{n_types} types"
                )
        object.__setattr__(self, "orderings", orderings)
        object.__setattr__(self, "probabilities", np.clip(probs, 0.0, None))
        object.__setattr__(
            self,
            "thresholds",
            validate_thresholds(self.thresholds, n_types),
        )

    @classmethod
    def pure(cls, ordering: Ordering, thresholds) -> "AuditPolicy":
        """Wrap a single pure strategy as a degenerate mixed policy."""
        b = np.asarray(thresholds, dtype=np.float64)
        return cls(
            orderings=(ordering,),
            probabilities=np.array([1.0]),
            thresholds=b,
        )

    @classmethod
    def uniform(
        cls, orderings: Sequence[Ordering], thresholds
    ) -> "AuditPolicy":
        """Uniform mixture over the given orderings."""
        n = len(orderings)
        return cls(
            orderings=tuple(orderings),
            probabilities=np.full(n, 1.0 / n),
            thresholds=np.asarray(thresholds, dtype=np.float64),
        )

    @property
    def n_types(self) -> int:
        return len(self.thresholds)

    @property
    def support_size(self) -> int:
        """Number of orderings with positive probability."""
        return int(np.count_nonzero(self.probabilities > 1e-12))

    def pruned(self, tol: float = 1e-9) -> "AuditPolicy":
        """Drop zero-probability orderings from the support."""
        keep = self.probabilities > tol
        if not keep.any():
            # Numerical corner: keep the single most likely ordering.
            keep = np.zeros_like(keep)
            keep[int(np.argmax(self.probabilities))] = True
        probs = self.probabilities[keep]
        return AuditPolicy(
            orderings=tuple(
                o for o, k in zip(self.orderings, keep, strict=True) if k
            ),
            probabilities=probs / probs.sum(),
            thresholds=self.thresholds,
        )

    def sample_ordering(self, rng: np.random.Generator) -> Ordering:
        """Draw one ordering according to ``p_o`` (policy deployment)."""
        idx = rng.choice(len(self.orderings), p=self.probabilities)
        return self.orderings[int(idx)]

    def describe(self, type_names: Iterable[str] | None = None) -> str:
        """Human-readable multi-line summary of the policy."""
        names = list(type_names) if type_names is not None else None

        def fmt(o: Ordering) -> str:
            if names is None:
                return "(" + ", ".join(str(i + 1) for i in o) + ")"
            return "(" + " > ".join(names[i] for i in o) + ")"

        lines = ["thresholds: " + np.array2string(self.thresholds,
                                                  precision=2)]
        order = np.argsort(-self.probabilities)
        for idx in order:
            p = self.probabilities[idx]
            if p <= 1e-12:
                continue
            lines.append(f"  p={p:.4f}  {fmt(self.orderings[idx])}")
        return "\n".join(lines)


# Backwards-compatible helper re-exported under a descriptive name.
enumerate_orderings = all_orderings
