"""Alert-type catalog.

An alert type ``t`` (Section II of the paper) is a categorical label the
TDMT attaches to suspicious events ("same last name", "department
co-worker", ...).  Each type carries an audit cost ``C_t`` — the time it
takes a privacy official to investigate one alert of that type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

__all__ = ["AlertType", "AlertTypeSet"]


@dataclass(frozen=True)
class AlertType:
    """One alert category.

    Attributes
    ----------
    name:
        Unique human-readable label (e.g. ``"same-last-name"``).
    audit_cost:
        Cost ``C_t`` of auditing a single alert of this type.
    description:
        Optional free-text documentation of the trigger rule.
    """

    name: str
    audit_cost: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("alert type name must not be empty")
        if self.audit_cost <= 0:
            raise ValueError(
                f"audit cost of {self.name!r} must be positive, "
                f"got {self.audit_cost}"
            )


@dataclass(frozen=True)
class AlertTypeSet:
    """Ordered, immutable collection of alert types with unique names."""

    types: tuple[AlertType, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        types = tuple(self.types)
        if not types:
            raise ValueError("need at least one alert type")
        names = [t.name for t in types]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate alert type names in {names}")
        object.__setattr__(self, "types", types)

    @classmethod
    def from_costs(
        cls, costs: Iterable[float], prefix: str = "type"
    ) -> "AlertTypeSet":
        """Build anonymous types ``type-1..type-n`` from audit costs."""
        return cls(
            tuple(
                AlertType(name=f"{prefix}-{i + 1}", audit_cost=float(c))
                for i, c in enumerate(costs)
            )
        )

    def __len__(self) -> int:
        return len(self.types)

    def __iter__(self) -> Iterator[AlertType]:
        return iter(self.types)

    def __getitem__(self, index: int) -> AlertType:
        return self.types[index]

    @property
    def names(self) -> tuple[str, ...]:
        """Type names in index order."""
        return tuple(t.name for t in self.types)

    @property
    def costs(self) -> np.ndarray:
        """Audit-cost vector ``C`` in index order."""
        return np.array([t.audit_cost for t in self.types], dtype=np.float64)

    def index_of(self, name: str) -> int:
        """Index of the type with the given name (ValueError if absent)."""
        for i, t in enumerate(self.types):
            if t.name == name:
                return i
        raise ValueError(f"unknown alert type {name!r}")
