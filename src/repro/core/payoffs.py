"""Adversary payoff model ``(R, M, K, p_e)``.

Eq. 3 of the paper defines the attacker's utility for attack ``<e, v>``
under audit policy ``(o, b)``:

``Ua = Pat * (-M) + (1 - Pat) * R - K``

where ``R`` is the benefit of an *undetected* attack, ``M`` the penalty
magnitude when captured (it enters negatively; Table III's negative
objectives pin this sign down), and ``K`` the upfront cost of mounting the
attack.  ``p_e`` weights each adversary's contribution to the auditor's
objective, and ``attackers_can_refrain`` states whether "do not attack"
(utility 0) is in the adversary's strategy space — true for the paper's two
real datasets (their loss curves flatten at exactly 0), false for Syn A
(whose optimal objective goes negative).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PayoffModel"]


def _as_matrix(value, shape: tuple[int, int], name: str) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(shape, float(arr))
    if arr.shape != shape:
        raise ValueError(f"{name} must have shape {shape}, got {arr.shape}")
    return arr


@dataclass(frozen=True)
class PayoffModel:
    """Zero-sum payoff parameters of the alert-prioritization game.

    Attributes
    ----------
    benefit:
        ``R[e, v]`` — adversary gain when the attack goes unaudited.
        Scalars broadcast to all attacks.
    penalty:
        ``M[e, v] >= 0`` — penalty magnitude on capture.
    attack_cost:
        ``K[e, v] >= 0`` — cost of deploying the attack.
    attack_prior:
        ``p_e`` — per-adversary probability of considering an attack.
    attackers_can_refrain:
        If True, each adversary may also play "no attack" for utility 0,
        which clamps their equilibrium utility at ``u_e >= 0``.
    """

    benefit: np.ndarray
    penalty: np.ndarray
    attack_cost: np.ndarray
    attack_prior: np.ndarray
    attackers_can_refrain: bool = False

    @classmethod
    def create(
        cls,
        n_adversaries: int,
        n_victims: int,
        benefit,
        penalty,
        attack_cost,
        attack_prior=1.0,
        attackers_can_refrain: bool = False,
    ) -> "PayoffModel":
        """Build with scalar/array broadcasting and validation."""
        shape = (n_adversaries, n_victims)
        benefit_m = _as_matrix(benefit, shape, "benefit")
        penalty_m = _as_matrix(penalty, shape, "penalty")
        cost_m = _as_matrix(attack_cost, shape, "attack_cost")
        prior = np.asarray(attack_prior, dtype=np.float64)
        if prior.ndim == 0:
            prior = np.full(n_adversaries, float(prior))
        if prior.shape != (n_adversaries,):
            raise ValueError(
                f"attack_prior must have shape ({n_adversaries},), "
                f"got {prior.shape}"
            )
        # size guards: the adversary-free game is legal (nothing to
        # validate) but empty arrays have no min/max.
        if penalty_m.size and penalty_m.min() < 0:
            raise ValueError("penalty magnitudes must be non-negative")
        if cost_m.size and cost_m.min() < 0:
            raise ValueError("attack costs must be non-negative")
        if prior.size and (prior.min() < 0 or prior.max() > 1):
            raise ValueError("attack priors must lie in [0, 1]")
        return cls(
            benefit=benefit_m,
            penalty=penalty_m,
            attack_cost=cost_m,
            attack_prior=prior,
            attackers_can_refrain=attackers_can_refrain,
        )

    @property
    def n_adversaries(self) -> int:
        return int(self.benefit.shape[0])

    @property
    def n_victims(self) -> int:
        return int(self.benefit.shape[1])

    def utility_matrix(self, detection: np.ndarray) -> np.ndarray:
        """Eq. 3 for every attack: ``Ua[e, v]`` given ``Pat[e, v]``.

        ``Ua = Pat * (-M) + (1 - Pat) * R - K
            = R - K - Pat * (M + R)``.
        """
        pat = np.asarray(detection, dtype=np.float64)
        if pat.shape != self.benefit.shape:
            raise ValueError(
                f"detection matrix shape {pat.shape} does not match "
                f"payoff shape {self.benefit.shape}"
            )
        return (
            self.benefit
            - self.attack_cost
            - pat * (self.penalty + self.benefit)
        )

    def auditor_loss(self, adversary_utilities: np.ndarray) -> float:
        """Zero-sum auditor objective ``sum_e p_e * u_e`` (eq. 5).

        ``adversary_utilities`` holds each adversary's best-response value
        ``u_e = max_v E_o[Ua]`` (already clamped at 0 when refraining is
        allowed).
        """
        u = np.asarray(adversary_utilities, dtype=np.float64)
        if u.shape != (self.n_adversaries,):
            raise ValueError(
                f"expected ({self.n_adversaries},) utilities, got {u.shape}"
            )
        return float(self.attack_prior @ u)
