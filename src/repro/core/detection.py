"""Vectorized detection kernel: ``B_t``, ``n_t`` and ``Pal`` (eq. 1).

Given an ordering ``o``, thresholds ``b`` and a realization ``Z`` of benign
alert counts, the auditor walks the order front to back.  Auditing type
``o_i`` consumes ``min(b_{o_i}, Z_{o_i} * C_{o_i})`` of the global budget
``B``; the budget left when type ``t`` is reached is

``B_t(o, b, Z) = max(floor((B - consumed_before_t) / C_t), 0)``

and the number of type-``t`` alerts actually audited is

``n_t(o, b, Z) = min(B_t(o, b, Z), floor(b_t / C_t), Z_t)``.

Because an attack alert is assumed to hide uniformly among the benign
alerts of its type, the per-type detection probability is
``Pal(o, b, t) = E_Z[n_t / Z_t]``.  The expectation runs over a
:class:`~repro.distributions.joint.ScenarioSet`, which either enumerates
the joint support exactly or holds common-random-number samples.

Zero-count corner (``Z_t = 0``): the paper's ratio is undefined there (its
datasets keep ``Z_t >= 1``).  Under the default ``zero_count_rule="unit"``
the attack alert itself forms a singleton bin, so it is caught exactly when
one unit of capacity remains; ``"strict"`` instead reads ``n_t = 0`` off
the formula and yields zero detection.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..distributions.joint import ScenarioSet
from .policy import Ordering

__all__ = [
    "pal_for_ordering",
    "pal_for_ordering_batch",
    "pal_for_orderings",
    "audited_counts",
    "remaining_budget",
]

_ZERO_RULES = ("unit", "strict")


def _check_inputs(
    thresholds: np.ndarray, costs: np.ndarray, budget: float
) -> tuple[np.ndarray, np.ndarray]:
    b = np.asarray(thresholds, dtype=np.float64)
    c = np.asarray(costs, dtype=np.float64)
    if b.ndim != 1 or c.ndim != 1 or b.shape != c.shape:
        raise ValueError(
            f"thresholds {b.shape} and costs {c.shape} must be equal-length "
            "vectors"
        )
    if b.min() < 0:
        raise ValueError("thresholds must be non-negative")
    if c.min() <= 0:
        raise ValueError("audit costs must be positive")
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    return b, c


def remaining_budget(
    ordering: Ordering | Sequence[int],
    thresholds: np.ndarray,
    counts: np.ndarray,
    costs: np.ndarray,
    budget: float,
) -> np.ndarray:
    """``B_t(o, b, Z)`` for every type, per scenario.

    ``counts`` has shape ``(S, T)``; the result has the same shape, with
    zeros for types not present in (a partial) ``ordering``.
    """
    b, c = _check_inputs(thresholds, costs, budget)
    Z = np.asarray(counts, dtype=np.float64)
    out = np.zeros_like(Z)
    consumed = np.zeros(Z.shape[0])
    for t in ordering:
        out[:, t] = np.maximum(
            np.floor((budget - consumed) / c[t]), 0.0
        )
        consumed = consumed + np.minimum(b[t], Z[:, t] * c[t])
    return out


def audited_counts(
    ordering: Ordering | Sequence[int],
    thresholds: np.ndarray,
    counts: np.ndarray,
    costs: np.ndarray,
    budget: float,
) -> np.ndarray:
    """``n_t(o, b, Z)`` per scenario and type (0 for unplaced types)."""
    b, c = _check_inputs(thresholds, costs, budget)
    Z = np.asarray(counts, dtype=np.float64)
    capacity = remaining_budget(ordering, b, Z, c, budget)
    quota = np.floor(b / c)
    audited = np.minimum(np.minimum(capacity, quota[None, :]), Z)
    placed = np.zeros(len(b), dtype=bool)
    placed[list(ordering)] = True
    audited[:, ~placed] = 0.0
    return audited


def pal_for_ordering(
    ordering: Ordering | Sequence[int],
    thresholds: np.ndarray,
    scenarios: ScenarioSet,
    costs: np.ndarray,
    budget: float,
    zero_count_rule: str = "unit",
) -> np.ndarray:
    """Per-type detection probabilities ``Pal(o, b, t)`` (eq. 1).

    Runs one fused pass over the scenario matrix; this is the hot kernel of
    the whole library (every LP column and every ISHM probe calls it).
    Types not present in a partial ``ordering`` get ``Pal = 0``.
    """
    if zero_count_rule not in _ZERO_RULES:
        raise ValueError(
            f"zero_count_rule must be one of {_ZERO_RULES}, "
            f"got {zero_count_rule!r}"
        )
    b, c = _check_inputs(thresholds, costs, budget)
    n_types = len(b)
    Z = scenarios.counts.astype(np.float64, copy=False)
    if Z.shape[1] != n_types:
        raise ValueError(
            f"scenario set has {Z.shape[1]} types, thresholds have "
            f"{n_types}"
        )
    weights = scenarios.weights
    pal = np.zeros(n_types)
    consumed = np.zeros(Z.shape[0])
    for t in ordering:
        if not 0 <= t < n_types:
            raise ValueError(f"type index {t} out of range")
        capacity = np.maximum(np.floor((budget - consumed) / c[t]), 0.0)
        quota = np.floor(b[t] / c[t])
        z_t = Z[:, t]
        if zero_count_rule == "unit":
            # An attack alert in an empty bin is a singleton: it is caught
            # iff at least one unit of capacity survives to this type.
            effective = np.maximum(z_t, 1.0)
        else:
            effective = z_t
        audited = np.minimum(np.minimum(capacity, quota), effective)
        ratio = audited / np.maximum(z_t, 1.0)
        pal[t] = float(weights @ ratio)
        consumed = consumed + np.minimum(b[t], z_t * c[t])
    return pal


def pal_for_ordering_batch(
    ordering: Ordering | Sequence[int],
    thresholds: np.ndarray,
    scenarios: ScenarioSet,
    costs: np.ndarray,
    budget: float,
    zero_count_rule: str = "unit",
) -> np.ndarray:
    """``Pal(o, b_j, .)`` for a stack of threshold vectors (eq. 1).

    ``thresholds`` has shape ``(B, T)``; the result has the same shape,
    one :func:`pal_for_ordering` row per vector.  The elementwise kernel
    arithmetic broadcasts over the batch axis — one fused pass over a
    ``(B, S)`` matrix instead of ``B`` passes over ``(S,)`` vectors —
    while the closing expectation uses the *same* 1-D dot product per
    row, so every output element is bit-for-bit identical to the serial
    kernel.  Batched pricing (``FixedSolveCache.price_batch``) relies on
    that identity for its workers>1 == workers=1 guarantee.
    """
    if zero_count_rule not in _ZERO_RULES:
        raise ValueError(
            f"zero_count_rule must be one of {_ZERO_RULES}, "
            f"got {zero_count_rule!r}"
        )
    b = np.asarray(thresholds, dtype=np.float64)
    if b.ndim != 2:
        raise ValueError(
            f"batched thresholds must have shape (B, T), got {b.shape}"
        )
    c = np.asarray(costs, dtype=np.float64)
    if c.ndim != 1 or b.shape[1] != c.shape[0]:
        raise ValueError(
            f"thresholds {b.shape} and costs {c.shape} disagree on the "
            "number of types"
        )
    if b.size and b.min() < 0:
        raise ValueError("thresholds must be non-negative")
    if c.min() <= 0:
        raise ValueError("audit costs must be positive")
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    n_vectors, n_types = b.shape
    Z = scenarios.counts.astype(np.float64, copy=False)
    if Z.shape[1] != n_types:
        raise ValueError(
            f"scenario set has {Z.shape[1]} types, thresholds have "
            f"{n_types}"
        )
    weights = scenarios.weights
    pal = np.zeros((n_vectors, n_types))
    consumed = np.zeros((n_vectors, Z.shape[0]))
    for t in ordering:
        if not 0 <= t < n_types:
            raise ValueError(f"type index {t} out of range")
        capacity = np.maximum(np.floor((budget - consumed) / c[t]), 0.0)
        quota = np.floor(b[:, t] / c[t])[:, None]
        z_t = Z[:, t]
        if zero_count_rule == "unit":
            effective = np.maximum(z_t, 1.0)
        else:
            effective = z_t
        audited = np.minimum(np.minimum(capacity, quota), effective)
        ratio = audited / np.maximum(z_t, 1.0)
        for j in range(n_vectors):
            pal[j, t] = float(weights @ ratio[j])
        consumed = consumed + np.minimum(b[:, t][:, None], z_t * c[t])
    return pal


def pal_for_orderings(
    orderings: Iterable[Ordering | Sequence[int]],
    thresholds: np.ndarray,
    scenarios: ScenarioSet,
    costs: np.ndarray,
    budget: float,
    zero_count_rule: str = "unit",
) -> np.ndarray:
    """Stack of ``Pal`` vectors, one row per ordering."""
    rows = [
        pal_for_ordering(
            o, thresholds, scenarios, costs, budget, zero_count_rule
        )
        for o in orderings
    ]
    if not rows:
        raise ValueError("need at least one ordering")
    return np.stack(rows, axis=0)
