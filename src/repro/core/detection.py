"""Vectorized detection kernel: ``B_t``, ``n_t`` and ``Pal`` (eq. 1).

Given an ordering ``o``, thresholds ``b`` and a realization ``Z`` of benign
alert counts, the auditor walks the order front to back.  Auditing type
``o_i`` consumes ``min(b_{o_i}, Z_{o_i} * C_{o_i})`` of the global budget
``B``; the budget left when type ``t`` is reached is

``B_t(o, b, Z) = max(floor((B - consumed_before_t) / C_t), 0)``

and the number of type-``t`` alerts actually audited is

``n_t(o, b, Z) = min(B_t(o, b, Z), floor(b_t / C_t), Z_t)``.

Because an attack alert is assumed to hide uniformly among the benign
alerts of its type, the per-type detection probability is
``Pal(o, b, t) = E_Z[n_t / Z_t]``.  The expectation runs over a
:class:`~repro.distributions.joint.ScenarioSet`, which either enumerates
the joint support exactly or holds common-random-number samples.

Zero-count corner (``Z_t = 0``): the paper's ratio is undefined there (its
datasets keep ``Z_t >= 1``).  Under the default ``zero_count_rule="unit"``
the attack alert itself forms a singleton bin, so it is caught exactly when
one unit of capacity remains; ``"strict"`` instead reads ``n_t = 0`` off
the formula and yields zero detection.

Reduction order
---------------
The closing expectation ``E_Z[n_t / Z_t]`` is evaluated everywhere as
``(ratio * weights).sum(axis=-1)`` — numpy's pairwise reduction over the
scenario axis.  Pairwise summation depends only on the row length and
stride, so the serial walk (:meth:`OrderingPricer.pal`), the batched walk
(:func:`pal_for_ordering_batch`) and the subset-memoized table
(:class:`~repro.core.pal_table.PalTable`) all produce *bit-identical*
expectations from bit-identical ratios.  A BLAS dot (``weights @ ratio``)
would not give that guarantee across the 1-D and 2-D call shapes; the
workers>1 == workers=1 pricing identity relies on it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..distributions.joint import ScenarioSet
from .policy import Ordering

__all__ = [
    "OrderingPricer",
    "pal_for_ordering",
    "pal_for_ordering_batch",
    "pal_for_orderings",
    "audited_counts",
    "remaining_budget",
]

_ZERO_RULES = ("unit", "strict")


def _check_zero_rule(zero_count_rule: str) -> None:
    if zero_count_rule not in _ZERO_RULES:
        raise ValueError(
            f"zero_count_rule must be one of {_ZERO_RULES}, "
            f"got {zero_count_rule!r}"
        )


def _check_inputs(
    thresholds: np.ndarray, costs: np.ndarray, budget: float
) -> tuple[np.ndarray, np.ndarray]:
    b = np.asarray(thresholds, dtype=np.float64)
    c = np.asarray(costs, dtype=np.float64)
    if b.ndim != 1 or c.ndim != 1 or b.shape != c.shape:
        raise ValueError(
            f"thresholds {b.shape} and costs {c.shape} must be equal-length "
            "vectors"
        )
    if b.min() < 0:
        raise ValueError("thresholds must be non-negative")
    if c.min() <= 0:
        raise ValueError("audit costs must be positive")
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    return b, c


def remaining_budget(
    ordering: Ordering | Sequence[int],
    thresholds: np.ndarray,
    counts: np.ndarray,
    costs: np.ndarray,
    budget: float,
) -> np.ndarray:
    """``B_t(o, b, Z)`` for every type, per scenario.

    ``counts`` has shape ``(S, T)``; the result has the same shape, with
    zeros for types not present in (a partial) ``ordering``.
    """
    b, c = _check_inputs(thresholds, costs, budget)
    Z = np.asarray(counts, dtype=np.float64)
    out = np.zeros_like(Z)
    consumed = np.zeros(Z.shape[0])
    for t in ordering:
        out[:, t] = np.maximum(
            np.floor((budget - consumed) / c[t]), 0.0
        )
        consumed = consumed + np.minimum(b[t], Z[:, t] * c[t])
    return out


def audited_counts(
    ordering: Ordering | Sequence[int],
    thresholds: np.ndarray,
    counts: np.ndarray,
    costs: np.ndarray,
    budget: float,
) -> np.ndarray:
    """``n_t(o, b, Z)`` per scenario and type (0 for unplaced types)."""
    b, c = _check_inputs(thresholds, costs, budget)
    Z = np.asarray(counts, dtype=np.float64)
    capacity = remaining_budget(ordering, b, Z, c, budget)
    quota = np.floor(b / c)
    audited = np.minimum(np.minimum(capacity, quota[None, :]), Z)
    placed = np.zeros(len(b), dtype=bool)
    placed[list(ordering)] = True
    audited[:, ~placed] = 0.0
    return audited


class OrderingPricer:
    """Validated per-``(b, Z)`` state for pricing many orderings.

    Every master solve prices dozens to thousands of orderings against
    the *same* thresholds and scenario set; re-running ``asarray`` and
    range validation per ordering is pure overhead.  The pricer validates
    once at construction and hoists the per-type quantities every walk
    shares — the audit quotas ``floor(b_t / C_t)``, the per-scenario
    budget contributions ``min(b_t, Z_t C_t)`` and the zero-count-safe
    denominators.  :meth:`pal` then runs the reference per-ordering walk
    with no revalidation; :func:`pal_for_ordering` is a thin one-shot
    wrapper, so both produce bit-identical rows.

    This is the *legacy* (reference) kernel.  When many complete
    orderings share one ``(b, Z)`` — full enumeration above a handful of
    types — :class:`~repro.core.pal_table.PalTable` prices them from a
    ``T * 2^(T-1)`` subset table instead of ``|O| * T`` scenario sweeps.
    """

    __slots__ = (
        "thresholds",
        "costs",
        "budget",
        "zero_count_rule",
        "counts",
        "weights",
        "n_types",
        "quota",
        "contrib",
        "effective",
        "zsafe",
    )

    def __init__(
        self,
        thresholds: np.ndarray,
        scenarios: ScenarioSet,
        costs: np.ndarray,
        budget: float,
        zero_count_rule: str = "unit",
    ) -> None:
        _check_zero_rule(zero_count_rule)
        b, c = _check_inputs(thresholds, costs, budget)
        Z = scenarios.counts.astype(np.float64, copy=False)
        if Z.shape[1] != len(b):
            raise ValueError(
                f"scenario set has {Z.shape[1]} types, thresholds have "
                f"{len(b)}"
            )
        self.thresholds = b
        self.costs = c
        self.budget = float(budget)
        self.zero_count_rule = zero_count_rule
        self.counts = Z
        self.weights = scenarios.weights
        self.n_types = len(b)
        #: ``floor(b_t / C_t)`` — per-type audit quota.
        self.quota = np.floor(b / c)
        #: ``min(b_t, Z_t C_t)`` — budget consumed by type t, per scenario.
        self.contrib = np.minimum(b, Z * c)
        #: Zero-count-safe denominator ``max(Z_t, 1)``.
        self.zsafe = np.maximum(Z, 1.0)
        self.effective = self.zsafe if zero_count_rule == "unit" else Z

    def pal(self, ordering: Ordering | Sequence[int]) -> np.ndarray:
        """``Pal(o, b, .)`` via the reference front-to-back walk."""
        pal = np.zeros(self.n_types)
        consumed = np.zeros(self.counts.shape[0])
        for t in ordering:
            if not 0 <= t < self.n_types:
                raise ValueError(f"type index {t} out of range")
            capacity = np.maximum(
                np.floor((self.budget - consumed) / self.costs[t]), 0.0
            )
            audited = np.minimum(
                np.minimum(capacity, self.quota[t]), self.effective[:, t]
            )
            ratio = audited / self.zsafe[:, t]
            pal[t] = float((ratio * self.weights).sum())
            consumed = consumed + self.contrib[:, t]
        return pal


def pal_for_ordering(
    ordering: Ordering | Sequence[int],
    thresholds: np.ndarray,
    scenarios: ScenarioSet,
    costs: np.ndarray,
    budget: float,
    zero_count_rule: str = "unit",
) -> np.ndarray:
    """Per-type detection probabilities ``Pal(o, b, t)`` (eq. 1).

    One-shot entry point: validates the inputs, then runs the reference
    per-ordering walk.  Pricing loops that reuse one ``(b, Z)`` pair for
    many orderings should hold an :class:`OrderingPricer` (validate once)
    or a :class:`~repro.core.pal_table.PalTable` (subset-memoized)
    instead.  Types not present in a partial ``ordering`` get ``Pal = 0``.
    """
    return OrderingPricer(
        thresholds, scenarios, costs, budget, zero_count_rule
    ).pal(ordering)


def _check_batch_inputs(
    thresholds: np.ndarray,
    scenarios: ScenarioSet,
    costs: np.ndarray,
    budget: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a ``(B, T)`` threshold stack once per pricing pass."""
    b = np.asarray(thresholds, dtype=np.float64)
    if b.ndim != 2:
        raise ValueError(
            f"batched thresholds must have shape (B, T), got {b.shape}"
        )
    c = np.asarray(costs, dtype=np.float64)
    if c.ndim != 1 or b.shape[1] != c.shape[0]:
        raise ValueError(
            f"thresholds {b.shape} and costs {c.shape} disagree on the "
            "number of types"
        )
    if b.size and b.min() < 0:
        raise ValueError("thresholds must be non-negative")
    if c.min() <= 0:
        raise ValueError("audit costs must be positive")
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    if scenarios.counts.shape[1] != b.shape[1]:
        raise ValueError(
            f"scenario set has {scenarios.counts.shape[1]} types, "
            f"thresholds have {b.shape[1]}"
        )
    return b, c


def pal_for_ordering_batch(
    ordering: Ordering | Sequence[int],
    thresholds: np.ndarray,
    scenarios: ScenarioSet,
    costs: np.ndarray,
    budget: float,
    zero_count_rule: str = "unit",
    *,
    validate: bool = True,
) -> np.ndarray:
    """``Pal(o, b_j, .)`` for a stack of threshold vectors (eq. 1).

    ``thresholds`` has shape ``(B, T)``; the result has the same shape,
    one :func:`pal_for_ordering` row per vector.  The elementwise kernel
    arithmetic broadcasts over the batch axis — one fused pass over a
    ``(B, S)`` matrix instead of ``B`` passes over ``(S,)`` vectors —
    and the closing expectation is the same pairwise row reduction as
    the serial kernel (see the module docstring), so every output
    element is bit-for-bit identical to :func:`pal_for_ordering`.
    Batched pricing (``FixedSolveCache.price_batch``) relies on that
    identity for its workers>1 == workers=1 guarantee.

    ``validate=False`` skips the input checks for callers that already
    ran :func:`_check_batch_inputs` once for the whole pricing pass
    (``batch_policy_contexts``); the arrays are still coerced.
    """
    _check_zero_rule(zero_count_rule)
    if validate:
        b, c = _check_batch_inputs(thresholds, scenarios, costs, budget)
    else:
        b = np.asarray(thresholds, dtype=np.float64)
        c = np.asarray(costs, dtype=np.float64)
    n_vectors, n_types = b.shape
    Z = scenarios.counts.astype(np.float64, copy=False)
    weights = scenarios.weights
    pal = np.zeros((n_vectors, n_types))
    consumed = np.zeros((n_vectors, Z.shape[0]))
    for t in ordering:
        if not 0 <= t < n_types:
            raise ValueError(f"type index {t} out of range")
        capacity = np.maximum(np.floor((budget - consumed) / c[t]), 0.0)
        quota = np.floor(b[:, t] / c[t])[:, None]
        z_t = Z[:, t]
        if zero_count_rule == "unit":
            effective = np.maximum(z_t, 1.0)
        else:
            effective = z_t
        audited = np.minimum(np.minimum(capacity, quota), effective)
        ratio = audited / np.maximum(z_t, 1.0)
        pal[:, t] = (ratio * weights).sum(axis=1)
        consumed = consumed + np.minimum(b[:, t][:, None], z_t * c[t])
    return pal


def pal_for_orderings(
    orderings: Iterable[Ordering | Sequence[int]],
    thresholds: np.ndarray,
    scenarios: ScenarioSet,
    costs: np.ndarray,
    budget: float,
    zero_count_rule: str = "unit",
) -> np.ndarray:
    """Stack of ``Pal`` vectors, one row per ordering.

    Large ordering sets are priced from the subset-memoized table
    (``T * 2^(T-1)`` scenario sweeps total instead of one walk per
    ordering — see :mod:`repro.core.pal_table`); small sets keep the
    per-ordering walk through a shared validate-once pricer.  The two
    paths agree to within floating-point roundoff of the budget
    accumulation order (``<= 1e-9`` in practice; exactly equal on
    integer-valued games).
    """
    ordering_list = [tuple(o) for o in orderings]
    if not ordering_list:
        raise ValueError("need at least one ordering")
    pricer = OrderingPricer(
        thresholds, scenarios, costs, budget, zero_count_rule
    )
    from .pal_table import PalTable, subset_table_pays

    if subset_table_pays(len(ordering_list), pricer.n_types):
        return PalTable.from_pricer(pricer).pal_rows(ordering_list)
    return np.stack([pricer.pal(o) for o in ordering_list], axis=0)
