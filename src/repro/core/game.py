"""The :class:`AuditGame` facade.

Bundles every ingredient of the alert-prioritization Stackelberg game —
alert types with audit costs, benign-count distributions, the attack→type
map, adversary payoffs and the audit budget — and provides scenario
generation plus policy evaluation.  All solvers and baselines operate on
this object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from ..distributions.joint import JointCountModel, ScenarioSet
from .alert_types import AlertTypeSet
from .attack_map import AttackTypeMap
from .objective import PolicyEvaluation, evaluate_policy
from .payoffs import PayoffModel
from .policy import AuditPolicy

__all__ = ["AuditGame"]


@dataclass(frozen=True)
class AuditGame:
    """An instance of the paper's Optimal Auditing Problem (OAP).

    Attributes
    ----------
    alert_types:
        The catalog ``T`` with audit costs ``C_t``.
    counts:
        Joint benign-alert-count model (the per-type ``F_t``).
    attack_map:
        ``P^t_ev`` trigger tensor.
    payoffs:
        ``R, M, K, p_e`` and the refrain flag.
    budget:
        Total audit budget ``B``.
    adversary_names / victim_names:
        Optional labels for reporting (defaults to ``e1.. / v1..``).
    zero_count_rule:
        Handling of empty benign bins in the detection kernel; see
        :mod:`repro.core.detection`.
    """

    alert_types: AlertTypeSet
    counts: JointCountModel
    attack_map: AttackTypeMap
    payoffs: PayoffModel
    budget: float
    adversary_names: tuple[str, ...] = field(default_factory=tuple)
    victim_names: tuple[str, ...] = field(default_factory=tuple)
    zero_count_rule: str = "unit"

    def __post_init__(self) -> None:
        n_types = len(self.alert_types)
        if self.counts.n_types != n_types:
            raise ValueError(
                f"count model covers {self.counts.n_types} types, catalog "
                f"has {n_types}"
            )
        if self.attack_map.n_types != n_types:
            raise ValueError(
                f"attack map covers {self.attack_map.n_types} types, "
                f"catalog has {n_types}"
            )
        if self.payoffs.n_adversaries != self.attack_map.n_adversaries:
            raise ValueError(
                "payoff and attack-map adversary counts disagree: "
                f"{self.payoffs.n_adversaries} vs "
                f"{self.attack_map.n_adversaries}"
            )
        if self.payoffs.n_victims != self.attack_map.n_victims:
            raise ValueError(
                "payoff and attack-map victim counts disagree: "
                f"{self.payoffs.n_victims} vs {self.attack_map.n_victims}"
            )
        if self.budget < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget}")
        adversary_names = tuple(self.adversary_names) or tuple(
            f"e{i + 1}" for i in range(self.attack_map.n_adversaries)
        )
        victim_names = tuple(self.victim_names) or tuple(
            f"v{i + 1}" for i in range(self.attack_map.n_victims)
        )
        if len(adversary_names) != self.attack_map.n_adversaries:
            raise ValueError("adversary_names length mismatch")
        if len(victim_names) != self.attack_map.n_victims:
            raise ValueError("victim_names length mismatch")
        object.__setattr__(self, "adversary_names", adversary_names)
        object.__setattr__(self, "victim_names", victim_names)

    # ------------------------------------------------------------------
    # Dimensions and derived vectors
    # ------------------------------------------------------------------

    @property
    def n_types(self) -> int:
        return len(self.alert_types)

    @property
    def n_adversaries(self) -> int:
        return self.attack_map.n_adversaries

    @property
    def n_victims(self) -> int:
        return self.attack_map.n_victims

    @property
    def costs(self) -> np.ndarray:
        """Audit-cost vector ``C``."""
        return self.alert_types.costs

    def threshold_upper_bounds(self) -> np.ndarray:
        """Paper's ``J_t``: budget needed to audit the max count, per type.

        ``b_t = J_t * C_t`` gives ``F_t(b_t / C_t) ~= 1`` ("full coverage"),
        the ISHM starting point and the brute-force grid ceiling.
        """
        return self.counts.upper_bounds() * self.costs

    def with_budget(self, budget: float) -> "AuditGame":
        """Copy of the game with a different audit budget (for sweeps)."""
        return replace(self, budget=float(budget))

    # ------------------------------------------------------------------
    # Scenarios and evaluation
    # ------------------------------------------------------------------

    def scenario_set(
        self,
        rng: np.random.Generator | None = None,
        n_samples: int = 2000,
        prefer_exact_below: int = 100_000,
    ) -> ScenarioSet:
        """Shared scenario set for one solve (exact if small, else MC)."""
        return self.counts.scenarios(
            rng=rng,
            n_samples=n_samples,
            prefer_exact_below=prefer_exact_below,
        )

    def evaluate(
        self, policy: AuditPolicy, scenarios: ScenarioSet
    ) -> PolicyEvaluation:
        """Score a mixed policy against best-responding attackers."""
        if policy.n_types != self.n_types:
            raise ValueError(
                f"policy covers {policy.n_types} types, game has "
                f"{self.n_types}"
            )
        return evaluate_policy(
            policy,
            scenarios,
            self.attack_map,
            self.payoffs,
            self.costs,
            self.budget,
            self.zero_count_rule,
        )

    def describe(self) -> str:
        """One-paragraph summary for logs and examples."""
        kinds = ", ".join(self.alert_types.names)
        return (
            f"AuditGame with {self.n_types} alert types [{kinds}], "
            f"{self.n_adversaries} adversaries x {self.n_victims} victims, "
            f"budget {self.budget:g}, refrain="
            f"{self.payoffs.attackers_can_refrain}"
        )


def make_game(
    costs: Sequence[float],
    counts: JointCountModel,
    attack_map: AttackTypeMap,
    payoffs: PayoffModel,
    budget: float,
    **kwargs,
) -> AuditGame:
    """Convenience constructor from raw cost values."""
    return AuditGame(
        alert_types=AlertTypeSet.from_costs(costs),
        counts=counts,
        attack_map=attack_map,
        payoffs=payoffs,
        budget=budget,
        **kwargs,
    )
