"""Entry point: ``python -m repro.run_experiments`` (see analysis.cli)."""

from .analysis.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
