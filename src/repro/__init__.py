"""repro — game-theoretic prioritization of database auditing.

A full reproduction of Yan, Li, Vorobeychik, Laszka, Fabbri and Malin,
"Get Your Workload in Order: Game Theoretic Prioritization of Database
Auditing" (ICDE 2018): the Stackelberg alert-prioritization game, the CGGS
column-generation solver, the ISHM threshold heuristic, the brute-force
optimum, the paper's three baselines, synthetic substitutes for its two
real datasets, and a benchmark harness regenerating every table and
figure of the evaluation.

Quickstart::

    from repro.datasets import syn_a
    from repro.engine import AuditEngine

    engine = AuditEngine(syn_a(budget=10))
    result = engine.solve("ishm", step_size=0.1)
    print(result.objective)
    print(result.policy.describe(engine.game.alert_types.names))

Every solver and baseline lives in the :mod:`repro.engine` registry and
returns the same :class:`~repro.engine.SolveResult`; the old
free-function entry points (``iterative_shrink``, ``solve_optimal``)
are deprecated shims over that registry.
"""

from . import (
    analysis,
    baselines,
    core,
    datasets,
    distributions,
    engine,
    extensions,
    obs,
    serve,
    sim,
    solvers,
    tdmt,
)
from .core import AuditGame, AuditPolicy, Ordering
from .engine import AuditEngine, SolveResult
from .solvers import iterative_shrink, solve_optimal

__version__ = "1.5.0"

__all__ = [
    "AuditEngine",
    "AuditGame",
    "AuditPolicy",
    "Ordering",
    "SolveResult",
    "__version__",
    "analysis",
    "baselines",
    "core",
    "datasets",
    "distributions",
    "engine",
    "extensions",
    "iterative_shrink",
    "obs",
    "serve",
    "sim",
    "solve_optimal",
    "solvers",
    "tdmt",
]
