"""repro — game-theoretic prioritization of database auditing.

A full reproduction of Yan, Li, Vorobeychik, Laszka, Fabbri and Malin,
"Get Your Workload in Order: Game Theoretic Prioritization of Database
Auditing" (ICDE 2018): the Stackelberg alert-prioritization game, the CGGS
column-generation solver, the ISHM threshold heuristic, the brute-force
optimum, the paper's three baselines, synthetic substitutes for its two
real datasets, and a benchmark harness regenerating every table and
figure of the evaluation.

Quickstart::

    import numpy as np
    from repro import datasets, solvers

    game = datasets.syn_a(budget=10)
    scenarios = game.scenario_set()
    result = solvers.iterative_shrink(game, scenarios, step_size=0.1)
    print(result.objective)
    print(result.policy.describe(game.alert_types.names))
"""

from . import analysis, baselines, core, datasets, distributions, extensions, solvers, tdmt
from .core import AuditGame, AuditPolicy, Ordering
from .solvers import iterative_shrink, solve_optimal

__version__ = "1.0.0"

__all__ = [
    "AuditGame",
    "AuditPolicy",
    "Ordering",
    "__version__",
    "analysis",
    "baselines",
    "core",
    "datasets",
    "distributions",
    "extensions",
    "iterative_shrink",
    "solve_optimal",
    "solvers",
    "tdmt",
]
