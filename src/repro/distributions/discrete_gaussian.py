"""Discretized, truncated Gaussian alert-count model.

The synthetic evaluation of the paper (Table II) draws alert counts from
Gaussians with given mean/std, discretizes the CDF onto integer counts, and
truncates at a "99.5% probability coverage", producing half-widths of
+/-5, +/-4, +/-3, +/-3 for std 2, 1.6, 1.3, 1.  Those half-widths are
reproduced exactly by ``round(z * std)`` with ``z = Phi^{-1}(0.995)``
(2.5758...), which is how :func:`coverage_halfwidth` computes them.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from .base import AlertCountModel

__all__ = ["DiscretizedGaussian", "coverage_halfwidth"]


def coverage_halfwidth(std: float, coverage: float = 0.995) -> int:
    """Integer half-width of the truncation interval around the mean.

    Chosen so that a Gaussian with standard deviation ``std`` keeps roughly
    ``coverage`` of its mass inside ``mean +/- halfwidth`` (each tail cut at
    ``1 - coverage``).  Reproduces the Table II values of the paper.
    """
    if std <= 0:
        raise ValueError(f"std must be positive, got {std}")
    if not 0.5 < coverage < 1.0:
        raise ValueError(f"coverage must be in (0.5, 1), got {coverage}")
    z = float(stats.norm.ppf(coverage))
    return max(int(round(z * std)), 1)


class DiscretizedGaussian(AlertCountModel):
    """Gaussian count distribution discretized onto integers and truncated.

    The pmf at integer ``n`` is the Gaussian mass of ``[n - 1/2, n + 1/2]``,
    renormalized over the truncated support
    ``[max(floor_count, round(mean) - h), round(mean) + h]`` where ``h`` is
    the coverage half-width.

    Parameters
    ----------
    mean, std:
        Parameters of the underlying Gaussian.
    coverage:
        Probability coverage used to truncate the support (paper: 0.995).
    floor_count:
        Hard lower clip for the support, default 0 (counts cannot be
        negative).  The Syn A types all have ``mean - h >= 1`` so the clip
        never binds there.
    """

    def __init__(
        self,
        mean: float,
        std: float,
        coverage: float = 0.995,
        floor_count: int = 0,
    ) -> None:
        if std <= 0:
            raise ValueError(f"std must be positive, got {std}")
        if floor_count < 0:
            raise ValueError(f"floor_count must be >= 0, got {floor_count}")
        self._mean_param = float(mean)
        self._std_param = float(std)
        self._coverage = float(coverage)
        self._halfwidth = coverage_halfwidth(std, coverage)
        center = int(round(mean))
        self._lo = max(floor_count, center - self._halfwidth)
        self._hi = center + self._halfwidth
        if self._hi < self._lo:
            raise ValueError(
                f"empty truncated support for mean={mean}, std={std}"
            )
        support = np.arange(self._lo, self._hi + 1, dtype=np.float64)
        raw = stats.norm.cdf(support + 0.5, mean, std) - stats.norm.cdf(
            support - 0.5, mean, std
        )
        total = float(raw.sum())
        if total <= 0:
            raise ValueError(
                f"degenerate discretization for mean={mean}, std={std}"
            )
        self._pmf = raw / total

    @property
    def mean_param(self) -> float:
        """Mean of the underlying (untruncated) Gaussian."""
        return self._mean_param

    @property
    def std_param(self) -> float:
        """Std of the underlying (untruncated) Gaussian."""
        return self._std_param

    @property
    def halfwidth(self) -> int:
        """Coverage half-width (the paper's "+/- coverage" column)."""
        return self._halfwidth

    @property
    def min_count(self) -> int:
        return self._lo

    @property
    def max_count(self) -> int:
        return self._hi

    def pmf(self, count: int | np.ndarray) -> float | np.ndarray:
        counts = np.atleast_1d(np.asarray(count, dtype=np.int64))
        inside = (counts >= self._lo) & (counts <= self._hi)
        idx = np.clip(counts - self._lo, 0, len(self._pmf) - 1)
        out = np.where(inside, self._pmf[idx], 0.0)
        if np.isscalar(count) or np.asarray(count).ndim == 0:
            return float(out[0])
        return out

    def __repr__(self) -> str:
        return (
            f"DiscretizedGaussian(mean={self._mean_param}, "
            f"std={self._std_param}, support=[{self._lo}, {self._hi}])"
        )
