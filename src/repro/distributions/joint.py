"""Joint scenario model over per-type alert counts.

The detection probability of eq. 1, ``Pal(o, b, t) = E_Z[n_t / Z_t]``, is an
expectation over the joint realization ``Z = (Z_1, ..., Z_|T|)`` of benign
alert counts.  The paper evaluates it either exactly (small synthetic games,
where the joint support is the product of per-type supports) or by sampling.

Both paths produce a :class:`ScenarioSet`: a matrix of count vectors plus a
probability weight per row.  A single scenario set is generated per solve
and shared by *every* candidate policy, so that ISHM/CGGS compare policies
on common random numbers rather than on resampled noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .base import AlertCountModel

__all__ = ["ScenarioSet", "JointCountModel"]

#: Refuse exact enumeration beyond this many joint outcomes by default.
DEFAULT_MAX_EXACT_SCENARIOS = 2_000_000


@dataclass(frozen=True)
class ScenarioSet:
    """A weighted set of joint alert-count realizations.

    Attributes
    ----------
    counts:
        Integer array of shape ``(n_scenarios, n_types)``; row ``s`` is one
        realization ``Z`` of the per-type benign alert counts.
    weights:
        Float array of shape ``(n_scenarios,)`` summing to 1; the
        probability attached to each realization (uniform for Monte-Carlo
        sets, exact joint probabilities for enumerated sets).
    exact:
        True when the set enumerates the full joint support.
    """

    counts: np.ndarray
    weights: np.ndarray
    exact: bool = False

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=np.int64)
        weights = np.asarray(self.weights, dtype=np.float64)
        if counts.ndim != 2:
            raise ValueError(f"counts must be 2-D, got shape {counts.shape}")
        if weights.ndim != 1 or weights.shape[0] != counts.shape[0]:
            raise ValueError(
                f"weights shape {weights.shape} does not match "
                f"{counts.shape[0]} scenarios"
            )
        if counts.shape[0] == 0:
            raise ValueError("scenario set must not be empty")
        if counts.min() < 0:
            raise ValueError("alert counts must be non-negative")
        if weights.min() < -1e-12:
            raise ValueError("scenario weights must be non-negative")
        total = float(weights.sum())
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"scenario weights sum to {total}, expected 1")
        if total != 1.0:
            # Renormalize only when actually needed: weights that already
            # sum to exactly 1 are stored as-is (no copy, bits untouched).
            weights = weights / total
        object.__setattr__(self, "counts", counts)
        object.__setattr__(self, "weights", weights)

    @property
    def n_scenarios(self) -> int:
        """Number of joint realizations in the set."""
        return int(self.counts.shape[0])

    @property
    def n_types(self) -> int:
        """Number of alert types (columns)."""
        return int(self.counts.shape[1])

    def expected_counts(self) -> np.ndarray:
        """Weighted mean count per type."""
        return self.weights @ self.counts

    def compressed(self) -> "ScenarioSet":
        """Deduplicate identical count rows, aggregating their weights.

        Monte-Carlo draws over small integer supports repeat heavily
        (e.g. 2000 samples of a 4-type game with per-type supports of
        ~10 values collapse several-fold), and every detection-kernel
        sweep is linear in the number of rows — identical rows
        contribute identical ratios, so summing their weights changes
        no expectation.  Rows come back lexicographically sorted
        (deterministic for equal inputs) with ``exact`` preserved.

        When the set has no duplicate rows — every exactly-enumerated
        product support, or an already-compressed set (idempotence) —
        ``self`` is returned unchanged, keeping row order and weight
        bits identical for downstream kernels.
        """
        unique, inverse = np.unique(
            self.counts, axis=0, return_inverse=True
        )
        if unique.shape[0] == self.counts.shape[0]:
            return self
        weights = np.bincount(
            inverse.reshape(-1),
            weights=self.weights,
            minlength=unique.shape[0],
        )
        return ScenarioSet(
            counts=unique, weights=weights, exact=self.exact
        )


class JointCountModel:
    """Independent product of per-type :class:`AlertCountModel` marginals."""

    def __init__(self, marginals: Sequence[AlertCountModel]) -> None:
        if not marginals:
            raise ValueError("need at least one alert type")
        AlertCountModel.validate_all(marginals)
        self._marginals = tuple(marginals)

    @property
    def marginals(self) -> tuple[AlertCountModel, ...]:
        """Per-type count models, in alert-type order."""
        return self._marginals

    @property
    def n_types(self) -> int:
        """Number of alert types."""
        return len(self._marginals)

    def upper_bounds(self) -> np.ndarray:
        """Per-type support maxima ``J_t`` (ISHM full-coverage init)."""
        return np.array(
            [m.max_count for m in self._marginals], dtype=np.int64
        )

    def n_exact_scenarios(self) -> int:
        """Size of the full joint support (product of marginal supports)."""
        total = 1
        for m in self._marginals:
            total *= m.max_count - m.min_count + 1
        return total

    def exact_scenarios(
        self, max_scenarios: int = DEFAULT_MAX_EXACT_SCENARIOS
    ) -> ScenarioSet:
        """Enumerate the full joint support with exact probabilities.

        Raises ``ValueError`` if the joint support exceeds ``max_scenarios``
        (use :meth:`sample_scenarios` for large games instead).
        """
        total = self.n_exact_scenarios()
        if total > max_scenarios:
            raise ValueError(
                f"joint support has {total} outcomes "
                f"(> max_scenarios={max_scenarios}); sample instead"
            )
        supports = [m.support() for m in self._marginals]
        pmfs = [m.support_pmf() for m in self._marginals]
        grids = np.meshgrid(*supports, indexing="ij")
        counts = np.stack([g.reshape(-1) for g in grids], axis=1)
        weights = pmfs[0]
        for pmf in pmfs[1:]:
            weights = np.multiply.outer(weights, pmf)
        return ScenarioSet(
            counts=counts, weights=weights.reshape(-1), exact=True
        )

    def sample_scenarios(
        self, n_scenarios: int, rng: np.random.Generator
    ) -> ScenarioSet:
        """Draw ``n_scenarios`` iid joint realizations (uniform weights)."""
        if n_scenarios <= 0:
            raise ValueError(
                f"n_scenarios must be positive, got {n_scenarios}"
            )
        columns = [m.sample(rng, n_scenarios) for m in self._marginals]
        counts = np.stack(columns, axis=1)
        weights = np.full(n_scenarios, 1.0 / n_scenarios)
        return ScenarioSet(counts=counts, weights=weights, exact=False)

    def scenarios(
        self,
        rng: np.random.Generator | None = None,
        n_samples: int = 2000,
        prefer_exact_below: int = 100_000,
    ) -> ScenarioSet:
        """Exact enumeration when small enough, Monte-Carlo otherwise.

        This is the default policy used by the solvers: games like Syn A
        (4851 joint outcomes) get the exact expectation, while the EMR and
        credit games fall back to ``n_samples`` common-random-number draws.
        """
        if self.n_exact_scenarios() <= prefer_exact_below:
            return self.exact_scenarios()
        if rng is None:
            raise ValueError(
                "joint support too large for exact enumeration; "
                "pass an rng to enable sampling"
            )
        return self.sample_scenarios(n_samples, rng)

    def __repr__(self) -> str:
        return f"JointCountModel(n_types={self.n_types})"
