"""Truncated Poisson alert-count model.

Not used by the paper's own experiments, but a natural choice for alert
arrival counts (alerts are rare events over many accesses); provided so
downstream users can swap it in for the Gaussian without touching the
solvers, and used by our ablation benchmarks.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from .base import AlertCountModel

__all__ = ["TruncatedPoisson"]


class TruncatedPoisson(AlertCountModel):
    """Poisson(rate) truncated at its ``coverage`` quantile, renormalized."""

    def __init__(self, rate: float, coverage: float = 0.995) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if not 0.5 < coverage < 1.0:
            raise ValueError(f"coverage must be in (0.5, 1), got {coverage}")
        self._rate = float(rate)
        self._hi = int(stats.poisson.ppf(coverage, rate))
        support = np.arange(0, self._hi + 1)
        raw = stats.poisson.pmf(support, rate)
        self._pmf = raw / raw.sum()

    @property
    def rate(self) -> float:
        """Rate parameter of the underlying Poisson."""
        return self._rate

    @property
    def min_count(self) -> int:
        return 0

    @property
    def max_count(self) -> int:
        return self._hi

    def pmf(self, count: int | np.ndarray) -> float | np.ndarray:
        counts = np.atleast_1d(np.asarray(count, dtype=np.int64))
        inside = (counts >= 0) & (counts <= self._hi)
        idx = np.clip(counts, 0, self._hi)
        out = np.where(inside, self._pmf[idx], 0.0)
        if np.isscalar(count) or np.asarray(count).ndim == 0:
            return float(out[0])
        return out

    def __repr__(self) -> str:
        return f"TruncatedPoisson(rate={self._rate}, max={self._hi})"
