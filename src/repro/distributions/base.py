"""Base interface for alert-count distributions.

The audit game of Yan et al. (ICDE 2018) models the number of *benign*
alerts of each type raised per audit period as a random integer count
``Z_t ~ F_t``.  Every concrete distribution in this subpackage implements
:class:`AlertCountModel`, which exposes the count distribution on a finite
integer support.  A finite support is essential: the paper truncates each
``F_t`` at a configurable probability coverage (99.5% by default) so that
thresholds have a finite upper bound ``J_t`` and the joint scenario space
can be enumerated exactly for small games.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

__all__ = ["AlertCountModel"]


class AlertCountModel(abc.ABC):
    """Distribution of the number of alerts of one type per audit period.

    Concrete models provide a probability mass function on a finite integer
    support ``[min_count, max_count]``.  All probability queries outside the
    support return 0, and the pmf over the support sums to 1 (models that
    truncate an infinite distribution renormalize).
    """

    @property
    @abc.abstractmethod
    def min_count(self) -> int:
        """Smallest count in the support (inclusive, >= 0)."""

    @property
    @abc.abstractmethod
    def max_count(self) -> int:
        """Largest count in the support (inclusive).

        This is the paper's per-type upper bound ``J_t`` used both to bound
        the brute-force threshold grid and to initialize ISHM at "full
        coverage" (``F_t(b_t / C_t) ~= 1``).
        """

    @abc.abstractmethod
    def pmf(self, count: int | np.ndarray) -> float | np.ndarray:
        """Probability of observing exactly ``count`` alerts."""

    def support(self) -> np.ndarray:
        """All counts with positive probability, in increasing order."""
        return np.arange(self.min_count, self.max_count + 1, dtype=np.int64)

    def support_pmf(self) -> np.ndarray:
        """pmf evaluated on :meth:`support` (sums to 1)."""
        return np.asarray(self.pmf(self.support()), dtype=np.float64)

    def cdf(self, count: int | np.ndarray) -> float | np.ndarray:
        """Probability that at most ``count`` alerts are raised (``F_t``)."""
        counts = np.atleast_1d(np.asarray(count, dtype=np.int64))
        support = self.support()
        probs = np.cumsum(self.support_pmf())
        # For each query, index of the last support point <= query.
        idx = np.searchsorted(support, counts, side="right") - 1
        out = np.where(idx < 0, 0.0, probs[np.clip(idx, 0, len(probs) - 1)])
        if np.isscalar(count) or np.asarray(count).ndim == 0:
            return float(out[0])
        return out

    def mean(self) -> float:
        """Expected alert count under the (truncated) distribution."""
        support = self.support()
        return float(np.dot(support, self.support_pmf()))

    def std(self) -> float:
        """Standard deviation under the (truncated) distribution."""
        support = self.support().astype(np.float64)
        pmf = self.support_pmf()
        mu = float(np.dot(support, pmf))
        var = float(np.dot((support - mu) ** 2, pmf))
        return float(np.sqrt(max(var, 0.0)))

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` iid counts (int64 array)."""
        return rng.choice(self.support(), size=size, p=self.support_pmf())

    def quantile(self, q: float) -> int:
        """Smallest count ``n`` with ``F(n) >= q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile level must be in [0, 1], got {q}")
        probs = np.cumsum(self.support_pmf())
        idx = int(np.searchsorted(probs, q - 1e-12, side="left"))
        support = self.support()
        return int(support[min(idx, len(support) - 1)])

    @staticmethod
    def validate_all(models: Sequence["AlertCountModel"]) -> None:
        """Sanity-check a family of per-type models (used by game builders)."""
        for position, model in enumerate(models):
            if model.min_count < 0:
                raise ValueError(
                    f"model {position}: negative min_count {model.min_count}"
                )
            if model.max_count < model.min_count:
                raise ValueError(
                    f"model {position}: empty support "
                    f"[{model.min_count}, {model.max_count}]"
                )
            total = float(np.sum(model.support_pmf()))
            if not np.isclose(total, 1.0, atol=1e-8):
                raise ValueError(
                    f"model {position}: pmf sums to {total}, expected 1"
                )
