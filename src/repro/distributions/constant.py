"""Degenerate (constant) alert-count model.

Used in tests and in the NP-hardness construction of Theorem 1, where
``Z_t = 1`` with probability 1 for every alert type.
"""

from __future__ import annotations

import numpy as np

from .base import AlertCountModel

__all__ = ["ConstantCount"]


class ConstantCount(AlertCountModel):
    """Alert count equal to ``value`` with probability 1."""

    def __init__(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"count must be >= 0, got {value}")
        self._value = int(value)

    @property
    def value(self) -> int:
        """The deterministic count."""
        return self._value

    @property
    def min_count(self) -> int:
        return self._value

    @property
    def max_count(self) -> int:
        return self._value

    def pmf(self, count: int | np.ndarray) -> float | np.ndarray:
        counts = np.atleast_1d(np.asarray(count, dtype=np.int64))
        out = np.where(counts == self._value, 1.0, 0.0)
        if np.isscalar(count) or np.asarray(count).ndim == 0:
            return float(out[0])
        return out

    def __repr__(self) -> str:
        return f"ConstantCount({self._value})"
