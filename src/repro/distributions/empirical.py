"""Empirical alert-count model learned from historical logs.

The paper assumes the benign-alert count distribution ``F_t`` "can be
obtained from historical alert logs" (Section II-A).  This model does
exactly that: it is fit from a sample of per-period counts (e.g. per-day
alert totals computed by :mod:`repro.tdmt.aggregation`) and exposes the
empirical pmf, optionally truncated at a probability coverage to keep the
support — and hence the ISHM threshold upper bounds — finite and tight.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from .base import AlertCountModel

__all__ = ["EmpiricalCounts"]


class EmpiricalCounts(AlertCountModel):
    """Count distribution given by observed per-period frequencies."""

    def __init__(self, pmf_by_count: Mapping[int, float]) -> None:
        if not pmf_by_count:
            raise ValueError("empirical pmf must not be empty")
        counts = sorted(pmf_by_count)
        if counts[0] < 0:
            raise ValueError(f"negative count in support: {counts[0]}")
        self._lo = counts[0]
        self._hi = counts[-1]
        dense = np.zeros(self._hi - self._lo + 1, dtype=np.float64)
        for count, prob in pmf_by_count.items():
            if prob < 0:
                raise ValueError(f"negative probability for count {count}")
            dense[count - self._lo] = prob
        total = float(dense.sum())
        if total <= 0:
            raise ValueError("empirical pmf has zero total mass")
        self._pmf = dense / total

    @classmethod
    def from_samples(
        cls, samples: Iterable[int], coverage: float = 1.0
    ) -> "EmpiricalCounts":
        """Fit from raw per-period counts.

        Parameters
        ----------
        samples:
            Observed counts, one per audit period.
        coverage:
            If < 1, the support is truncated at the smallest count whose
            empirical CDF reaches ``coverage`` (and renormalized), mirroring
            the paper's finite upper bound on ``Z_t``.
        """
        values = np.asarray(list(samples), dtype=np.int64)
        if values.size == 0:
            raise ValueError("need at least one sample")
        if values.min() < 0:
            raise ValueError("counts must be non-negative")
        if not 0.0 < coverage <= 1.0:
            raise ValueError(f"coverage must be in (0, 1], got {coverage}")
        uniq, freq = np.unique(values, return_counts=True)
        probs = freq / freq.sum()
        if coverage < 1.0:
            cum = np.cumsum(probs)
            cut = int(np.searchsorted(cum, coverage - 1e-12, side="left"))
            uniq = uniq[: cut + 1]
            probs = probs[: cut + 1]
        return cls({int(c): float(p) for c, p in zip(uniq, probs, strict=True)})

    @property
    def min_count(self) -> int:
        return self._lo

    @property
    def max_count(self) -> int:
        return self._hi

    def pmf(self, count: int | np.ndarray) -> float | np.ndarray:
        counts = np.atleast_1d(np.asarray(count, dtype=np.int64))
        inside = (counts >= self._lo) & (counts <= self._hi)
        idx = np.clip(counts - self._lo, 0, len(self._pmf) - 1)
        out = np.where(inside, self._pmf[idx], 0.0)
        if np.isscalar(count) or np.asarray(count).ndim == 0:
            return float(out[0])
        return out

    def __repr__(self) -> str:
        return f"EmpiricalCounts(support=[{self._lo}, {self._hi}])"
