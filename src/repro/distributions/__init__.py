"""Alert-count distributions and joint scenario models.

These implement the stochastic workload substrate of the audit game: each
alert type's benign count ``Z_t ~ F_t`` (Section II-A of the paper) and the
joint scenario sets over which the detection probability of eq. 1 is
averaged.
"""

from .base import AlertCountModel
from .constant import ConstantCount
from .discrete_gaussian import DiscretizedGaussian, coverage_halfwidth
from .empirical import EmpiricalCounts
from .joint import JointCountModel, ScenarioSet
from .poisson import TruncatedPoisson

__all__ = [
    "AlertCountModel",
    "ConstantCount",
    "DiscretizedGaussian",
    "EmpiricalCounts",
    "JointCountModel",
    "ScenarioSet",
    "TruncatedPoisson",
    "coverage_halfwidth",
]
