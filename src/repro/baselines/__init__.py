"""Non-game-theoretic audit baselines from Section V-B of the paper."""

from .greedy_benefit import (
    GreedyBenefitBaseline,
    GreedyBenefitOutcome,
    type_benefits,
)
from .random_order import BaselineOutcome, RandomOrderBaseline
from .random_threshold import (
    RandomThresholdBaseline,
    RandomThresholdOutcome,
)

__all__ = [
    "BaselineOutcome",
    "GreedyBenefitBaseline",
    "GreedyBenefitOutcome",
    "RandomOrderBaseline",
    "RandomThresholdBaseline",
    "RandomThresholdOutcome",
    "type_benefits",
]
