"""Baseline: *Audit with random thresholds*.

Section V-B: the auditor draws the threshold vector at random (subject to
``sum_t b_t >= B``) but is then allowed to optimize the ordering mixture
for those thresholds by solving the master LP — isolating the value of
*optimizing thresholds* (ISHM) while granting the baseline the full
ordering optimization.  The paper repeats the draw 5000 times; the curve
reported in Figures 1-2 is the average auditor loss across draws.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.game import AuditGame
from ..core.policy import AuditPolicy
from ..distributions.joint import ScenarioSet
from ..solvers.ishm import (
    BatchFixedSolver,
    FixedSolver,
    make_fixed_solver,
)

__all__ = ["RandomThresholdBaseline", "RandomThresholdOutcome"]


@dataclass(frozen=True)
class RandomThresholdOutcome:
    """Aggregate loss over random threshold draws."""

    name: str
    mean_loss: float
    std_loss: float
    min_loss: float
    max_loss: float
    n_draws: int
    best_policy: AuditPolicy

    @property
    def auditor_loss(self) -> float:
        """The headline number (mean over draws), as plotted in the paper."""
        return self.mean_loss


class RandomThresholdBaseline:
    """Random thresholds + LP-optimal ordering mixture per draw."""

    name = "random-thresholds"

    def __init__(
        self,
        game: AuditGame,
        scenarios: ScenarioSet,
        n_draws: int = 100,
        rng: np.random.Generator | None = None,
        solver: FixedSolver | None = None,
        batch_solver: BatchFixedSolver | None = None,
    ) -> None:
        """``batch_solver`` prices all draws as one ``(n_draws, T)`` batch.

        Safe only when the pricer's randomness is independent of
        ``rng`` (the engine's cached solvers are): the thresholds are
        then drawn up front in the same rng order as the serial
        draw/solve interleaving, so results are identical.  The default
        serial solver shares ``rng`` with the draws and must stay
        interleaved; passing both ``solver`` and ``batch_solver`` is an
        error.
        """
        if n_draws <= 0:
            raise ValueError(f"n_draws must be positive, got {n_draws}")
        if solver is not None and batch_solver is not None:
            raise ValueError(
                "pass either solver or batch_solver, not both"
            )
        self.game = game
        self.scenarios = scenarios
        self.n_draws = n_draws
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.batch_solver = batch_solver
        self.solver = (
            solver
            if solver is not None or batch_solver is not None
            else make_fixed_solver(game, scenarios, rng=self.rng)
        )

    def _draw_thresholds(self) -> np.ndarray:
        """Uniform integer vector on the grid, conditioned on the floor.

        Each ``b_t`` is uniform on ``{0, ..., ceil(J_t C_t)}``; draws with
        ``sum_t b_t < B`` are rejected (they waste budget by construction).
        If the floor is unattainable even at the maxima, the maxima are
        returned.
        """
        upper = np.ceil(self.game.threshold_upper_bounds()).astype(
            np.int64
        )
        if float(upper.sum()) < self.game.budget:
            return upper.astype(np.float64)
        for _ in range(10_000):
            b = self.rng.integers(0, upper + 1).astype(np.float64)
            if b.sum() >= self.game.budget:
                return b
        raise RuntimeError(
            "could not draw thresholds satisfying the budget floor"
        )

    def run(self) -> RandomThresholdOutcome:
        """Average the per-draw optimal-ordering losses."""
        losses = np.empty(self.n_draws)
        best_policy: AuditPolicy | None = None
        best_loss = np.inf
        if self.batch_solver is not None:
            draws = np.stack(
                [self._draw_thresholds() for _ in range(self.n_draws)]
            )
            solutions = self.batch_solver(draws)
        else:
            draws = None
            solutions = None
        for draw in range(self.n_draws):
            if solutions is not None:
                solution = solutions[draw]
            else:
                solution = self.solver(self._draw_thresholds())
            losses[draw] = solution.objective
            if solution.objective < best_loss:
                best_loss = solution.objective
                best_policy = solution.policy
        return RandomThresholdOutcome(
            name=self.name,
            mean_loss=float(losses.mean()),
            std_loss=float(losses.std()),
            min_loss=float(losses.min()),
            max_loss=float(losses.max()),
            n_draws=self.n_draws,
            best_policy=best_policy,
        )
