"""Baseline: *Audit with random orders of alert types*.

Section V-B: the auditor keeps good thresholds (the paper plugs in the
ISHM thresholds at ``eps = 0.1``) but randomizes the priority order
uniformly instead of optimizing the mixture — mimicking ad hoc auditing
where whatever alert bin gets attention first is effectively arbitrary
(e.g. driven by which patient happens to phone the privacy office).

The attacker still observes the (uniform) mixed strategy and
best-responds, so this baseline isolates the value of *optimizing the
ordering distribution* while holding thresholds fixed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.game import AuditGame
from ..core.objective import PolicyEvaluation
from ..core.policy import AuditPolicy, Ordering, all_orderings
from ..distributions.joint import ScenarioSet

__all__ = ["RandomOrderBaseline", "BaselineOutcome"]


@dataclass(frozen=True)
class BaselineOutcome:
    """A baseline policy plus its loss against best-responding attackers."""

    name: str
    policy: AuditPolicy
    auditor_loss: float
    evaluation: PolicyEvaluation


class RandomOrderBaseline:
    """Uniform randomization over alert-type orderings, fixed thresholds."""

    name = "random-orders"

    def __init__(
        self,
        game: AuditGame,
        scenarios: ScenarioSet,
        n_orderings: int = 2000,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_orderings <= 0:
            raise ValueError(
                f"n_orderings must be positive, got {n_orderings}"
            )
        self.game = game
        self.scenarios = scenarios
        self.n_orderings = n_orderings
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def _support(self) -> list[Ordering]:
        """Sampled orderings without replacement (all of them if fewer).

        The paper repeats the randomization "2000 times without
        replacement"; when ``|T|!`` is smaller than the requested count the
        support is simply the full ordering set, i.e. the exact uniform
        mixture.
        """
        n_total = math.factorial(self.game.n_types)
        if n_total <= self.n_orderings:
            return all_orderings(self.game.n_types)
        seen: set[tuple[int, ...]] = set()
        support: list[Ordering] = []
        # Rejection-sample distinct permutations; collision probability is
        # negligible for |T|! >> n_orderings.
        while len(support) < self.n_orderings:
            perm = tuple(self.rng.permutation(self.game.n_types).tolist())
            if perm not in seen:
                seen.add(perm)
                support.append(Ordering(perm))
        return support

    def run(self, thresholds: np.ndarray) -> BaselineOutcome:
        """Uniform mixture over sampled orderings with given thresholds."""
        policy = AuditPolicy.uniform(self._support(), thresholds)
        evaluation = self.game.evaluate(policy, self.scenarios)
        return BaselineOutcome(
            name=self.name,
            policy=policy,
            auditor_loss=evaluation.auditor_loss,
            evaluation=evaluation,
        )
