"""Baseline: *Audit based on benefit* (greedy exhaustive priority).

Section V-B: a deterministic, non-strategic policy that ranks alert types
by the loss a violation of that type inflicts (= the adversary's benefit)
and audits as many alerts of each type as possible before moving to the
next.  Because the order is fixed and fully predictable, strategic
attackers route around it — the paper shows this intuitive policy is the
*worst* of the four across both real datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.game import AuditGame
from ..core.objective import PolicyEvaluation
from ..core.policy import AuditPolicy, Ordering
from ..distributions.joint import ScenarioSet

__all__ = ["GreedyBenefitBaseline", "GreedyBenefitOutcome", "type_benefits"]


def type_benefits(game: AuditGame) -> np.ndarray:
    """Per-alert-type benefit: max adversary gain among attacks of the type.

    The paper's benefit vectors are defined per alert type; in the game
    they appear as ``R[e, v]`` on each attack.  We recover the type-level
    severity as the maximum benefit among events triggering the type
    (equals the paper's vector when, as in all three datasets, benefit is
    a function of the type alone).
    """
    probs = game.attack_map.probabilities
    benefits = np.zeros(game.n_types)
    for t in range(game.n_types):
        mask = probs[:, :, t] > 0
        if mask.any():
            benefits[t] = float(game.payoffs.benefit[mask].max())
    return benefits


@dataclass(frozen=True)
class GreedyBenefitOutcome:
    """The deterministic greedy policy plus its loss."""

    name: str
    policy: AuditPolicy
    auditor_loss: float
    evaluation: PolicyEvaluation
    ordering: Ordering


class GreedyBenefitBaseline:
    """Priority by benefit, exhaustive thresholds, no randomization."""

    name = "benefit-greedy"

    def __init__(self, game: AuditGame, scenarios: ScenarioSet) -> None:
        self.game = game
        self.scenarios = scenarios

    def run(self) -> GreedyBenefitOutcome:
        """Evaluate the fixed benefit-ranked exhaustive policy."""
        benefits = type_benefits(self.game)
        # Stable sort: ties keep type-index order, making the policy (and
        # the attacker's response) deterministic.
        order = Ordering(
            tuple(int(t) for t in np.argsort(-benefits, kind="stable"))
        )
        # "As many alerts as possible" = full-coverage thresholds.
        thresholds = self.game.threshold_upper_bounds().astype(np.float64)
        policy = AuditPolicy.pure(order, thresholds)
        evaluation = self.game.evaluate(policy, self.scenarios)
        return GreedyBenefitOutcome(
            name=self.name,
            policy=policy,
            auditor_loss=evaluation.auditor_loss,
            evaluation=evaluation,
            ordering=order,
        )
