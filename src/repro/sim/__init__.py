"""Multi-period audit-operations simulator with online learning.

The paper solves a one-shot Optimal Auditing Problem; this package
closes the production loop its Section II-A implies.  Each period:

1. an **event source** produces the benign alert stream (the game's own
   count model, a drifting synthetic generator, or a TDMT-labeled EMR
   access-log replay);
2. a **distribution estimator** refits ``F_t`` from the observed counts
   (or keeps the paper's fixed one-shot fit);
3. the defender **re-solves** through a warm-started
   :class:`~repro.engine.AuditEngine` — scenario sets and
   fixed-threshold solutions are reused across every period whose
   distributions did not change, and warm results are guaranteed equal
   to cold ones;
4. a pure ordering is sampled from the mixed policy and deployed, a
   pluggable **adversary** (adaptive best response, static, quantal)
   moves against it, and realized detections, utilities, deterrence and
   budget carry-over are recorded.

Quickstart::

    from repro.datasets import syn_a
    from repro.sim import simulate

    trajectory = simulate(
        syn_a(budget=10),
        n_periods=8,
        estimator="rolling-empirical",
        solver_options={"step_size": 0.5},
    )
    print(trajectory.to_text())

Sources, estimators and adversaries live in plugin registries mirroring
the solver registry; register your own with, e.g.,
``@EVENT_SOURCES.register("name")`` and it becomes reachable from the
CLI (``python -m repro.run_experiments --sim --sim-config
source=name``).
"""

from .adversaries import (
    BestResponseAdversary,
    QuantalAdversary,
    StaticAdversary,
)
from .estimators import (
    FixedEstimator,
    RollingEmpiricalEstimator,
    RollingGaussianEstimator,
)
from .registry import (
    ADVERSARIES,
    ESTIMATORS,
    EVENT_SOURCES,
    PluginRegistry,
    PluginSpec,
)
from .simulator import (
    AdversaryModel,
    AuditSimulator,
    DistributionEstimator,
    EventSource,
    SimConfig,
    simulate,
)
from .sources import DriftingSource, ModelSource, TDMTEMRSource
from .trajectory import AttackOutcome, PeriodRecord, Trajectory

__all__ = [
    "ADVERSARIES",
    "ESTIMATORS",
    "EVENT_SOURCES",
    "AdversaryModel",
    "AttackOutcome",
    "AuditSimulator",
    "BestResponseAdversary",
    "DistributionEstimator",
    "DriftingSource",
    "EventSource",
    "FixedEstimator",
    "ModelSource",
    "PeriodRecord",
    "PluginRegistry",
    "PluginSpec",
    "QuantalAdversary",
    "RollingEmpiricalEstimator",
    "RollingGaussianEstimator",
    "SimConfig",
    "StaticAdversary",
    "TDMTEMRSource",
    "Trajectory",
    "simulate",
]
