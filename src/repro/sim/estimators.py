"""Distribution estimators: how the defender re-learns ``F_t`` online.

The paper obtains the benign-count distributions "from historical alert
logs" once; in the repeated setting the log keeps growing, so each
period the estimator sees the newly observed per-type counts and decides
whether the game's :class:`~repro.distributions.joint.JointCountModel`
should change.

The contract matters for warm-started re-solving: an estimator returns
the *same model object* while its estimate is unchanged, and the
simulator keys its per-model :class:`~repro.engine.AuditEngine` cache on
that identity — scenario sets and fixed-threshold solutions survive
exactly as long as the distributions do.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.game import AuditGame
from ..distributions import (
    DiscretizedGaussian,
    EmpiricalCounts,
    JointCountModel,
)
from .registry import ESTIMATORS

__all__ = [
    "FixedEstimator",
    "RollingEmpiricalEstimator",
    "RollingGaussianEstimator",
]


@ESTIMATORS.register(
    "fixed",
    summary="keep the game's original distributions (paper's one-shot fit)",
    aliases=("paper",),
)
class FixedEstimator:
    """No learning: every period uses the game's original count model."""

    def __init__(self, game: AuditGame) -> None:
        self._model = game.counts

    def observe(self, period: int, counts: np.ndarray) -> None:
        pass

    def model(self) -> JointCountModel:
        return self._model


class _RollingWindow:
    """Shared bookkeeping for rolling-window refit estimators.

    Keeps the last ``window`` per-period count vectors and refits every
    ``refit_every`` periods once ``min_periods`` observations exist.
    Until the first refit the game's original model is served, so the
    simulator starts from the paper's prior rather than a 1-sample fit.
    """

    def __init__(
        self,
        game: AuditGame,
        window: int,
        min_periods: int,
        refit_every: int,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if min_periods < 1:
            raise ValueError(
                f"min_periods must be >= 1, got {min_periods}"
            )
        if refit_every < 1:
            raise ValueError(
                f"refit_every must be >= 1, got {refit_every}"
            )
        if min_periods > window:
            # The window caps the sample count, so this combination
            # could never refit — the estimator would silently degrade
            # to the fixed prior.
            raise ValueError(
                f"min_periods ({min_periods}) must be <= window "
                f"({window}); the estimator could never refit"
            )
        self.window = int(window)
        self.min_periods = int(min_periods)
        self.refit_every = int(refit_every)
        self._samples: deque[np.ndarray] = deque(maxlen=self.window)
        self._model = game.counts
        self._since_refit = 0
        self.n_refits = 0

    def observe(self, period: int, counts: np.ndarray) -> None:
        self._samples.append(
            np.asarray(counts, dtype=np.int64).copy()
        )
        self._since_refit += 1
        if (
            len(self._samples) >= self.min_periods
            and self._since_refit >= self.refit_every
        ):
            stacked = np.stack(tuple(self._samples), axis=0)
            self._model = JointCountModel(
                [
                    self._fit(stacked[:, t])
                    for t in range(stacked.shape[1])
                ]
            )
            self._since_refit = 0
            self.n_refits += 1

    def model(self) -> JointCountModel:
        return self._model

    def _fit(self, samples: np.ndarray):
        raise NotImplementedError


@ESTIMATORS.register(
    "rolling-empirical",
    summary="rolling-window EmpiricalCounts refit (truncated at coverage)",
    aliases=("empirical",),
)
class RollingEmpiricalEstimator(_RollingWindow):
    """Refit raw empirical per-type distributions on a rolling window.

    Parameters
    ----------
    window:
        Number of most recent periods kept (the paper's "historical
        alert logs", aged out so drift is forgotten).
    min_periods:
        Observations required before the first refit replaces the
        game's prior model.
    refit_every:
        Periods between refits; between refits the previous model object
        is served unchanged, which keeps the engine caches warm.
    coverage:
        Tail truncation passed to
        :meth:`~repro.distributions.EmpiricalCounts.from_samples` —
        mirrors the paper's finite upper bound on ``Z_t`` and keeps the
        ISHM threshold bounds tight under outliers.
    """

    def __init__(
        self,
        game: AuditGame,
        *,
        window: int = 28,
        min_periods: int = 3,
        refit_every: int = 1,
        coverage: float = 0.995,
    ) -> None:
        super().__init__(game, window, min_periods, refit_every)
        if not 0.0 < coverage <= 1.0:
            raise ValueError(
                f"coverage must be in (0, 1], got {coverage}"
            )
        self.coverage = float(coverage)

    def _fit(self, samples: np.ndarray) -> EmpiricalCounts:
        return EmpiricalCounts.from_samples(
            samples, coverage=self.coverage
        )


@ESTIMATORS.register(
    "rolling-gaussian",
    summary="rolling-window discretized-Gaussian refit (Table VIII style)",
    aliases=("gaussian",),
)
class RollingGaussianEstimator(_RollingWindow):
    """Refit discretized Gaussians to the rolling window's mean/std.

    The presentation the paper uses for its real datasets (Tables VIII
    and IX): per-type sample mean and standard deviation, discretized
    and truncated at ``coverage``.
    """

    def __init__(
        self,
        game: AuditGame,
        *,
        window: int = 28,
        min_periods: int = 3,
        refit_every: int = 1,
        coverage: float = 0.995,
    ) -> None:
        super().__init__(game, window, min_periods, refit_every)
        if not 0.5 < coverage < 1.0:
            raise ValueError(
                f"coverage must be in (0.5, 1), got {coverage}"
            )
        self.coverage = float(coverage)

    def _fit(self, samples: np.ndarray) -> DiscretizedGaussian:
        values = samples.astype(np.float64)
        mean = float(values.mean())
        std = float(values.std(ddof=1)) if values.size > 1 else 1.0
        return DiscretizedGaussian(
            mean, max(std, 0.5), coverage=self.coverage
        )
