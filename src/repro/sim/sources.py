"""Event sources: where each period's benign alert stream comes from.

A source is the simulator's ground truth.  Each period it produces the
realized benign alert counts ``Z_t`` per type — the "alert logs" the
paper's Section II-A says the defender learns ``F_t`` from.  Three
plugins ship:

* ``model`` — draws from the bound game's own joint count model, so any
  dataset builder (``syn_a``, ``rea_a``, ``rea_b``) becomes a stationary
  alert stream;
* ``drift`` — discretized Gaussians whose means move every period, the
  non-stationary workload that online estimators must track;
* ``tdmt-emr`` — simulates a raw EMR access log once, then replays it
  day by day through the TDMT rule engine (repeat filtering, relational
  labeling, per-period tabulation), exactly the pipeline of Section V-A.
"""

from __future__ import annotations

import numpy as np

from ..core.game import AuditGame
from ..datasets.emr import (
    EMR_TYPE_NAMES,
    EMRConfig,
    build_emr_world,
    simulate_emr_log,
)
from ..distributions import DiscretizedGaussian
from ..tdmt import filter_repeated_accesses, period_type_counts
from .registry import EVENT_SOURCES

__all__ = ["ModelSource", "DriftingSource", "TDMTEMRSource"]


@EVENT_SOURCES.register(
    "model",
    summary="sample counts from the game's own count model (stationary)",
    aliases=("dataset",),
)
class ModelSource:
    """Stationary stream: per-type draws from the game's marginals.

    This treats the bound game's joint count model as the true world, so
    a ``fixed`` estimator is exactly calibrated and any online estimator
    should converge to it.
    """

    def __init__(self, game: AuditGame) -> None:
        self._marginals = game.counts.marginals

    def counts(
        self, period: int, rng: np.random.Generator
    ) -> np.ndarray:
        return np.array(
            [int(m.sample(rng, 1)[0]) for m in self._marginals],
            dtype=np.int64,
        )


@EVENT_SOURCES.register(
    "drift",
    summary="Gaussian counts whose means drift per period",
)
class DriftingSource:
    """Non-stationary stream: per-type Gaussian means that move over time.

    Period ``p`` draws type ``t`` from a discretized Gaussian with mean
    ``mu_t * (1 + drift * p)`` (floored at 0) and the original standard
    deviation scaled by ``std_scale``.  ``mu_t`` defaults to the bound
    game's marginal means, so ``drift=0`` reproduces a Gaussian fit of
    the stationary world and positive drift steadily inflates the alert
    volume the defender must re-learn.

    Parameters
    ----------
    drift:
        Relative mean change per period (e.g. ``0.1`` = +10% of the
        initial mean every period; negative values shrink the stream).
    std_scale:
        Multiplier on the per-type standard deviations.
    coverage:
        Truncation coverage of each per-period Gaussian.
    """

    def __init__(
        self,
        game: AuditGame,
        *,
        drift: float = 0.1,
        std_scale: float = 1.0,
        coverage: float = 0.995,
    ) -> None:
        if std_scale <= 0:
            raise ValueError(f"std_scale must be > 0, got {std_scale}")
        if not 0.5 < coverage < 1.0:
            raise ValueError(
                f"coverage must be in (0.5, 1), got {coverage}"
            )
        self.drift = float(drift)
        self.coverage = float(coverage)
        self._means = np.array(
            [m.mean() for m in game.counts.marginals], dtype=np.float64
        )
        self._stds = np.array(
            [max(m.std(), 0.5) * std_scale for m in game.counts.marginals],
            dtype=np.float64,
        )

    def means_at(self, period: int) -> np.ndarray:
        """The true per-type means in effect during ``period``."""
        return np.maximum(
            self._means * (1.0 + self.drift * period), 0.0
        )

    def counts(
        self, period: int, rng: np.random.Generator
    ) -> np.ndarray:
        means = self.means_at(period)
        out = np.empty(len(means), dtype=np.int64)
        for t, (mean, std) in enumerate(zip(means, self._stds, strict=True)):
            model = DiscretizedGaussian(
                float(mean), float(std), coverage=self.coverage
            )
            out[t] = int(model.sample(rng, 1)[0])
        return out


@EVENT_SOURCES.register(
    "tdmt-emr",
    summary="replay a simulated EMR access log through the TDMT engine",
)
class TDMTEMRSource:
    """TDMT-labeled access stream from the synthetic EMR world.

    Builds the Rea A world once, simulates an ``n_periods``-day raw
    access log (with the paper's 79.5% repeated accesses), repeat-filters
    and rule-labels it, and serves each day's per-type alert counts in
    order.  Requires the bound game to use the seven Table VIII composite
    types (i.e. a ``rea_a`` game); running past the simulated horizon
    wraps around.

    Parameters
    ----------
    n_periods:
        Days of raw log to simulate up front.
    seed:
        World/log seed.  The log is fixed at construction, so two sources
        with equal parameters replay identical streams regardless of the
        simulator's rng.
    """

    def __init__(
        self,
        game: AuditGame,
        *,
        n_periods: int = 28,
        seed: int = 20180417,
    ) -> None:
        if n_periods <= 0:
            raise ValueError(
                f"n_periods must be positive, got {n_periods}"
            )
        if game.n_types != len(EMR_TYPE_NAMES):
            raise ValueError(
                "tdmt-emr source expects the 7-type Rea A game, got "
                f"{game.n_types} types"
            )
        world = build_emr_world(EMRConfig(n_days=n_periods, seed=seed))
        log = simulate_emr_log(world)
        distinct, _ = filter_repeated_accesses(log.events)
        alerts = world.engine.label_events(distinct)
        by_type = period_type_counts(alerts, EMR_TYPE_NAMES, n_periods)
        self._counts = np.stack(
            [by_type[name] for name in EMR_TYPE_NAMES], axis=1
        ).astype(np.int64)

    @property
    def n_periods(self) -> int:
        return int(self._counts.shape[0])

    def counts(
        self, period: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self._counts[period % self.n_periods].copy()
