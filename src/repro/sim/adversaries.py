"""Adversary models: how attackers move against the deployed policy.

The paper's one-shot game assumes every adversary best-responds to the
published mixed policy.  In the repeated setting that is one point in a
spectrum; the simulator ships three plugins:

* ``best-response`` — the paper's fully rational attacker, re-computed
  against each period's freshly deployed policy (adaptive);
* ``static`` — commits to the best response against the *first* deployed
  policy and never adapts (the non-strategic attacker the baselines
  implicitly assume);
* ``quantal`` — the bounded-rationality extension of
  :mod:`repro.extensions.quantal`: victims are sampled from the logit
  choice distribution, so even deterred attackers occasionally attack.

Each plugin maps a period's :class:`~repro.core.objective.PolicyEvaluation`
(computed against the deployed policy) to one victim index per adversary,
with :data:`REFRAIN` (-1) meaning "do not attack this period".
"""

from __future__ import annotations

import math

import numpy as np

from ..core.game import AuditGame
from ..core.objective import REFRAIN, PolicyEvaluation
from ..extensions.quantal import quantal_response_distribution
from .registry import ADVERSARIES

__all__ = [
    "REFRAIN",
    "BestResponseAdversary",
    "StaticAdversary",
    "QuantalAdversary",
]


@ADVERSARIES.register(
    "best-response",
    summary="fully rational: best-responds to each period's policy",
    aliases=("rational",),
)
class BestResponseAdversary:
    """The paper's attacker, re-optimizing every period (adaptive).

    Needs nothing from the game: the per-period evaluation already
    carries the best responses.
    """

    def __init__(self, game: AuditGame) -> None:
        pass

    def choose(
        self,
        period: int,
        evaluation: PolicyEvaluation,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return np.array(
            [r.victim for r in evaluation.responses], dtype=np.int64
        )


@ADVERSARIES.register(
    "static",
    summary="commits to the period-0 best response forever",
)
class StaticAdversary:
    """Non-adaptive: locks in the best response to the first policy.

    Models attackers who scouted the defense once and never revisit it —
    the gap between this and ``best-response`` measures how much of the
    defender's loss comes from attacker adaptivity.
    """

    def __init__(self, game: AuditGame) -> None:
        self._committed: np.ndarray | None = None

    def choose(
        self,
        period: int,
        evaluation: PolicyEvaluation,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if self._committed is None:
            self._committed = np.array(
                [r.victim for r in evaluation.responses], dtype=np.int64
            )
        return self._committed.copy()


@ADVERSARIES.register(
    "quantal",
    summary="logit quantal response with tunable rationality",
    aliases=("boundedly-rational",),
)
class QuantalAdversary:
    """Bounded rationality: victims sampled from the logit distribution.

    ``rationality -> inf`` recovers ``best-response``; ``0`` attacks
    uniformly at random.  Refraining enters with utility 0 whenever the
    game allows it.
    """

    def __init__(
        self, game: AuditGame, *, rationality: float = 2.0
    ) -> None:
        if not math.isfinite(rationality) or rationality < 0:
            # inf would turn the softmax logits into NaN mid-period;
            # use the best-response adversary for the rational limit.
            raise ValueError(
                "rationality must be finite and >= 0, got "
                f"{rationality}"
            )
        self._game = game
        self.rationality = float(rationality)

    def choose(
        self,
        period: int,
        evaluation: PolicyEvaluation,
        rng: np.random.Generator,
    ) -> np.ndarray:
        choice = quantal_response_distribution(
            evaluation.expected_utilities,
            self.rationality,
            self._game.payoffs.attackers_can_refrain,
        )
        n_victims = choice.shape[1] - 1
        out = np.empty(choice.shape[0], dtype=np.int64)
        for e in range(choice.shape[0]):
            pick = int(rng.choice(choice.shape[1], p=choice[e]))
            out[e] = REFRAIN if pick == n_victims else pick
        return out
