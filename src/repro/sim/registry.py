"""String-keyed plugin registries for the simulator.

The simulator composes three pluggable behaviors per run — where alerts
come from (:mod:`repro.sim.sources`), how the defender re-estimates the
count distributions from them (:mod:`repro.sim.estimators`) and how the
attackers pick their moves (:mod:`repro.sim.adversaries`).  Each kind has
its own :class:`PluginRegistry`, mirroring the solver registry of
:mod:`repro.engine.registry`: plugins self-register under a string name
with a decorator, and the simulator (or the CLI) resolves names to
factories at run time.

Every factory is called as ``factory(game=game, **options)`` and must
return an object satisfying the corresponding protocol in
:mod:`repro.sim.simulator`.  Register your own with, e.g.::

    from repro.sim import EVENT_SOURCES

    @EVENT_SOURCES.register("replay", summary="replay a recorded log")
    class ReplaySource:
        def __init__(self, game, *, path):
            ...
        def counts(self, period, rng):
            ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

__all__ = [
    "PluginSpec",
    "PluginRegistry",
    "ADVERSARIES",
    "ESTIMATORS",
    "EVENT_SOURCES",
]


@dataclass(frozen=True)
class PluginSpec:
    """One registry entry: the factory plus its metadata."""

    name: str
    factory: Callable[..., object]
    summary: str
    aliases: tuple[str, ...] = ()


class PluginRegistry:
    """A named family of simulator plugins (sources, estimators, ...)."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._specs: dict[str, PluginSpec] = {}
        self._aliases: dict[str, str] = {}

    def register(
        self,
        name: str,
        *,
        summary: str = "",
        aliases: tuple[str, ...] = (),
    ) -> Callable[[Callable[..., object]], Callable[..., object]]:
        """Class/function decorator adding a plugin under ``name``."""

        def decorator(
            factory: Callable[..., object]
        ) -> Callable[..., object]:
            for key in (name, *aliases):
                if key in self._specs or key in self._aliases:
                    raise ValueError(
                        f"{self.kind} plugin {key!r} is already registered"
                    )
            self._specs[name] = PluginSpec(
                name=name,
                factory=factory,
                summary=summary,
                aliases=tuple(aliases),
            )
            for alias in aliases:
                self._aliases[alias] = name
            return factory

        return decorator

    def available(self) -> tuple[str, ...]:
        """Canonical plugin names, sorted."""
        return tuple(sorted(self._specs))

    def get(self, name: str) -> PluginSpec:
        """Resolve a name or alias to its :class:`PluginSpec`."""
        canonical = self._aliases.get(name, name)
        spec = self._specs.get(canonical)
        if spec is None:
            raise KeyError(
                f"no {self.kind} plugin registered under {name!r}; "
                f"available: {', '.join(self.available())}"
            )
        return spec

    def create(
        self,
        name: str,
        game: object,
        options: Mapping[str, object] | None = None,
    ) -> object:
        """Instantiate a plugin: ``factory(game=game, **options)``.

        A bad option name surfaces as a ``TypeError`` naming the plugin,
        so CLI typos read as configuration errors, not tracebacks.
        """
        spec = self.get(name)
        try:
            return spec.factory(game=game, **dict(options or {}))
        except TypeError as exc:
            raise TypeError(
                f"{self.kind} plugin {spec.name!r}: {exc}"
            ) from exc

    def table(self) -> str:
        """Overview text: one ``name (aliases)  summary`` row per plugin."""
        rows = []
        for name in self.available():
            spec = self._specs[name]
            label = name
            if spec.aliases:
                label += f" ({', '.join(spec.aliases)})"
            rows.append((label, spec.summary))
        width = max((len(label) for label, _ in rows), default=0)
        return "\n".join(
            f"{label.ljust(width)}  {summary}".rstrip()
            for label, summary in rows
        )


#: How attackers behave each period (see :mod:`repro.sim.adversaries`).
ADVERSARIES = PluginRegistry("adversary")

#: How ``F_t`` is re-estimated from the alert stream
#: (see :mod:`repro.sim.estimators`).
ESTIMATORS = PluginRegistry("estimator")

#: Where each period's benign alerts come from
#: (see :mod:`repro.sim.sources`).
EVENT_SOURCES = PluginRegistry("event source")
