"""Per-period simulation records and the trajectory report.

Every period of an :class:`~repro.sim.simulator.AuditSimulator` run is
captured as one frozen :class:`PeriodRecord`; the full run is a
:class:`Trajectory` with aggregate metrics and a paper-style text
rendering built on :mod:`repro.analysis.reporting`.

Equality of records (and hence trajectories) compares the *decision*
trajectory — realized counts, thresholds, deployed ordering, attack
outcomes, losses, budgets — and ignores wall-clock and cache-counter
diagnostics, so "same seed ⇒ same trajectory" is a meaningful
``traj_a == traj_b`` check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..analysis.reporting import format_thresholds, render_table
from ..core.objective import REFRAIN

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from .simulator import SimConfig

__all__ = ["AttackOutcome", "PeriodRecord", "Trajectory"]


@dataclass(frozen=True)
class AttackOutcome:
    """One adversary's realized move and payoff in one period.

    ``victim`` is :data:`REFRAIN` when the adversary chose not to
    attack; ``detected`` is then False and ``utility`` 0.
    """

    adversary: int
    victim: int
    detected: bool
    utility: float

    @property
    def refrained(self) -> bool:
        return self.victim == REFRAIN


@dataclass(frozen=True)
class PeriodRecord:
    """Everything that happened in one audit period.

    Attributes
    ----------
    period:
        0-based period index.
    budget:
        Budget in effect this period (base + any carry-over).
    objective:
        The solver's expected auditor loss under the *estimated*
        distributions (what the defender believed it would lose).
    realized_loss:
        Prior-weighted sum of the adversaries' realized utilities (what
        the defender actually lost this period).
    realized_counts:
        The benign alert counts ``Z_t`` the event source produced.
    thresholds:
        Deployed threshold vector ``b``.
    ordering:
        The pure ordering sampled from the mixed policy for deployment.
    attacks:
        One :class:`AttackOutcome` per adversary.
    spent:
        Audit budget actually consumed on the realized counts.
    refit:
        True when the estimator changed the count model this period
        (a warm-started engine is invalidated exactly on these periods).
    lp_calls:
        Threshold-pricing requests reported by the solver for this
        period's solve.  A memoized period echoes the diagnostics of
        the solve it replayed, keeping warm records bit-identical to
        cold ones.
    solve_seconds, cache_hits, memoized:
        Wall-clock, engine-cache and solve-memo diagnostics; excluded
        from record equality.  ``memoized`` is True when the period
        reused a previous period's solve outright (same count model,
        same budget) instead of re-running the solver.
    """

    period: int
    budget: float
    objective: float
    realized_loss: float
    realized_counts: tuple[int, ...]
    thresholds: tuple[float, ...]
    ordering: tuple[int, ...]
    attacks: tuple[AttackOutcome, ...]
    spent: float
    refit: bool
    lp_calls: int
    solve_seconds: float = field(compare=False)
    cache_hits: int = field(compare=False)
    memoized: bool = field(compare=False)

    @property
    def n_attacks(self) -> int:
        return sum(1 for a in self.attacks if not a.refrained)

    @property
    def n_detected(self) -> int:
        return sum(1 for a in self.attacks if a.detected)

    @property
    def n_refrained(self) -> int:
        return sum(1 for a in self.attacks if a.refrained)

    @property
    def leftover(self) -> float:
        """Unspent audit budget (candidate carry-over)."""
        return max(self.budget - self.spent, 0.0)


@dataclass(frozen=True)
class Trajectory:
    """A full multi-period simulation run."""

    records: tuple[PeriodRecord, ...]
    config: "SimConfig"
    game_description: str

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("trajectory must cover at least one period")

    @property
    def n_periods(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def objectives(self) -> tuple[float, ...]:
        """Per-period expected auditor loss (solver objective)."""
        return tuple(r.objective for r in self.records)

    def realized_losses(self) -> tuple[float, ...]:
        return tuple(r.realized_loss for r in self.records)

    @property
    def mean_objective(self) -> float:
        return float(np.mean(self.objectives()))

    @property
    def mean_realized_loss(self) -> float:
        return float(np.mean(self.realized_losses()))

    @property
    def detection_rate(self) -> float:
        """Detected attacks over mounted attacks (0 when none mounted)."""
        attacks = sum(r.n_attacks for r in self.records)
        detected = sum(r.n_detected for r in self.records)
        return detected / attacks if attacks else 0.0

    @property
    def deterrence_rate(self) -> float:
        """Fraction of adversary-periods that refrained."""
        total = sum(len(r.attacks) for r in self.records)
        refrained = sum(r.n_refrained for r in self.records)
        return refrained / total if total else 0.0

    @property
    def n_refits(self) -> int:
        return sum(1 for r in self.records if r.refit)

    @property
    def total_lp_calls(self) -> int:
        return sum(r.lp_calls for r in self.records)

    @property
    def total_solve_seconds(self) -> float:
        return float(sum(r.solve_seconds for r in self.records))

    @property
    def total_cache_hits(self) -> int:
        return sum(r.cache_hits for r in self.records)

    @property
    def n_memoized(self) -> int:
        """Periods that replayed a previous solve instead of re-solving."""
        return sum(1 for r in self.records if r.memoized)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def to_text(self, type_names: Sequence[str] | None = None) -> str:
        """Full per-period table plus the summary block."""
        rows = []
        for r in self.records:
            rows.append(
                (
                    r.period,
                    f"{r.budget:g}",
                    f"{r.objective:.4f}",
                    f"{r.realized_loss:.4f}",
                    "[" + ",".join(str(c) for c in r.realized_counts)
                    + "]",
                    format_thresholds(r.thresholds),
                    f"{r.n_attacks}/{len(r.attacks)}",
                    str(r.n_detected),
                    f"{r.spent:g}",
                    "*" if r.refit else "",
                    str(r.lp_calls),
                )
            )
        table = render_table(
            (
                "t", "B", "E[loss]", "loss", "Z", "thresholds",
                "attacks", "det", "spent", "refit", "LPs",
            ),
            rows,
        )
        return "\n".join([table, "", self.summary(type_names)])

    def summary(self, type_names: Sequence[str] | None = None) -> str:
        """Aggregate one-paragraph report."""
        lines = [
            f"{self.game_description}",
            f"simulated {self.n_periods} periods "
            f"(solver={self.config.solver}, source={self.config.source}, "
            f"estimator={self.config.estimator}, "
            f"adversary={self.config.adversary}, "
            f"warm_start={self.config.warm_start})",
            f"mean expected loss {self.mean_objective:.4f}, "
            f"mean realized loss {self.mean_realized_loss:.4f}",
            f"detection rate {self.detection_rate:.1%}, "
            f"deterrence rate {self.deterrence_rate:.1%}, "
            f"{self.n_refits} distribution refits",
            f"{self.total_lp_calls} threshold pricings, "
            f"{self.n_memoized} periods served from the warm solve "
            f"memo ({self.total_cache_hits} pricing-cache hits), "
            f"{self.total_solve_seconds:.2f}s solving",
        ]
        if type_names is not None:
            final = self.records[-1]
            named = ", ".join(
                f"{name}={value:g}"
                for name, value in zip(type_names, final.thresholds, strict=True)
            )
            lines.append(f"final thresholds: {named}")
        return "\n".join(lines)
