"""The multi-period audit-operations simulator.

Closes the production loop the paper's Section II-A implies: each
period, an event source produces the benign alert stream, a distribution
estimator refits the count models from it, the defender re-solves the
Optimal Auditing Problem through a (warm-started) engine, a pure
ordering is sampled from the mixed policy and deployed, the adversary
model moves against the deployed policy, and the realized detections,
utilities and budget consumption are recorded.

Determinism: one ``numpy`` generator seeded with ``SimConfig.seed``
drives every stochastic step (event draws, ordering deployment,
adversary sampling, detection coin flips) in a fixed order, and solver
randomness is governed separately by the engine seed — so equal
configurations reproduce trajectories bit for bit, and warm-started runs
equal cold ones (solving never touches the trajectory rng, and the
engine's cache guarantees warm solves match cold solves exactly).

Warm starting: the simulator keeps one :class:`~repro.engine.AuditEngine`
per distinct ``(count model, budget)`` pair, plus a per-engine memo of
the solve itself.  Estimators return the *same* model object while
their estimate is unchanged, so a period whose (model, budget) pair was
seen before replays that solve outright — guaranteed identical by
solver determinism.  Scenario and fixed-solution caches are per engine:
a refit produces a new model and therefore a cold engine, so warm
starting pays off exactly when pairs recur (stationary stretches,
``refit_every > 1``, carry-over budgets cycling back).
``warm_start=False`` builds a fresh engine every period instead (the
cold baseline ``benchmarks/bench_sim_replay.py`` measures against).
"""

from __future__ import annotations

import dataclasses
import time
import typing
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from .. import faults, obs
from ..core.detection import audited_counts, pal_for_ordering
from ..core.game import AuditGame
from ..core.objective import REFRAIN, PolicyEvaluation
from ..distributions.joint import JointCountModel, ScenarioSet
from ..engine import AuditEngine
from ..engine import registry as engine_registry
from ..engine.config import coerce_value
from .registry import ADVERSARIES, ESTIMATORS, EVENT_SOURCES
from .trajectory import AttackOutcome, PeriodRecord, Trajectory

__all__ = [
    "AdversaryModel",
    "DistributionEstimator",
    "EventSource",
    "SimConfig",
    "AuditSimulator",
    "simulate",
]


@typing.runtime_checkable
class EventSource(typing.Protocol):
    """Ground truth: realized benign alert counts per period."""

    def counts(
        self, period: int, rng: np.random.Generator
    ) -> np.ndarray: ...


@typing.runtime_checkable
class DistributionEstimator(typing.Protocol):
    """Online learner mapping observed counts to a count model."""

    def observe(self, period: int, counts: np.ndarray) -> None: ...

    def model(self) -> JointCountModel: ...


@typing.runtime_checkable
class AdversaryModel(typing.Protocol):
    """Attack chooser: one victim index (or REFRAIN) per adversary."""

    def choose(
        self,
        period: int,
        evaluation: PolicyEvaluation,
        rng: np.random.Generator,
    ) -> np.ndarray: ...


@dataclass(frozen=True)
class SimConfig:
    """Complete tuning surface of one simulation run.

    Attributes
    ----------
    n_periods:
        Audit periods to simulate.
    seed:
        Trajectory seed (event draws, deployment, adversary, detection).
    solver, solver_options:
        Registry solver re-run each period and its config overrides.
    source, source_options / estimator, estimator_options /
    adversary, adversary_options:
        Plugin names from :data:`~repro.sim.registry.EVENT_SOURCES`,
        :data:`~repro.sim.registry.ESTIMATORS` and
        :data:`~repro.sim.registry.ADVERSARIES`, plus their keyword
        options.
    warm_start:
        Reuse engines (and their caches) across periods with unchanged
        distributions; False re-solves cold every period.  Results are
        identical either way.
    budget_carryover:
        Roll unspent audit budget into the next period.
    carryover_cap:
        Upper bound on the rolled-over amount (None = uncapped).
    solver_seed:
        Seed for solver randomness (kept separate from the trajectory
        seed so re-solves never perturb the simulated world).
    n_samples, backend, workers:
        Engine construction parameters.
    """

    n_periods: int = 12
    seed: int = 0
    solver: str = "ishm"
    solver_options: Mapping[str, object] = field(default_factory=dict)
    source: str = "model"
    source_options: Mapping[str, object] = field(default_factory=dict)
    estimator: str = "fixed"
    estimator_options: Mapping[str, object] = field(default_factory=dict)
    adversary: str = "best-response"
    adversary_options: Mapping[str, object] = field(default_factory=dict)
    warm_start: bool = True
    budget_carryover: bool = False
    carryover_cap: float | None = None
    solver_seed: int = 0
    n_samples: int = 2000
    backend: str = "scipy"
    workers: int = 1

    def __post_init__(self) -> None:
        if self.n_periods < 1:
            raise ValueError(
                f"n_periods must be >= 1, got {self.n_periods}"
            )
        if self.carryover_cap is not None and self.carryover_cap < 0:
            raise ValueError(
                f"carryover_cap must be >= 0, got {self.carryover_cap}"
            )

    @classmethod
    def from_pairs(
        cls, pairs: Mapping[str, str]
    ) -> "SimConfig":
        """Build from flat CLI-style ``k=v`` string pairs.

        Plain keys are coerced onto :class:`SimConfig` fields; dotted
        keys route to plugin options — ``source.drift=0.2`` becomes
        ``source_options={"drift": "0.2"}`` (plugins receive strings and
        the registries coerce them against constructor annotations).
        """
        hints = typing.get_type_hints(cls)
        fields = {f.name for f in dataclasses.fields(cls)}
        plain: dict[str, object] = {}
        nested: dict[str, dict[str, str]] = {}
        for key, value in pairs.items():
            scope, dot, option = key.partition(".")
            if dot:
                if scope not in ("source", "estimator", "adversary",
                                 "solver"):
                    raise ValueError(
                        f"unknown plugin scope {scope!r} in option "
                        f"{key!r}; use source./estimator./adversary./"
                        "solver."
                    )
                if not option:
                    raise ValueError(f"empty option name in {key!r}")
                nested.setdefault(scope, {})[option] = value
            elif key.endswith("_options") and key in fields:
                # A flat string cannot populate an options mapping;
                # insist on the dotted form so the mistake is caught
                # here, not as a crash deep inside plugin construction.
                scope = key[: -len("_options")]
                raise ValueError(
                    f"{key} cannot be set directly; use dotted options "
                    f"like {scope}.<option>=<value>"
                )
            elif key in fields:
                plain[key] = (
                    coerce_value(value, hints[key])
                    if isinstance(value, str)
                    else value
                )
            else:
                raise ValueError(
                    f"SimConfig has no option {key!r}; valid options: "
                    f"{', '.join(sorted(fields))}"
                )
        for scope, options in nested.items():
            plain[f"{scope}_options"] = options
        return cls(**plain)

    def replace(self, **changes: object) -> "SimConfig":
        """Functional update (alias for :func:`dataclasses.replace`)."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        """``k=v`` one-liner used by the CLI artifact."""
        pairs = (
            f"{f.name}={getattr(self, f.name)!r}"
            for f in dataclasses.fields(self)
        )
        return f"SimConfig({', '.join(pairs)})"


def _coerced_options(
    factory: object, options: Mapping[str, object]
) -> dict[str, object]:
    """Coerce string-valued plugin options via factory annotations.

    Classes are inspected through ``__init__``; function factories are
    inspected directly (``getattr(factory, "__init__")`` would find
    ``object.__init__`` and silently skip coercion for them).
    """
    init = factory.__init__ if isinstance(factory, type) else factory
    try:
        hints = typing.get_type_hints(init)
    except Exception:  # pragma: no cover - exotic factories
        hints = {}
    out: dict[str, object] = {}
    for key, value in options.items():
        if isinstance(value, str) and key in hints:
            out[key] = coerce_value(value, hints[key])
        else:
            out[key] = value
    return out


class AuditSimulator:
    """Seedable multi-period simulator bound to one audit game.

    Parameters
    ----------
    game:
        The ground-truth audit game.  Its budget is the per-period base
        budget; its count model seeds the estimators and (for the
        ``model`` source) defines the true alert stream.
    config:
        A :class:`SimConfig`, or None for defaults; keyword overrides
        update individual fields, so quick runs read naturally:
        ``AuditSimulator(game, n_periods=6, estimator="rolling-empirical")``.
    """

    #: Engines kept alive at once under ``warm_start`` (an engine per
    #: distinct count model x budget; rolling estimators with carry-over
    #: could otherwise pin unbounded scenario sets).
    MAX_ENGINES = 4

    def __init__(
        self,
        game: AuditGame,
        config: SimConfig | None = None,
        **overrides: object,
    ) -> None:
        if config is None:
            config = SimConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.game = game
        self.config = config
        # Sources are stateless by contract (all state is passed in), so
        # the possibly-expensive construction (e.g. the TDMT world build)
        # happens once; estimators and adversaries are stateful and are
        # built fresh inside every run() instead — but their names and
        # options are resolved and validated here, so configuration
        # mistakes fail at construction, not periods into a run.
        source_spec = EVENT_SOURCES.get(config.source)
        self._source: EventSource = EVENT_SOURCES.create(
            config.source,
            game,
            _coerced_options(source_spec.factory, config.source_options),
        )
        estimator_spec = ESTIMATORS.get(config.estimator)
        self._estimator_options = _coerced_options(
            estimator_spec.factory, config.estimator_options
        )
        adversary_spec = ADVERSARIES.get(config.adversary)
        self._adversary_options = _coerced_options(
            adversary_spec.factory, config.adversary_options
        )
        # Throwaway instances: surface bad option values now.
        ESTIMATORS.create(
            config.estimator, game, self._estimator_options
        )
        ADVERSARIES.create(
            config.adversary, game, self._adversary_options
        )
        # Same fail-fast treatment for the per-period solver: resolve
        # the registry name and materialize its typed config once, so
        # an unknown solver or a bad option exits before period 0.
        engine_registry.make_config(
            engine_registry.get_solver(config.solver),
            dict(config.solver_options),
        )
        self._engines: dict[tuple[int, float], AuditEngine] = {}
        # Per-engine memo of (SolveResult, PolicyEvaluation): the solver
        # and its config are fixed for the simulator's lifetime, and
        # re-solving an unchanged engine is guaranteed to reproduce the
        # same result, so periods between refits skip the probe loop
        # entirely.  Entries live and die with their engine (evicted
        # together, cleared on every cold-mode rebuild), which also
        # guards against id() reuse after an engine is freed.
        self._solve_memo: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Engine lifecycle (the warm-start machinery)
    # ------------------------------------------------------------------

    def _engine_for(
        self, model: JointCountModel, budget: float
    ) -> AuditEngine:
        cfg = self.config
        # Exact float key: engines are built with the exact budget, so
        # any rounding here could hand a carry-over period an engine
        # solved at a subtly different budget than the cold path uses.
        key = (id(model), float(budget))
        if not cfg.warm_start:
            self.close()
            self._engines.clear()
            self._solve_memo.clear()
        engine = self._engines.get(key)
        if engine is not None:
            # LRU refresh: re-insert so eviction drops the coldest
            # engine, not the oldest (carry-over budgets can cycle).
            self._engines[key] = self._engines.pop(key)
        else:
            game = self.game.with_budget(budget)
            if model is not self.game.counts:
                game = dataclasses.replace(game, counts=model)
            engine = AuditEngine(
                game,
                backend=cfg.backend,
                seed=cfg.solver_seed,
                workers=cfg.workers,
                n_samples=cfg.n_samples,
            )
            self._engines[key] = engine
            while len(self._engines) > self.MAX_ENGINES:
                evicted = self._engines.pop(next(iter(self._engines)))
                self._solve_memo.pop(id(evicted), None)
                evicted.close()
        return engine

    def _cache_hits(self) -> int:
        return sum(
            e.cache_info().solution_hits for e in self._engines.values()
        )

    def close(self) -> None:
        """Shut down every engine's worker pool (engines stay usable)."""
        for engine in self._engines.values():
            engine.close()

    def __enter__(self) -> "AuditSimulator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The period loop
    # ------------------------------------------------------------------

    def run(self) -> Trajectory:
        """Simulate ``config.n_periods`` periods and return the trajectory.

        Repeated calls are independent replays: estimator and adversary
        state is rebuilt per run, so equal seeds reproduce equal
        trajectories even on a reused (warm) simulator.
        """
        cfg = self.config
        estimator: DistributionEstimator = ESTIMATORS.create(
            cfg.estimator, self.game, self._estimator_options
        )
        adversary: AdversaryModel = ADVERSARIES.create(
            cfg.adversary, self.game, self._adversary_options
        )
        rng = np.random.default_rng(cfg.seed)
        base_budget = float(self.game.budget)
        budget = base_budget
        # Until the first refit the defender plays the game's prior model.
        previous_model: JointCountModel = self.game.counts
        records: list[PeriodRecord] = []
        # Last successfully served (result, evaluation): the online
        # degradation of the drift loop — when a period's re-solve
        # fails transiently the defender keeps acting on the previous
        # period's policy instead of aborting the run.
        last_served: tuple | None = None

        for period in range(cfg.n_periods):
            # 1. The world produces this period's benign alert stream.
            realized = np.asarray(
                self._source.counts(period, rng), dtype=np.int64
            )
            if realized.shape != (self.game.n_types,):
                raise ValueError(
                    f"event source returned shape {realized.shape}, "
                    f"expected ({self.game.n_types},)"
                )

            # 2. The defender re-estimates the distributions from it.
            estimator.observe(period, realized)
            model = estimator.model()
            refit = model is not previous_model
            previous_model = model
            obs.counter("repro_sim_periods_total")
            if refit:
                obs.counter("repro_sim_refits_total")

            # 3. Re-solve through the (warm) engine.  An engine seen
            # before (same model, same budget) would reproduce its
            # previous result exactly, so the memo skips the re-solve.
            engine = self._engine_for(model, budget)
            hits_before = self._cache_hits()
            started = time.perf_counter()
            with obs.span("sim.period", period=period, refit=refit):
                memoized = self._solve_memo.get(id(engine))
                if memoized is None:
                    try:
                        faults.point("sim.solve")
                        result = engine.solve(
                            cfg.solver, dict(cfg.solver_options)
                        )
                        evaluation = engine.evaluate(result.policy)
                        self._solve_memo[id(engine)] = (
                            result,
                            evaluation,
                        )
                    except Exception:
                        # No policy served yet: nothing to fall back
                        # to, so the first-period failure still aborts.
                        if last_served is None:
                            raise
                        obs.counter("repro_sim_solve_failures_total")
                        result, evaluation = last_served
                else:
                    result, evaluation = memoized
            last_served = (result, evaluation)
            solve_seconds = time.perf_counter() - started
            obs.observe(
                "repro_sim_solve_seconds",
                solve_seconds,
                memoized=memoized is not None,
            )

            # 4. Deploy: sample one pure ordering from the mixed policy.
            ordering = result.policy.sample_ordering(rng)
            thresholds = result.policy.thresholds

            # 5. Realized audit on the true counts.
            realized_set = ScenarioSet(
                counts=realized[None, :],
                weights=np.array([1.0]),
            )
            pal = pal_for_ordering(
                ordering,
                thresholds,
                realized_set,
                self.game.costs,
                budget,
                self.game.zero_count_rule,
            )
            pat = self.game.attack_map.detection_probability(pal)
            audited = audited_counts(
                ordering,
                thresholds,
                realized[None, :],
                self.game.costs,
                budget,
            )[0]
            spent = float(audited @ self.game.costs)

            # 6. The adversary moves against the deployed policy.
            victims = np.asarray(
                adversary.choose(period, evaluation, rng),
                dtype=np.int64,
            )
            if victims.shape != (self.game.n_adversaries,):
                raise ValueError(
                    f"adversary returned shape {victims.shape}, "
                    f"expected ({self.game.n_adversaries},)"
                )
            payoffs = self.game.payoffs
            outcomes: list[AttackOutcome] = []
            utilities = np.zeros(self.game.n_adversaries)
            for e, victim in enumerate(victims):
                victim = int(victim)
                if victim == REFRAIN:
                    outcomes.append(
                        AttackOutcome(
                            adversary=e,
                            victim=REFRAIN,
                            detected=False,
                            utility=0.0,
                        )
                    )
                    continue
                if not 0 <= victim < self.game.n_victims:
                    raise ValueError(
                        f"adversary {e} chose invalid victim {victim}"
                    )
                detected = bool(rng.random() < pat[e, victim])
                if detected:
                    utility = float(
                        -payoffs.penalty[e, victim]
                        - payoffs.attack_cost[e, victim]
                    )
                else:
                    utility = float(
                        payoffs.benefit[e, victim]
                        - payoffs.attack_cost[e, victim]
                    )
                utilities[e] = utility
                outcomes.append(
                    AttackOutcome(
                        adversary=e,
                        victim=victim,
                        detected=detected,
                        utility=utility,
                    )
                )
            realized_loss = float(payoffs.attack_prior @ utilities)

            records.append(
                PeriodRecord(
                    period=period,
                    budget=budget,
                    objective=float(result.objective),
                    realized_loss=realized_loss,
                    realized_counts=tuple(
                        int(c) for c in realized
                    ),
                    thresholds=tuple(float(b) for b in thresholds),
                    ordering=tuple(int(t) for t in ordering),
                    attacks=tuple(outcomes),
                    spent=spent,
                    refit=refit,
                    lp_calls=int(
                        result.diagnostics.get("lp_calls", 0)
                    ),
                    solve_seconds=solve_seconds,
                    # Evicting an engine forgets its counters, so clamp.
                    cache_hits=max(self._cache_hits() - hits_before, 0),
                    memoized=memoized is not None,
                )
            )

            # 7. Budget carry-over into the next period.
            if cfg.budget_carryover:
                leftover = max(budget - spent, 0.0)
                if cfg.carryover_cap is not None:
                    leftover = min(leftover, cfg.carryover_cap)
                budget = base_budget + leftover
            else:
                budget = base_budget

        return Trajectory(
            records=tuple(records),
            config=cfg,
            game_description=self.game.describe(),
        )


def simulate(
    game: AuditGame,
    config: SimConfig | None = None,
    **overrides: object,
) -> Trajectory:
    """One-shot convenience: build a simulator, run it, close it."""
    with AuditSimulator(game, config, **overrides) as simulator:
        return simulator.run()
