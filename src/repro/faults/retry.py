"""Retry with deterministic exponential backoff, plus hard deadlines.

:class:`RetryPolicy` is a frozen value object: the backoff for attempt
``k`` is a pure function of ``(seed, k)`` — the jitter draw comes from
``np.random.default_rng((seed, attempt))`` — so retry schedules are
reproducible run-to-run, matching the determinism contract of the rest
of the stack.  The serve layer applies it around background re-solves
(async, via ``asyncio.wait_for``); :meth:`RetryPolicy.call` and
:func:`call_with_timeout` cover synchronous callers.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, TypeVar

import numpy as np

__all__ = ["RetryPolicy", "call_with_timeout"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    Attributes
    ----------
    max_attempts:
        Total tries, including the first (``1`` disables retrying).
    backoff_base:
        Sleep before the second attempt, in seconds.
    backoff_factor:
        Multiplier per further attempt (exponential).
    backoff_max:
        Cap on the un-jittered backoff.
    jitter:
        Fractional jitter: the sleep is scaled by a factor in
        ``[1, 1 + jitter]`` drawn deterministically from
        ``(seed, attempt)`` — spreads thundering herds without
        sacrificing reproducibility.
    timeout:
        Optional per-attempt deadline in seconds; enforced by the
        caller (``asyncio.wait_for`` in the serve layer,
        :func:`call_with_timeout` synchronously).
    seed:
        Jitter seed.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1
    timeout: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(
                f"timeout must be positive or None, got {self.timeout}"
            )

    def backoff(self, attempt: int) -> float:
        """Sleep (seconds) after failed attempt ``attempt`` (0-based).

        Deterministic: equal ``(policy, attempt)`` always yields the
        same value, with no RNG state carried between calls.
        """
        base = min(
            self.backoff_base * self.backoff_factor**attempt,
            self.backoff_max,
        )
        if base == 0.0 or self.jitter == 0.0:
            return base
        rng = np.random.default_rng((self.seed, attempt))
        return base * (1.0 + self.jitter * rng.random())

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` synchronously under this policy.

        Sleeps the deterministic backoff between attempts and re-raises
        the final failure.  When :attr:`timeout` is set, each attempt
        runs under :func:`call_with_timeout`.
        """
        last_exc: BaseException | None = None
        for attempt in range(self.max_attempts):
            try:
                if self.timeout is not None:
                    return call_with_timeout(fn, self.timeout)
                return fn()
            except Exception as exc:
                last_exc = exc
                if attempt + 1 >= self.max_attempts:
                    raise
            delay = self.backoff(attempt)
            if delay > 0:
                time.sleep(delay)
        raise last_exc if last_exc is not None else RuntimeError(
            "retry loop exited without result"
        )


def call_with_timeout(fn: Callable[[], T], timeout: float) -> T:
    """Run ``fn`` with a hard deadline; raise :class:`TimeoutError`.

    Runs ``fn`` on a single helper thread and abandons it on timeout
    (``shutdown(wait=False)``) — the thread cannot be killed, so ``fn``
    must be side-effect-tolerant under abandonment, which holds for the
    pure solve paths this guards.
    """
    pool = ThreadPoolExecutor(max_workers=1)
    try:
        future = pool.submit(fn)
        try:
            return future.result(timeout=timeout)
        except TimeoutError:
            future.cancel()
            raise TimeoutError(
                f"call exceeded {timeout:g}s deadline"
            ) from None
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
