"""A minimal circuit breaker for the serving layer's re-solve loop.

Closed → counts consecutive failures; at ``failure_threshold`` it
opens.  Open → callers are refused (:meth:`CircuitBreaker.allow`
returns ``False``) until ``reset_seconds`` elapse, at which point one
probe is let through (half-open).  A half-open success re-closes, a
half-open failure re-opens and restarts the cooldown.

Deliberately unlocked: the only owner in this repo is the single
``AuditService`` worker coroutine, so every transition happens on one
task.  Share one across threads and you must add your own lock (and
declare it in ``repro/devtools/lock_hierarchy.py``).
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["BREAKER_STATE_CODES", "CircuitBreaker"]

#: Numeric encoding for gauges (``repro_serve_breaker_state``).
BREAKER_STATE_CODES: dict[str, int] = {
    "closed": 0,
    "open": 1,
    "half_open": 2,
}


class CircuitBreaker:
    """Trip after consecutive failures; recover via a timed probe."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_seconds < 0:
            raise ValueError(
                f"reset_seconds must be >= 0, got {reset_seconds}"
            )
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        return self._state

    @property
    def state_code(self) -> int:
        return BREAKER_STATE_CODES[self._state]

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def allow(self) -> bool:
        """Whether the next protected call may proceed.

        Transitions open → half-open when the cooldown has elapsed, so
        calling this is what grants the recovery probe.
        """
        if self._state == self.CLOSED:
            return True
        if self._state == self.OPEN:
            if self._clock() - self._opened_at >= self.reset_seconds:
                self._state = self.HALF_OPEN
                return True
            return False
        return True  # half-open: the probe is in flight or allowed

    def record_success(self) -> None:
        self._state = self.CLOSED
        self._consecutive_failures = 0

    def record_failure(self) -> bool:
        """Count one failure; return ``True`` if this opened the breaker."""
        self._consecutive_failures += 1
        tripped = (
            self._state == self.HALF_OPEN
            or self._consecutive_failures >= self.failure_threshold
        )
        if tripped and self._state != self.OPEN:
            self._state = self.OPEN
            self._opened_at = self._clock()
            return True
        if tripped:
            self._opened_at = self._clock()
        return False
