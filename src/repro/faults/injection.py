"""Seeded, deterministic fault injection behind named points.

Library boundaries register *injection points* — one
``faults.point("engine.parallel.pool")`` call at each place a failure
can realistically enter the system (worker pools, LP backends, the
serve layer's background re-solve).  A :class:`FaultPlan` decides what
happens there: nothing (the default), an injected latency, or an
injected exception, chosen per point by probability or call index from
one seeded RNG — so a chaos run is bit-reproducible: the same plan
seed produces the same injected-failure sequence every time
(:attr:`FaultPlan.history` records it for assertion).

The module mirrors the ``REPRO_OBS`` pattern of :mod:`repro.obs`:
:func:`point` is the whole instrumented surface, and when injection is
disabled (the default) it reduces to one module-global check —
``benchmarks/bench_faults_overhead.py`` pins the disabled cost at <2%
of an engine solve.  ``REPRO_FAULTS`` in the environment enables
injection at import: ``1`` arms an empty plan, anything with a colon
or semicolon is parsed as a plan spec (see :meth:`FaultPlan.parse`)::

    REPRO_FAULTS="seed=7; engine.parallel.pool: exc=BrokenProcessPool, nth=1"
    REPRO_FAULTS="solvers.lp.scipy: p=0.25; serve.resolve: latency=0.05, exc=none"
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Iterable, Iterator

import numpy as np

__all__ = [
    "FaultInjected",
    "FaultRule",
    "FaultPlan",
    "KNOWN_POINTS",
    "active_plan",
    "disable",
    "enable",
    "enabled",
    "get_plan",
    "point",
]


class FaultInjected(RuntimeError):
    """The default exception raised by an injected fault."""


#: The injection points registered across the library, with the module
#: that hosts each (mirrored by the README's fault-tolerance table).
KNOWN_POINTS: tuple[tuple[str, str, str], ...] = (
    (
        "engine.solve",
        "repro.engine.facade",
        "entry of every registry-dispatched engine solve",
    ),
    (
        "engine.parallel.pool",
        "repro.engine.parallel",
        "parent-side pricing fan-out (a raise here models a dead pool)",
    ),
    (
        "engine.parallel.worker",
        "repro.engine.parallel",
        "worker-side chunk pricing inside the process pool",
    ),
    (
        "solvers.lp.scipy",
        "repro.solvers.lp.scipy_backend",
        "every HiGHS LP call (failure falls back to the simplex backend)",
    ),
    (
        "solvers.master.warm",
        "repro.solvers.master",
        "warm-started master re-solves (failure falls back to cold)",
    ),
    (
        "sim.solve",
        "repro.sim.simulator",
        "per-period simulator solve (failure replays last policy)",
    ),
    (
        "serve.resolve",
        "repro.serve.service",
        "background re-solve of the serving layer (retry + breaker)",
    ),
)

#: Exception types a plan spec may name (``exc=...``); ``exc=none``
#: makes a latency-only rule.
_EXCEPTIONS: dict[str, type[BaseException]] = {
    "FaultInjected": FaultInjected,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
    "TimeoutError": TimeoutError,
    "OSError": OSError,
    "MemoryError": MemoryError,
    "BrokenProcessPool": BrokenProcessPool,
}


@dataclass(frozen=True)
class FaultRule:
    """One trigger: where it fires, when it fires, what it injects.

    Attributes
    ----------
    point:
        Injection-point name or fnmatch pattern (``"solvers.*"``).
    probability:
        Per-call firing probability, drawn from the plan's seeded RNG.
        ``1.0`` (the default) fires on every matching call without
        consuming a draw, so always-on rules never shift the stream.
    nth:
        When set, ignore ``probability`` and fire exactly once, on the
        nth matching call (1-based) at that point.
    raises:
        Exception type instantiated with a descriptive message when the
        rule fires; ``None`` makes the rule latency-only.
    latency:
        Seconds slept when the rule fires (before any raise).
    """

    point: str
    probability: float = 1.0
    nth: int | None = None
    raises: type[BaseException] | None = FaultInjected
    latency: float = 0.0

    def __post_init__(self) -> None:
        if not self.point:
            raise ValueError("rule needs a non-empty point name/pattern")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.nth is not None and self.nth < 1:
            raise ValueError(f"nth is 1-based, got {self.nth}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")

    def action(self) -> str:
        """Short stable description (used in the plan history)."""
        parts = []
        if self.latency:
            parts.append(f"latency={self.latency:g}")
        if self.raises is not None:
            parts.append(f"raise={self.raises.__name__}")
        return "+".join(parts) or "noop"


class FaultPlan:
    """A seeded set of :class:`FaultRule` triggers plus their state.

    One plan owns the RNG, the per-point call counters, and the
    :attr:`history` of fired injections — so two runs of the same
    workload under equal plans (same rules, same seed) inject the same
    failures at the same call indices, which is what makes chaos tests
    assertable.  :meth:`reset` rewinds everything for the second run.
    """

    def __init__(
        self, rules: Iterable[FaultRule] = (), seed: int = 0
    ) -> None:
        self.rules = tuple(rules)
        self.seed = int(seed)
        # Rank 60 ("faults") in repro/devtools/lock_hierarchy.py: a
        # strict leaf like the obs registry lock — counters and history
        # may be touched while holding any ranked lock, and check()
        # calls back into nothing.
        self._lock = threading.Lock()
        self._rng = np.random.default_rng(self.seed)
        self._calls: dict[str, int] = {}
        self._history: list[tuple[str, int, str]] = []

    def reset(self) -> None:
        """Rewind RNG, call counters and history to construction state."""
        with self._lock:
            self._rng = np.random.default_rng(self.seed)
            self._calls.clear()
            self._history.clear()

    @property
    def history(self) -> tuple[tuple[str, int, str], ...]:
        """Fired injections as ``(point, call_index, action)`` tuples."""
        with self._lock:
            return tuple(self._history)

    def calls(self, name: str) -> int:
        """How many times ``name`` has been checked under this plan."""
        with self._lock:
            return self._calls.get(name, 0)

    # ------------------------------------------------------------------
    # The injection check
    # ------------------------------------------------------------------

    def check(self, name: str) -> None:
        """Count one pass through ``name``; sleep/raise per the rules.

        The first matching rule that triggers wins.  The RNG is drawn
        under the lock in call order, so a single-threaded workload
        replays bit-identically; the latency sleep and the raise happen
        outside the lock.
        """
        fired: FaultRule | None = None
        count = 0
        with self._lock:
            count = self._calls.get(name, 0) + 1
            self._calls[name] = count
            for rule in self.rules:
                if not fnmatchcase(name, rule.point):
                    continue
                if rule.nth is not None:
                    if count != rule.nth:
                        continue
                elif rule.probability < 1.0 and (
                    self._rng.random() >= rule.probability
                ):
                    continue
                fired = rule
                self._history.append((name, count, rule.action()))
                break
        if fired is None:
            return
        if fired.latency:
            time.sleep(fired.latency)
        if fired.raises is not None:
            raise fired.raises(
                f"injected fault at {name!r} (call {count})"
            )

    # ------------------------------------------------------------------
    # Spec parsing (the REPRO_FAULTS surface)
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a compact text spec.

        Semicolon-separated clauses; ``seed=N`` sets the plan seed, and
        every other clause is ``<point>[: key=value[, ...]]`` with keys
        ``p``/``prob``/``probability``, ``nth``, ``exc`` (an exception
        name from the registry, or ``none`` for latency-only) and
        ``latency`` (seconds).  A bare point name injects
        :class:`FaultInjected` on every call.
        """
        seed = 0
        rules: list[FaultRule] = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed=") and ":" not in clause:
                seed = int(clause[len("seed="):])
                continue
            name, colon, options = clause.partition(":")
            name = name.strip()
            kwargs: dict[str, object] = {}
            if colon:
                for item in options.split(","):
                    item = item.strip()
                    if not item:
                        continue
                    key, eq, value = item.partition("=")
                    if not eq:
                        raise ValueError(
                            f"expected key=value in fault clause, "
                            f"got {item!r}"
                        )
                    key, value = key.strip(), value.strip()
                    if key in ("p", "prob", "probability"):
                        kwargs["probability"] = float(value)
                    elif key == "nth":
                        kwargs["nth"] = int(value)
                    elif key in ("exc", "raises"):
                        if value.lower() == "none":
                            kwargs["raises"] = None
                        elif value in _EXCEPTIONS:
                            kwargs["raises"] = _EXCEPTIONS[value]
                        else:
                            raise ValueError(
                                f"unknown exception {value!r}; choose "
                                f"from {sorted(_EXCEPTIONS)} or 'none'"
                            )
                    elif key == "latency":
                        kwargs["latency"] = float(value)
                    else:
                        raise ValueError(
                            f"unknown fault option {key!r} in "
                            f"clause {clause!r}"
                        )
            rules.append(FaultRule(point=name, **kwargs))
        return cls(rules, seed=seed)

    def describe(self) -> str:
        """One line per rule, for logs and test failure messages."""
        lines = [f"seed={self.seed}"]
        for rule in self.rules:
            when = (
                f"nth={rule.nth}"
                if rule.nth is not None
                else f"p={rule.probability:g}"
            )
            lines.append(f"{rule.point}: {when} -> {rule.action()}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Global toggle (the REPRO_FAULTS fast path)
# ----------------------------------------------------------------------


def _env_plan() -> tuple[bool, FaultPlan | None]:
    raw = os.environ.get("REPRO_FAULTS", "").strip()
    if raw.lower() in ("", "0", "false", "no", "off"):
        return False, None
    if ":" in raw or ";" in raw or "=" in raw:
        return True, FaultPlan.parse(raw)
    return True, FaultPlan()


#: The injection fast-path flag: :func:`point` reduces to
#: ``if not _enabled: return`` when fault injection is off.
_enabled: bool
_plan: FaultPlan | None
_enabled, _plan = _env_plan()


def enabled() -> bool:
    """Whether fault injection is currently armed."""
    return _enabled


def enable(plan: FaultPlan | None = None) -> FaultPlan:
    """Arm fault injection (optionally installing a plan)."""
    global _enabled, _plan
    if plan is not None:
        _plan = plan
    elif _plan is None:
        _plan = FaultPlan()
    _enabled = True
    return _plan


def disable() -> None:
    """Disarm fault injection (the plan is kept, not cleared)."""
    global _enabled
    _enabled = False


def get_plan() -> FaultPlan | None:
    """The installed plan (``None`` when never enabled)."""
    return _plan


@contextlib.contextmanager
def active_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of a with-block (test helper)."""
    global _enabled, _plan
    saved = (_enabled, _plan)
    _enabled, _plan = True, plan
    try:
        yield plan
    finally:
        _enabled, _plan = saved


def point(name: str) -> None:
    """One injection point; free when fault injection is disabled."""
    if not _enabled:
        return
    plan = _plan
    if plan is not None:
        plan.check(name)
