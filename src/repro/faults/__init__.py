"""repro.faults — deterministic fault injection and fault tolerance.

Three pieces, all dependency-free:

- :mod:`repro.faults.injection` — named injection points at real
  library boundaries plus a seeded :class:`FaultPlan`, a no-op
  module-global check when disabled (``REPRO_FAULTS`` arms it).
- :mod:`repro.faults.retry` — :class:`RetryPolicy` with deterministic
  exponential backoff and per-attempt deadlines.
- :mod:`repro.faults.breaker` — :class:`CircuitBreaker` used by the
  serve layer to keep answering from the last published policy under
  sustained re-solve failure.

See the README "Fault tolerance" section for the injection-point table
and the degradation matrix.
"""

from .breaker import BREAKER_STATE_CODES, CircuitBreaker
from .injection import (
    KNOWN_POINTS,
    FaultInjected,
    FaultPlan,
    FaultRule,
    active_plan,
    disable,
    enable,
    enabled,
    get_plan,
    point,
)
from .retry import RetryPolicy, call_with_timeout

__all__ = [
    "BREAKER_STATE_CODES",
    "CircuitBreaker",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "KNOWN_POINTS",
    "RetryPolicy",
    "active_plan",
    "call_with_timeout",
    "disable",
    "enable",
    "enabled",
    "get_plan",
    "point",
]
