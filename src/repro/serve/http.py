"""HTTP layer: one route contract, two interchangeable apps.

The contract is a table of :class:`Route` records — method, path
pattern, handler — where every handler is an async function over the
framework-agnostic :class:`~repro.serve.service.AuditService`.  Two
adapters expose it:

* :func:`make_fastapi_app` — a FastAPI application (when ``fastapi`` is
  installed; ``pip install -e '.[serve]'``), for production serving
  under uvicorn;
* :class:`StdlibApp` — a dependency-free fallback on ``asyncio`` stream
  servers with minimal HTTP/1.1 parsing, mirroring the repo's
  scipy/HiGHS ↔ pure-simplex backend split: offline environments run
  the same routes with the same payloads.

Both adapters dispatch through :func:`dispatch`, so the contract cannot
drift between them — the route-contract test suite drives the same
requests through each.

Routes
------
========  =====================  =============================================
method    path                   purpose
========  =====================  =============================================
GET       /healthz               liveness + current policy version
GET       /status                counters, drift, worker state
GET       /metrics               Prometheus text exposition of the registry
GET       /policy                current published policy (full serialization)
GET       /policy/{version}      stale-version read from the retained history
POST      /score                 score alert-count rows against the policy
POST      /alerts                ingest observed counts (feeds the estimator)
POST      /resolve               force a re-solve and await the publish
========  =====================  =============================================
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Awaitable, Callable, Mapping

from .. import obs
from .service import AuditService

__all__ = [
    "Route",
    "ROUTES",
    "dispatch",
    "StdlibApp",
    "make_fastapi_app",
    "have_fastapi",
]

# Handlers return ``(status, payload)``; a ``dict`` payload is rendered
# as JSON, a ``str`` payload as Prometheus text (``obs.CONTENT_TYPE``).
Handler = Callable[
    [AuditService, Mapping[str, str], object],
    Awaitable[tuple[int, dict | str]],
]


@dataclass(frozen=True)
class Route:
    """One entry of the shared route contract."""

    method: str
    pattern: str
    handler: Handler
    summary: str

    @property
    def segments(self) -> tuple[str, ...]:
        return tuple(
            s for s in self.pattern.strip("/").split("/") if s
        )

    def match(self, path: str) -> Mapping[str, str] | None:
        """Path params when ``path`` matches the pattern, else None."""
        parts = tuple(p for p in path.strip("/").split("/") if p)
        pattern = self.segments
        if len(parts) != len(pattern):
            return None
        params: dict[str, str] = {}
        for want, got in zip(pattern, parts, strict=True):
            if want.startswith("{") and want.endswith("}"):
                params[want[1:-1]] = got
            elif want != got:
                return None
        return params


# ----------------------------------------------------------------------
# Handlers (async, framework-free)
# ----------------------------------------------------------------------


async def _healthz(
    service: AuditService, params: Mapping[str, str], body: object
) -> tuple[int, dict]:
    active = service.active()
    return 200, {
        "status": "ok",
        "policy_version": None if active is None else active.version,
    }


async def _status(
    service: AuditService, params: Mapping[str, str], body: object
) -> tuple[int, dict]:
    return 200, service.status()


async def _metrics(
    service: AuditService, params: Mapping[str, str], body: object
) -> tuple[int, str]:
    return 200, obs.render_prometheus(service.metrics)


async def _policy(
    service: AuditService, params: Mapping[str, str], body: object
) -> tuple[int, dict]:
    active = service.active()
    if active is None:
        return 404, {"error": "no policy published yet"}
    return 200, {**active.describe(), "result": active.result.to_dict()}


async def _policy_version(
    service: AuditService, params: Mapping[str, str], body: object
) -> tuple[int, dict]:
    active = service.active()
    if active is None:
        return 404, {"error": "no policy published yet"}
    try:
        version = int(params["version"])
    except ValueError:
        return 400, {
            "error": f"version must be an integer, got "
            f"{params['version']!r}"
        }
    try:
        record = service.store.get(active.key, version)
    except KeyError as exc:
        return 404, {"error": str(exc.args[0])}
    return 200, {**record.describe(), "result": record.result.to_dict()}


def _rows_from(body: object, field: str) -> object:
    if not isinstance(body, Mapping) or field not in body:
        raise ValueError(
            f"request body must be a JSON object with {field!r}"
        )
    return body[field]


async def _score(
    service: AuditService, params: Mapping[str, str], body: object
) -> tuple[int, dict]:
    try:
        payload = service.score(_rows_from(body, "alerts"))
    except ValueError as exc:
        return 400, {"error": str(exc)}
    except RuntimeError as exc:
        return 409, {"error": str(exc)}
    return 200, payload


async def _alerts(
    service: AuditService, params: Mapping[str, str], body: object
) -> tuple[int, dict]:
    try:
        payload = service.ingest(_rows_from(body, "counts"))
    except ValueError as exc:
        return 400, {"error": str(exc)}
    except RuntimeError as exc:
        return 409, {"error": str(exc)}
    return 200, payload


async def _resolve(
    service: AuditService, params: Mapping[str, str], body: object
) -> tuple[int, dict]:
    published = await service.resolve_now()
    return 200, published.describe()


ROUTES: tuple[Route, ...] = (
    Route("GET", "/healthz", _healthz, "liveness probe"),
    Route("GET", "/status", _status, "counters, drift, worker state"),
    Route(
        "GET", "/metrics", _metrics,
        "Prometheus text exposition of the service registry",
    ),
    Route("GET", "/policy", _policy, "current published policy"),
    Route(
        "GET", "/policy/{version}", _policy_version,
        "stale-version policy read",
    ),
    Route("POST", "/score", _score, "score alert rows vs the policy"),
    Route("POST", "/alerts", _alerts, "ingest observed alert counts"),
    Route("POST", "/resolve", _resolve, "force a re-solve and publish"),
)


async def dispatch(
    service: AuditService, method: str, path: str, body: object = None
) -> tuple[int, dict | str]:
    """Route one request through the shared contract.

    Returns ``(status, payload)``; unknown paths get 404, known paths
    with the wrong method 405, and handler crashes a 500 envelope (the
    stdlib server must never die on a bad request).  A ``str`` payload
    (the ``/metrics`` exposition) is served as Prometheus text, every
    ``dict`` as JSON.
    """
    path = path.split("?", 1)[0]
    method = method.upper()
    allowed: list[str] = []
    for route in ROUTES:
        params = route.match(path)
        if params is None:
            continue
        if route.method != method:
            allowed.append(route.method)
            continue
        try:
            return await route.handler(service, params, body)
        except Exception as exc:  # noqa: BLE001 - envelope, not a crash
            service.metrics.counter(
                "repro_serve_handler_errors_total",
                route=route.pattern,
                error=type(exc).__name__,
            )
            return 500, {
                "error": f"{type(exc).__name__}: {exc}",
            }
    if allowed:
        return 405, {
            "error": f"{method} not allowed on {path}; "
            f"allowed: {', '.join(sorted(set(allowed)))}"
        }
    return 404, {"error": f"no route for {path}"}


# ----------------------------------------------------------------------
# Stdlib fallback app (no third-party dependencies)
# ----------------------------------------------------------------------


class StdlibApp:
    """Asyncio stream-server app implementing the route contract.

    In-process callers use :meth:`handle` directly (the route-contract
    tests and the benchmark do); :meth:`serve` binds a real socket with
    a minimal HTTP/1.1 request parser on top of the same dispatch.
    """

    #: Refuse request bodies larger than this (bytes).
    MAX_BODY = 8 * 1024 * 1024

    def __init__(self, service: AuditService) -> None:
        self.service = service

    async def handle(
        self, method: str, path: str, body: object = None
    ) -> tuple[int, dict | str]:
        """In-process dispatch: ``(status, payload)`` for one request."""
        return await dispatch(self.service, method, path, body)

    async def serve(
        self, host: str = "127.0.0.1", port: int = 8331
    ) -> asyncio.AbstractServer:
        """Bind and return an :class:`asyncio.AbstractServer` (started)."""
        return await asyncio.start_server(
            self._client_connected, host, port
        )

    async def run(
        self, host: str = "127.0.0.1", port: int = 8331
    ) -> None:
        """Serve forever (until cancelled)."""
        server = await self.serve(host, port)
        async with server:
            await server.serve_forever()

    async def _client_connected(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            status, payload = await self._one_request(reader)
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            self.service.metrics.counter(
                "repro_serve_handler_errors_total",
                route="<parse>",
                error=type(exc).__name__,
            )
            status, payload = 500, {
                "error": f"{type(exc).__name__}: {exc}"
            }
        if isinstance(payload, str):
            body = payload.encode()
            content_type = obs.CONTENT_TYPE
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 409: "Conflict",
                  413: "Payload Too Large",
                  500: "Internal Server Error"}.get(status, "OK")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n".encode() + body
        )
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _one_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict | str]:
        request_line = (await reader.readline()).decode("latin-1")
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, path = parts[0], parts[1]
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length"}
        if content_length > self.MAX_BODY:
            return 413, {
                "error": f"body of {content_length} bytes exceeds "
                f"{self.MAX_BODY}"
            }
        body: object = None
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                return 400, {"error": f"invalid JSON body: {exc}"}
        return await dispatch(self.service, method, path, body)


# ----------------------------------------------------------------------
# FastAPI adapter (optional dependency)
# ----------------------------------------------------------------------


def have_fastapi() -> bool:
    """True when the optional ``fastapi`` dependency is importable."""
    try:
        import fastapi  # noqa: F401
    except ImportError:
        return False
    return True


def make_fastapi_app(service: AuditService):
    """A FastAPI application over the same route contract.

    Every route funnels through :func:`dispatch`, so payloads and
    status codes are identical to :class:`StdlibApp` by construction.
    Raises ``ImportError`` with an install hint when FastAPI is absent
    — use :class:`StdlibApp` then.
    """
    try:
        from fastapi import FastAPI, Request
        from fastapi.responses import JSONResponse, PlainTextResponse
    except ImportError as exc:  # pragma: no cover - env without fastapi
        raise ImportError(
            "fastapi is not installed; pip install -e '.[serve]' or "
            "use repro.serve.StdlibApp"
        ) from exc

    app = FastAPI(
        title="repro.serve audit-policy service",
        description=(
            "Streaming alert scoring and drift-triggered re-solving "
            "over the ICDE'18 audit game engine."
        ),
    )

    def bind(route: Route):
        async def endpoint(request: Request):
            body: object = None
            if route.method == "POST":
                raw = await request.body()
                if raw:
                    try:
                        body = json.loads(raw)
                    except json.JSONDecodeError as exc:
                        return JSONResponse(
                            {"error": f"invalid JSON body: {exc}"},
                            status_code=400,
                        )
            status, payload = await dispatch(
                service,
                route.method,
                request.url.path,
                body,
            )
            if isinstance(payload, str):
                return PlainTextResponse(
                    payload,
                    status_code=status,
                    media_type=obs.CONTENT_TYPE,
                )
            return JSONResponse(payload, status_code=status)

        app.add_api_route(
            route.pattern,
            endpoint,
            methods=[route.method],
            summary=route.summary,
        )

    for route in ROUTES:
        bind(route)
    return app
