"""Versioned, thread-safe storage of published audit policies.

The service layer separates *solving* a policy from *serving* it: a
background worker re-solves when the alert distributions drift, while
request-time scoring keeps reading the currently-published policy.  The
:class:`PolicyStore` is the hand-off point — a key/value store mapping
``(count-model fingerprint, budget)`` to an immutable
:class:`PublishedPolicy` record, with per-key version numbering and an
atomic swap on republish (readers observe either the complete old record
or the complete new one, never a mixture).

Fingerprints are *content* hashes of a
:class:`~repro.distributions.joint.JointCountModel` — two model objects
describing the same distributions share a fingerprint (so a warm
re-publish lands on the same key), while any change to a support or pmf
produces a different one (so distinct count models can never collide
into each other's policies).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

import numpy as np

from ..distributions.joint import JointCountModel
from ..engine.result import SolveResult

__all__ = [
    "PolicyKey",
    "PolicyStore",
    "PublishedPolicy",
    "model_fingerprint",
]

#: A store key: (count-model fingerprint, audit budget).
PolicyKey = tuple[str, float]


def model_fingerprint(model: JointCountModel) -> str:
    """Content hash of a joint count model (hex, 16 chars).

    Hashes every marginal's class name, integer support and pmf bytes,
    so the fingerprint changes exactly when the distribution content
    does.  Distinct model *objects* with equal content share a
    fingerprint on purpose: the store key identifies the distribution
    the policy was solved against, not the Python object that carried
    it.
    """
    digest = hashlib.sha256()
    for marginal in model.marginals:
        digest.update(type(marginal).__name__.encode())
        digest.update(b"\x00")
        support = np.ascontiguousarray(marginal.support(), dtype=np.int64)
        pmf = np.ascontiguousarray(
            marginal.support_pmf(), dtype=np.float64
        )
        digest.update(support.tobytes())
        digest.update(b"\x01")
        digest.update(pmf.tobytes())
        digest.update(b"\x02")
    return digest.hexdigest()[:16]


def make_key(model: JointCountModel, budget: float) -> PolicyKey:
    """The store key for a (count model, budget) pair."""
    return (model_fingerprint(model), float(budget))


@dataclass(frozen=True)
class PublishedPolicy:
    """One immutable published policy version.

    Attributes
    ----------
    fingerprint, budget:
        The store key components this version was published under.
    version:
        Per-key version number, starting at 1 and monotonically
        increasing on every republish.
    result:
        The full :class:`~repro.engine.result.SolveResult` being served.
    published_at:
        ``time.time()`` stamp of the publish.
    meta:
        Read-only publish metadata (drift metric, re-solve lag, trigger
        reason, ...), set by the publisher.
    """

    fingerprint: str
    budget: float
    version: int
    result: SolveResult
    published_at: float
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "meta", MappingProxyType(dict(self.meta)))

    @property
    def key(self) -> PolicyKey:
        return (self.fingerprint, self.budget)

    def describe(self) -> dict[str, object]:
        """JSON-ready version header (without the policy body)."""
        return {
            "fingerprint": self.fingerprint,
            "budget": self.budget,
            "version": self.version,
            "objective": self.result.objective,
            "solver": self.result.solver,
            "published_at": self.published_at,
            "meta": dict(self.meta),
        }


class PolicyStore:
    """Thread-safe, versioned map of published policies.

    Parameters
    ----------
    keep_versions:
        History retained per key (stale-version reads through
        :meth:`get` reach back this far; older versions are dropped).

    Publishing is an atomic swap: the new :class:`PublishedPolicy` is
    fully constructed before the key's current pointer moves, and both
    the pointer and the history update under one lock, so a concurrent
    reader sees either the previous complete version or the new complete
    version — never a half-published state.  All records are frozen, so
    a reader holding a version keeps a consistent snapshot even across
    later republishes.
    """

    def __init__(self, keep_versions: int = 8) -> None:
        if keep_versions < 1:
            raise ValueError(
                f"keep_versions must be >= 1, got {keep_versions}"
            )
        self.keep_versions = int(keep_versions)
        # Rank 40 ("store") in repro/devtools/lock_hierarchy.py: the
        # leaf — publishing is allowed under any other lock, and this
        # lock calls out to nothing.
        self._lock = threading.RLock()
        self._current: dict[PolicyKey, PublishedPolicy] = {}
        self._history: dict[PolicyKey, deque[PublishedPolicy]] = {}
        self.publishes = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def publish(
        self,
        fingerprint: str,
        budget: float,
        result: SolveResult,
        meta: Mapping[str, object] | None = None,
    ) -> PublishedPolicy:
        """Publish (or republish) the policy for one key, atomically.

        Returns the new :class:`PublishedPolicy`; its ``version`` is one
        more than the key's previous version (1 for a first publish).
        """
        key = (str(fingerprint), float(budget))
        with self._lock:
            previous = self._current.get(key)
            record = PublishedPolicy(
                fingerprint=key[0],
                budget=key[1],
                version=1 if previous is None else previous.version + 1,
                result=result,
                published_at=time.time(),
                meta=dict(meta or {}),
            )
            history = self._history.setdefault(
                key, deque(maxlen=self.keep_versions)
            )
            history.append(record)
            # The swap: one reference assignment under the lock.
            self._current[key] = record
            self.publishes += 1
            return record

    def publish_for(
        self,
        model: JointCountModel,
        budget: float,
        result: SolveResult,
        meta: Mapping[str, object] | None = None,
    ) -> PublishedPolicy:
        """:meth:`publish` keyed by a model's content fingerprint."""
        return self.publish(
            model_fingerprint(model), budget, result, meta
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def current(self, key: PolicyKey) -> PublishedPolicy | None:
        """The latest published version for a key (None if unpublished)."""
        with self._lock:
            return self._current.get((str(key[0]), float(key[1])))

    def get(self, key: PolicyKey, version: int) -> PublishedPolicy:
        """A specific retained version (stale reads stay answerable).

        Raises ``KeyError`` when the key was never published or the
        version has aged out of the retained window.
        """
        key = (str(key[0]), float(key[1]))
        with self._lock:
            history = self._history.get(key)
            if history is None:
                raise KeyError(f"no policy published under {key}")
            for record in history:
                if record.version == int(version):
                    return record
            retained = [r.version for r in history]
            raise KeyError(
                f"version {version} not retained for {key}; "
                f"available: {retained}"
            )

    def versions(self, key: PolicyKey) -> tuple[int, ...]:
        """Versions currently retained for a key, oldest first."""
        key = (str(key[0]), float(key[1]))
        with self._lock:
            return tuple(
                r.version for r in self._history.get(key, ())
            )

    def keys(self) -> tuple[PolicyKey, ...]:
        """Every key with a published policy, in publish order."""
        with self._lock:
            return tuple(self._current)

    def __len__(self) -> int:
        with self._lock:
            return len(self._current)
