"""Request-time alert scoring against a published mixed policy.

Scoring answers the operational question "given the alert stream we just
observed, how well does the deployed policy cover it?" — per alert type,
the probability that an attack alert hidden in this period's stream
would be audited, plus the expected audited volume and budget spend.

The math is the paper's detection kernel evaluated on the *realized*
count vector instead of in expectation over scenarios: for each ordering
``o`` in the mixed policy's support the budget walk of eq. 1 runs on the
single realization ``Z`` (vectorized over a batch of realizations), and
the per-ordering detection rows mix with the policy weights ``p_o``.
Because the support of a solved policy is tiny (one to a handful of
orderings) this is a few fused numpy passes per request — the solver hot
path (scenario sets, master LPs, pricing caches) is never touched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.game import AuditGame
from ..core.policy import AuditPolicy

__all__ = ["PolicyScorer", "ScoreBatch"]


@dataclass(frozen=True)
class ScoreBatch:
    """Vectorized scores for one batch of realized alert-count vectors.

    Attributes
    ----------
    detection:
        ``(B, T)`` — mixed probability ``sum_o p_o * n_t/Z_t`` that an
        attack alert of type ``t`` hiding in row ``b``'s stream is
        audited.
    audited:
        ``(B, T)`` — expected number of audited alerts per type.
    spent:
        ``(B,)`` — expected audit budget consumed.
    """

    detection: np.ndarray
    audited: np.ndarray
    spent: np.ndarray

    @property
    def n_rows(self) -> int:
        return int(self.detection.shape[0])

    def to_payload(self) -> dict[str, object]:
        """JSON-ready representation (nested lists of floats)."""
        return {
            "detection": self.detection.tolist(),
            "audited": self.audited.tolist(),
            "spent": self.spent.tolist(),
        }


class PolicyScorer:
    """Scores realized alert-count vectors against one mixed policy.

    Validates and hoists the per-policy constants once (orderings,
    weights, thresholds, quotas), so each :meth:`score` call is pure
    vectorized kernel work.  Built by the service at publish time and
    swapped together with the policy version, the scorer is immutable
    after construction and therefore safe to share across concurrent
    requests.
    """

    def __init__(self, policy: AuditPolicy, game: AuditGame) -> None:
        if policy.n_types != game.n_types:
            raise ValueError(
                f"policy covers {policy.n_types} types, game has "
                f"{game.n_types}"
            )
        pruned = policy.pruned()
        self.policy = policy
        self.game = game
        self.n_types = game.n_types
        self._orderings = tuple(tuple(o) for o in pruned.orderings)
        self._probabilities = np.asarray(
            pruned.probabilities, dtype=np.float64
        )
        self._thresholds = np.asarray(
            pruned.thresholds, dtype=np.float64
        )
        self._costs = np.asarray(game.costs, dtype=np.float64)
        self._budget = float(game.budget)
        self._quota = np.floor(self._thresholds / self._costs)
        self._unit_rule = game.zero_count_rule == "unit"

    @property
    def support_size(self) -> int:
        return len(self._orderings)

    def as_batch(self, alerts: object) -> np.ndarray:
        """Coerce one vector or a ``(B, T)`` stack of realized counts."""
        arr = np.asarray(alerts, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2 or arr.shape[1] != self.n_types:
            raise ValueError(
                f"alert batch must have shape (B, {self.n_types}), "
                f"got {arr.shape}"
            )
        if arr.size and (arr.min() < 0 or not np.isfinite(arr).all()):
            raise ValueError(
                "alert counts must be finite and non-negative"
            )
        return arr

    def score(self, alerts: object) -> ScoreBatch:
        """Score a batch of realized count vectors (rows independent)."""
        Z = self.as_batch(alerts)
        zsafe = np.maximum(Z, 1.0)
        detection = np.zeros_like(Z)
        audited_mix = np.zeros_like(Z)
        b, c = self._thresholds, self._costs
        for ordering, p_o in zip(self._orderings, self._probabilities, strict=True):
            consumed = np.zeros(Z.shape[0])
            for t in ordering:
                capacity = np.maximum(
                    np.floor((self._budget - consumed) / c[t]), 0.0
                )
                effective = zsafe[:, t] if self._unit_rule else Z[:, t]
                audited = np.minimum(
                    np.minimum(capacity, self._quota[t]), effective
                )
                detection[:, t] += p_o * (audited / zsafe[:, t])
                # Expected *alerts* audited cannot exceed the realized
                # count (the unit-rule phantom alert is not a log row).
                audited_mix[:, t] += p_o * np.minimum(audited, Z[:, t])
                consumed = consumed + np.minimum(b[t], Z[:, t] * c[t])
        spent = audited_mix @ c
        return ScoreBatch(
            detection=detection, audited=audited_mix, spent=spent
        )
