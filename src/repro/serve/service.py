"""The async audit-policy service core.

:class:`AuditService` wires the existing layers into a long-running
defender: a :class:`~repro.serve.store.PolicyStore` holds published
policies keyed by (count-model fingerprint, budget); incoming alert
batches feed a :mod:`repro.sim` distribution estimator online; a
background worker watches the estimated model drift away from the
published one and re-solves through warm
:class:`~repro.engine.AuditEngine` instances, publishing the new policy
version with an atomic swap; and request-time scoring
(:class:`~repro.serve.scoring.PolicyScorer`) reads whichever version is
current without ever touching the solver hot path.

The service is framework-agnostic: both the FastAPI app and the stdlib
asyncio fallback in :mod:`repro.serve.http` are thin adapters over the
async methods here.  Solves run in a worker thread
(``asyncio.to_thread``), so the event loop keeps answering ``/score``
and ``/alerts`` while a re-solve is in flight — the old policy version
serves until the new one swaps in.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time
import typing
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from .. import faults, obs
from ..core.game import AuditGame
from ..distributions.joint import JointCountModel
from ..engine import AuditEngine
from ..engine import registry as engine_registry
from ..engine.config import coerce_value
from ..engine.result import SolveResult
from ..sim.registry import ESTIMATORS
from ..sim.simulator import DistributionEstimator, _coerced_options
from .scoring import PolicyScorer, ScoreBatch
from .store import PolicyStore, PublishedPolicy, model_fingerprint

__all__ = ["ServeConfig", "AuditService"]


@dataclass(frozen=True)
class ServeConfig:
    """Complete tuning surface of one audit-policy service.

    Attributes
    ----------
    solver, solver_options:
        Registry solver used for every (re-)solve and its overrides.
    estimator, estimator_options:
        Online distribution estimator fed by ``/alerts`` (a plugin name
        from :data:`~repro.sim.registry.ESTIMATORS`).
    drift_threshold:
        Relative per-type mean shift between the estimated and the
        published count model that schedules a background re-solve.
    auto_resolve:
        False disables drift-triggered re-solves (``/resolve`` still
        works).
    keep_versions:
        Policy versions retained per store key for stale reads.
    max_batch:
        Upper bound on rows accepted per ``/score`` / ``/alerts`` call.
    solver_seed, n_samples, backend, workers:
        Engine construction parameters (as in the simulator).
    resolve_attempts, resolve_backoff_seconds, resolve_timeout_seconds:
        Retry surface of every background re-solve: total attempts,
        base of the deterministic exponential backoff between them, and
        an optional per-attempt deadline (``asyncio.wait_for``; note
        the abandoned solve thread runs to completion — the deadline
        bounds *waiting*, not CPU).
    breaker_threshold, breaker_reset_seconds:
        Circuit breaker over re-solves: consecutive failed re-solves
        (each already retried ``resolve_attempts`` times) that trip it,
        and the cooldown before one probe re-solve is allowed.  While
        open, the service keeps serving the last published policy.
    """

    solver: str = "ishm"
    solver_options: Mapping[str, object] = field(default_factory=dict)
    estimator: str = "rolling-empirical"
    estimator_options: Mapping[str, object] = field(default_factory=dict)
    drift_threshold: float = 0.15
    auto_resolve: bool = True
    keep_versions: int = 8
    max_batch: int = 4096
    solver_seed: int = 0
    n_samples: int = 2000
    backend: str = "scipy"
    workers: int = 1
    resolve_attempts: int = 3
    resolve_backoff_seconds: float = 0.05
    resolve_timeout_seconds: float | None = None
    breaker_threshold: int = 3
    breaker_reset_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.drift_threshold < 0:
            raise ValueError(
                f"drift_threshold must be >= 0, got {self.drift_threshold}"
            )
        if self.max_batch < 1:
            raise ValueError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.resolve_attempts < 1:
            raise ValueError(
                f"resolve_attempts must be >= 1, "
                f"got {self.resolve_attempts}"
            )
        if self.resolve_backoff_seconds < 0:
            raise ValueError(
                f"resolve_backoff_seconds must be >= 0, "
                f"got {self.resolve_backoff_seconds}"
            )
        if (
            self.resolve_timeout_seconds is not None
            and self.resolve_timeout_seconds <= 0
        ):
            raise ValueError(
                f"resolve_timeout_seconds must be positive or None, "
                f"got {self.resolve_timeout_seconds}"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, "
                f"got {self.breaker_threshold}"
            )
        if self.breaker_reset_seconds < 0:
            raise ValueError(
                f"breaker_reset_seconds must be >= 0, "
                f"got {self.breaker_reset_seconds}"
            )

    @classmethod
    def from_pairs(cls, pairs: Mapping[str, str]) -> "ServeConfig":
        """Build from flat CLI-style ``k=v`` pairs.

        Plain keys coerce onto :class:`ServeConfig` fields; dotted keys
        route to plugin options (``estimator.window=14``,
        ``solver.step_size=0.5``), mirroring ``SimConfig.from_pairs``.
        """
        hints = typing.get_type_hints(cls)
        fields = {f.name for f in dataclasses.fields(cls)}
        plain: dict[str, object] = {}
        nested: dict[str, dict[str, str]] = {}
        for key, value in pairs.items():
            scope, dot, option = key.partition(".")
            if dot:
                if scope not in ("estimator", "solver"):
                    raise ValueError(
                        f"unknown plugin scope {scope!r} in option "
                        f"{key!r}; use estimator./solver."
                    )
                if not option:
                    raise ValueError(f"empty option name in {key!r}")
                nested.setdefault(scope, {})[option] = value
            elif key.endswith("_options") and key in fields:
                scope = key[: -len("_options")]
                raise ValueError(
                    f"{key} cannot be set directly; use dotted options "
                    f"like {scope}.<option>=<value>"
                )
            elif key in fields:
                plain[key] = (
                    coerce_value(value, hints[key])
                    if isinstance(value, str)
                    else value
                )
            else:
                raise ValueError(
                    f"ServeConfig has no option {key!r}; valid options: "
                    f"{', '.join(sorted(fields))}"
                )
        for scope, options in nested.items():
            plain[f"{scope}_options"] = options
        return cls(**plain)

    def replace(self, **changes: object) -> "ServeConfig":
        """Functional update (alias for :func:`dataclasses.replace`)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class _ActivePolicy:
    """The immutable serving snapshot swapped on every publish."""

    published: PublishedPolicy
    scorer: PolicyScorer
    model: JointCountModel
    means: np.ndarray


@dataclass(frozen=True)
class _ResolveRequest:
    model: JointCountModel
    budget: float
    triggered_at: float
    drift: float
    reason: str


class AuditService:
    """Long-running defender over one audit game.

    Construction validates the solver and estimator configuration
    (fail fast, before the service goes live); :meth:`start` solves and
    publishes the initial policy from the game's prior count model and
    launches the background re-solve worker; :meth:`stop` tears both
    down.  Use as an async context manager::

        async with AuditService(game, drift_threshold=0.2) as service:
            scores = service.score([[3, 1, 4, 1]])
    """

    #: Engines kept alive across re-solves (one per distinct
    #: (fingerprint, budget); bounds pinned scenario sets, as in the
    #: simulator).
    MAX_ENGINES = 4

    def __init__(
        self,
        game: AuditGame,
        config: ServeConfig | None = None,
        **overrides: object,
    ) -> None:
        if config is None:
            config = ServeConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.game = game
        self.config = config
        estimator_spec = ESTIMATORS.get(config.estimator)
        self._estimator_options = _coerced_options(
            estimator_spec.factory, config.estimator_options
        )
        self._estimator: DistributionEstimator = ESTIMATORS.create(
            config.estimator, game, self._estimator_options
        )
        # Fail fast on solver misconfiguration, before period 0.
        engine_registry.make_config(
            engine_registry.get_solver(config.solver),
            dict(config.solver_options),
        )
        self.store = PolicyStore(keep_versions=config.keep_versions)
        self._active: _ActivePolicy | None = None
        self._engines: dict[tuple[str, float], AuditEngine] = {}
        self._solve_memo: dict[tuple[str, float], SolveResult] = {}
        # Ranks 10 ("serve.engines") and 5 ("serve.resolve") in
        # repro/devtools/lock_hierarchy.py — the linted ordering
        # contract for everything these may nest around.
        self._engines_lock = threading.RLock()
        self._pending: _ResolveRequest | None = None
        self._wake = asyncio.Event()
        self._resolve_lock = asyncio.Lock()
        self._worker_task: asyncio.Task | None = None
        # monotonic: uptime is a duration, immune to wall-clock steps.
        self._started_at = time.monotonic()
        # One service-local registry is the single source of truth for
        # every counter/gauge/histogram the service reports: /status
        # reads it through the properties below and /metrics renders it
        # as Prometheus text, so the two views can never disagree.  It
        # is always live (independent of the global REPRO_OBS toggle) —
        # serve telemetry is part of the service contract, not optional
        # debug output.
        self.metrics = obs.MetricsRegistry()
        # Fault-tolerance surface of the background re-solve path: the
        # retry policy wraps each re-solve attempt, the breaker counts
        # whole failed re-solves.  Both are owned exclusively by the
        # resolve path (serialized by _resolve_lock), so the breaker
        # needs no lock of its own.
        self._retry = faults.RetryPolicy(
            max_attempts=config.resolve_attempts,
            backoff_base=config.resolve_backoff_seconds,
            timeout=config.resolve_timeout_seconds,
            seed=config.solver_seed,
        )
        self._breaker = faults.CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            reset_seconds=config.breaker_reset_seconds,
        )
        self._publish_breaker_state()

    # -- registry-backed counters (public read surface of /status) -----

    @property
    def events_ingested(self) -> int:
        return int(self.metrics.counter_total(
            "repro_serve_events_ingested_total"
        ))

    @property
    def score_requests(self) -> int:
        return int(self.metrics.counter_total(
            "repro_serve_score_requests_total"
        ))

    @property
    def rows_scored(self) -> int:
        return int(self.metrics.counter_total(
            "repro_serve_rows_scored_total"
        ))

    @property
    def resolves_scheduled(self) -> int:
        return int(self.metrics.counter_total(
            "repro_serve_resolves_scheduled_total"
        ))

    @property
    def resolves_completed(self) -> int:
        return int(self.metrics.counter_total(
            "repro_serve_resolves_completed_total"
        ))

    @property
    def last_resolve_lag_seconds(self) -> float | None:
        return self.metrics.get_gauge(
            "repro_serve_resolve_lag_seconds", default=None
        )

    @property
    def last_drift(self) -> float:
        return self.metrics.get_gauge("repro_serve_drift", default=0.0)

    @property
    def resolve_retries(self) -> int:
        return int(self.metrics.counter_total(
            "repro_serve_resolve_retries_total"
        ))

    @property
    def resolve_failures(self) -> int:
        return int(self.metrics.counter_total(
            "repro_serve_resolve_failures_total"
        ))

    @property
    def breaker_state(self) -> str:
        """Circuit-breaker state of the re-solve path (``closed``/…)."""
        return self._breaker.state

    def score_latency_p95(self) -> float | None:
        """Bucketed p95 of ``/score`` latency (None before any score)."""
        hist = self.metrics.get_histogram("repro_serve_score_seconds")
        return None if hist is None else hist.quantile(0.95)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Publish the initial policy and launch the re-solve worker."""
        if self._worker_task is not None:
            return
        if self._active is None:
            await self._resolve(
                _ResolveRequest(
                    model=self.game.counts,
                    budget=float(self.game.budget),
                    triggered_at=time.monotonic(),
                    drift=0.0,
                    reason="initial",
                )
            )
        self._worker_task = asyncio.create_task(
            self._worker(), name="repro-serve-resolver"
        )

    async def stop(self) -> None:
        """Cancel the worker and shut down engine worker pools."""
        task, self._worker_task = self._worker_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        # engine.close() joins executor threads (a blocking wait, flagged
        # by RPL201 when done on the loop) — snapshot under the lock,
        # shut down off-loop.
        with self._engines_lock:
            engines = list(self._engines.values())
        if engines:
            await asyncio.to_thread(
                lambda: [engine.close() for engine in engines]
            )

    async def __aenter__(self) -> "AuditService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    @property
    def worker_running(self) -> bool:
        return (
            self._worker_task is not None
            and not self._worker_task.done()
        )

    # ------------------------------------------------------------------
    # Request-time operations (cheap, never touch the solver)
    # ------------------------------------------------------------------

    def active(self) -> PublishedPolicy | None:
        """The currently-served policy version (None before start)."""
        snapshot = self._active
        return None if snapshot is None else snapshot.published

    def score(self, alerts: object) -> dict[str, object]:
        """Score realized alert-count rows against the current policy.

        The snapshot is taken once per call, so a concurrent republish
        cannot tear a response: every row scores against one version,
        and the response names it.
        """
        started = time.perf_counter()
        snapshot = self._active
        if snapshot is None:
            raise RuntimeError(
                "no policy published yet; call start() first"
            )
        batch = snapshot.scorer.as_batch(alerts)
        if batch.shape[0] > self.config.max_batch:
            raise ValueError(
                f"batch of {batch.shape[0]} rows exceeds max_batch="
                f"{self.config.max_batch}"
            )
        scores: ScoreBatch = snapshot.scorer.score(batch)
        self.metrics.counter("repro_serve_score_requests_total")
        self.metrics.counter(
            "repro_serve_rows_scored_total", scores.n_rows
        )
        self.metrics.observe(
            "repro_serve_score_seconds", time.perf_counter() - started
        )
        return {
            "policy_version": snapshot.published.version,
            "fingerprint": snapshot.published.fingerprint,
            "rows": scores.n_rows,
            **scores.to_payload(),
        }

    def ingest(self, counts: object) -> dict[str, object]:
        """Feed observed alert-count rows to the online estimator.

        Each row counts as one observation period.  After the batch the
        estimated model's drift against the published one is measured;
        past ``drift_threshold`` (with ``auto_resolve``) a background
        re-solve is scheduled — this call never blocks on solving.
        """
        snapshot = self._active
        if snapshot is None:
            raise RuntimeError(
                "no policy published yet; call start() first"
            )
        arr = np.asarray(counts, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2 or arr.shape[1] != self.game.n_types:
            raise ValueError(
                f"alert batch must have shape (B, {self.game.n_types}), "
                f"got {arr.shape}"
            )
        if arr.shape[0] > self.config.max_batch:
            raise ValueError(
                f"batch of {arr.shape[0]} rows exceeds max_batch="
                f"{self.config.max_batch}"
            )
        if arr.size and (arr.min() < 0 or not np.isfinite(arr).all()):
            raise ValueError(
                "alert counts must be finite and non-negative"
            )
        started = time.perf_counter()
        rows = arr.astype(np.int64)
        base = self.events_ingested
        for i, row in enumerate(rows):
            self._estimator.observe(base + i, row)
        self.metrics.counter(
            "repro_serve_events_ingested_total", len(rows)
        )
        model = self._estimator.model()
        drift = self._drift(snapshot, model)
        self.metrics.gauge("repro_serve_drift", drift)
        self.metrics.observe(
            "repro_serve_ingest_seconds", time.perf_counter() - started
        )
        scheduled = False
        if (
            self.config.auto_resolve
            and drift >= self.config.drift_threshold
            and model is not snapshot.model
        ):
            scheduled = self._request_resolve(model, drift, "drift")
        return {
            "observed": int(rows.shape[0]),
            "events_ingested": self.events_ingested,
            "drift": drift,
            "resolve_scheduled": scheduled,
            "policy_version": snapshot.published.version,
        }

    def status(self) -> dict[str, object]:
        """JSON-ready service status (the ``/status`` payload).

        Every counter/gauge below reads the same
        :class:`~repro.obs.metrics.MetricsRegistry` the ``/metrics``
        route renders, so the two reports cannot drift apart.
        """
        snapshot = self._active
        return {
            "uptime_seconds": time.monotonic() - self._started_at,
            "score_latency_p95_seconds": self.score_latency_p95(),
            "events_ingested": self.events_ingested,
            "score_requests": self.score_requests,
            "rows_scored": self.rows_scored,
            "resolves_scheduled": self.resolves_scheduled,
            "resolves_completed": self.resolves_completed,
            "last_resolve_lag_seconds": self.last_resolve_lag_seconds,
            "drift": self.last_drift,
            "drift_threshold": self.config.drift_threshold,
            "breaker_state": self.breaker_state,
            "resolve_retries": self.resolve_retries,
            "resolve_failures": self.resolve_failures,
            "resolve_pending": self._pending is not None
            or self._resolve_lock.locked(),
            "worker_running": self.worker_running,
            "policy_keys": len(self.store),
            "policy": None
            if snapshot is None
            else snapshot.published.describe(),
        }

    # ------------------------------------------------------------------
    # Re-solving (the background path)
    # ------------------------------------------------------------------

    def _drift(
        self, snapshot: _ActivePolicy, model: JointCountModel
    ) -> float:
        """Max relative per-type mean shift vs the published model."""
        if model is snapshot.model:
            return 0.0
        means = np.array(
            [m.mean() for m in model.marginals], dtype=np.float64
        )
        base = np.maximum(np.abs(snapshot.means), 1.0)
        return float(np.max(np.abs(means - snapshot.means) / base))

    def _request_resolve(
        self, model: JointCountModel, drift: float, reason: str
    ) -> bool:
        """Queue a background re-solve (latest request wins)."""
        if self._worker_task is None:
            return False
        self._pending = _ResolveRequest(
            model=model,
            budget=float(self.game.budget),
            triggered_at=time.monotonic(),
            drift=drift,
            reason=reason,
        )
        self.metrics.counter(
            "repro_serve_resolves_scheduled_total", reason=reason
        )
        self._wake.set()
        return True

    async def resolve_now(self) -> PublishedPolicy:
        """Force a re-solve of the latest estimated model and await it."""
        request = _ResolveRequest(
            model=self._estimator.model(),
            budget=float(self.game.budget),
            triggered_at=time.monotonic(),
            drift=self.last_drift,
            reason="manual",
        )
        self.metrics.counter(
            "repro_serve_resolves_scheduled_total", reason="manual"
        )
        return await self._resolve(request)

    async def _worker(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while True:
                request, self._pending = self._pending, None
                if request is None:
                    break
                try:
                    await self._resolve(request)
                except Exception as exc:
                    # _resolve already degraded as far as it could (the
                    # breaker holds the last-good policy in service);
                    # the worker itself must survive to try again on
                    # the next drift trigger.
                    self.metrics.counter(
                        "repro_serve_worker_errors_total",
                        error=type(exc).__name__,
                    )

    async def _solve_with_retry(
        self, fingerprint: str, request: _ResolveRequest
    ) -> SolveResult:
        """One re-solve under the retry policy (off-loop, with deadline).

        Retries transient failures with deterministic backoff; when
        ``resolve_timeout_seconds`` is set each attempt runs under
        ``asyncio.wait_for`` (the timed-out solve thread is abandoned,
        not killed — acceptable for the pure solve path).  The final
        failure propagates to :meth:`_resolve`, which owns degradation.
        """
        retry = self._retry
        for attempt in range(retry.max_attempts):
            try:
                coro = asyncio.to_thread(
                    self._solve_blocking,
                    fingerprint,
                    request.model,
                    request.budget,
                )
                if retry.timeout is not None:
                    return await asyncio.wait_for(coro, retry.timeout)
                return await coro
            except TimeoutError:
                self.metrics.counter(
                    "repro_serve_resolve_timeouts_total"
                )
                if attempt + 1 >= retry.max_attempts:
                    raise
            except Exception as exc:
                self.metrics.counter(
                    "repro_serve_resolve_errors_total",
                    error=type(exc).__name__,
                )
                if attempt + 1 >= retry.max_attempts:
                    raise
            self.metrics.counter("repro_serve_resolve_retries_total")
            delay = retry.backoff(attempt)
            if delay > 0:
                await asyncio.sleep(delay)
        raise RuntimeError("retry loop exited without result")

    def _publish_breaker_state(self) -> None:
        self.metrics.gauge(
            "repro_serve_breaker_state", self._breaker.state_code
        )

    def _record_breaker_failure(self, exc: BaseException) -> None:
        self.metrics.counter(
            "repro_serve_resolve_failures_total",
            error=type(exc).__name__,
        )
        if self._breaker.record_failure():
            self.metrics.counter("repro_serve_breaker_opens_total")
        self._publish_breaker_state()

    async def _resolve(
        self, request: _ResolveRequest
    ) -> PublishedPolicy:
        """Solve off-loop, publish atomically, swap the serving snapshot.

        Degradation contract: while the circuit breaker is open, or
        when a re-solve fails after all retries, the last published
        policy keeps serving — the request is answered with the stale
        (but valid) version instead of an error.  Only when there is no
        published policy at all (initial solve) does failure propagate.
        """
        async with self._resolve_lock:
            snapshot = self._active
            if not self._breaker.allow():
                self.metrics.counter(
                    "repro_serve_resolves_skipped_total",
                    reason="breaker_open",
                )
                self._publish_breaker_state()
                if snapshot is None:
                    raise RuntimeError(
                        "re-solve breaker is open and no policy has "
                        "been published yet"
                    )
                return snapshot.published
            fingerprint = model_fingerprint(request.model)
            try:
                result = await self._solve_with_retry(
                    fingerprint, request
                )
            except Exception as exc:
                self._record_breaker_failure(exc)
                if snapshot is None:
                    raise
                return snapshot.published
            self._breaker.record_success()
            self._publish_breaker_state()
            lag = time.monotonic() - request.triggered_at
            published = self.store.publish(
                fingerprint,
                request.budget,
                result,
                meta={
                    "drift": request.drift,
                    "reason": request.reason,
                    "resolve_lag_seconds": lag,
                },
            )
            game = self._game_for(request.model, request.budget)
            self._active = _ActivePolicy(
                published=published,
                scorer=PolicyScorer(result.policy, game),
                model=request.model,
                means=np.array(
                    [m.mean() for m in request.model.marginals],
                    dtype=np.float64,
                ),
            )
            self.metrics.counter("repro_serve_resolves_completed_total")
            self.metrics.gauge("repro_serve_resolve_lag_seconds", lag)
            return published

    def _game_for(
        self, model: JointCountModel, budget: float
    ) -> AuditGame:
        game = self.game.with_budget(budget)
        if model is not self.game.counts:
            game = dataclasses.replace(game, counts=model)
        return game

    def _solve_blocking(
        self,
        fingerprint: str,
        model: JointCountModel,
        budget: float,
    ) -> SolveResult:
        """Warm-started solve (runs on a worker thread).

        Engines are kept per (fingerprint, budget) content key, so a
        model that drifts back to a previously-solved distribution
        replays that engine's caches — and an unchanged model replays
        the memoized result outright (determinism makes both lossless).
        """
        # First line, ahead of the memo lookup: a 100%-failure chaos
        # plan must fail even re-solves of already-solved fingerprints.
        faults.point("serve.resolve")
        cfg = self.config
        key = (fingerprint, float(budget))
        with self._engines_lock:
            memoized = self._solve_memo.get(key)
            if memoized is not None:
                return memoized
            engine = self._engines.get(key)
            if engine is None:
                engine = AuditEngine(
                    self._game_for(model, budget),
                    backend=cfg.backend,
                    seed=cfg.solver_seed,
                    workers=cfg.workers,
                    n_samples=cfg.n_samples,
                )
                self._engines[key] = engine
                while len(self._engines) > self.MAX_ENGINES:
                    evicted_key = next(iter(self._engines))
                    self._engines.pop(evicted_key).close()
                    self._solve_memo.pop(evicted_key, None)
            else:
                self._engines[key] = self._engines.pop(key)
        result = engine.solve(cfg.solver, dict(cfg.solver_options))
        with self._engines_lock:
            if key in self._engines:
                self._solve_memo[key] = result
        return result
