"""repro.serve — the async audit-policy service.

PRs 3–5 built a simulator and made re-solving fast; this package makes
policies *servable*: a long-running defender that publishes solved
policies, scores incoming alert streams against them, learns the alert
distributions online, and re-solves in the background when they drift
(the deployment shape the online-signaling audit-games line of work
assumes — see PAPERS.md).

Layers:

* :class:`~repro.serve.store.PolicyStore` — versioned policies keyed by
  (count-model fingerprint, budget), atomic swap on republish, stale
  version reads;
* :class:`~repro.serve.scoring.PolicyScorer` — request-time detection
  scoring of realized alert-count vectors against the mixed ordering
  policy (no solver state touched);
* :class:`~repro.serve.service.AuditService` — the async core: alert
  ingestion into :mod:`repro.sim` estimators, drift detection, and a
  background re-solve worker over warm
  :class:`~repro.engine.AuditEngine` instances;
* :mod:`repro.serve.http` — one route contract, two apps: FastAPI when
  installed (``pip install -e '.[serve]'``), a stdlib asyncio fallback
  always.

Quickstart (no third-party web framework needed)::

    import asyncio
    from repro.datasets import syn_a
    from repro.serve import AuditService, StdlibApp

    async def main():
        async with AuditService(syn_a(budget=10)) as service:
            app = StdlibApp(service)
            status, scores = await app.handle(
                "POST", "/score", {"alerts": [[3, 1, 4, 1]]}
            )
            print(status, scores["detection"])

    asyncio.run(main())
"""

from .http import ROUTES, Route, StdlibApp, dispatch, have_fastapi, make_fastapi_app
from .scoring import PolicyScorer, ScoreBatch
from .service import AuditService, ServeConfig
from .store import (
    PolicyKey,
    PolicyStore,
    PublishedPolicy,
    model_fingerprint,
)

__all__ = [
    "ROUTES",
    "AuditService",
    "PolicyKey",
    "PolicyScorer",
    "PolicyStore",
    "PublishedPolicy",
    "Route",
    "ScoreBatch",
    "ServeConfig",
    "StdlibApp",
    "dispatch",
    "have_fastapi",
    "make_fastapi_app",
    "model_fingerprint",
]
