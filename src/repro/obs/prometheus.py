"""Prometheus text exposition (format version 0.0.4) for a registry.

:func:`render_prometheus` turns one
:class:`~repro.obs.metrics.MetricsRegistry` snapshot into the plain
``text/plain; version=0.0.4`` body a Prometheus scraper expects:
``# TYPE`` headers, one sample line per label combination, histograms
expanded into cumulative ``_bucket{le=...}`` series plus ``_sum`` and
``_count``.  Output is deterministic — metric names and label sets are
emitted sorted — so the serve route's body is stable under test.
"""

from __future__ import annotations

import math
import re

from .metrics import LabelKey, MetricsRegistry

__all__ = ["CONTENT_TYPE", "render_prometheus"]

#: Content type of the rendered body (the stdlib and FastAPI serve
#: backends both send it for ``GET /metrics``).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    name = _NAME_RE.sub("_", name)
    return "_" + name if name[:1].isdigit() else name


def _label_name(name: str) -> str:
    name = _LABEL_RE.sub("_", name)
    return "_" + name if name[:1].isdigit() else name


def _escape(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = tuple(key) + tuple(extra)
    if not items:
        return ""
    body = ",".join(
        f'{_label_name(k)}="{_escape(v)}"' for k, v in sorted(items)
    )
    return "{" + body + "}"

def _number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The full exposition body for one registry (trailing newline)."""
    snap = registry.snapshot()
    lines: list[str] = []
    for name, series in snap["counters"].items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        for key in sorted(series):
            lines.append(f"{metric}{_labels(key)} {_number(series[key])}")
    for name, series in snap["gauges"].items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        for key in sorted(series):
            lines.append(f"{metric}{_labels(key)} {_number(series[key])}")
    for name, series in snap["histograms"].items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        for key in sorted(series):
            hist = series[key]
            cumulative = 0
            for bound, count in zip(
                hist.buckets, hist.counts, strict=False
            ):
                cumulative += count
                lines.append(
                    f"{metric}_bucket"
                    f"{_labels(key, (('le', _number(bound)),))} "
                    f"{cumulative}"
                )
            lines.append(
                f"{metric}_bucket{_labels(key, (('le', '+Inf'),))} "
                f"{hist.count}"
            )
            lines.append(
                f"{metric}_sum{_labels(key)} {_number(hist.total)}"
            )
            lines.append(f"{metric}_count{_labels(key)} {hist.count}")
    return "\n".join(lines) + "\n"
