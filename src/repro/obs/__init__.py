"""``repro.obs`` — dependency-free telemetry: metrics, spans, artifacts.

Four pieces, one import surface:

* :mod:`~repro.obs.metrics` — the thread-safe
  :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  fixed-bucket histograms) plus the global on/off toggle
  (``REPRO_OBS=1`` or :func:`enable`) behind free-when-disabled
  module-level writers;
* :mod:`~repro.obs.spans` — ``with span("engine.solve"):`` nested
  wall-time spans whose contextvar parent chain survives async tasks,
  context-copying thread launchers, and (via explicit capture/adopt)
  the process-pool fan-out in :mod:`repro.engine.parallel`;
* :mod:`~repro.obs.prometheus` — deterministic text exposition of a
  registry (the serve layer's ``GET /metrics`` body);
* :mod:`~repro.obs.run_table` — the canonical per-(run, repetition)
  results artifact (``run_table.csv``/``.jsonl`` + ``raw_runs/``)
  every experiment/sim/bench harness appends to.

Instrumented library code calls only the module-level writers
(``obs.counter(...)``, ``obs.span(...)``); when telemetry is off each
reduces to one boolean check, which
``benchmarks/bench_obs_overhead.py`` pins at <2% of engine solve time.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    HistogramSnapshot,
    MetricsRegistry,
    counter,
    disable,
    enable,
    enabled,
    gauge,
    get_registry,
    observe,
    set_registry,
)
from .prometheus import CONTENT_TYPE, render_prometheus
from .run_table import (
    RUN_TABLE_COLUMNS,
    RunTableScan,
    RunTableWriter,
    config_hash,
    default_run_dir,
    maybe_writer,
    read_rows,
    scan_rows,
)
from .spans import SPAN_HISTOGRAM, adopt_span_path, current_span_path, span

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_BUCKETS",
    "HistogramSnapshot",
    "MetricsRegistry",
    "RUN_TABLE_COLUMNS",
    "RunTableScan",
    "RunTableWriter",
    "SPAN_HISTOGRAM",
    "adopt_span_path",
    "config_hash",
    "counter",
    "current_span_path",
    "default_run_dir",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_registry",
    "maybe_writer",
    "observe",
    "read_rows",
    "render_prometheus",
    "scan_rows",
    "set_registry",
    "span",
]
