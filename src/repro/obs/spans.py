"""Nested wall-time spans with a contextvar-based parent chain.

``with span("engine.solve", method="ishm"):`` opens one span; spans
opened inside it become children, and the full dotted path
(``sim.period.engine.solve``) labels the duration histogram each span
records into the global registry on exit.  The chain lives in a
:mod:`contextvars` variable, so it follows execution context — not
stack frames — across suspension points:

* **async tasks** each get their own copy (``asyncio`` snapshots the
  context per task), so concurrent requests cannot interleave chains;
* **threads** entered through context-copying launchers
  (``asyncio.to_thread``, ``contextvars.copy_context().run``) inherit
  the chain of their submitter;
* **process pools** cannot share a contextvar — the fan-out in
  :mod:`repro.engine.parallel` captures :func:`current_span_path` at
  submit time, ships it with the task, and the worker re-roots itself
  with :func:`adopt_span_path` so spans recorded worker-side carry the
  parent chain of the submitting solve.

When telemetry is disabled (:func:`repro.obs.metrics.enabled` false),
:func:`span` returns one shared no-op context manager: no contextvar
write, no clock read, no allocation.
"""

from __future__ import annotations

import time
from contextvars import ContextVar

from . import metrics

__all__ = [
    "SPAN_HISTOGRAM",
    "adopt_span_path",
    "current_span_path",
    "span",
]

#: Histogram every completed span observes into, labeled by the full
#: dotted span path.
SPAN_HISTOGRAM = "repro_span_seconds"

_SPAN_PATH: ContextVar[tuple[str, ...]] = ContextVar(
    "repro_obs_span_path", default=()
)


def current_span_path() -> tuple[str, ...]:
    """The open span chain of this execution context, outermost first."""
    return _SPAN_PATH.get()


class _Span:
    """One live span: pushes itself onto the chain, times its body."""

    __slots__ = ("_name", "_attrs", "_path", "_token", "_start")

    def __init__(self, name: str, attrs: dict[str, object]) -> None:
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._path = _SPAN_PATH.get() + (self._name,)
        self._token = _SPAN_PATH.set(self._path)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        seconds = time.perf_counter() - self._start
        _SPAN_PATH.reset(self._token)
        # Re-checked (not cached from __enter__) so a mid-span disable
        # simply drops the record instead of writing to a dead registry.
        if metrics.enabled():
            metrics.get_registry().observe(
                SPAN_HISTOGRAM,
                seconds,
                span=".".join(self._path),
                **self._attrs,
            )
        return False

    @property
    def path(self) -> tuple[str, ...]:
        return self._path


class _NoopSpan:
    """Shared disabled-path span: enter/exit do nothing at all."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP = _NoopSpan()


def span(name: str, **attrs: object):
    """Open a wall-time span (no-op when telemetry is disabled)."""
    if not metrics.enabled():
        return _NOOP
    return _Span(name, attrs)


class _AdoptedPath:
    """Re-root this execution context's span chain (see module doc)."""

    __slots__ = ("_path", "_token")

    def __init__(self, path) -> None:
        self._path = tuple(path)

    def __enter__(self) -> tuple[str, ...]:
        self._token = _SPAN_PATH.set(self._path)
        return self._path

    def __exit__(self, *exc_info: object) -> bool:
        _SPAN_PATH.reset(self._token)
        return False


def adopt_span_path(path) -> _AdoptedPath:
    """Adopt a captured span chain (cross-process/-thread propagation).

    The submitter captures :func:`current_span_path`; the worker wraps
    its task body in ``with adopt_span_path(path):`` so spans it opens
    nest under the submitter's chain.  Cheap and side-effect-free
    beyond the contextvar write, so it is safe to use unconditionally.
    """
    return _AdoptedPath(path)
