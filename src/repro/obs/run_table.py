"""The canonical per-run results artifact: ``run_table`` + raw folders.

Layout (modeled on the mubench replication data referenced in
SNIPPETS.md — ``run_table.csv`` beside ``raw_runs/`` with a columns
explanation):

.. code-block:: text

    <run dir>/
        run_table.csv      # one row per (run, repetition); header once
        run_table.jsonl    # the same rows, lossless JSON lines
        raw_runs/
            <run_id>/      # per-run raw payloads (full result dicts,
                           # trajectories, bench records)

Every experiment/sim/bench entry point appends through one
:class:`RunTableWriter`, so fleet-scale triage reads a single table no
matter which harness produced the rows.  The writer is append-only and
process-agnostic: concurrent writers interleave whole lines, never
partial ones (rows are written in one ``write`` call each).

The run directory comes from ``REPRO_RUN_DIR``; when unset but global
telemetry is on (``REPRO_OBS=1``), :func:`maybe_writer` defaults to
``./results``.  With both off it returns ``None`` and every adopter
skips the artifact entirely — ordinary test runs leave no files
behind.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from . import metrics

__all__ = [
    "RUN_TABLE_COLUMNS",
    "RunTableScan",
    "RunTableWriter",
    "config_hash",
    "default_run_dir",
    "maybe_writer",
    "read_rows",
    "scan_rows",
]

#: The canonical column set, in order, with one-line explanations
#: (mirrored by the README's Observability section).
RUN_TABLE_COLUMNS: tuple[tuple[str, str], ...] = (
    ("run_id", "id of this run; raw payloads live in raw_runs/<run_id>/"),
    ("timestamp", "unix wall-clock time the row was appended"),
    ("kind", "harness that produced the row: experiment|sim|bench|serve"),
    ("name", "experiment name, bench name, or sim scenario label"),
    ("solver", "registry solver name (ishm, bruteforce, random, ...)"),
    ("backend", "LP backend the solve ran on"),
    ("config_hash", "sha256[:12] of the canonical config mapping"),
    ("repetition", "0-based repetition index within the run"),
    ("seed", "rng seed of this repetition"),
    ("objective", "achieved objective value (mu_hat)"),
    ("lp_calls", "master LP solve count"),
    ("warm_solves", "LP solves warm-started from a reused basis"),
    ("solve_seconds", "wall-clock solve seconds (perf_counter)"),
    ("detection_rate", "sim: attacks detected / attacks mounted"),
    ("deterrence_rate", "sim: periods with no attack / periods"),
    ("extra", "JSON object of harness-specific fields"),
)

_COLUMN_NAMES = tuple(name for name, _ in RUN_TABLE_COLUMNS)


def config_hash(config: Mapping[str, Any] | None) -> str:
    """Stable short hash of a config mapping (sorted-key JSON, sha256).

    Non-JSON values fall back to ``repr`` so arbitrary config objects
    still hash deterministically within one code version.
    """
    canonical = json.dumps(
        dict(config or {}), sort_keys=True, default=repr
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def default_run_dir() -> Path | None:
    """The run directory from ``REPRO_RUN_DIR`` (``None`` when unset)."""
    raw = os.environ.get("REPRO_RUN_DIR", "").strip()
    return Path(raw) if raw else None


def maybe_writer() -> "RunTableWriter | None":
    """A writer when run-table output is wanted, else ``None``.

    ``REPRO_RUN_DIR`` names the directory explicitly; otherwise the
    artifact is produced only when telemetry is enabled, under
    ``./results``.
    """
    run_dir = default_run_dir()
    if run_dir is None:
        if not metrics.enabled():
            return None
        run_dir = Path("results")
    return RunTableWriter(run_dir)


class RunTableWriter:
    """Append-only writer for one run directory (thread-safe)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.csv_path = self.root / "run_table.csv"
        self.jsonl_path = self.root / "run_table.jsonl"
        self.raw_root = self.root / "raw_runs"
        # Not part of the ranked hierarchy: only guards file appends and
        # the run-id counter, is never held across a call into any
        # ranked layer, and nothing ranked is ever acquired under it.
        self._io_lock = threading.Lock()
        self._run_counter = 0

    # -- run identity --------------------------------------------------

    def new_run_id(self, prefix: str) -> str:
        """A fresh run id: ``<prefix>-<utc stamp>-p<pid>-<n>``."""
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        with self._io_lock:
            self._run_counter += 1
            n = self._run_counter
        return f"{prefix}-{stamp}-p{os.getpid()}-{n:03d}"

    def raw_dir(self, run_id: str) -> Path:
        """The (created) raw-payload folder for one run."""
        path = self.raw_root / run_id
        path.mkdir(parents=True, exist_ok=True)
        return path

    def write_raw(self, run_id: str, name: str, payload: Any) -> Path:
        """Drop one JSON payload into the run's raw folder."""
        path = self.raw_dir(run_id) / name
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=repr),
            encoding="utf-8",
        )
        return path

    # -- rows ----------------------------------------------------------

    def append(self, **fields: Any) -> dict[str, Any]:
        """Append one row; unknown fields fold into the ``extra`` JSON.

        Returns the normalized row as written (CSV and JSONL stay in
        lockstep — same columns, same values).
        """
        extra = dict(fields.pop("extra", None) or {})
        row: dict[str, Any] = {}
        for name in _COLUMN_NAMES:
            if name == "extra":
                continue
            row[name] = fields.pop(name, "")
        extra.update(fields)  # anything non-canonical rides along
        if "timestamp" in _COLUMN_NAMES and row.get("timestamp") == "":
            row["timestamp"] = round(time.time(), 3)
        row["extra"] = json.dumps(extra, sort_keys=True, default=repr)
        csv_buf = io.StringIO()
        writer = csv.DictWriter(csv_buf, fieldnames=_COLUMN_NAMES)
        writer.writerow(row)
        csv_line = csv_buf.getvalue()
        json_line = json.dumps(row, sort_keys=True, default=repr) + "\n"
        # flush + fsync before close: a crash (or OOM kill) right after
        # append leaves at most one torn *final* line, which scan_rows
        # tolerates — never silently dropped rows that looked written.
        with self._io_lock:
            new_table = not self.csv_path.exists()
            with self.csv_path.open("a", encoding="utf-8", newline="") as f:
                if new_table:
                    header = io.StringIO()
                    csv.DictWriter(
                        header, fieldnames=_COLUMN_NAMES
                    ).writeheader()
                    f.write(header.getvalue())
                f.write(csv_line)
                f.flush()
                os.fsync(f.fileno())
            with self.jsonl_path.open("a", encoding="utf-8") as f:
                f.write(json_line)
                f.flush()
                os.fsync(f.fileno())
        return row


@dataclass(frozen=True)
class RunTableScan:
    """Rows read back from a run directory, plus crash damage found."""

    rows: list[dict[str, Any]]
    torn_lines: int


def scan_rows(root: str | Path) -> RunTableScan:
    """Parse a run directory's table back (JSONL wins; crash-tolerant).

    A process killed mid-append can leave one truncated *final* JSONL
    line; it is skipped and counted in :attr:`RunTableScan.torn_lines`
    instead of failing the whole read.  Corruption anywhere *before*
    the last line is not a torn write and still raises — silently
    skipping interior rows would misreport every later repetition.
    Falls back to the CSV when the JSONL is missing, so hand-trimmed
    artifacts stay readable.
    """
    root = Path(root)
    jsonl = root / "run_table.jsonl"
    if jsonl.exists():
        lines = [
            line
            for line in jsonl.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        rows: list[dict[str, Any]] = []
        torn = 0
        for i, line in enumerate(lines):
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if i == len(lines) - 1:
                    torn = 1
                    break
                raise ValueError(
                    f"corrupt run_table.jsonl line {i + 1} of "
                    f"{len(lines)} in {root} (not a torn final write)"
                ) from exc
        return RunTableScan(rows=rows, torn_lines=torn)
    table = root / "run_table.csv"
    if not table.exists():
        return RunTableScan(rows=[], torn_lines=0)
    with table.open(encoding="utf-8", newline="") as f:
        return RunTableScan(rows=list(csv.DictReader(f)), torn_lines=0)


def read_rows(root: str | Path) -> list[dict[str, Any]]:
    """The rows of :func:`scan_rows` (compatibility wrapper)."""
    return scan_rows(root).rows
