"""Thread-safe metrics primitives and the global telemetry toggle.

One :class:`MetricsRegistry` holds three families of instruments:

* **counters** — monotonically increasing floats (events ingested,
  re-solves completed, LP calls);
* **gauges** — last-write-wins floats (current drift, re-solve lag);
* **histograms** — fixed-bucket latency/size distributions with a
  cumulative-bucket snapshot and a quantile estimator (p95 score
  latency).

Every instrument is keyed by ``(name, sorted label items)`` so one
registry serves many solvers/backends/routes without coordination.
All mutation runs under one lock — rank 50 ("obs") in
:mod:`repro.devtools.lock_hierarchy`, a strict leaf: registry methods
call nothing that could acquire another ranked lock, so telemetry may
be recorded while holding any of them.

The module-level toggle is the reason instrumented hot paths stay free
when telemetry is off: :func:`counter` / :func:`gauge` /
:func:`observe` (and :func:`repro.obs.spans.span`) check one module
global and return immediately when disabled.  ``REPRO_OBS=1`` in the
environment enables telemetry at import; :func:`enable` /
:func:`disable` flip it at runtime.  The disabled-path cost is pinned
by ``benchmarks/bench_obs_overhead.py`` (<2% on engine solves).
"""

from __future__ import annotations

import math
import os
import threading
from dataclasses import dataclass
from typing import Iterable, Mapping

__all__ = [
    "DEFAULT_BUCKETS",
    "HistogramSnapshot",
    "MetricsRegistry",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_registry",
    "observe",
    "set_registry",
]

#: Default histogram buckets (seconds) — spans request-time scoring
#: (sub-ms) through multi-second cold solves.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Canonical label key: sorted ``(key, value)`` string pairs.
LabelKey = tuple[tuple[str, str], ...]


def label_key(labels: Mapping[str, object]) -> LabelKey:
    """Canonicalize a label mapping (sorted, stringified)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class HistogramSnapshot:
    """One labeled histogram series, frozen at snapshot time.

    ``counts[i]`` is the number of observations ``<= buckets[i]``
    (non-cumulative per bucket; the Prometheus renderer accumulates),
    with one overflow slot at the end for observations above the last
    bucket.
    """

    buckets: tuple[float, ...]
    counts: tuple[int, ...]
    total: float
    count: int

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (Prometheus-style).

        Returns the upper bound of the bucket containing the q-th
        observation; ``inf`` when it falls in the overflow bucket,
        ``nan`` when the series is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        seen = 0
        for bound, n in zip(self.buckets, self.counts, strict=False):
            seen += n
            if seen >= rank:
                return bound
        return math.inf


class _Histogram:
    """Mutable histogram state (registry-internal; lock held by caller)."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.total += value
        self.count += 1

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            buckets=self.buckets,
            counts=tuple(self.counts),
            total=self.total,
            count=self.count,
        )


class MetricsRegistry:
    """Thread-safe counters, gauges and fixed-bucket histograms.

    Instruments are created on first touch; a histogram's buckets are
    fixed by its first observation (later ``buckets=`` arguments for
    the same name are ignored, so concurrent observers cannot fork a
    series).  ``snapshot_*`` methods return plain immutable data — the
    Prometheus renderer and the serve ``/status`` payload both read
    through them, which is what makes the two views consistent.
    """

    def __init__(self) -> None:
        # Rank 50 ("obs") in repro/devtools/lock_hierarchy.py: a strict
        # leaf — may be taken while holding any ranked lock, must call
        # back into nothing.
        self._lock = threading.Lock()
        self._counters: dict[str, dict[LabelKey, float]] = {}
        self._gauges: dict[str, dict[LabelKey, float]] = {}
        self._histograms: dict[str, dict[LabelKey, _Histogram]] = {}
        self._bucket_choice: dict[str, tuple[float, ...]] = {}

    # -- writes --------------------------------------------------------

    def counter(
        self, name: str, value: float = 1.0, **labels: object
    ) -> None:
        """Add ``value`` (>= 0) to a counter series."""
        if value < 0:
            raise ValueError(f"counter increment must be >= 0, got {value}")
        key = label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + value

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge series to ``value`` (last write wins)."""
        with self._lock:
            self._gauges.setdefault(name, {})[label_key(labels)] = float(
                value
            )

    def observe(
        self,
        name: str,
        value: float,
        *,
        buckets: Iterable[float] | None = None,
        **labels: object,
    ) -> None:
        """Record ``value`` into a histogram series."""
        key = label_key(labels)
        with self._lock:
            chosen = self._bucket_choice.get(name)
            if chosen is None:
                chosen = (
                    DEFAULT_BUCKETS
                    if buckets is None
                    else tuple(sorted(float(b) for b in buckets))
                )
                if not chosen:
                    raise ValueError("histogram needs at least one bucket")
                self._bucket_choice[name] = chosen
            series = self._histograms.setdefault(name, {})
            hist = series.get(key)
            if hist is None:
                hist = series[key] = _Histogram(chosen)
            hist.observe(float(value))

    def reset(self) -> None:
        """Drop every instrument (tests and fresh service starts)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._bucket_choice.clear()

    # -- reads ---------------------------------------------------------

    def get_counter(self, name: str, **labels: object) -> float:
        with self._lock:
            return self._counters.get(name, {}).get(label_key(labels), 0.0)

    def get_gauge(
        self, name: str, default: float = 0.0, **labels: object
    ) -> float:
        with self._lock:
            return self._gauges.get(name, {}).get(
                label_key(labels), default
            )

    def get_histogram(
        self, name: str, **labels: object
    ) -> HistogramSnapshot | None:
        with self._lock:
            hist = self._histograms.get(name, {}).get(label_key(labels))
            return None if hist is None else hist.snapshot()

    def counter_total(self, name: str) -> float:
        """Sum of a counter across every label combination."""
        with self._lock:
            return sum(self._counters.get(name, {}).values())

    def snapshot(self) -> dict[str, dict]:
        """Deep-copied view of every instrument, for rendering.

        Shape::

            {"counters":   {name: {label_key: value}},
             "gauges":     {name: {label_key: value}},
             "histograms": {name: {label_key: HistogramSnapshot}}}
        """
        with self._lock:
            return {
                "counters": {
                    name: dict(series)
                    for name, series in sorted(self._counters.items())
                },
                "gauges": {
                    name: dict(series)
                    for name, series in sorted(self._gauges.items())
                },
                "histograms": {
                    name: {
                        key: hist.snapshot()
                        for key, hist in series.items()
                    }
                    for name, series in sorted(self._histograms.items())
                },
            }


# ----------------------------------------------------------------------
# Global toggle + default registry
# ----------------------------------------------------------------------


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "0").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
        "off",
    )


#: The telemetry fast-path flag.  Everything in the instrumented hot
#: paths reduces to ``if not _enabled: return`` when telemetry is off.
_enabled: bool = _env_enabled()
_registry: MetricsRegistry | None = None


def enabled() -> bool:
    """Whether global telemetry is currently recording."""
    return _enabled


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Turn global telemetry on (optionally installing a registry)."""
    global _enabled, _registry
    if registry is not None:
        _registry = registry
    elif _registry is None:
        _registry = MetricsRegistry()
    _enabled = True
    return _registry


def disable() -> None:
    """Turn global telemetry off (the registry is kept, not cleared)."""
    global _enabled
    _enabled = False


def get_registry() -> MetricsRegistry:
    """The global registry (created on first access)."""
    global _registry
    if _registry is None:
        _registry = MetricsRegistry()
    return _registry


def set_registry(registry: MetricsRegistry) -> None:
    """Install a registry as the global one (does not flip the toggle)."""
    global _registry
    _registry = registry


# ----------------------------------------------------------------------
# Module-level convenience writers (the instrumented-call surface)
# ----------------------------------------------------------------------


def counter(name: str, value: float = 1.0, **labels: object) -> None:
    """Increment a global counter; free when telemetry is disabled."""
    if not _enabled:
        return
    get_registry().counter(name, value, **labels)


def gauge(name: str, value: float, **labels: object) -> None:
    """Set a global gauge; free when telemetry is disabled."""
    if not _enabled:
        return
    get_registry().gauge(name, value, **labels)


def observe(
    name: str,
    value: float,
    *,
    buckets: Iterable[float] | None = None,
    **labels: object,
) -> None:
    """Observe into a global histogram; free when telemetry is disabled."""
    if not _enabled:
        return
    get_registry().observe(name, value, buckets=buckets, **labels)
