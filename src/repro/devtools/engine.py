"""The pluggable AST lint engine.

One :class:`LintEngine` run parses every target file **once**, walks the
AST **once**, and dispatches each node to every registered rule — rules
are visitor fragments, not separate passes, so adding a rule does not
add a parse.  The engine is deterministic by construction: files are
visited in sorted order, findings are sorted before they are returned,
and rule codes are stable, so its JSON output can be golden-tested.

Rules register themselves with :func:`register_rule`, mirroring the
``@register_solver`` registry of :mod:`repro.engine.registry`::

    @register_rule
    class MyRule(Rule):
        code = "RPL901"
        name = "my-invariant"
        summary = "one-line description"
        domains = frozenset({"src"})

        def visit_Call(self, node, ctx):
            ...
            ctx.report(self.code, node, "explain the violation")

Suppressions are inline comments on the offending line::

    risky_call()  # replint: disable=RPL201
    other_call()  # replint: disable=all

Every file is classified into a *domain* (``src`` / ``tests`` /
``benchmarks`` / ``examples`` / ``other``, from its path segments) and
rules declare which domains they police — RNG discipline binds library
code, not tests.  Fixture trees can force a domain (and a dotted module
name) through :meth:`LintEngine.lint_file`, which is how the rule test
suite runs ``tests/devtools/fixtures/`` snippets as if they were
library code.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .findings import Finding

__all__ = [
    "DOMAINS",
    "LintContext",
    "LintEngine",
    "LintReport",
    "Rule",
    "RuleSpec",
    "available_rules",
    "get_rule",
    "register_rule",
    "rule_table",
]

#: Recognized file domains, in classification priority order.
DOMAINS = ("tests", "benchmarks", "examples", "src", "other")

_SUPPRESS_RE = re.compile(
    r"#\s*replint:\s*disable=([A-Za-z0-9_,\s]+?)\s*(?:#|$)"
)

#: Directory names never walked implicitly (fixture trees contain
#: deliberate violations; explicit file arguments still lint them).
SKIPPED_DIRS = frozenset(
    {"fixtures", "__pycache__", ".git", ".venv", "node_modules"}
)


class Rule:
    """Base class for lint rules (visitor fragments).

    Subclasses set the class attributes below and implement any number
    of ``visit_<NodeType>`` / ``leave_<NodeType>`` methods taking
    ``(node, ctx)``.  Per-file state must be reset in :meth:`begin_file`
    — one rule instance is reused across every file of a run.
    """

    #: Primary stable code (``RPL...``).
    code: str = ""
    #: Short kebab-case rule name.
    name: str = ""
    #: One-line summary for ``--list-rules`` and docs.
    summary: str = ""
    #: The repo invariant this rule machine-checks.
    invariant: str = ""
    #: Every code this rule can emit (defaults to just ``code``).
    codes: tuple[str, ...] = ()
    #: Domains the rule polices (see :data:`DOMAINS`).
    domains: frozenset[str] = frozenset({"src"})

    def all_codes(self) -> tuple[str, ...]:
        return self.codes or (self.code,)

    def begin_file(self, ctx: "LintContext") -> None:
        """Optional hook: reset per-file state before the walk."""

    def finish_file(self, ctx: "LintContext") -> None:
        """Optional hook: report whole-file findings after the walk."""


@dataclass(frozen=True)
class RuleSpec:
    """One registry entry: the rule class plus its metadata."""

    code: str
    name: str
    summary: str
    invariant: str
    codes: tuple[str, ...]
    domains: frozenset[str]
    rule_cls: type[Rule]


_REGISTRY: dict[str, RuleSpec] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a :class:`Rule` to the registry."""
    if not (isinstance(cls, type) and issubclass(cls, Rule)):
        raise TypeError(f"register_rule expects a Rule subclass, got {cls!r}")
    if not cls.code or not cls.name:
        raise ValueError(f"{cls.__name__} must set 'code' and 'name'")
    if cls.code in _REGISTRY:
        raise ValueError(f"rule code {cls.code!r} is already registered")
    instance_codes = cls.codes or (cls.code,)
    for spec in _REGISTRY.values():
        clash = set(spec.codes) & set(instance_codes)
        if clash:
            raise ValueError(
                f"rule codes {sorted(clash)} already claimed by {spec.name}"
            )
    _REGISTRY[cls.code] = RuleSpec(
        code=cls.code,
        name=cls.name,
        summary=cls.summary,
        invariant=cls.invariant,
        codes=instance_codes,
        domains=frozenset(cls.domains),
        rule_cls=cls,
    )
    return cls


def available_rules() -> tuple[RuleSpec, ...]:
    """Registered rules, sorted by primary code."""
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rule(code: str) -> RuleSpec:
    """Resolve a primary code to its :class:`RuleSpec`."""
    spec = _REGISTRY.get(code)
    if spec is None:
        raise KeyError(
            f"no rule registered under {code!r}; available: "
            f"{', '.join(sorted(_REGISTRY))}"
        )
    return spec


def rule_table() -> str:
    """Overview text: code(s), name, domains, summary per rule."""
    rows = [("code", "name", "domains", "summary")]
    for spec in available_rules():
        rows.append(
            (
                "/".join(spec.codes),
                spec.name,
                ",".join(sorted(spec.domains)),
                spec.summary,
            )
        )
    widths = [max(len(r[i]) for r in rows) for i in range(4)]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)).rstrip()
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


class LintContext:
    """Shared per-file state every rule sees during the walk."""

    def __init__(
        self,
        path: str,
        domain: str,
        module: str,
        suppressions: dict[int, set[str]],
    ) -> None:
        self.path = path
        self.domain = domain
        self.module = module
        self.findings: list[Finding] = []
        self.suppressed = 0
        self._suppressions = suppressions
        #: Enclosing class names, outermost first.
        self.class_stack: list[str] = []
        #: Enclosing functions as (name, is_async), outermost first
        #: (lambdas enter as ("<lambda>", False)).
        self.func_stack: list[tuple[str, bool]] = []

    # -- rule-facing helpers -------------------------------------------

    @property
    def current_class(self) -> str | None:
        return self.class_stack[-1] if self.class_stack else None

    def in_async_function(self) -> bool:
        """True when the innermost enclosing callable is ``async def``.

        A sync ``def`` (or lambda) nested inside an async function runs
        wherever it is *called* — typically shipped to a worker thread —
        so it does not count as async context.
        """
        return bool(self.func_stack) and self.func_stack[-1][1]

    def qualname(self) -> str:
        parts = list(self.class_stack) + [n for n, _ in self.func_stack]
        return ".".join(parts) if parts else "<module>"

    def report(self, code: str, node: ast.AST, message: str) -> None:
        """Record one finding (dropped when suppressed inline)."""
        line = getattr(node, "lineno", 0)
        codes = self._suppressions.get(line, ())
        if "all" in codes or code in codes:
            self.suppressed += 1
            return
        self.findings.append(
            Finding(
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
                context=self.qualname(),
            )
        )


@dataclass
class LintReport:
    """Aggregated result of one engine run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    parse_errors: list[str] = field(default_factory=list)

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    def to_dict(self) -> dict[str, object]:
        return {
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in self.findings],
            "parse_errors": list(self.parse_errors),
            "suppressed": self.suppressed,
            "summary": self.summary(),
        }


def classify_domain(path: Path) -> str:
    """File domain from path segments (first match in priority order)."""
    parts = set(path.parts)
    for domain in DOMAINS[:-1]:
        if domain in parts:
            return domain
    return "other"


def module_name(path: Path) -> str:
    """Dotted module guess: everything under a ``src`` segment, else stem."""
    parts = path.with_suffix("").parts
    if "src" in parts:
        idx = len(parts) - 1 - tuple(reversed(parts)).index("src")
        tail = parts[idx + 1 :]
        if tail:
            return ".".join(tail)
    return path.stem


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """``# replint: disable=CODE[,CODE...]`` markers per 1-based line."""
    table: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = {
            c.strip() for c in match.group(1).split(",") if c.strip()
        }
        if codes:
            table[lineno] = codes
    return table


class LintEngine:
    """Run the registered rules over files and collect findings.

    Parameters
    ----------
    rules:
        Primary codes to run (default: every registered rule).  Useful
        for per-rule fixture tests and for ``--select`` on the CLI.
    """

    def __init__(self, rules: Sequence[str] | None = None) -> None:
        specs = (
            available_rules()
            if rules is None
            else tuple(get_rule(code) for code in rules)
        )
        self._rules = tuple(spec.rule_cls() for spec in specs)
        # visit/leave handler tables: node-type name -> [(rule, method)].
        self._visitors: dict[str, list] = {}
        self._leavers: dict[str, list] = {}
        for rule in self._rules:
            for attr in dir(rule):
                if attr.startswith("visit_"):
                    self._visitors.setdefault(attr[6:], []).append(
                        (rule, getattr(rule, attr))
                    )
                elif attr.startswith("leave_"):
                    self._leavers.setdefault(attr[6:], []).append(
                        (rule, getattr(rule, attr))
                    )

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def lint_paths(self, paths: Iterable[str | Path]) -> LintReport:
        """Lint every python file under the given files/directories."""
        report = LintReport()
        for path in sorted(iter_python_files(paths)):
            self._lint_into(report, path, None, None, None)
        report.findings.sort()
        return report

    def lint_file(
        self,
        path: str | Path,
        *,
        source: str | None = None,
        domain: str | None = None,
        module: str | None = None,
    ) -> LintReport:
        """Lint one file, optionally forcing domain/module (fixtures)."""
        report = LintReport()
        self._lint_into(report, Path(path), source, domain, module)
        report.findings.sort()
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _lint_into(
        self,
        report: LintReport,
        path: Path,
        source: str | None,
        domain: str | None,
        module: str | None,
    ) -> None:
        if source is None:
            source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            report.parse_errors.append(f"{path}: {exc.msg} (line {exc.lineno})")
            return
        ctx = LintContext(
            path=str(path),
            domain=domain if domain is not None else classify_domain(path),
            module=module if module is not None else module_name(path),
            suppressions=parse_suppressions(source),
        )
        active = [r for r in self._rules if ctx.domain in r.domains]
        if active:
            for rule in active:
                rule.begin_file(ctx)
            self._walk(tree, ctx, frozenset(id(r) for r in active))
            for rule in active:
                rule.finish_file(ctx)
        report.files_scanned += 1
        report.findings.extend(ctx.findings)
        report.suppressed += ctx.suppressed

    def _walk(
        self, node: ast.AST, ctx: LintContext, active: frozenset[int]
    ) -> None:
        node_type = type(node).__name__
        for rule, method in self._visitors.get(node_type, ()):
            if id(rule) in active:
                method(node, ctx)
        is_class = isinstance(node, ast.ClassDef)
        is_func = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        if is_class:
            ctx.class_stack.append(node.name)
        elif is_func:
            ctx.func_stack.append(
                (
                    getattr(node, "name", "<lambda>"),
                    isinstance(node, ast.AsyncFunctionDef),
                )
            )
        for child in ast.iter_child_nodes(node):
            self._walk(child, ctx, active)
        if is_class:
            ctx.class_stack.pop()
        elif is_func:
            ctx.func_stack.pop()
        for rule, method in self._leavers.get(node_type, ()):
            if id(rule) in active:
                method(node, ctx)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield python files under files/dirs, skipping fixture trees.

    Explicit file arguments are always yielded (so a fixture file can
    be linted directly); directory walks skip :data:`SKIPPED_DIRS`.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in path.rglob("*.py"):
            if any(part in SKIPPED_DIRS for part in candidate.parts):
                continue
            yield candidate
