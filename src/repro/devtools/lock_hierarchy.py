"""The single declared lock hierarchy of the concurrent layers.

This module is the one place the repo's lock ordering is written down;
the scattered comments it replaced in ``engine/facade.py`` and the serve
layer now point here, and the ``RPL101``/``RPL102`` lint rules enforce
it mechanically (see :mod:`repro.devtools.rules`).

The rule is the classic one: **a thread may only acquire a lock with a
strictly greater rank than every lock it already holds.**  Re-acquiring
the lock it already holds is fine (every ranked lock is reentrant), and
acquiring a lock that is not ranked here while holding a ranked one is
itself a violation — new locks must be added to the hierarchy before
they can nest inside it.

Current hierarchy, outermost first::

    rank  5   AuditService._resolve_lock   (asyncio; serializes re-solves)
    rank 10   AuditService._engines_lock   (engine/memo map of the service)
    rank 20   AuditEngine._lock            (scenario/solution-cache maps)
    rank 30   FixedSolveCache._lock        (solution memo + executor)
    rank 40   PolicyStore._lock            (published-policy map; leaf)
    rank 50   MetricsRegistry._lock        (telemetry instruments; leaf)
    rank 60   FaultPlan._lock              (injection counters; leaf)

So: the serve layer's engine map may create/evict engines (10 -> 20),
an engine may reach into its caches (20 -> 30), and anyone may publish
into the store while holding any of the above (… -> 40) — but a cache
must never call back up into an engine, and nothing may solve while
holding the store.  Telemetry sits at the very bottom (rank 50):
counters and spans may be recorded while holding anything, and the
registry calls back into nothing.  Fault-injection points (rank 60)
fire from inside every layer above, so the plan's counter lock is a
strict leaf too.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LockSpec",
    "LOCKS",
    "ACQUIRING_METHODS",
    "lock_for",
    "lock_named",
    "render_hierarchy",
]


@dataclass(frozen=True)
class LockSpec:
    """One ranked lock: where it lives and where it sits in the order."""

    name: str
    rank: int
    owner: str  # class whose instances carry the lock
    attr: str  # attribute name on the owner
    kind: str  # "threading" or "asyncio"
    guards: str  # one-line description of what it protects


#: The declared hierarchy, outermost (lowest rank) first.
LOCKS: tuple[LockSpec, ...] = (
    LockSpec(
        name="serve.resolve",
        rank=5,
        owner="AuditService",
        attr="_resolve_lock",
        kind="asyncio",
        guards="serializes background re-solves; held across to_thread",
    ),
    LockSpec(
        name="serve.engines",
        rank=10,
        owner="AuditService",
        attr="_engines_lock",
        kind="threading",
        guards="the service's per-(fingerprint, budget) engine/memo maps",
    ),
    LockSpec(
        name="engine",
        rank=20,
        owner="AuditEngine",
        attr="_lock",
        kind="threading",
        guards="scenario-set and solution-cache maps of one engine",
    ),
    LockSpec(
        name="cache",
        rank=30,
        owner="FixedSolveCache",
        attr="_lock",
        kind="threading",
        guards="solution memo, counters and executor of one cache",
    ),
    LockSpec(
        name="store",
        rank=40,
        owner="PolicyStore",
        attr="_lock",
        kind="threading",
        guards="published-policy pointer + history (leaf: calls nothing)",
    ),
    LockSpec(
        name="obs",
        rank=50,
        owner="MetricsRegistry",
        attr="_lock",
        kind="threading",
        guards="telemetry instruments of one registry (strict leaf)",
    ),
    LockSpec(
        name="faults",
        rank=60,
        owner="FaultPlan",
        attr="_lock",
        kind="threading",
        guards="per-point call counters + injection history (strict leaf)",
    ),
)


#: Methods known to acquire a ranked lock internally.  Calling one of
#: these while holding a lock ranked at or below the target inverts the
#: hierarchy just as surely as a nested ``with`` would — the lint rule
#: treats such a call as a momentary acquisition of the mapped lock.
#: Names are matched as called attributes (``engine.solve(...)``), so
#: only methods with distinctive names belong here.
ACQUIRING_METHODS: dict[str, str] = {
    "solve": "engine",
    "price_batch": "engine",
    "scenario_set": "engine",
    "solution_cache": "engine",
    "clear_caches": "engine",
    "cache_info": "engine",
    "batch_solver": "cache",
    "publish": "store",
    "publish_for": "store",
}


_BY_OWNER_ATTR = {(spec.owner, spec.attr): spec for spec in LOCKS}
_BY_NAME = {spec.name: spec for spec in LOCKS}
_BY_UNIQUE_ATTR = {
    spec.attr: spec
    for spec in LOCKS
    if sum(1 for s in LOCKS if s.attr == spec.attr) == 1
}


def lock_for(owner: str, attr: str) -> LockSpec | None:
    """Resolve an acquisition site to its spec.

    ``owner`` is the enclosing class name at the ``with self.<attr>``
    site; when the receiver is not ``self`` the owner is unknown and
    resolution falls back to attribute names that are unique across the
    hierarchy (``_engines_lock`` is unambiguous, ``_lock`` is not).
    """
    spec = _BY_OWNER_ATTR.get((owner, attr))
    if spec is not None:
        return spec
    return _BY_UNIQUE_ATTR.get(attr)


def lock_named(name: str) -> LockSpec:
    """The spec for a hierarchy name (KeyError when unknown)."""
    return _BY_NAME[name]


def render_hierarchy() -> str:
    """Human-readable table of the declared order, outermost first."""
    lines = ["rank  lock           owner.attr                      kind"]
    for spec in sorted(LOCKS, key=lambda s: s.rank):
        lines.append(
            f"{spec.rank:>4}  {spec.name:<14} "
            f"{spec.owner + '.' + spec.attr:<31} {spec.kind}"
        )
    return "\n".join(lines)
