"""Developer tooling: the repo-specific invariant linter.

``repro.devtools`` machine-checks the contracts the codebase's
correctness rests on but no off-the-shelf linter knows about — the
declared lock hierarchy, the "solves never block the event loop" rule
of the serve layer, RNG/determinism discipline in kernel code, frozen
result contracts, and the registry protocols.  See ``rules`` for the
shipped rule set and the README's "Static analysis & invariants"
section for the workflow.

Run it as::

    python -m repro.devtools.lint src tests benchmarks

This package deliberately imports nothing from the rest of ``repro``
at runtime — it parses source, it never executes it — so the linter
works even while the library itself is broken.
"""

from .baseline import compare, load_baseline, write_baseline
from .engine import (
    LintContext,
    LintEngine,
    LintReport,
    Rule,
    available_rules,
    get_rule,
    register_rule,
)
from .findings import Finding
from .rules import BLOCKING_CALL_PATTERNS

__all__ = [
    "BLOCKING_CALL_PATTERNS",
    "Finding",
    "LintContext",
    "LintEngine",
    "LintReport",
    "Rule",
    "available_rules",
    "compare",
    "get_rule",
    "load_baseline",
    "register_rule",
    "write_baseline",
]
