"""The finding model shared by every lint rule.

A :class:`Finding` is one rule violation at one source location.  The
model is deliberately small and fully ordered so that engine output is
deterministic (sorted findings, stable codes) and can be golden-tested
byte-for-byte.

Baseline identity intentionally excludes the line number: a finding is
identified by ``(path, code, context, message)`` so that unrelated edits
that shift code up or down do not churn the committed baseline, while
moving a violation into a different function (or changing what it says)
does register as a new finding.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        Path of the offending file, as passed to the engine (kept
        relative when the input was relative, so output is stable
        across checkouts).
    line, col:
        1-based line and 0-based column of the offending node.
    code:
        Stable rule code (``RPL...``); the rule registry maps codes to
        implementations and documentation.
    message:
        Human-readable description of the violation.  Messages never
        embed line numbers, keeping baseline identity line-free.
    context:
        Dotted location inside the file (``Class.method`` or
        ``<module>``), used in output and in the baseline key.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    context: str = field(default="<module>")

    @property
    def baseline_key(self) -> str:
        """Line-independent identity used by the baseline file."""
        digest = hashlib.sha256(self.message.encode()).hexdigest()[:8]
        return f"{self.path}::{self.code}::{self.context}::{digest}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (stable key order)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "context": self.context,
        }

    def render(self) -> str:
        """One-line text rendering: ``path:line:col: CODE message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"{self.message} [{self.context}]"
        )
