"""Command-line front end: ``python -m repro.devtools.lint``.

Usage::

    python -m repro.devtools.lint src tests benchmarks
    python -m repro.devtools.lint src --format json
    python -m repro.devtools.lint src --select RPL101 RPL201
    python -m repro.devtools.lint src tests benchmarks --write-baseline
    python -m repro.devtools.lint --list-rules

Exit codes: 0 clean against the baseline, 1 new findings / stale
baseline entries / parse errors, 2 usage errors.

By default the run is compared against the committed baseline
(``devtools_baseline.json`` next to this package's repo root); pass
``--no-baseline`` to report raw findings, ``--baseline PATH`` to use
another file, and ``--write-baseline`` to regenerate it from the
current run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from . import baseline as baseline_mod
from .engine import LintEngine, available_rules, rule_table
from .rules import __all__ as _rules_loaded  # noqa: F401 - registers rules

__all__ = ["main", "DEFAULT_BASELINE"]

#: Committed baseline, at the repo root (four parents up from
#: src/repro/devtools/lint.py).  Falls back to an empty baseline when
#: the package is used outside a checkout.
DEFAULT_BASELINE = (
    Path(__file__).resolve().parents[3] / "devtools_baseline.json"
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=(
            "AST-based invariant linter for the repro codebase: lock "
            "ordering, async discipline, RNG/determinism and registry "
            "contracts."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        nargs="+",
        metavar="CODE",
        help="run only these primary rule codes (default: all rules)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline file to compare against "
        "(default: devtools_baseline.json at the repo root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline; any finding fails the run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from this run's findings and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(rule_table())
        print()
        for spec in available_rules():
            print(f"{'/'.join(spec.codes)}: {spec.invariant}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print(
            "error: at least one path is required (or --list-rules)",
            file=sys.stderr,
        )
        return 2

    try:
        engine = LintEngine(rules=args.select)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    try:
        report = engine.lint_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        baseline_mod.write_baseline(args.baseline, report.findings)
        print(
            f"wrote {args.baseline} "
            f"({len(report.findings)} finding(s) recorded)"
        )
        return 0

    if args.no_baseline:
        baseline: dict[str, int] = {}
    else:
        try:
            baseline = baseline_mod.load_baseline(args.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    new, stale = baseline_mod.compare(report.findings, baseline)

    clean = not new and not stale and not report.parse_errors

    if args.format == "json":
        payload = report.to_dict()
        payload["baseline"] = {
            "path": str(args.baseline) if not args.no_baseline else None,
            "new": new,
            "stale": stale,
        }
        payload["ok"] = clean
        print(json.dumps(payload, indent=2, sort_keys=False))
    else:
        for finding in report.findings:
            print(finding.render())
        for error in report.parse_errors:
            print(f"parse error: {error}")
        counts = report.summary()
        summary = (
            ", ".join(f"{code}: {n}" for code, n in sorted(counts.items()))
            or "no findings"
        )
        print(
            f"{report.files_scanned} file(s) scanned; {summary}; "
            f"{report.suppressed} suppressed"
        )
        if stale:
            print(f"{len(stale)} stale baseline entr(y/ies):")
            for key in stale:
                print(f"  stale: {key}")
        if new:
            print(f"{len(new)} finding(s) not in baseline:")
            for key in new:
                print(f"  new: {key}")
        if clean:
            print("clean: no new findings, no stale baseline entries")

    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main())
