"""The shipped lint rules: the repo's invariants as visitor fragments.

Each rule machine-checks one contract the codebase's correctness rests
on but no off-the-shelf linter knows about:

========  ======================  =========================================
code(s)   name                    invariant
========  ======================  =========================================
RPL101    lock-order              acquisitions follow the declared
RPL102                            hierarchy in
                                  :mod:`repro.devtools.lock_hierarchy`
RPL201    blocking-in-async       solves/sleeps/IO never run on the event
                                  loop — ``asyncio.to_thread`` or executor
RPL301    rng-discipline          no module-level numpy RNG state, no
RPL302                            unseeded ``default_rng()``, no stdlib
RPL303                            ``random`` in library code
RPL401    deterministic-reduction no numeric accumulation over set/dict
                                  iteration order in kernel modules
RPL501    frozen-contract         ``SolveResult``/``PublishedPolicy`` are
                                  immutable outside their defining modules
RPL601    registry-contract       registered solvers/plugins expose the
                                  expected signatures and typed configs
RPL701    telemetry-in-hot-loop   no :mod:`repro.obs` calls inside loops
                                  of the PalTable DP / simplex kernels —
                                  count with plain ints, emit at the
                                  solve()/build() boundary
RPL801    swallowed-exception     broad ``except Exception`` handlers in
                                  the engine/serve/solvers packages must
                                  re-raise or count the failure on an
                                  obs/metrics counter — degradation is
                                  fine, *silent* degradation is not
========  ======================  =========================================

Every rule reports through :meth:`LintContext.report`, so inline
``# replint: disable=CODE`` suppressions and domain scoping apply
uniformly.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase

from . import lock_hierarchy
from .engine import LintContext, Rule, register_rule

__all__ = [
    "BlockingInAsyncRule",
    "FrozenContractRule",
    "LockOrderRule",
    "NondeterministicReductionRule",
    "RegistryContractRule",
    "RngDisciplineRule",
    "SwallowedExceptionRule",
    "TelemetryInHotLoopRule",
    "BLOCKING_CALL_PATTERNS",
    "TELEMETRY_CALL_PATTERNS",
]


def dotted_name(expr: ast.AST) -> str | None:
    """Best-effort dotted rendering of a call target or receiver.

    Subscripts and chained calls collapse onto their base
    (``self._engines[key].solve`` -> ``self._engines.solve``) — good
    enough for pattern matching, and never *invents* attribute names.
    """
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = dotted_name(expr.value)
        return None if base is None else f"{base}.{expr.attr}"
    if isinstance(expr, (ast.Call, ast.Subscript)):
        return dotted_name(
            expr.func if isinstance(expr, ast.Call) else expr.value
        )
    return None


def normalized(dotted: str) -> str:
    """Drop a leading ``self.``/``cls.`` for receiver-agnostic matching."""
    for prefix in ("self.", "cls."):
        if dotted.startswith(prefix):
            return dotted[len(prefix) :]
    return dotted


# ----------------------------------------------------------------------
# RPL101/RPL102 — lock ordering
# ----------------------------------------------------------------------


_LOCK_ATTRS = frozenset(spec.attr for spec in lock_hierarchy.LOCKS)


def _looks_like_lock(name: str) -> bool:
    return "lock" in name.lower()


@register_rule
class LockOrderRule(Rule):
    """Check every lock acquisition against the declared hierarchy."""

    code = "RPL101"
    codes = ("RPL101", "RPL102")
    name = "lock-order"
    summary = "lock acquisitions must follow the declared hierarchy"
    invariant = (
        "a thread only acquires locks ranked strictly deeper than "
        "everything it holds (repro/devtools/lock_hierarchy.py)"
    )
    domains = frozenset({"src"})

    def begin_file(self, ctx: LintContext) -> None:
        # Stack of held locks as (spec-or-None, display); parallel stack
        # of per-`with` push counts; barrier stack for nested defs
        # (lexical nesting inside a `with` body is not runtime holding).
        self._held: list[tuple[object, str]] = []
        self._with_pushes: list[int] = []
        self._barriers: list[list[tuple[object, str]]] = []

    # -- acquisition bookkeeping ---------------------------------------

    def _lock_event(self, expr: ast.AST, ctx: LintContext):
        """``(spec_or_None, display)`` when ``expr`` acquires a lock."""
        if isinstance(expr, ast.Call):
            # `with lock.acquire():` style — resolve the receiver.
            func = expr.func
            if isinstance(func, ast.Attribute) and func.attr == "acquire":
                return self._lock_event(func.value, ctx)
            return None
        if isinstance(expr, ast.Attribute):
            attr = expr.attr
            if attr not in _LOCK_ATTRS and not _looks_like_lock(attr):
                return None
            owner = ""
            if isinstance(expr.value, ast.Name) and expr.value.id in (
                "self",
                "cls",
            ):
                owner = ctx.current_class or ""
            spec = lock_hierarchy.lock_for(owner, attr)
            display = dotted_name(expr) or attr
            return (spec, display)
        if isinstance(expr, ast.Name) and _looks_like_lock(expr.id):
            return (None, expr.id)
        return None

    def _check_acquire(
        self, spec, display: str, node: ast.AST, ctx: LintContext
    ) -> None:
        ranked = [s for s, _ in self._held if s is not None]
        if not ranked:
            return
        top = max(ranked, key=lambda s: s.rank)
        if spec is None:
            ctx.report(
                "RPL102",
                node,
                f"acquires unranked lock '{display}' while holding "
                f"'{top.name}' (rank {top.rank}); add it to "
                "repro/devtools/lock_hierarchy.py before nesting it",
            )
            return
        if any(s.name == spec.name for s in ranked):
            return  # reentrant re-acquisition of a held (R)Lock
        if spec.rank <= top.rank:
            ctx.report(
                "RPL101",
                node,
                f"acquires '{spec.name}' (rank {spec.rank}) while "
                f"holding '{top.name}' (rank {top.rank}); the declared "
                "order is "
                + " -> ".join(
                    s.name
                    for s in sorted(
                        lock_hierarchy.LOCKS, key=lambda s: s.rank
                    )
                ),
            )

    # -- with/async-with -----------------------------------------------

    def _enter_with(self, node, ctx: LintContext) -> None:
        pushed = 0
        for item in node.items:
            event = self._lock_event(item.context_expr, ctx)
            if event is None:
                continue
            spec, display = event
            self._check_acquire(spec, display, item.context_expr, ctx)
            self._held.append((spec, display))
            pushed += 1
        self._with_pushes.append(pushed)

    def _leave_with(self, node, ctx: LintContext) -> None:
        for _ in range(self._with_pushes.pop()):
            self._held.pop()

    visit_With = _enter_with
    visit_AsyncWith = _enter_with
    leave_With = _leave_with
    leave_AsyncWith = _leave_with

    # -- nested defs are a barrier, not a continuation ------------------

    def _enter_def(self, node, ctx: LintContext) -> None:
        self._barriers.append(self._held)
        self._held = []

    def _leave_def(self, node, ctx: LintContext) -> None:
        self._held = self._barriers.pop()

    visit_FunctionDef = _enter_def
    visit_AsyncFunctionDef = _enter_def
    visit_Lambda = _enter_def
    leave_FunctionDef = _leave_def
    leave_AsyncFunctionDef = _leave_def
    leave_Lambda = _leave_def

    # -- calls: bare .acquire() and lock-acquiring methods --------------

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr == "acquire":
            event = self._lock_event(func.value, ctx)
            if event is not None:
                # Checked but not tracked: releases are flow-dependent.
                self._check_acquire(*event, node, ctx)
            return
        target = lock_hierarchy.ACQUIRING_METHODS.get(func.attr)
        if target is None or not self._held:
            return
        spec = lock_hierarchy.lock_named(target)
        ranked = [s for s, _ in self._held if s is not None]
        if not ranked:
            return
        top = max(ranked, key=lambda s: s.rank)
        if spec.rank <= top.rank and all(
            s.name != spec.name for s in ranked
        ):
            display = dotted_name(func) or func.attr
            ctx.report(
                "RPL101",
                node,
                f"calls '{display}' (acquires '{spec.name}', rank "
                f"{spec.rank}) while holding '{top.name}' (rank "
                f"{top.rank}); move the call outside the lock",
            )


# ----------------------------------------------------------------------
# RPL201 — blocking calls in async functions
# ----------------------------------------------------------------------


#: Call patterns (fnmatch over the normalized dotted target) that block
#: the calling thread.  Inside ``async def`` these stall the event loop
#: — route them through ``asyncio.to_thread``/``run_in_executor``.
BLOCKING_CALL_PATTERNS: tuple[str, ...] = (
    "time.sleep",
    "open",
    "socket.*",
    "subprocess.*",
    "os.system",
    "os.popen",
    "requests.*",
    "urllib.request.*",
    "*.solve",
    "*.price_batch",
    "*.resolve_blocking",
    "*engine*.close",
    "*engines*.close",
    "*cache*.close",
    "*executor*.shutdown",
)


@register_rule
class BlockingInAsyncRule(Rule):
    """Flag known-blocking calls made directly on the event loop."""

    code = "RPL201"
    name = "blocking-in-async"
    summary = "no blocking solve/sleep/IO calls inside async def bodies"
    invariant = (
        "the serve layer answers /score and /alerts while solves run; "
        "blocking work goes through asyncio.to_thread"
    )
    domains = frozenset(
        {"src", "tests", "benchmarks", "examples", "other"}
    )

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        if not ctx.in_async_function():
            return
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        target = normalized(dotted)
        for pattern in BLOCKING_CALL_PATTERNS:
            if fnmatchcase(target, pattern):
                ctx.report(
                    self.code,
                    node,
                    f"blocking call '{target}' inside an async "
                    "function blocks the event loop; wrap it in "
                    "asyncio.to_thread(...) or an executor",
                )
                return


# ----------------------------------------------------------------------
# RPL301/302/303 — RNG discipline
# ----------------------------------------------------------------------


_GENERATOR_API_OK = frozenset(
    {
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "Philox",
        "MT19937",
    }
)


@register_rule
class RngDisciplineRule(Rule):
    """Randomness must flow through explicitly seeded Generators."""

    code = "RPL301"
    codes = ("RPL301", "RPL302", "RPL303")
    name = "rng-discipline"
    summary = (
        "no np.random module state, unseeded default_rng(), or stdlib "
        "random in library code"
    )
    invariant = (
        "determinism guarantees (workers>1 == workers=1, warm == cold) "
        "require rng threaded as a seeded np.random.Generator parameter"
    )
    domains = frozenset({"src"})

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        if dotted.startswith(("np.random.", "numpy.random.")):
            fn = dotted.rsplit(".", 1)[1]
            if fn == "default_rng":
                if not node.args and not node.keywords:
                    ctx.report(
                        "RPL302",
                        node,
                        "default_rng() without a seed draws OS entropy; "
                        "pass an explicit seed (or accept an rng "
                        "parameter, as sim/ishm/cggs do)",
                    )
            elif fn not in _GENERATOR_API_OK:
                ctx.report(
                    "RPL301",
                    node,
                    f"'{dotted}' uses numpy's global RNG state, which "
                    "is shared across threads and solver calls; thread "
                    "a seeded np.random.Generator instead",
                )
        elif dotted == "default_rng" and not node.args and not node.keywords:
            ctx.report(
                "RPL302",
                node,
                "default_rng() without a seed draws OS entropy; pass "
                "an explicit seed (or accept an rng parameter)",
            )

    def visit_Import(self, node: ast.Import, ctx: LintContext) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                ctx.report(
                    "RPL303",
                    node,
                    "stdlib 'random' is forbidden in library code; use "
                    "a seeded np.random.Generator parameter",
                )

    def visit_ImportFrom(
        self, node: ast.ImportFrom, ctx: LintContext
    ) -> None:
        if node.module == "random" and node.level == 0:
            ctx.report(
                "RPL303",
                node,
                "stdlib 'random' is forbidden in library code; use a "
                "seeded np.random.Generator parameter",
            )


# ----------------------------------------------------------------------
# RPL401 — nondeterministic reductions in kernel modules
# ----------------------------------------------------------------------


def _is_unordered_iterable(expr: ast.AST) -> str | None:
    """'set'/'dict' when iterating ``expr`` has no guaranteed order.

    Dict views are insertion-ordered in python 3.7+, but kernel code
    reached through differently-ordered call paths (warm vs cold, batch
    vs serial) inserts in different orders — accumulating over them
    still breaks the bitwise-equality guarantees, so they count.
    """
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(expr, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return "set"
        if isinstance(func, ast.Name) and func.id == "dict":
            return "dict"
        if isinstance(func, ast.Attribute) and func.attr in (
            "keys",
            "values",
            "items",
        ):
            return "dict"
    return None


@register_rule
class NondeterministicReductionRule(Rule):
    """No numeric accumulation over unordered iteration in kernels."""

    code = "RPL401"
    name = "deterministic-reduction"
    summary = (
        "no sum()/+= accumulation over set/dict iteration order in "
        "kernel modules"
    )
    invariant = (
        "batched == serial and workers>1 == workers=1 require "
        "order-independent reductions (the PR-4 pairwise standard)"
    )
    domains = frozenset({"src"})

    #: Module prefixes counted as kernel code.
    KERNEL_PREFIXES = ("repro.core", "repro.solvers")

    def begin_file(self, ctx: LintContext) -> None:
        self._kernel = ctx.module.startswith(self.KERNEL_PREFIXES)

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        if not self._kernel:
            return
        dotted = dotted_name(node.func)
        if dotted not in ("sum", "np.sum", "numpy.sum", "math.fsum"):
            return
        if not node.args:
            return
        arg = node.args[0]
        kind = _is_unordered_iterable(arg)
        if kind is None and isinstance(
            arg, (ast.GeneratorExp, ast.ListComp)
        ):
            kind = _is_unordered_iterable(arg.generators[0].iter)
        if kind is not None:
            ctx.report(
                self.code,
                node,
                f"'{dotted}' accumulates over {kind} iteration order, "
                "which is not reproducible across call paths; sort the "
                "elements (or use the pairwise reduction standard)",
            )

    def visit_For(self, node: ast.For, ctx: LintContext) -> None:
        if not self._kernel:
            return
        kind = _is_unordered_iterable(node.iter)
        if kind is None:
            return
        for sub in node.body:
            for inner in ast.walk(sub):
                if isinstance(inner, ast.AugAssign) and isinstance(
                    inner.op, (ast.Add, ast.Sub, ast.Mult)
                ):
                    ctx.report(
                        self.code,
                        inner,
                        f"accumulation (+=) inside a loop over {kind} "
                        "iteration order is not reproducible across "
                        "call paths; sort the elements first",
                    )
                    return


# ----------------------------------------------------------------------
# RPL501 — frozen contract mutation
# ----------------------------------------------------------------------


#: Frozen result contracts and their defining modules (the only places
#: allowed to __setattr__ them, e.g. in __post_init__).
FROZEN_CONTRACTS: dict[str, str] = {
    "SolveResult": "repro.engine.result",
    "PublishedPolicy": "repro.serve.store",
}


@register_rule
class FrozenContractRule(Rule):
    """Published result records are immutable outside their modules."""

    code = "RPL501"
    name = "frozen-contract"
    summary = (
        "no attribute writes or object.__setattr__ on SolveResult/"
        "PublishedPolicy outside their defining modules"
    )
    invariant = (
        "cached and served results are shared across threads and "
        "versions; mutation anywhere would corrupt every reader"
    )
    domains = frozenset({"src", "benchmarks", "examples", "other"})

    def begin_file(self, ctx: LintContext) -> None:
        self._exempt = ctx.module in FROZEN_CONTRACTS.values()
        self._scopes: list[dict[str, str]] = [{}]

    # -- local type tracking -------------------------------------------

    def _enter_def(self, node, ctx: LintContext) -> None:
        scope: dict[str, str] = {}
        args = getattr(node, "args", None)
        if args is not None:
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                cls = self._annotation_contract(arg.annotation)
                if cls is not None:
                    scope[arg.arg] = cls
        self._scopes.append(scope)

    def _leave_def(self, node, ctx: LintContext) -> None:
        self._scopes.pop()

    visit_FunctionDef = _enter_def
    visit_AsyncFunctionDef = _enter_def
    visit_Lambda = _enter_def
    leave_FunctionDef = _leave_def
    leave_AsyncFunctionDef = _leave_def
    leave_Lambda = _leave_def

    @staticmethod
    def _annotation_contract(annotation: ast.AST | None) -> str | None:
        if isinstance(annotation, ast.Name):
            return (
                annotation.id if annotation.id in FROZEN_CONTRACTS else None
            )
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            name = annotation.value.strip()
            return name if name in FROZEN_CONTRACTS else None
        return None

    def _contract_of(self, expr: ast.AST) -> str | None:
        """Contract class name when ``expr`` is known to be an instance."""
        if isinstance(expr, ast.Name):
            for scope in reversed(self._scopes):
                if expr.id in scope:
                    return scope[expr.id]
            return None
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id in FROZEN_CONTRACTS:
                return expr.func.id
        return None

    def visit_Assign(self, node: ast.Assign, ctx: LintContext) -> None:
        # Track `r = SolveResult(...)` / record attribute writes.
        if self._exempt:
            return
        value_cls = self._contract_of(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name) and value_cls is not None:
                self._scopes[-1][target.id] = value_cls
            elif isinstance(target, ast.Attribute):
                cls = self._contract_of(target.value)
                if cls is not None:
                    ctx.report(
                        self.code,
                        node,
                        f"assigns attribute '{target.attr}' on a frozen "
                        f"{cls}; build a new record with "
                        "dataclasses.replace instead",
                    )

    def visit_AnnAssign(
        self, node: ast.AnnAssign, ctx: LintContext
    ) -> None:
        if isinstance(node.target, ast.Name):
            cls = self._annotation_contract(node.annotation)
            if cls is not None:
                self._scopes[-1][node.target.id] = cls

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        if self._exempt:
            return
        if dotted_name(node.func) != "object.__setattr__" or not node.args:
            return
        target = node.args[0]
        cls = self._contract_of(target)
        if cls is None and (
            isinstance(target, ast.Name)
            and target.id == "self"
            and ctx.current_class in FROZEN_CONTRACTS
        ):
            cls = ctx.current_class
        if cls is not None:
            ctx.report(
                self.code,
                node,
                f"object.__setattr__ on a frozen {cls} outside "
                f"{FROZEN_CONTRACTS[cls]}; the record is shared and "
                "must stay immutable",
            )


# ----------------------------------------------------------------------
# RPL601 — registry contract
# ----------------------------------------------------------------------


#: Sim plugin registries and the protocol methods their classes must
#: expose (see the Protocols in repro/sim/simulator.py).
SIM_REGISTRY_METHODS: dict[str, tuple[str, ...]] = {
    "EVENT_SOURCES": ("counts",),
    "ESTIMATORS": ("observe", "model"),
    "ADVERSARIES": ("choose",),
}


@register_rule
class RegistryContractRule(Rule):
    """Registered solvers and sim plugins honor their protocols."""

    code = "RPL601"
    name = "registry-contract"
    summary = (
        "@register_solver funcs take (game, scenarios, config, *, "
        "cache); sim plugin classes expose their protocol methods"
    )
    invariant = (
        "the engine and simulator dispatch by name; a registrant with "
        "the wrong shape fails at solve time, not import time"
    )
    domains = frozenset({"src"})

    def begin_file(self, ctx: LintContext) -> None:
        # class name -> (base names, method names); registered classes
        # and decorator-named config classes are validated in
        # finish_file, once every in-file base has been collected.
        self._classes: dict[str, tuple[set[str], set[str]]] = {}
        self._pending_configs: list[tuple[str, ast.AST]] = []
        self._pending_classes: list[tuple[ast.ClassDef, str]] = []

    # -- collection ----------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef, ctx: LintContext) -> None:
        bases = {
            base.id if isinstance(base, ast.Name) else base.attr
            for base in node.bases
            if isinstance(base, (ast.Name, ast.Attribute))
        }
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self._classes[node.name] = (bases, methods)
        for decorator in node.decorator_list:
            kind = self._decorator_kind(decorator)
            if kind == "solver":
                self._note_config(decorator)
            if kind is not None:
                self._pending_classes.append((node, kind))

    def visit_FunctionDef(
        self, node: ast.FunctionDef, ctx: LintContext
    ) -> None:
        for decorator in node.decorator_list:
            if self._decorator_kind(decorator) == "solver":
                self._check_solver_func(node, decorator, ctx)

    def _resolved_methods(
        self, name: str, _seen: frozenset[str] = frozenset()
    ) -> set[str] | None:
        """All methods of an in-file class, following in-file bases.

        ``None`` means the MRO leaves the file (an imported base could
        supply anything), so absence of a method cannot be proven.
        """
        if name in _seen:
            return set()  # cyclic bases: syntactically possible, inert
        entry = self._classes.get(name)
        if entry is None:
            return None
        bases, methods = entry
        resolved = set(methods)
        for base in bases:
            if base in ("object", "Protocol", "ABC", "Generic"):
                continue
            inherited = self._resolved_methods(
                base, _seen | frozenset({name})
            )
            if inherited is None:
                return None
            resolved |= inherited
        return resolved

    def finish_file(self, ctx: LintContext) -> None:
        for node, kind in self._pending_classes:
            if kind == "solver":
                self._check_solver_class(node, ctx)
            else:
                self._check_plugin_class(node, kind, ctx)
        for config_name, node in self._pending_configs:
            entry = self._classes.get(config_name)
            if entry is None:
                continue  # imported config; checked where it is defined
            bases, methods = entry
            inherits_config = any(b.endswith("Config") for b in bases)
            if not inherits_config and "from_dict" not in methods:
                ctx.report(
                    self.code,
                    node,
                    f"config class '{config_name}' neither subclasses "
                    "SolverConfig nor defines from_dict; CLI k=v "
                    "dispatch cannot construct it",
                )

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _decorator_kind(decorator: ast.AST) -> str | None:
        """'solver', a sim registry name, or None."""
        if not isinstance(decorator, ast.Call):
            return None
        func = decorator.func
        if isinstance(func, ast.Name) and func.id == "register_solver":
            return "solver"
        if isinstance(func, ast.Attribute):
            if func.attr == "register_solver":
                return "solver"
            if func.attr == "register" and isinstance(
                func.value, ast.Name
            ):
                if func.value.id in SIM_REGISTRY_METHODS:
                    return func.value.id
        return None

    def _note_config(self, decorator: ast.Call) -> None:
        for keyword in decorator.keywords:
            if keyword.arg == "config" and isinstance(
                keyword.value, ast.Name
            ):
                self._pending_configs.append(
                    (keyword.value.id, decorator)
                )

    def _check_solver_func(
        self,
        node: ast.FunctionDef,
        decorator: ast.Call,
        ctx: LintContext,
    ) -> None:
        self._note_config(decorator)
        positional = list(node.args.posonlyargs) + list(node.args.args)
        if len(positional) < 3:
            ctx.report(
                self.code,
                node,
                f"solver '{node.name}' must accept (game, scenarios, "
                f"config) positionally; it takes {len(positional)}",
            )
        kwonly = {arg.arg for arg in node.args.kwonlyargs}
        if "cache" not in kwonly and node.args.kwarg is None:
            ctx.report(
                self.code,
                node,
                f"solver '{node.name}' must accept the keyword-only "
                "'cache' argument (or **kwargs); the engine always "
                "passes its FixedSolveCache",
            )

    def _check_solver_class(
        self, node: ast.ClassDef, ctx: LintContext
    ) -> None:
        methods = self._resolved_methods(node.name)
        if methods is None:
            return  # imported base may provide __call__
        if "__call__" not in methods and "solve" not in methods:
            ctx.report(
                self.code,
                node,
                f"registered solver class '{node.name}' defines "
                "neither __call__ nor solve; the registry dispatches "
                "it as a callable",
            )

    def _check_plugin_class(
        self, node: ast.ClassDef, registry: str, ctx: LintContext
    ) -> None:
        methods = self._resolved_methods(node.name)
        if methods is None:
            return  # imported base may provide the protocol methods
        missing = [
            m for m in SIM_REGISTRY_METHODS[registry] if m not in methods
        ]
        if missing:
            ctx.report(
                self.code,
                node,
                f"{registry} plugin '{node.name}' is missing protocol "
                f"method(s) {', '.join(missing)}; the simulator calls "
                "them every period",
            )


# ----------------------------------------------------------------------
# RPL701 — telemetry in kernel hot loops
# ----------------------------------------------------------------------


#: Call patterns (fnmatch over the normalized dotted target) that record
#: telemetry.  Free when disabled, but even the ``if not _enabled``
#: check costs a call frame — inside the kernels' innermost loops that
#: is measurable, so those modules count with plain ints and emit at
#: the boundary (see ``SimplexSolver.solve`` / ``PalTable._build``).
TELEMETRY_CALL_PATTERNS: tuple[str, ...] = (
    "obs.*",
    "*.obs.*",
    "metrics.*",
    "*.metrics.*",
    "span",
    "counter",
    "gauge",
    "observe",
    "get_registry",
)


@register_rule
class TelemetryInHotLoopRule(Rule):
    """Keep :mod:`repro.obs` calls out of the kernel inner loops."""

    code = "RPL701"
    name = "telemetry-in-hot-loop"
    summary = (
        "no obs.counter/gauge/observe/span calls inside loops of the "
        "PalTable DP and simplex kernels"
    )
    invariant = (
        "the <2% disabled-telemetry overhead bound "
        "(benchmarks/bench_obs_overhead.py) holds because hot loops "
        "count with plain ints and emit once at the solve()/build() "
        "boundary"
    )
    domains = frozenset({"src"})

    #: Modules whose loops are the measured hot paths.
    HOT_MODULES = (
        "repro.core.kernels",
        "repro.core.pal_table",
        "repro.solvers.lp.simplex",
    )

    def begin_file(self, ctx: LintContext) -> None:
        self._hot = ctx.module in self.HOT_MODULES
        self._loop_depth = 0
        self._barriers: list[int] = []

    # -- loop depth, with function defs as barriers ----------------------

    def _enter_loop(self, node, ctx: LintContext) -> None:
        self._loop_depth += 1

    def _leave_loop(self, node, ctx: LintContext) -> None:
        self._loop_depth -= 1

    visit_For = _enter_loop
    visit_AsyncFor = _enter_loop
    visit_While = _enter_loop
    leave_For = _leave_loop
    leave_AsyncFor = _leave_loop
    leave_While = _leave_loop

    def _enter_def(self, node, ctx: LintContext) -> None:
        # A def inside a loop body runs when *called*, not per
        # iteration; its own body starts at depth 0.
        self._barriers.append(self._loop_depth)
        self._loop_depth = 0

    def _leave_def(self, node, ctx: LintContext) -> None:
        self._loop_depth = self._barriers.pop()

    visit_FunctionDef = _enter_def
    visit_AsyncFunctionDef = _enter_def
    visit_Lambda = _enter_def
    leave_FunctionDef = _leave_def
    leave_AsyncFunctionDef = _leave_def
    leave_Lambda = _leave_def

    # -- the check -------------------------------------------------------

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        if not self._hot or self._loop_depth == 0:
            return
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        target = normalized(dotted)
        for pattern in TELEMETRY_CALL_PATTERNS:
            if fnmatchcase(target, pattern):
                ctx.report(
                    self.code,
                    node,
                    f"telemetry call '{target}' inside a loop of a "
                    "measured kernel; count with a plain attribute and "
                    "emit at the solve()/build() boundary instead",
                )
                return


# ----------------------------------------------------------------------
# RPL801 — swallowed exceptions in the fault-tolerant packages
# ----------------------------------------------------------------------


@register_rule
class SwallowedExceptionRule(Rule):
    """Broad handlers in engine/serve/solvers must re-raise or count.

    The fault-tolerance layer (``repro.faults``) makes degradation a
    deliberate, observable act: every fallback path increments an obs
    counter so chaos runs and production dashboards can see it happen.
    A broad ``except Exception`` that neither re-raises nor records
    telemetry hides failures instead — under fault injection it would
    make a dying subsystem look healthy.
    """

    code = "RPL801"
    name = "swallowed-exception"
    summary = (
        "broad except handlers in repro.{engine,serve,solvers} must "
        "re-raise or increment an obs/metrics counter"
    )
    invariant = (
        "every degradation path is observable: chaos tests and the "
        "serve dashboards can count injected failures because no broad "
        "handler in the fault-tolerant packages swallows silently"
    )
    domains = frozenset({"src"})

    #: Packages where broad handlers are policed — exactly the layers
    #: the fault-injection points (repro.faults.KNOWN_POINTS) fire in.
    POLICED_PREFIXES = ("repro.engine", "repro.serve", "repro.solvers")

    #: Names accepted as "broad" in an ``except <type>`` clause.
    BROAD_NAMES = frozenset({"Exception", "BaseException"})

    def begin_file(self, ctx: LintContext) -> None:
        self._policed = ctx.module is not None and ctx.module.startswith(
            self.POLICED_PREFIXES
        )

    def _is_broad(self, type_expr: ast.AST | None) -> bool:
        if type_expr is None:  # bare except:
            return True
        if isinstance(type_expr, ast.Tuple):
            return any(self._is_broad(el) for el in type_expr.elts)
        dotted = dotted_name(type_expr)
        if dotted is None:
            return False
        return dotted.rsplit(".", 1)[-1] in self.BROAD_NAMES

    def _is_telemetry_call(self, node: ast.Call) -> bool:
        dotted = dotted_name(node.func)
        if dotted is None:
            return False
        target = normalized(dotted)
        return any(
            fnmatchcase(target, pattern)
            for pattern in TELEMETRY_CALL_PATTERNS
        )

    def visit_ExceptHandler(
        self, node: ast.ExceptHandler, ctx: LintContext
    ) -> None:
        if not self._policed or not self._is_broad(node.type):
            return
        for stmt in node.body:
            for child in ast.walk(stmt):
                if isinstance(child, ast.Raise):
                    return
                if isinstance(child, ast.Call) and self._is_telemetry_call(
                    child
                ):
                    return
        ctx.report(
            self.code,
            node,
            "broad except handler swallows the failure; re-raise or "
            "record it on an obs/metrics counter so degradation stays "
            "observable",
        )
