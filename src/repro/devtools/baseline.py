"""Ratcheting baseline: known findings, committed and zero-tolerance.

The baseline file records every finding the linter is currently allowed
to report, keyed by the line-independent :attr:`Finding.baseline_key`
with a count (the same violation can occur more than once in one
context).  CI compares a fresh run against it in *both* directions:

* a finding not in the baseline (or occurring more often) is **new**
  and fails the run;
* a baseline entry no fresh finding matches (or matched fewer times)
  is **stale** and also fails the run — fixing a violation must shrink
  the baseline in the same commit, so the ratchet only tightens.

The committed baseline for this repo is *empty*: the tree is clean and
stays clean.  The file still exists so the mechanism is exercised and
so a future judgment call can land with an explicit, reviewable entry.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping

from .findings import Finding

__all__ = [
    "BASELINE_VERSION",
    "compare",
    "counts_for",
    "load_baseline",
    "write_baseline",
]

BASELINE_VERSION = 1


def counts_for(findings: Iterable[Finding]) -> dict[str, int]:
    """Baseline-key -> occurrence count for a set of findings."""
    counts: dict[str, int] = {}
    for finding in findings:
        key = finding.baseline_key
        counts[key] = counts.get(key, 0) + 1
    return counts


def load_baseline(path: str | Path) -> dict[str, int]:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION}); regenerate with "
            "--write-baseline"
        )
    findings = data.get("findings", {})
    if not isinstance(findings, dict):
        raise ValueError(f"{path}: 'findings' must be an object")
    return {str(k): int(v) for k, v in findings.items()}


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> None:
    """Write the baseline for the given findings (sorted, stable)."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": dict(sorted(counts_for(findings).items())),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )


def compare(
    findings: Iterable[Finding], baseline: Mapping[str, int]
) -> tuple[list[str], list[str]]:
    """``(new, stale)`` baseline keys between a run and the baseline.

    ``new`` lists keys reported more often than the baseline allows
    (one entry per excess occurrence); ``stale`` lists baseline entries
    the run no longer produces.  Both sorted; both must be empty for a
    clean exit.
    """
    current = counts_for(findings)
    new: list[str] = []
    stale: list[str] = []
    for key in sorted(set(current) | set(baseline)):
        have = current.get(key, 0)
        allowed = baseline.get(key, 0)
        if have > allowed:
            new.extend([key] * (have - allowed))
        elif have < allowed:
            stale.extend([key] * (allowed - have))
    return new, stale
