"""The master problem of eq. 5 for a fixed threshold vector ``b``.

With ``b`` fixed, the auditor's problem is the linear program

    min_{p_o, u}   sum_e p_e u_e
    s.t.           u_e >= sum_{o in Q} p_o Ua(o, b, <e, v>)   for all <e, v>
                   sum_{o in Q} p_o = 1,   p_o >= 0
                   (u_e >= 0 when adversaries may refrain)

restricted to a column set ``Q`` of orderings.  :class:`MasterProblem`
builds and incrementally extends this LP; :class:`PolicyContext` caches the
expensive per-ordering detection vectors so that CGGS, enumeration, ISHM
and the baselines all share one kernel-evaluation cache per ``(b, Z)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.detection import (
    OrderingPricer,
    _check_batch_inputs,
    pal_for_ordering_batch,
)
from ..core.game import AuditGame
from ..core.pal_table import PalTable, subset_table_pays
from ..core.objective import best_responses
from ..core.policy import AuditPolicy, Ordering
from ..distributions.joint import ScenarioSet
from .lp import LinearProgram, LPSolution, solve_lp

__all__ = [
    "PolicyContext",
    "MasterProblem",
    "FixedThresholdSolution",
    "batch_policy_contexts",
]


class PolicyContext:
    """Caches ``Pal`` and utility matrices for one ``(game, Z, b)``.

    Detection vectors depend on the ordering, the thresholds and the
    scenario set; utilities additionally fold in the payoff model.  Both
    are memoized by ordering tuple, which makes the CGGS greedy subproblem
    (many shared prefixes) and repeated master solves cheap.

    Kernel selection: cache misses price through a shared validate-once
    :class:`~repro.core.detection.OrderingPricer` (the reference walk),
    or — with ``subset_table=True``, as the enumeration solver requests
    when it is about to price the full ordering set — through a lazily
    built :class:`~repro.core.pal_table.PalTable`, which replaces the
    per-ordering scenario sweeps with ``T * 2^(T-1)`` table builds plus
    pure lookups.  CGGS keeps the default legacy walk: its few columns
    and many partial prefixes sit below the table's break-even point.
    """

    def __init__(
        self,
        game: AuditGame,
        scenarios: ScenarioSet,
        thresholds: np.ndarray,
        *,
        subset_table: bool = False,
    ) -> None:
        self.game = game
        self.scenarios = scenarios
        self.thresholds = np.asarray(thresholds, dtype=np.float64)
        if self.thresholds.shape != (game.n_types,):
            raise ValueError(
                f"thresholds must have shape ({game.n_types},), "
                f"got {self.thresholds.shape}"
            )
        self._pal_cache: dict[tuple[int, ...], np.ndarray] = {}
        self._utility_cache: dict[tuple[int, ...], np.ndarray] = {}
        self._costs = game.costs
        self._rows = self._representative_rows(game)
        self.subset_table = bool(subset_table)
        self._pricer: OrderingPricer | None = None
        self._table: PalTable | None = None

    @staticmethod
    def _representative_rows(
        game: AuditGame,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Collapse duplicate attack rows of the master LP.

        ``Ua(o, b, <e, v>)`` depends on the victim only through the trigger
        probabilities ``P[e, v, :]`` and the payoffs ``(R, M, K)[e, v]``,
        for *every* ordering; victims with identical signatures always
        yield identical constraint rows, so one representative per
        signature suffices.  In the paper's real-data games this shrinks
        the LP from |E| x |V| rows to |E| x (#alert types + 1).
        """
        probs = game.attack_map.probabilities
        payoffs = game.payoffs
        e_rows: list[int] = []
        v_rows: list[int] = []
        for e in range(game.n_adversaries):
            seen: set[tuple] = set()
            for v in range(game.n_victims):
                signature = (
                    tuple(np.round(probs[e, v], 12)),
                    round(float(payoffs.benefit[e, v]), 12),
                    round(float(payoffs.penalty[e, v]), 12),
                    round(float(payoffs.attack_cost[e, v]), 12),
                )
                if signature in seen:
                    continue
                seen.add(signature)
                e_rows.append(e)
                v_rows.append(v)
        return (
            np.asarray(e_rows, dtype=np.int64),
            np.asarray(v_rows, dtype=np.int64),
        )

    @property
    def representative_rows(self) -> tuple[np.ndarray, np.ndarray]:
        """(adversary, victim) indices of the deduplicated LP rows."""
        return self._rows

    def _kernel(self) -> OrderingPricer | PalTable:
        """The pricing kernel for cache misses (validated exactly once)."""
        if self._pricer is None:
            self._pricer = OrderingPricer(
                self.thresholds,
                self.scenarios,
                self._costs,
                self.game.budget,
                self.game.zero_count_rule,
            )
        if self.subset_table:
            if self._table is None:
                self._table = PalTable.from_pricer(self._pricer)
            return self._table
        return self._pricer

    def pal(self, ordering: Ordering | Sequence[int]) -> np.ndarray:
        """``Pal(o, b, .)`` for a complete or partial ordering (cached)."""
        key = tuple(ordering)
        cached = self._pal_cache.get(key)
        if cached is None:
            cached = self._kernel().pal(key)
            self._pal_cache[key] = cached
        return cached

    def seed_pal(
        self, ordering: Ordering | Sequence[int], pal: np.ndarray
    ) -> None:
        """Pre-fill the ``Pal`` cache for one ordering.

        Batched pricing computes detection vectors for many threshold
        vectors in one pass (:func:`batch_policy_contexts`) and plants
        each row here, so the master solve that follows never re-enters
        the per-ordering kernel.
        """
        self._pal_cache[tuple(ordering)] = np.asarray(
            pal, dtype=np.float64
        )

    def utilities(self, ordering: Ordering | Sequence[int]) -> np.ndarray:
        """``Ua(o, b, <e, v>)`` matrix for an ordering (cached)."""
        key = tuple(ordering)
        cached = self._utility_cache.get(key)
        if cached is None:
            pat = self.game.attack_map.detection_probability(self.pal(key))
            cached = self.game.payoffs.utility_matrix(pat)
            self._utility_cache[key] = cached
        return cached

    @property
    def kernel_evaluations(self) -> int:
        """Number of distinct orderings priced so far."""
        return len(self._pal_cache)


@dataclass(frozen=True)
class FixedThresholdSolution:
    """Optimal (restricted) mixed strategy for a fixed threshold vector."""

    policy: AuditPolicy
    objective: float
    lp_calls: int
    n_columns: int
    adversary_utilities: np.ndarray

    def describe(self, type_names: Sequence[str] | None = None) -> str:
        """Short human-readable report."""
        return (
            f"objective={self.objective:.4f}, support="
            f"{self.policy.support_size} orderings\n"
            + self.policy.describe(type_names)
        )


class MasterProblem:
    """Eq. 5 restricted to a growing set of ordering columns."""

    def __init__(
        self, context: PolicyContext, backend: str = "scipy"
    ) -> None:
        self.context = context
        self.backend = backend
        self._orderings: list[Ordering] = []
        self._keys: set[tuple[int, ...]] = set()
        self._utility_rows: list[np.ndarray] = []
        self.lp_calls = 0

    @property
    def orderings(self) -> tuple[Ordering, ...]:
        """Current column set ``Q``."""
        return tuple(self._orderings)

    @property
    def n_columns(self) -> int:
        return len(self._orderings)

    def add_ordering(self, ordering: Ordering) -> bool:
        """Add a column; returns False when already present."""
        key = tuple(ordering)
        if key in self._keys:
            return False
        if not ordering.is_complete(self.context.game.n_types):
            raise ValueError(
                f"master columns must be complete orderings, got {key}"
            )
        self._keys.add(key)
        self._orderings.append(ordering)
        self._utility_rows.append(self.context.utilities(ordering))
        return True

    def build_lp(self) -> LinearProgram:
        """Assemble the restricted LP in scipy general form.

        One ``<=`` row per *representative* attack (see
        :meth:`PolicyContext._representative_rows`):
        ``sum_o p_o Ua_o[e, v] - u_e <= 0``.
        """
        if not self._orderings:
            raise RuntimeError("master problem has no columns")
        game = self.context.game
        n_q = len(self._orderings)
        n_e = game.n_adversaries
        n_vars = n_q + n_e
        e_rows, v_rows = self.context.representative_rows
        n_rows = len(e_rows)

        utilities = np.stack(self._utility_rows, axis=0)  # (Q, E, V)
        a_ub = np.zeros((n_rows, n_vars))
        a_ub[:, :n_q] = utilities[:, e_rows, v_rows].T
        a_ub[np.arange(n_rows), n_q + e_rows] = -1.0
        b_ub = np.zeros(n_rows)

        a_eq = np.zeros((1, n_vars))
        a_eq[0, :n_q] = 1.0
        b_eq = np.array([1.0])

        c = np.zeros(n_vars)
        c[n_q:] = game.payoffs.attack_prior

        u_bound = (0.0, None) if game.payoffs.attackers_can_refrain \
            else (None, None)
        bounds = tuple([(0.0, None)] * n_q + [u_bound] * n_e)
        return LinearProgram(
            objective=c,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
        )

    def solve(self) -> tuple[FixedThresholdSolution, LPSolution]:
        """Solve the restricted master; returns policy plus raw LP data."""
        lp = self.build_lp()
        solution = solve_lp(lp, backend=self.backend).require_optimal()
        self.lp_calls += 1
        n_q = len(self._orderings)
        probs = np.clip(solution.x[:n_q], 0.0, None)
        total = probs.sum()
        if total <= 0:
            probs = np.full(n_q, 1.0 / n_q)
        else:
            probs = probs / total
        policy = AuditPolicy(
            orderings=tuple(self._orderings),
            probabilities=probs,
            thresholds=self.context.thresholds,
        )
        # Recompute utilities at the (renormalized) mixed strategy so the
        # reported objective is self-consistent.
        game = self.context.game
        pal_rows = np.stack(
            [self.context.pal(o) for o in self._orderings], axis=0
        )
        mixed_pal = probs @ pal_rows
        pat = game.attack_map.detection_probability(mixed_pal)
        eu = game.payoffs.utility_matrix(pat)
        responses = best_responses(eu, game.payoffs)
        utilities = np.array([r.utility for r in responses])
        objective = game.payoffs.auditor_loss(utilities)
        fixed = FixedThresholdSolution(
            policy=policy,
            objective=objective,
            lp_calls=self.lp_calls,
            n_columns=n_q,
            adversary_utilities=utilities,
        )
        return fixed, solution

    def reduced_cost(
        self, solution: LPSolution, ordering: Ordering | Sequence[int]
    ) -> float:
        """Reduced cost of a candidate ordering column.

        The column has coefficient ``Ua_o[e, v]`` in every attack row,
        coefficient 1 in the convexity row, and objective coefficient 0;
        negative reduced cost means adding it can improve the master.
        """
        e_rows, v_rows = self.context.representative_rows
        utilities = self.context.utilities(ordering)
        return solution.reduced_cost(
            column_objective=0.0,
            column_ub=utilities[e_rows, v_rows],
            column_eq=np.array([1.0]),
        )

    def dual_prices(
        self, solution: LPSolution
    ) -> tuple[np.ndarray, float]:
        """Attack-row duals scattered to ``(E, V)`` plus the convexity dual.

        Non-representative attacks carry zero dual weight (their rows are
        not in the LP); the greedy column oracle can therefore score
        candidate orderings against the full utility matrix unchanged.
        """
        game = self.context.game
        e_rows, v_rows = self.context.representative_rows
        duals = np.zeros((game.n_adversaries, game.n_victims))
        if solution.dual_ub is not None:
            duals[e_rows, v_rows] = solution.dual_ub
        y_eq = 0.0 if solution.dual_eq is None else float(
            solution.dual_eq[0]
        )
        return duals, y_eq


def batch_policy_contexts(
    game: AuditGame,
    scenarios: ScenarioSet,
    thresholds_batch: np.ndarray,
    orderings: Sequence[Ordering],
    *,
    subset_table: bool | None = None,
) -> list[PolicyContext]:
    """One pre-warmed :class:`PolicyContext` per threshold vector.

    Two batched pricing strategies, both producing contexts whose master
    solves are bit-for-bit identical to cold single-vector solves:

    * **Subset tables** (``subset_table=True``, the auto choice whenever
      the ordering set is large enough to amortize the build — see
      :func:`~repro.core.pal_table.subset_table_pays`): each context
      prices through its own per-vector
      :class:`~repro.core.pal_table.PalTable` — exactly the kernel the
      single-vector solve path uses, hence the exact identity.
    * **Legacy batched walks** (small ordering sets, e.g. 2-type
      games): the detection vectors for *all* candidate threshold
      vectors are built per ordering in a single vectorized pass
      (:func:`~repro.core.detection.pal_for_ordering_batch`, validated
      once for the whole pass) and planted into the per-vector caches;
      the batched walk shares the serial kernel's pairwise expectation
      reduction, so the seeded rows equal the serial rows bitwise.
    """
    arr = np.asarray(thresholds_batch, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != game.n_types:
        raise ValueError(
            f"thresholds batch must have shape (B, {game.n_types}), "
            f"got {arr.shape}"
        )
    if subset_table is None:
        subset_table = subset_table_pays(len(orderings), game.n_types)
    if subset_table:
        return [
            PolicyContext(game, scenarios, b, subset_table=True)
            for b in arr
        ]
    contexts = [PolicyContext(game, scenarios, b) for b in arr]
    if len(arr) == 0:
        return contexts
    _check_batch_inputs(arr, scenarios, game.costs, game.budget)
    for ordering in orderings:
        pal_rows = pal_for_ordering_batch(
            ordering,
            arr,
            scenarios,
            game.costs,
            game.budget,
            game.zero_count_rule,
            validate=False,
        )
        for context, row in zip(contexts, pal_rows):
            context.seed_pal(ordering, row)
    return contexts
