"""The master problem of eq. 5 for a fixed threshold vector ``b``.

With ``b`` fixed, the auditor's problem is the linear program

    min_{p_o, u}   sum_e p_e u_e
    s.t.           u_e >= sum_{o in Q} p_o Ua(o, b, <e, v>)   for all <e, v>
                   sum_{o in Q} p_o = 1,   p_o >= 0
                   (u_e >= 0 when adversaries may refrain)

restricted to a column set ``Q`` of orderings.  :class:`MasterProblem`
builds and incrementally extends this LP; :class:`PolicyContext` caches the
expensive per-ordering detection vectors so that CGGS, enumeration, ISHM
and the baselines all share one kernel-evaluation cache per ``(b, Z)``.

The LP layer is *incremental* and *structure-exploiting*:

* :meth:`MasterProblem.add_ordering` appends one cached column vector in
  O(rows); solves assemble the constraint blocks from growable arrays
  instead of restacking the full ``(Q, E, V)`` utility tensor per solve.
* With a warm-start-capable backend (``"simplex"``), each re-solve
  re-enters the revised simplex from the previous optimal basis — the
  classic column-generation warm start, where phase 1 is skipped because
  an added column never breaks primal feasibility.  The extraction is
  path-independent (see :mod:`repro.solvers.lp.simplex`), so a warm
  re-solve that lands in the same basis as a cold solve returns
  bit-for-bit identical objective, policy and duals.
* :meth:`MasterProblem.solve` can losslessly *prune* the restricted LP
  first: attack rows pointwise-dominated within their adversary and
  ordering columns pointwise-dominated by a peer are dropped, and the
  solution is expanded back (pruned columns get probability 0, pruned
  rows dual price 0) — the optimal value is provably unchanged.
* Structurally identical masters (batched pricing: same ``Q`` and game,
  different utilities) share one :class:`MasterSkeleton` holding the
  static blocks (``u`` coefficients, convexity row, objective, bounds),
  so per-item LP assembly only writes the utility columns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import faults, obs
from ..core.detection import (
    OrderingPricer,
    _check_batch_inputs,
    pal_for_ordering_batch,
)
from ..core.game import AuditGame
from ..core.kernels import resolve_kernel_backend
from ..core.pal_table import LazyPalTable, PalTable, subset_table_pays
from ..core.objective import best_responses
from ..core.policy import AuditPolicy, Ordering
from ..distributions.joint import ScenarioSet
from .lp import (
    BasisTag,
    LinearProgram,
    LPSolution,
    LPStatus,
    solve_lp,
    supports_warm_start,
)

__all__ = [
    "PolicyContext",
    "MasterProblem",
    "MasterSkeleton",
    "FixedThresholdSolution",
    "batch_policy_contexts",
]


def _coerce_subset_table(value: bool | str | None) -> bool | str:
    """Normalize a ``subset_table`` knob; reject unknown strings.

    ``"lazy"`` selects the :class:`~repro.core.pal_table.LazyPalTable`;
    booleans pick the eager table or the legacy walk.  Anything else —
    e.g. a typo'd ``"lzay"`` — raises here, at construction time,
    instead of silently truth-testing into the eager table and failing
    (or quietly paying ``2^T``) deep inside the first solve.
    """
    if isinstance(value, str):
        if value != "lazy":
            raise ValueError(
                f"subset_table must be True, False or 'lazy', "
                f"got {value!r}"
            )
        return "lazy"
    return bool(value)


def _master_u_block(e_rows: np.ndarray, n_e: int) -> np.ndarray:
    """The ``-1`` scatter of each attack row's adversary ``u`` variable.

    Depends only on the row set — callers that re-solve with a growing
    column count build this once and combine it with fresh
    :func:`_master_variable_blocks` per solve.
    """
    u_block = np.zeros((len(e_rows), n_e))
    u_block[np.arange(len(e_rows)), e_rows] = -1.0
    return u_block


def _master_variable_blocks(
    game: AuditGame, n_q: int
) -> tuple[np.ndarray, np.ndarray, tuple]:
    """``(a_eq, c, bounds)`` of the eq.-5 master for ``n_q`` columns.

    The convexity row, the prior-weighted objective, and the variable
    bounds (``u`` free, or ``>= 0`` when attackers may refrain).
    """
    n_e = game.n_adversaries
    n_vars = n_q + n_e
    a_eq = np.zeros((1, n_vars))
    a_eq[0, :n_q] = 1.0
    c = np.zeros(n_vars)
    c[n_q:] = game.payoffs.attack_prior
    u_bound = (0.0, None) if game.payoffs.attackers_can_refrain \
        else (None, None)
    bounds = tuple([(0.0, None)] * n_q + [u_bound] * n_e)
    return a_eq, c, bounds


def _master_static_blocks(
    game: AuditGame, e_rows: np.ndarray, n_q: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple]:
    """The eq.-5 master's utility-independent blocks for given rows/``Q``.

    Single source of truth for the skeleton, the per-master assembly
    and the pruned sub-LP — the three must solve the *same* LP shape.
    """
    a_eq, c, bounds = _master_variable_blocks(game, n_q)
    return _master_u_block(e_rows, game.n_adversaries), a_eq, c, bounds


class PolicyContext:
    """Caches ``Pal`` and utility matrices for one ``(game, Z, b)``.

    Detection vectors depend on the ordering, the thresholds and the
    scenario set; utilities additionally fold in the payoff model.  Both
    are memoized by ordering tuple, which makes the CGGS greedy subproblem
    (many shared prefixes) and repeated master solves cheap.

    Kernel selection: cache misses price through a shared validate-once
    :class:`~repro.core.detection.OrderingPricer` (the reference walk);
    ``subset_table=True`` switches to the eager
    :class:`~repro.core.pal_table.PalTable` (``T * 2^(T-1)`` sweeps up
    front, then pure lookups — enumeration's choice, since it prices the
    full ordering set), and ``subset_table="lazy"`` to the
    :class:`~repro.core.pal_table.LazyPalTable` (bitwise-identical
    entries computed on first touch — CGGS's choice, whose greedy
    oracle only visits the masks along its construction paths and
    prices every one-type extension of the current prefix in one
    vectorized sweep via :meth:`extension_utilities`).

    ``representative_rows`` lets callers that build many contexts for
    one game (batched pricing) share the deduplicated LP row set instead
    of recomputing it per context.
    """

    def __init__(
        self,
        game: AuditGame,
        scenarios: ScenarioSet,
        thresholds: np.ndarray,
        *,
        subset_table: bool | str = False,
        kernel_backend: str = "auto",
        representative_rows: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        self.game = game
        self.scenarios = scenarios
        self.thresholds = np.asarray(thresholds, dtype=np.float64)
        if self.thresholds.shape != (game.n_types,):
            raise ValueError(
                f"thresholds must have shape ({game.n_types},), "
                f"got {self.thresholds.shape}"
            )
        self._pal_cache: dict[tuple[int, ...], np.ndarray] = {}
        self._utility_cache: dict[tuple[int, ...], np.ndarray] = {}
        self._costs = game.costs
        self._rows = (
            representative_rows
            if representative_rows is not None
            else self.representative_rows_for(game)
        )
        self.subset_table = _coerce_subset_table(subset_table)
        # Validate the knob at construction time (typos and an explicit
        # "numba" without the dependency fail here, not mid-solve); the
        # resolved name is what the subset tables are built with.
        self.kernel_backend = resolve_kernel_backend(kernel_backend)
        self._pricer: OrderingPricer | None = None
        self._table: PalTable | LazyPalTable | None = None

    @classmethod
    def representative_rows_for(
        cls, game: AuditGame
    ) -> tuple[np.ndarray, np.ndarray]:
        """Collapse duplicate attack rows of the master LP.

        ``Ua(o, b, <e, v>)`` depends on the victim only through the trigger
        probabilities ``P[e, v, :]`` and the payoffs ``(R, M, K)[e, v]``,
        for *every* ordering; victims with identical signatures always
        yield identical constraint rows, so one representative per
        signature suffices.  In the paper's real-data games this shrinks
        the LP from |E| x |V| rows to |E| x (#alert types + 1).

        Depends only on the game (not thresholds or scenarios), so
        batched-pricing callers compute it once and pass it to every
        context they build.
        """
        probs = game.attack_map.probabilities
        payoffs = game.payoffs
        e_rows: list[int] = []
        v_rows: list[int] = []
        for e in range(game.n_adversaries):
            seen: set[tuple] = set()
            for v in range(game.n_victims):
                signature = (
                    tuple(np.round(probs[e, v], 12)),
                    round(float(payoffs.benefit[e, v]), 12),
                    round(float(payoffs.penalty[e, v]), 12),
                    round(float(payoffs.attack_cost[e, v]), 12),
                )
                if signature in seen:
                    continue
                seen.add(signature)
                e_rows.append(e)
                v_rows.append(v)
        return (
            np.asarray(e_rows, dtype=np.int64),
            np.asarray(v_rows, dtype=np.int64),
        )

    # Backwards-compatible private alias (older call sites/tests).
    _representative_rows = representative_rows_for

    @property
    def representative_rows(self) -> tuple[np.ndarray, np.ndarray]:
        """(adversary, victim) indices of the deduplicated LP rows."""
        return self._rows

    def _kernel(self) -> OrderingPricer | PalTable | LazyPalTable:
        """The pricing kernel for cache misses (validated exactly once)."""
        if self._pricer is None:
            self._pricer = OrderingPricer(
                self.thresholds,
                self.scenarios,
                self._costs,
                self.game.budget,
                self.game.zero_count_rule,
            )
        if self.subset_table:
            if self._table is None:
                factory = (
                    LazyPalTable
                    if self.subset_table == "lazy"
                    else PalTable
                )
                self._table = factory.from_pricer(
                    self._pricer, kernel_backend=self.kernel_backend
                )
            return self._table
        return self._pricer

    def pal(self, ordering: Ordering | Sequence[int]) -> np.ndarray:
        """``Pal(o, b, .)`` for a complete or partial ordering (cached)."""
        key = tuple(ordering)
        cached = self._pal_cache.get(key)
        if cached is None:
            cached = self._kernel().pal(key)
            self._pal_cache[key] = cached
        return cached

    def seed_pal(
        self, ordering: Ordering | Sequence[int], pal: np.ndarray
    ) -> None:
        """Pre-fill the ``Pal`` cache for one ordering.

        Batched pricing computes detection vectors for many threshold
        vectors in one pass (:func:`batch_policy_contexts`) and plants
        each row here, so the master solve that follows never re-enters
        the per-ordering kernel.
        """
        self._pal_cache[tuple(ordering)] = np.asarray(
            pal, dtype=np.float64
        )

    def utilities(self, ordering: Ordering | Sequence[int]) -> np.ndarray:
        """``Ua(o, b, <e, v>)`` matrix for an ordering (cached)."""
        key = tuple(ordering)
        cached = self._utility_cache.get(key)
        if cached is None:
            pat = self.game.attack_map.detection_probability(self.pal(key))
            cached = self.game.payoffs.utility_matrix(pat)
            self._utility_cache[key] = cached
        return cached

    def extension_utilities(
        self,
        prefix: Ordering | Sequence[int],
        candidates: Sequence[int],
    ) -> np.ndarray:
        """``Ua`` matrices for every one-type extension of ``prefix``.

        Returns a ``(len(candidates), E, V)`` stack, one utility matrix
        per ``prefix + (t,)``, in candidate order.  This is the CGGS
        greedy-oracle hot path: with ``subset_table=True`` the detection
        rows of *all* extensions come from one vectorized
        :class:`~repro.core.pal_table.PalTable` lookup (``Pal`` of an
        extension is the prefix row with entry ``t`` filled from
        ``table[t, mask(prefix)]`` — bitwise what :meth:`PalTable.pal`
        assembles), instead of one legacy scenario walk per candidate.
        Every computed row/matrix lands in the ordinary caches, so later
        :meth:`pal`/:meth:`utilities` calls for the chosen extension are
        free and bitwise identical.
        """
        prefix = tuple(int(t) for t in prefix)
        cands = [int(t) for t in candidates]
        n_types = self.game.n_types
        for t in cands:
            if not 0 <= t < n_types:
                raise ValueError(f"type index {t} out of range")
        if self.subset_table:
            missing = [
                t for t in cands if prefix + (t,) not in self._pal_cache
            ]
            if missing:
                kernel = self._kernel()  # a (lazy) PalTable
                base = self.pal(prefix)
                mask = 0
                for t in prefix:
                    mask |= 1 << t
                values = kernel.extension_values(mask, missing)
                for t, value in zip(missing, values, strict=True):
                    row = base.copy()
                    row[t] = value
                    self._pal_cache[prefix + (t,)] = row
        return np.stack(
            [self.utilities(prefix + (t,)) for t in cands], axis=0
        )

    def pal_table(self) -> PalTable | LazyPalTable:
        """The (lazily built) subset table; requires ``subset_table``."""
        if not self.subset_table:
            raise RuntimeError(
                "context was built without subset_table"
            )
        table = self._kernel()
        assert isinstance(table, (PalTable, LazyPalTable))
        return table

    @property
    def kernel_evaluations(self) -> int:
        """Number of distinct orderings priced so far."""
        return len(self._pal_cache)


@dataclass(frozen=True)
class FixedThresholdSolution:
    """Optimal (restricted) mixed strategy for a fixed threshold vector."""

    policy: AuditPolicy
    objective: float
    lp_calls: int
    n_columns: int
    adversary_utilities: np.ndarray

    def describe(self, type_names: Sequence[str] | None = None) -> str:
        """Short human-readable report."""
        return (
            f"objective={self.objective:.4f}, support="
            f"{self.policy.support_size} orderings\n"
            + self.policy.describe(type_names)
        )


class MasterSkeleton:
    """Static LP blocks shared by structurally identical masters.

    Batched pricing (:meth:`~repro.solvers.enumeration.EnumerationSolver.
    solve_batch`, :meth:`~repro.engine.cache.FixedSolveCache.price_batch`)
    solves one master per threshold vector with the *same* game, row set
    and column count — only the utility entries differ.  Everything that
    does not depend on the utilities is built here exactly once: the
    ``u``-variable coefficient block, the convexity row, the objective
    vector and the bounds tuple.  The arrays are shared read-only across
    every :class:`LinearProgram` assembled from them.
    """

    __slots__ = ("n_q", "n_e", "n_rows", "u_block", "a_eq", "c", "bounds")

    def __init__(
        self,
        game: AuditGame,
        e_rows: np.ndarray,
        n_q: int,
    ) -> None:
        self.n_q = n_q
        self.n_e = game.n_adversaries
        self.n_rows = len(e_rows)
        (
            self.u_block,
            self.a_eq,
            self.c,
            self.bounds,
        ) = _master_static_blocks(game, e_rows, n_q)


class MasterProblem:
    """Eq. 5 restricted to a growing set of ordering columns.

    Parameters
    ----------
    context:
        The shared kernel/utility cache for one ``(game, Z, b)``.
    backend:
        LP backend name; ``"simplex"`` additionally enables warm-started
        re-solves (see ``warm_start``).
    warm_start:
        Re-enter each :meth:`solve` from the previous optimal basis when
        the backend supports bases (auto-disabled otherwise).  Column
        additions between solves are handled by renaming the basis: the
        ``u`` variables shift with the column count, everything else is
        stable.  A warm re-solve is guaranteed to return the cold
        solve's objective/policy/duals bit-for-bit whenever it lands in
        the same optimal basis (path-independent extraction), and the
        simplex falls back to a cold two-phase run whenever the carried
        basis has gone stale — warm starts never change feasibility or
        optimality, only the pivot count.  ``lp_calls`` counts
        :meth:`solve` invocations identically on both paths.
    skeleton:
        Optional :class:`MasterSkeleton` with prebuilt static blocks
        (used when its column count matches at solve time).
    """

    def __init__(
        self,
        context: PolicyContext,
        backend: str = "scipy",
        *,
        warm_start: bool = True,
        skeleton: MasterSkeleton | None = None,
    ) -> None:
        self.context = context
        self.backend = backend
        self.warm_start = bool(warm_start) and supports_warm_start(backend)
        self.skeleton = skeleton
        self._orderings: list[Ordering] = []
        self._keys: set[tuple[int, ...]] = set()
        e_rows, _ = context.representative_rows
        self._n_rows = len(e_rows)
        self._n_e = context.game.n_adversaries
        # Growable column store: _col_buf[:, :n_columns] holds one
        # deduplicated-row utility column per ordering, _pal_buf one
        # detection row (for the post-solve objective recompute).
        self._col_buf = np.empty((self._n_rows, 16))
        self._pal_buf = np.empty((16, context.game.n_types))
        self._u_block: np.ndarray | None = None
        self._basis: tuple[BasisTag, ...] | None = None
        self._basis_n_q = 0
        self.lp_calls = 0
        self.warm_solves = 0
        self.lp_seconds = 0.0
        self.pruned_rows = 0
        self.pruned_columns = 0

    @property
    def orderings(self) -> tuple[Ordering, ...]:
        """Current column set ``Q``."""
        return tuple(self._orderings)

    @property
    def n_columns(self) -> int:
        return len(self._orderings)

    def add_ordering(self, ordering: Ordering) -> bool:
        """Add a column; returns False when already present.

        Appends the ordering's deduplicated-row utility column to the
        growable column store in O(rows) — no constraint matrix is
        rebuilt until the next :meth:`solve`.
        """
        key = tuple(ordering)
        if key in self._keys:
            return False
        if not ordering.is_complete(self.context.game.n_types):
            raise ValueError(
                f"master columns must be complete orderings, got {key}"
            )
        e_rows, v_rows = self.context.representative_rows
        column = self.context.utilities(ordering)[e_rows, v_rows]
        n_q = len(self._orderings)
        if n_q == self._col_buf.shape[1]:
            grown = np.empty((self._n_rows, max(2 * n_q, 16)))
            grown[:, :n_q] = self._col_buf[:, :n_q]
            self._col_buf = grown
            grown_pal = np.empty(
                (max(2 * n_q, 16), self.context.game.n_types)
            )
            grown_pal[:n_q] = self._pal_buf[:n_q]
            self._pal_buf = grown_pal
        self._col_buf[:, n_q] = column
        self._pal_buf[n_q] = self.context.pal(ordering)
        self._keys.add(key)
        self._orderings.append(ordering)
        return True

    # ------------------------------------------------------------------
    # LP assembly
    # ------------------------------------------------------------------

    def _static_blocks(
        self, n_q: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple]:
        """(u_block, a_eq, c, bounds) — from the skeleton when it fits."""
        if self.skeleton is not None and self.skeleton.n_q == n_q:
            s = self.skeleton
            return s.u_block, s.a_eq, s.c, s.bounds
        if self._u_block is None:
            e_rows, _ = self.context.representative_rows
            self._u_block = _master_u_block(e_rows, self._n_e)
        a_eq, c, bounds = _master_variable_blocks(
            self.context.game, n_q
        )
        return self._u_block, a_eq, c, bounds

    def build_lp(self) -> LinearProgram:
        """Assemble the restricted LP in scipy general form.

        One ``<=`` row per *representative* attack (see
        :meth:`PolicyContext.representative_rows_for`):
        ``sum_o p_o Ua_o[e, v] - u_e <= 0``.  Assembly copies the cached
        column store and static blocks; nothing is re-priced.
        """
        if not self._orderings:
            raise RuntimeError("master problem has no columns")
        n_q = len(self._orderings)
        u_block, a_eq, c, bounds = self._static_blocks(n_q)

        a_ub = np.empty((self._n_rows, n_q + self._n_e))
        a_ub[:, :n_q] = self._col_buf[:, :n_q]
        a_ub[:, n_q:] = u_block
        b_ub = np.zeros(self._n_rows)
        b_eq = np.array([1.0])
        return LinearProgram(
            objective=c,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
        )

    # ------------------------------------------------------------------
    # Dominance pruning
    # ------------------------------------------------------------------

    def _dominated_columns(self, cols: np.ndarray) -> np.ndarray:
        """Boolean keep-mask over columns.

        Column ``j`` (an ordering) is dropped when some other column
        ``k`` satisfies ``cols[:, k] <= cols[:, j]`` pointwise — any
        probability on ``j`` can be moved to ``k`` without increasing a
        single adversary utility, so the optimum is unchanged.  Among
        identical columns the lowest index survives.
        """
        n_rows, n_q = cols.shape
        keep = np.ones(n_q, dtype=bool)
        indices = np.arange(n_q)
        chunk = 256
        for start in range(0, n_q, chunk):
            block = indices[start:start + chunk]
            # le[k, j]: column k <= column j on every row.  Accumulated
            # row by row so the working set stays at two (n_q, chunk)
            # boolean planes instead of (rows, n_q, chunk) broadcasts —
            # at enumeration scale (n_q = 5040, ~50+ rows) the 3-D
            # temporaries would dwarf the LP solve being accelerated.
            le = np.ones((n_q, len(block)), dtype=bool)
            ge = np.ones((n_q, len(block)), dtype=bool)
            for r in range(n_rows):
                row = cols[r]
                le &= row[:, None] <= row[block][None, :]
                ge &= row[:, None] >= row[block][None, :]
            strict = le & ~ge
            equal_lower = (le & ge) & (
                indices[:, None] < block[None, :]
            )
            keep[block] = ~(strict.any(axis=0) | equal_lower.any(axis=0))
        return keep

    def _dominated_rows(self, cols: np.ndarray) -> np.ndarray:
        """Boolean keep-mask over attack rows.

        Within one adversary ``e``, row ``i`` is dropped when a sibling
        row ``i'`` satisfies ``cols[i, :] <= cols[i', :]`` pointwise —
        the constraint ``u_e >= sum_o p_o Ua_o[i]`` is then implied by
        row ``i'`` for every feasible ``p``, so removing it changes
        neither the optimum nor primal feasibility.  Dropped rows carry
        dual price 0 (a valid dual completion).  Among identical rows
        the lowest index survives.
        """
        e_rows, _ = self.context.representative_rows
        keep = np.ones(len(e_rows), dtype=bool)
        for e in np.unique(e_rows):
            members = np.nonzero(e_rows == e)[0]
            if len(members) < 2:
                continue
            rows = cols[members]  # (k, n_q)
            le = (rows[:, None, :] <= rows[None, :, :]).all(axis=2)
            ge = (rows[:, None, :] >= rows[None, :, :]).all(axis=2)
            # dominated[i] when some i' strictly dominates it, or an
            # identical sibling with smaller index exists.
            strict = le & ~ge
            local = np.arange(len(members))
            equal_lower = (le & ge) & (
                local[:, None] > local[None, :]
            )
            dominated = strict.any(axis=1) | equal_lower.any(axis=1)
            keep[members[dominated]] = False
        return keep

    def prune_masks(self) -> tuple[np.ndarray, np.ndarray]:
        """(row_keep, column_keep) dominance masks for the current LP."""
        if not self._orderings:
            raise RuntimeError("master problem has no columns")
        cols = self._col_buf[:, : len(self._orderings)]
        return self._dominated_rows(cols), self._dominated_columns(cols)

    def _solve_lp_pruned(self) -> LPSolution:
        """Solve the dominance-pruned LP and expand back to full shape.

        Lossless by construction (see :meth:`_dominated_columns` /
        :meth:`_dominated_rows`): the returned solution has one entry
        per original column/row again — pruned columns at probability 0,
        pruned rows at dual price 0 — so every downstream consumer
        (policy extraction, :meth:`reduced_cost`, :meth:`dual_prices`)
        is oblivious to the pruning.
        """
        game = self.context.game
        n_q = len(self._orderings)
        row_keep, col_keep = self.prune_masks()
        self.pruned_rows = int((~row_keep).sum())
        self.pruned_columns = int((~col_keep).sum())
        kept_cols = np.nonzero(col_keep)[0]
        kept_rows = np.nonzero(row_keep)[0]
        n_kept = len(kept_cols)
        e_rows, _ = self.context.representative_rows

        u_block, a_eq, c, bounds = _master_static_blocks(
            game, e_rows[kept_rows], n_kept
        )
        a_ub = np.empty((len(kept_rows), n_kept + self._n_e))
        a_ub[:, :n_kept] = self._col_buf[np.ix_(kept_rows, kept_cols)]
        a_ub[:, n_kept:] = u_block
        lp = LinearProgram(
            objective=c,
            a_ub=a_ub,
            b_ub=np.zeros(len(kept_rows)),
            a_eq=a_eq,
            b_eq=np.array([1.0]),
            bounds=bounds,
        )
        started = time.perf_counter()
        solution = solve_lp(lp, backend=self.backend).require_optimal()
        elapsed = time.perf_counter() - started
        self.lp_seconds += elapsed
        obs.observe("repro_master_lp_seconds", elapsed)

        x = np.zeros(n_q + self._n_e)
        x[kept_cols] = solution.x[:n_kept]
        x[n_q:] = solution.x[n_kept:]
        dual_ub = np.zeros(self._n_rows)
        if solution.dual_ub is not None:
            dual_ub[kept_rows] = solution.dual_ub
        return LPSolution(
            status=LPStatus.OPTIMAL,
            x=x,
            objective_value=solution.objective_value,
            dual_ub=dual_ub,
            dual_eq=solution.dual_eq,
            iterations=solution.iterations,
            message=solution.message,
        )

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    @staticmethod
    def _renamed_basis(
        basis: tuple[BasisTag, ...], old_n_q: int, new_n_q: int
    ) -> tuple[BasisTag, ...]:
        """Shift ``u``-variable tags after columns were appended.

        Ordering columns occupy variable indices ``[0, n_q)`` and keep
        them forever; the ``u`` block starts at ``n_q`` and slides right
        as columns arrive.  Row-keyed tags (slacks, artificials of
        ``<=``/``==`` rows) are untouched — the row set never changes.
        """
        if old_n_q == new_n_q:
            return basis
        shift = new_n_q - old_n_q
        renamed: list[BasisTag] = []
        for kind, idx in basis:
            if kind in ("x", "neg", "s_bnd", "art_bnd") and idx >= old_n_q:
                idx += shift
            renamed.append((kind, idx))
        return tuple(renamed)

    def solve(
        self, *, prune: bool = False
    ) -> tuple[FixedThresholdSolution, LPSolution]:
        """Solve the restricted master; returns policy plus raw LP data.

        ``prune=True`` drops dominated rows/columns first (lossless; see
        :meth:`_solve_lp_pruned`) and skips warm starts — the pruned
        shape varies between solves, so no basis is carried.
        """
        n_q = len(self._orderings)
        if prune:
            if not self._orderings:
                raise RuntimeError("master problem has no columns")
            solution = self._solve_lp_pruned()
        else:
            lp = self.build_lp()
            warm = None
            if self.warm_start and self._basis is not None:
                warm = self._renamed_basis(
                    self._basis, self._basis_n_q, n_q
                )
            started = time.perf_counter()
            solution = None
            if warm is not None:
                # Warm re-entry can fail numerically (a stale or
                # renamed basis the simplex cannot refactorize, or an
                # injected "solvers.master.warm" fault); degrade to a
                # cold solve instead of failing the whole master.
                try:
                    faults.point("solvers.master.warm")
                    candidate = solve_lp(
                        lp, backend=self.backend, warm_basis=warm
                    )
                except Exception:
                    obs.counter("repro_master_warm_failures_total")
                    candidate = None
                if (
                    candidate is not None
                    and candidate.status != LPStatus.OPTIMAL
                ):
                    obs.counter("repro_master_warm_failures_total")
                    candidate = None
                if candidate is None:
                    self._basis = None
                    obs.counter("repro_master_cold_fallbacks_total")
                else:
                    self.warm_solves += 1
                    obs.counter("repro_master_warm_solves_total")
                solution = candidate
            if solution is None:
                solution = solve_lp(lp, backend=self.backend)
            solution = solution.require_optimal()
            elapsed = time.perf_counter() - started
            self.lp_seconds += elapsed
            obs.observe("repro_master_lp_seconds", elapsed)
            if self.warm_start and solution.basis is not None:
                self._basis = solution.basis
                self._basis_n_q = n_q
        self.lp_calls += 1
        obs.counter("repro_master_lp_calls_total")
        probs = np.clip(solution.x[:n_q], 0.0, None)
        total = probs.sum()
        if total <= 0:
            probs = np.full(n_q, 1.0 / n_q)
        else:
            probs = probs / total
        policy = AuditPolicy(
            orderings=tuple(self._orderings),
            probabilities=probs,
            thresholds=self.context.thresholds,
        )
        # Recompute utilities at the (renormalized) mixed strategy so the
        # reported objective is self-consistent.
        game = self.context.game
        mixed_pal = probs @ self._pal_buf[:n_q]
        pat = game.attack_map.detection_probability(mixed_pal)
        eu = game.payoffs.utility_matrix(pat)
        responses = best_responses(eu, game.payoffs)
        utilities = np.array([r.utility for r in responses])
        objective = game.payoffs.auditor_loss(utilities)
        fixed = FixedThresholdSolution(
            policy=policy,
            objective=objective,
            lp_calls=self.lp_calls,
            n_columns=n_q,
            adversary_utilities=utilities,
        )
        return fixed, solution

    def reduced_cost(
        self, solution: LPSolution, ordering: Ordering | Sequence[int]
    ) -> float:
        """Reduced cost of a candidate ordering column.

        The column has coefficient ``Ua_o[e, v]`` in every attack row,
        coefficient 1 in the convexity row, and objective coefficient 0;
        negative reduced cost means adding it can improve the master.
        """
        e_rows, v_rows = self.context.representative_rows
        utilities = self.context.utilities(ordering)
        return solution.reduced_cost(
            column_objective=0.0,
            column_ub=utilities[e_rows, v_rows],
            column_eq=np.array([1.0]),
        )

    def dual_prices(
        self, solution: LPSolution
    ) -> tuple[np.ndarray, float]:
        """Attack-row duals scattered to ``(E, V)`` plus the convexity dual.

        Non-representative attacks carry zero dual weight (their rows are
        not in the LP); the greedy column oracle can therefore score
        candidate orderings against the full utility matrix unchanged.
        """
        game = self.context.game
        e_rows, v_rows = self.context.representative_rows
        duals = np.zeros((game.n_adversaries, game.n_victims))
        if solution.dual_ub is not None:
            duals[e_rows, v_rows] = solution.dual_ub
        y_eq = 0.0 if solution.dual_eq is None else float(
            solution.dual_eq[0]
        )
        return duals, y_eq


def batch_policy_contexts(
    game: AuditGame,
    scenarios: ScenarioSet,
    thresholds_batch: np.ndarray,
    orderings: Sequence[Ordering],
    *,
    subset_table: bool | None = None,
    kernel_backend: str = "auto",
    representative_rows: tuple[np.ndarray, np.ndarray] | None = None,
) -> list[PolicyContext]:
    """One pre-warmed :class:`PolicyContext` per threshold vector.

    Two batched pricing strategies, both producing contexts whose master
    solves are bit-for-bit identical to cold single-vector solves:

    * **Subset tables** (``subset_table=True``, the auto choice whenever
      the ordering set is large enough to amortize the build — see
      :func:`~repro.core.pal_table.subset_table_pays`): each context
      prices through its own per-vector
      :class:`~repro.core.pal_table.PalTable` — exactly the kernel the
      single-vector solve path uses, hence the exact identity.
    * **Legacy batched walks** (small ordering sets, e.g. 2-type
      games): the detection vectors for *all* candidate threshold
      vectors are built per ordering in a single vectorized pass
      (:func:`~repro.core.detection.pal_for_ordering_batch`, validated
      once for the whole pass) and planted into the per-vector caches;
      the batched walk shares the serial kernel's pairwise expectation
      reduction, so the seeded rows equal the serial rows bitwise.

    ``representative_rows`` (shared LP row dedup) is computed once here
    when not supplied and reused by every context in the batch.
    """
    arr = np.asarray(thresholds_batch, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != game.n_types:
        raise ValueError(
            f"thresholds batch must have shape (B, {game.n_types}), "
            f"got {arr.shape}"
        )
    if subset_table is None:
        subset_table = subset_table_pays(len(orderings), game.n_types)
    if representative_rows is None:
        representative_rows = PolicyContext.representative_rows_for(game)
    if subset_table:
        return [
            PolicyContext(
                game,
                scenarios,
                b,
                subset_table=True,
                kernel_backend=kernel_backend,
                representative_rows=representative_rows,
            )
            for b in arr
        ]
    contexts = [
        PolicyContext(
            game,
            scenarios,
            b,
            kernel_backend=kernel_backend,
            representative_rows=representative_rows,
        )
        for b in arr
    ]
    if len(arr) == 0:
        return contexts
    _check_batch_inputs(arr, scenarios, game.costs, game.budget)
    for ordering in orderings:
        pal_rows = pal_for_ordering_batch(
            ordering,
            arr,
            scenarios,
            game.costs,
            game.budget,
            game.zero_count_rule,
            validate=False,
        )
        for context, row in zip(contexts, pal_rows, strict=True):
            context.seed_pal(ordering, row)
    return contexts
