"""Attacker best-response analysis and deterrence diagnostics.

Utilities for interrogating a solved policy: which victim each adversary
attacks, who is deterred, and the smallest budget at which the auditor's
loss hits a target (e.g. the full-deterrence point visible in Figures 1-2,
where the proposed policy drives the loss to exactly 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence


from ..core.game import AuditGame
from ..core.objective import PolicyEvaluation
from ..core.policy import AuditPolicy
from ..distributions.joint import ScenarioSet

__all__ = [
    "ResponseReport",
    "response_report",
    "deterrence_budget",
]


@dataclass(frozen=True)
class ResponseReport:
    """Readable summary of attacker behaviour under a fixed policy."""

    auditor_loss: float
    n_adversaries: int
    n_deterred: int
    attacks: tuple[tuple[str, str, float], ...]  # (adversary, victim, Ua)

    @property
    def deterrence_rate(self) -> float:
        """Fraction of adversaries who prefer not to attack.

        An adversary-free game has nobody left to deter; by convention
        the rate is 0.0 there (nobody was deterred) rather than a
        ``ZeroDivisionError``.
        """
        if self.n_adversaries == 0:
            return 0.0
        return self.n_deterred / self.n_adversaries

    def describe(self) -> str:
        lines = [
            f"auditor loss {self.auditor_loss:.4f}; "
            f"{self.n_deterred}/{self.n_adversaries} adversaries deterred"
        ]
        for adversary, victim, utility in self.attacks:
            lines.append(
                f"  {adversary} -> {victim}  (Ua={utility:.4f})"
            )
        return "\n".join(lines)


def response_report(
    game: AuditGame,
    policy: AuditPolicy,
    scenarios: ScenarioSet,
    max_rows: int = 25,
) -> ResponseReport:
    """Evaluate the policy and tabulate each adversary's best response."""
    evaluation: PolicyEvaluation = game.evaluate(policy, scenarios)
    attacks: list[tuple[str, str, float]] = []
    for response in evaluation.responses[:max_rows]:
        adversary = game.adversary_names[response.adversary]
        victim = (
            "(refrains)" if response.deterred
            else game.victim_names[response.victim]
        )
        attacks.append((adversary, victim, response.utility))
    return ResponseReport(
        auditor_loss=evaluation.auditor_loss,
        n_adversaries=game.n_adversaries,
        n_deterred=evaluation.n_deterred,
        attacks=tuple(attacks),
    )


def deterrence_budget(
    game: AuditGame,
    budgets: Sequence[float],
    solve: Callable[[AuditGame], tuple[AuditPolicy, float]],
    loss_target: float = 0.0,
    tol: float = 1e-6,
) -> float | None:
    """Smallest budget in ``budgets`` whose solved loss is <= target.

    ``solve`` maps a game (with its budget set) to ``(policy, loss)`` —
    typically a closure around :func:`repro.solvers.ishm.iterative_shrink`.
    Returns None when no budget in the sweep reaches the target.
    """
    for budget in sorted(budgets):
        _, loss = solve(game.with_budget(budget))
        if loss <= loss_target + tol:
            return float(budget)
    return None
