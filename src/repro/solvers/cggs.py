"""Column Generation Greedy Search (Algorithm 1 of the paper).

The master LP of eq. 5 has one variable per ordering — ``|T|!`` of them —
but only a handful are active at the optimum.  CGGS starts from a single
random pure strategy and alternates:

1. solve the restricted master over the current column set ``Q`` and read
   off the dual prices;
2. *greedily* build a new ordering, appending one alert type at a time so
   as to maximize the dual-weighted column value (equivalently, minimize
   the column's reduced cost given the prefix built so far);
3. add the ordering if its reduced cost is negative, otherwise stop.

The subproblem of finding the true minimum-reduced-cost ordering is itself
hard, so the greedy construction makes CGGS an approximation — the paper's
Table V/VI quantify the (small) quality loss versus full enumeration.

Two structure-exploiting fast paths ride under the algorithm unchanged:

* **Subset-table oracle** (``subset_table``, auto-enabled for ``|T| >=
  3``): the greedy append step prices all ``|T| - k`` one-type
  extensions of the current prefix in one vectorized sweep of the
  :class:`~repro.core.pal_table.LazyPalTable` (entries computed on first
  touch, memoized across greedy calls and bitwise-equal to the eager
  table) instead of one legacy scenario walk per candidate; scoring then
  collapses to a linear projection of the ``Pal`` row (see
  :meth:`CGGSSolver._greedy_ordering_table`), so no per-candidate
  ``(E, V)`` utility matrix is ever materialized.  Table entries match
  the walk to ``<= 1e-9`` (bitwise on integer-valued games); pass
  ``subset_table=False`` to pin the legacy reference oracle, or
  ``True`` for the eager ``T * 2^(T-1)`` table.
* **Warm-started master re-solves**: with the ``"simplex"`` backend, the
  restricted master re-enters from the previous optimal basis after each
  added column instead of cold two-phase solving (see
  :class:`~repro.solvers.master.MasterProblem`).  The default scipy/HiGHS
  backend has no basis interface and keeps cold-solving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..core.game import AuditGame
from ..core.kernels import resolve_kernel_backend
from ..core.policy import Ordering, random_ordering
from ..distributions.joint import ScenarioSet
from .master import (
    FixedThresholdSolution,
    MasterProblem,
    PolicyContext,
    _coerce_subset_table,
)

__all__ = ["CGGSSolver", "CGGSResult"]


@dataclass(frozen=True)
class CGGSResult(FixedThresholdSolution):
    """Fixed-threshold solution plus column-generation diagnostics."""

    columns_generated: int = 0
    final_reduced_cost: float = 0.0
    converged: bool = True


class CGGSSolver:
    """Algorithm 1: column generation with a greedy ordering oracle.

    ``subset_table=None`` (default) auto-enables the vectorized PalTable
    oracle whenever the type count supports it; ``warm_start`` re-enters
    master re-solves from the previous basis on warm-capable backends.
    """

    def __init__(
        self,
        game: AuditGame,
        scenarios: ScenarioSet,
        backend: str = "scipy",
        rng: np.random.Generator | None = None,
        max_columns: int = 200,
        reduced_cost_tol: float = 1e-7,
        seed_orderings: tuple[Ordering, ...] = (),
        warm_start_pool: int = 48,
        subset_table: bool | str | None = None,
        kernel_backend: str = "auto",
        warm_start: bool = True,
    ) -> None:
        self.game = game
        self.scenarios = scenarios
        self.backend = backend
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.max_columns = max_columns
        self.reduced_cost_tol = reduced_cost_tol
        self.seed_orderings = tuple(seed_orderings)
        # Column pool shared across solve() calls: orderings that priced
        # well for one threshold vector are excellent warm starts for the
        # neighbouring vectors ISHM probes next.
        self.warm_start_pool = warm_start_pool
        self._pool: dict[tuple[int, ...], Ordering] = {}
        if subset_table is None:
            # The lazy table has no 2^T blow-up (it only materializes
            # visited masks), so the auto rule has no upper type cap.
            subset_table = "lazy" if game.n_types >= 3 else False
        self.subset_table = _coerce_subset_table(subset_table)
        self.kernel_backend = resolve_kernel_backend(kernel_backend)
        self.warm_start = bool(warm_start)

    # ------------------------------------------------------------------

    def solve(self, thresholds: np.ndarray) -> CGGSResult:
        """Approximately optimal mixed strategy for fixed thresholds."""
        context = PolicyContext(
            self.game,
            self.scenarios,
            thresholds,
            subset_table=self.subset_table,
            kernel_backend=self.kernel_backend,
        )
        master = MasterProblem(
            context, backend=self.backend, warm_start=self.warm_start
        )
        for ordering in self.seed_orderings:
            master.add_ordering(ordering)
        for ordering in self._pool.values():
            master.add_ordering(ordering)
        if master.n_columns == 0:
            master.add_ordering(
                random_ordering(self.game.n_types, self.rng)
            )

        fixed, lp_solution = master.solve()
        columns_generated = 0
        last_reduced_cost = 0.0
        converged = False
        while master.n_columns < self.max_columns:
            duals, _ = master.dual_prices(lp_solution)
            candidate = self._greedy_ordering(context, duals)
            last_reduced_cost = master.reduced_cost(lp_solution, candidate)
            if last_reduced_cost >= -self.reduced_cost_tol:
                converged = True
                break
            if not master.add_ordering(candidate):
                # The greedy oracle regenerated a known column: no further
                # progress is possible from these duals.
                converged = True
                break
            columns_generated += 1
            fixed, lp_solution = master.solve()
        self._refresh_pool(fixed)
        # Boundary telemetry: one batch of counters per CGGS solve, not
        # per column-loop iteration.
        obs.counter("repro_cggs_solves_total")
        obs.counter("repro_cggs_columns_generated_total", columns_generated)
        obs.counter(
            "repro_cggs_converged_total", 1.0 if converged else 0.0
        )
        return CGGSResult(
            policy=fixed.policy.pruned(),
            objective=fixed.objective,
            lp_calls=fixed.lp_calls,
            n_columns=fixed.n_columns,
            adversary_utilities=fixed.adversary_utilities,
            columns_generated=columns_generated,
            final_reduced_cost=last_reduced_cost,
            converged=converged,
        )

    # ------------------------------------------------------------------

    def _refresh_pool(self, fixed: FixedThresholdSolution) -> None:
        """Keep the support of the latest solution in the warm-start pool."""
        if self.warm_start_pool <= 0:
            return
        support = fixed.policy.pruned()
        for ordering in support.orderings:
            self._pool[tuple(ordering)] = ordering
        while len(self._pool) > self.warm_start_pool:
            # Evict the oldest entries (dict preserves insertion order).
            self._pool.pop(next(iter(self._pool)))

    def _greedy_ordering(
        self, context: PolicyContext, duals: np.ndarray
    ) -> Ordering:
        """Algorithm 1, lines 4-7: grow the order one type at a time.

        The reduced cost of a column is
        ``-(sum_ev y_ev * Ua_o[e, v] + y_eq)`` with ``y_ev <= 0``; the
        convexity dual ``y_eq`` is a constant shift, so minimizing reduced
        cost means maximizing the dual-weighted utility score of the
        (partially built) ordering.

        All ``|T| - k`` candidate extensions of the current prefix are
        priced in one batch (:meth:`PolicyContext.extension_utilities`)
        — a pure table lookup when the context rides the PalTable, the
        cached legacy walks otherwise.  The per-candidate score and the
        first-strict-improvement tie-break are unchanged from the
        reference implementation.
        """
        n_types = self.game.n_types
        if self.subset_table and self._linear_scores_exact():
            return self._greedy_ordering_table(context, duals)
        prefix: tuple[int, ...] = ()
        remaining = list(range(n_types))
        while remaining:
            utilities = context.extension_utilities(prefix, remaining)
            best_type = -1
            best_score = -np.inf
            for t, candidate_utilities in zip(remaining, utilities, strict=True):
                score = float(np.sum(duals * candidate_utilities))
                if score > best_score:
                    best_score = score
                    best_type = t
            prefix = prefix + (best_type,)
            remaining.remove(best_type)
        return Ordering(prefix)

    def _linear_scores_exact(self) -> bool:
        """True when the closed-form greedy score applies.

        :meth:`_greedy_ordering_table` folds ``utility_matrix`` and
        ``detection_probability`` into one linear projection of the
        ``Pal`` row; a payoff or attack-map subclass that overrides
        either kernel invalidates that algebra, so such games keep the
        generic per-candidate oracle.
        """
        from ..core.attack_map import AttackTypeMap
        from ..core.payoffs import PayoffModel

        game = self.game
        return (
            type(game.payoffs).utility_matrix
            is PayoffModel.utility_matrix
            and type(game.attack_map).detection_probability
            is AttackTypeMap.detection_probability
        )

    def _greedy_ordering_table(
        self, context: PolicyContext, duals: np.ndarray
    ) -> Ordering:
        """Table-backed greedy append: score all extensions per matvec.

        The score of a (partial) ordering is linear in its ``Pal`` row:
        with ``Ua = R - K - Pat * (M + R)`` and ``Pat = P @ Pal``,

            sum_ev y_ev Ua[e, v] = c0 - w' Pal,
            c0 = sum_ev y_ev (R - K)[e, v],
            w[t] = sum_ev y_ev (M + R)[e, v] P[e, v, t].

        Appending type ``t`` to a prefix with predecessor mask ``S`` only
        changes ``Pal[t]`` from 0 to ``table[t, S]``, so after projecting
        the duals once into ``w``, every greedy step scores all
        ``|T| - k`` candidates with one table-row lookup and one
        elementwise multiply — no per-candidate ``(E, V)`` matrices at
        all.  The assembled ``Pal`` row is seeded into the context so the
        master prices the chosen column without re-entering any kernel.
        Same argmax and first-strict-improvement tie-break as the
        reference oracle (scores differ only by float reassociation).
        """
        payoffs = self.game.payoffs
        probs = self.game.attack_map.probabilities
        weighted = duals * (payoffs.penalty + payoffs.benefit)
        w = np.einsum("ev,evt->t", weighted, probs)
        c0 = float(
            np.sum(duals * (payoffs.benefit - payoffs.attack_cost))
        )
        table = context.pal_table()
        n_types = self.game.n_types
        prefix: tuple[int, ...] = ()
        pal_row = np.zeros(n_types)
        mask = 0
        consumed = 0.0  # w' Pal of the current prefix
        remaining = np.arange(n_types)
        while remaining.size:
            values = table.extension_values(mask, remaining)
            scores = c0 - (consumed + values * w[remaining])
            pick = int(np.argmax(scores))
            best_type = int(remaining[pick])
            pal_row[best_type] = values[pick]
            consumed = consumed + values[pick] * w[best_type]
            prefix = prefix + (best_type,)
            mask |= 1 << best_type
            remaining = np.delete(remaining, pick)
        ordering = Ordering(prefix)
        context.seed_pal(ordering, pal_row)
        return ordering
