"""Column Generation Greedy Search (Algorithm 1 of the paper).

The master LP of eq. 5 has one variable per ordering — ``|T|!`` of them —
but only a handful are active at the optimum.  CGGS starts from a single
random pure strategy and alternates:

1. solve the restricted master over the current column set ``Q`` and read
   off the dual prices;
2. *greedily* build a new ordering, appending one alert type at a time so
   as to maximize the dual-weighted column value (equivalently, minimize
   the column's reduced cost given the prefix built so far);
3. add the ordering if its reduced cost is negative, otherwise stop.

The subproblem of finding the true minimum-reduced-cost ordering is itself
hard, so the greedy construction makes CGGS an approximation — the paper's
Table V/VI quantify the (small) quality loss versus full enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.game import AuditGame
from ..core.policy import Ordering, random_ordering
from ..distributions.joint import ScenarioSet
from .master import FixedThresholdSolution, MasterProblem, PolicyContext

__all__ = ["CGGSSolver", "CGGSResult"]


@dataclass(frozen=True)
class CGGSResult(FixedThresholdSolution):
    """Fixed-threshold solution plus column-generation diagnostics."""

    columns_generated: int = 0
    final_reduced_cost: float = 0.0
    converged: bool = True


class CGGSSolver:
    """Algorithm 1: column generation with a greedy ordering oracle."""

    def __init__(
        self,
        game: AuditGame,
        scenarios: ScenarioSet,
        backend: str = "scipy",
        rng: np.random.Generator | None = None,
        max_columns: int = 200,
        reduced_cost_tol: float = 1e-7,
        seed_orderings: tuple[Ordering, ...] = (),
        warm_start_pool: int = 48,
    ) -> None:
        self.game = game
        self.scenarios = scenarios
        self.backend = backend
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.max_columns = max_columns
        self.reduced_cost_tol = reduced_cost_tol
        self.seed_orderings = tuple(seed_orderings)
        # Column pool shared across solve() calls: orderings that priced
        # well for one threshold vector are excellent warm starts for the
        # neighbouring vectors ISHM probes next.
        self.warm_start_pool = warm_start_pool
        self._pool: dict[tuple[int, ...], Ordering] = {}

    # ------------------------------------------------------------------

    def solve(self, thresholds: np.ndarray) -> CGGSResult:
        """Approximately optimal mixed strategy for fixed thresholds."""
        context = PolicyContext(self.game, self.scenarios, thresholds)
        master = MasterProblem(context, backend=self.backend)
        for ordering in self.seed_orderings:
            master.add_ordering(ordering)
        for ordering in self._pool.values():
            master.add_ordering(ordering)
        if master.n_columns == 0:
            master.add_ordering(
                random_ordering(self.game.n_types, self.rng)
            )

        fixed, lp_solution = master.solve()
        columns_generated = 0
        last_reduced_cost = 0.0
        converged = False
        while master.n_columns < self.max_columns:
            duals, _ = master.dual_prices(lp_solution)
            candidate = self._greedy_ordering(context, duals)
            last_reduced_cost = master.reduced_cost(lp_solution, candidate)
            if last_reduced_cost >= -self.reduced_cost_tol:
                converged = True
                break
            if not master.add_ordering(candidate):
                # The greedy oracle regenerated a known column: no further
                # progress is possible from these duals.
                converged = True
                break
            columns_generated += 1
            fixed, lp_solution = master.solve()
        self._refresh_pool(fixed)
        return CGGSResult(
            policy=fixed.policy.pruned(),
            objective=fixed.objective,
            lp_calls=fixed.lp_calls,
            n_columns=fixed.n_columns,
            adversary_utilities=fixed.adversary_utilities,
            columns_generated=columns_generated,
            final_reduced_cost=last_reduced_cost,
            converged=converged,
        )

    # ------------------------------------------------------------------

    def _refresh_pool(self, fixed: FixedThresholdSolution) -> None:
        """Keep the support of the latest solution in the warm-start pool."""
        if self.warm_start_pool <= 0:
            return
        support = fixed.policy.pruned()
        for ordering in support.orderings:
            self._pool[tuple(ordering)] = ordering
        while len(self._pool) > self.warm_start_pool:
            # Evict the oldest entries (dict preserves insertion order).
            self._pool.pop(next(iter(self._pool)))

    def _greedy_ordering(
        self, context: PolicyContext, duals: np.ndarray
    ) -> Ordering:
        """Algorithm 1, lines 4-7: grow the order one type at a time.

        The reduced cost of a column is
        ``-(sum_ev y_ev * Ua_o[e, v] + y_eq)`` with ``y_ev <= 0``; the
        convexity dual ``y_eq`` is a constant shift, so minimizing reduced
        cost means maximizing the dual-weighted utility score of the
        (partially built) ordering.
        """
        n_types = self.game.n_types
        prefix: tuple[int, ...] = ()
        remaining = set(range(n_types))
        while remaining:
            best_type = -1
            best_score = -np.inf
            for t in sorted(remaining):
                utilities = context.utilities(prefix + (t,))
                score = float(np.sum(duals * utilities))
                if score > best_score:
                    best_score = score
                    best_type = t
            prefix = prefix + (best_type,)
            remaining.discard(best_type)
        return Ordering(prefix)
