"""Solvers for the Optimal Auditing Problem.

* :mod:`repro.solvers.lp` — LP substrate (simplex-from-scratch + HiGHS).
* :mod:`repro.solvers.master` — the restricted master LP of eq. 5.
* :mod:`repro.solvers.enumeration` — exact master over all orderings.
* :mod:`repro.solvers.cggs` — Algorithm 1 (column generation).
* :mod:`repro.solvers.ishm` — Algorithm 2 (threshold shrink heuristic).
* :mod:`repro.solvers.bruteforce` — exact OAP on integer threshold grids.
* :mod:`repro.solvers.best_response` — attacker-side diagnostics.
"""

from .best_response import ResponseReport, deterrence_budget, response_report
from .bruteforce import (
    BruteForceResult,
    run_solve_optimal,
    solve_optimal,
    threshold_grid_size,
)
from .cggs import CGGSResult, CGGSSolver
from .enumeration import EnumerationSolver
from .ishm import (
    ISHMResult,
    iterative_shrink,
    make_fixed_solver,
    run_iterative_shrink,
)
from .master import (
    FixedThresholdSolution,
    MasterProblem,
    MasterSkeleton,
    PolicyContext,
)

__all__ = [
    "BruteForceResult",
    "CGGSResult",
    "CGGSSolver",
    "EnumerationSolver",
    "FixedThresholdSolution",
    "ISHMResult",
    "MasterProblem",
    "MasterSkeleton",
    "PolicyContext",
    "ResponseReport",
    "deterrence_budget",
    "iterative_shrink",
    "make_fixed_solver",
    "response_report",
    "run_iterative_shrink",
    "run_solve_optimal",
    "solve_optimal",
    "threshold_grid_size",
]
