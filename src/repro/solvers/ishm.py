"""Iterative Shrink Heuristic Method (Algorithm 2 of the paper).

ISHM searches the threshold space.  It starts from the "full coverage"
vector — ``b_t`` large enough that ``F_t(b_t / C_t) ~= 1`` (the per-type
support maxima times audit cost) — and repeatedly tries to *shrink*
subsets of thresholds by a ratio ``1 - i * eps``:

* ``lh`` is the size of the subset currently being shrunk (1, then 2, ...);
* for each shrink ratio (mild to severe), every size-``lh`` subset is
  probed; the best probe that improves the incumbent objective is applied
  permanently, and the search resets to ``lh = 1``;
* if a full sweep of ratios at some ``lh`` yields no improvement, ``lh``
  grows; the search stops once ``lh > |T|``.

Each probe costs one fixed-threshold master solve (enumeration for small
``|T|``, CGGS otherwise), which is exactly the quantity Table VII counts.

Two deliberate clarifications versus the pseudocode:

* **Quantization.**  Every threshold vector the paper reports is integral
  (``b_t`` is defined on N), even though the shrink multiplies by
  fractional ratios — e.g. 11 shrunk once at ``eps = 0.05`` appears as
  ``10``.  Fractional thresholds are also systematically wasteful here:
  with integer alert counts, ``min(b_t, Z_t C_t)`` consumes the fraction
  while the audit quota ``floor(b_t / C_t)`` ignores it, which flattens
  the search landscape into plateaus that trap the descent.  We therefore
  round shrunk entries to the nearest multiple of ``quantum`` (default 1)
  by default; pass ``quantize="none"`` for the literal continuous variant.
* **Initial incumbent.**  The paper initializes the incumbent to ``+inf``,
  so its first probe round is accepted even if it worsens the start.  We
  evaluate the starting vector first and require strict improvement,
  guaranteeing the returned objective is never worse than full coverage.
"""

from __future__ import annotations

import itertools
import math
import warnings
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.game import AuditGame
from ..core.policy import AuditPolicy
from ..distributions.joint import ScenarioSet
from .cggs import CGGSSolver
from .enumeration import EnumerationSolver
from .lp import available_backends
from .master import FixedThresholdSolution

__all__ = [
    "ISHMResult",
    "iterative_shrink",
    "make_fixed_solver",
    "run_iterative_shrink",
]

#: Use full ordering enumeration up to this many alert types.
ENUMERATION_TYPE_LIMIT = 5

_QUANTIZE_MODES = ("round", "floor", "none")

FixedSolver = Callable[[np.ndarray], FixedThresholdSolution]

#: Prices a ``(B, T)`` stack of threshold vectors, results in input
#: order.  ``FixedSolveCache.batch_solver`` builds these; a plain
#: :data:`FixedSolver` is adapted by mapping it over the rows.
BatchFixedSolver = Callable[[np.ndarray], "list[FixedThresholdSolution]"]


def make_fixed_solver(
    game: AuditGame,
    scenarios: ScenarioSet,
    method: str = "auto",
    backend: str = "scipy",
    rng: np.random.Generator | None = None,
    **kwargs,
) -> FixedSolver:
    """Factory for the inner fixed-threshold solver used by ISHM.

    ``method`` is ``"enumeration"``, ``"cggs"``, or ``"auto"`` (enumeration
    for at most :data:`ENUMERATION_TYPE_LIMIT` types, CGGS beyond).

    The backend name is validated here, *before* any solver is built —
    an ISHM run prices hundreds of vectors, so a typo'd backend should
    fail at configuration time with the available choices rather than
    deep inside the first master solve.
    """
    if backend not in available_backends():
        raise ValueError(
            f"unknown LP backend {backend!r}; "
            f"choose from {available_backends()}"
        )
    if method == "auto":
        method = (
            "enumeration"
            if game.n_types <= ENUMERATION_TYPE_LIMIT
            else "cggs"
        )
    if method == "enumeration":
        solver = EnumerationSolver(game, scenarios, backend=backend,
                                   **kwargs)
        return solver.solve
    if method == "cggs":
        solver = CGGSSolver(game, scenarios, backend=backend, rng=rng,
                            **kwargs)
        return solver.solve
    raise ValueError(
        f"unknown method {method!r}; use 'auto', 'enumeration' or 'cggs'"
    )


@dataclass(frozen=True)
class ISHMResult:
    """Outcome of one ISHM run.

    ``lp_calls`` counts fixed-threshold master solves — the paper's
    "number of threshold vectors checked" (Table VII); cache hits and
    probes identical to the incumbent are excluded.  ``history`` records
    ``(thresholds, objective)`` at every accepted improvement.
    """

    thresholds: np.ndarray
    objective: float
    policy: AuditPolicy
    solution: FixedThresholdSolution
    lp_calls: int
    step_size: float
    history: tuple[tuple[np.ndarray, float], ...] = field(
        default_factory=tuple
    )

    def quotas(self, costs: np.ndarray) -> np.ndarray:
        """``floor(b_t / C_t)`` — max alerts auditable per type."""
        return np.floor(self.thresholds / np.asarray(costs, dtype=float))


def _shrunk(
    current: np.ndarray,
    combo: tuple[int, ...],
    ratio: float,
    quantize: str,
    quantum: float,
) -> np.ndarray:
    """Apply one shrink probe (with optional quantization)."""
    probe = current.copy()
    idx = list(combo)
    probe[idx] *= ratio
    if quantize == "round":
        probe[idx] = np.round(probe[idx] / quantum) * quantum
    elif quantize == "floor":
        probe[idx] = np.floor(probe[idx] / quantum) * quantum
    return probe


def run_iterative_shrink(
    game: AuditGame,
    scenarios: ScenarioSet,
    step_size: float,
    solver: FixedSolver | None = None,
    initial_thresholds: Sequence[float] | None = None,
    improvement_tol: float = 1e-9,
    max_probes: int | None = None,
    quantize: str = "round",
    quantum: float = 1.0,
    batch_solver: BatchFixedSolver | None = None,
) -> ISHMResult:
    """Run Algorithm 2 and return the best threshold vector found.

    This is the raw implementation invoked by the ``"ishm"`` registry
    solver; prefer ``repro.engine.AuditEngine(game).solve("ishm", ...)``,
    which wraps it in the unified :class:`~repro.engine.SolveResult`
    contract and caches repeated fixed-threshold solves across sweeps.

    Parameters
    ----------
    game, scenarios:
        The audit game and the shared scenario set (common random numbers
        across all probes).
    step_size:
        The paper's ``eps`` in (0, 1); smaller steps explore more ratios.
    solver:
        Fixed-threshold master solver; defaults to
        ``make_fixed_solver(game, scenarios, "auto")``.
    initial_thresholds:
        Starting vector; defaults to the full-coverage upper bounds
        ``J_t * C_t``.
    improvement_tol:
        Minimum strict decrease of the objective to accept a shrink.
    max_probes:
        Optional hard cap on inner solves (None = faithful unbounded run).
    quantize, quantum:
        Rounding mode for shrunk thresholds (see module docstring).
    batch_solver:
        Batched fixed-threshold pricer (takes a ``(B, T)`` stack, returns
        solutions in input order).  When given, each probe round's
        candidate subset is priced as *one* batch — the engine passes
        :meth:`~repro.engine.cache.FixedSolveCache.batch_solver` here so
        rounds fan out over its worker pool.  The search visits exactly
        the same vectors in the same round structure as the serial path,
        so results (and ``lp_calls``) are identical.  Mutually exclusive
        with ``solver``.
    """
    if not 0.0 < step_size < 1.0:
        raise ValueError(f"step size must be in (0, 1), got {step_size}")
    if quantize not in _QUANTIZE_MODES:
        raise ValueError(
            f"quantize must be one of {_QUANTIZE_MODES}, got {quantize!r}"
        )
    if quantum <= 0:
        raise ValueError(f"quantum must be positive, got {quantum}")
    if batch_solver is None:
        base = solver if solver is not None else make_fixed_solver(
            game, scenarios
        )

        def batch_solver(vectors: np.ndarray):
            return [base(b) for b in vectors]

    elif solver is not None:
        raise ValueError(
            "pass either solver or batch_solver, not both"
        )

    n_types = game.n_types
    if initial_thresholds is None:
        current = game.threshold_upper_bounds().astype(np.float64)
    else:
        current = np.asarray(initial_thresholds, dtype=np.float64).copy()
        if current.shape != (n_types,):
            raise ValueError(
                f"initial thresholds must have shape ({n_types},)"
            )

    cache: dict[tuple[float, ...], FixedThresholdSolution] = {}

    lp_calls = 0

    def price_round(
        probes: list[np.ndarray],
    ) -> list[FixedThresholdSolution]:
        """Price one round of probes through the local memo as a batch."""
        nonlocal lp_calls
        keys = [tuple(np.round(p, 9).tolist()) for p in probes]
        fresh: dict[tuple[float, ...], np.ndarray] = {}
        for key, probe in zip(keys, probes, strict=True):
            if key not in cache and key not in fresh:
                fresh[key] = probe
        if fresh:
            solutions = batch_solver(np.stack(list(fresh.values())))
            for key, solution in zip(fresh, solutions, strict=True):
                cache[key] = solution
            lp_calls += len(fresh)
        return [cache[key] for key in keys]

    best_solution = price_round([current])[0]
    best_objective = best_solution.objective
    history: list[tuple[np.ndarray, float]] = [
        (current.copy(), best_objective)
    ]
    n_ratio_steps = math.ceil(1.0 / step_size)

    def exhausted() -> bool:
        return max_probes is not None and lp_calls >= max_probes

    lh = 1
    while lh <= n_types and not exhausted():
        combos = list(itertools.combinations(range(n_types), lh))
        progress = 0
        for i in range(1, n_ratio_steps + 1):
            ratio = max(0.0, 1.0 - i * step_size)
            round_best = math.inf
            round_probe: np.ndarray | None = None
            round_solution: FixedThresholdSolution | None = None
            # Collect the round's probes, replicating the serial budget
            # semantics: a probe costing a new solve is admitted only
            # while lp_calls (plus the new solves already admitted this
            # round) stays under max_probes; memo hits are free.
            probes: list[np.ndarray] = []
            fresh_keys: set[tuple[float, ...]] = set()
            for combo in combos:
                if (
                    max_probes is not None
                    and lp_calls + len(fresh_keys) >= max_probes
                ):
                    break
                probe = _shrunk(current, combo, ratio, quantize, quantum)
                if np.array_equal(probe, current):
                    continue  # quantized away: cannot strictly improve
                key = tuple(np.round(probe, 9).tolist())
                if key not in cache:
                    fresh_keys.add(key)
                probes.append(probe)
            for probe, candidate in zip(probes, price_round(probes), strict=True):
                if candidate.objective < round_best:
                    round_best = candidate.objective
                    round_probe = probe
                    round_solution = candidate
            if (
                round_probe is not None
                and round_best < best_objective - improvement_tol
            ):
                best_objective = round_best
                best_solution = round_solution
                current = round_probe
                history.append((current.copy(), best_objective))
                break  # restart the ratio sweep from the new incumbent
            progress = i
            if exhausted():
                break
        if progress == n_ratio_steps or exhausted():
            lh += 1
        else:
            lh = 1

    return ISHMResult(
        thresholds=current,
        objective=best_objective,
        policy=best_solution.policy,
        solution=best_solution,
        lp_calls=lp_calls,
        step_size=step_size,
        history=tuple(history),
    )


def iterative_shrink(
    game: AuditGame,
    scenarios: ScenarioSet,
    step_size: float,
    solver: FixedSolver | None = None,
    initial_thresholds: Sequence[float] | None = None,
    improvement_tol: float = 1e-9,
    max_probes: int | None = None,
    quantize: str = "round",
    quantum: float = 1.0,
) -> ISHMResult:
    """Deprecated free-function entry point for Algorithm 2.

    Delegates to the ``"ishm"`` solver of :mod:`repro.engine`'s registry
    and returns the native :class:`ISHMResult`.  Use
    ``AuditEngine(game).solve("ishm", ISHMConfig(step_size=...))`` (or
    ``repro.engine.solve``) instead; the engine additionally returns the
    unified :class:`~repro.engine.SolveResult` and caches scenario sets
    and fixed-threshold solutions across calls.
    """
    warnings.warn(
        "iterative_shrink() is deprecated; use "
        "repro.engine.AuditEngine(game).solve('ishm', ...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..engine import ISHMConfig, solve as engine_solve

    config = ISHMConfig(
        step_size=step_size,
        improvement_tol=improvement_tol,
        max_probes=max_probes,
        quantize=quantize,
        quantum=quantum,
        initial_thresholds=(
            None
            if initial_thresholds is None
            else tuple(float(b) for b in np.asarray(initial_thresholds))
        ),
    )
    result = engine_solve(
        game, scenarios, "ishm", config, fixed_solver=solver
    )
    return result.raw
