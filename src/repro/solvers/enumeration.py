"""Exact master solve by enumerating every alert-type ordering.

For small numbers of alert types (Syn A has 4, hence 24 orderings) the LP
of eq. 5 with fixed thresholds can be solved to optimality by including
all ``|T|!`` ordering columns — the paper's "solving the linear program to
optimality" reference point for Tables III-VII.

Since the full ordering set is priced for every threshold vector, the
detection kernels run through the subset-memoized
:class:`~repro.core.pal_table.PalTable` by default (``T * 2^(T-1)``
scenario sweeps per vector instead of ``T! * T``), and the scenario set
is :meth:`~repro.distributions.joint.ScenarioSet.compressed` once at
construction (Monte-Carlo draws over small integer supports repeat
heavily; identical rows are merged with aggregated weights).  Both are
exact rewrites of the same expectation — pass ``subset_table=False`` /
``compress=False`` to pin the legacy reference behavior.

Every solve also shares one *LP skeleton* per solver instance: the master
problems of different threshold vectors are structurally identical (same
game, same deduplicated row set, same ``|T|!`` columns), so the static
constraint blocks, objective and bounds are built once and only the
utility columns are filled per vector — the batch-pricing and parallel
worker paths (which memoize solver instances) inherit this for free.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.game import AuditGame
from ..core.kernels import resolve_kernel_backend
from ..core.pal_table import subset_table_pays
from ..core.policy import all_orderings
from ..distributions.joint import ScenarioSet
from .master import (
    FixedThresholdSolution,
    MasterProblem,
    MasterSkeleton,
    PolicyContext,
    batch_policy_contexts,
)

__all__ = ["EnumerationSolver", "DEFAULT_MAX_ORDERINGS"]

#: Refuse to enumerate beyond this many orderings by default (7! = 5040).
DEFAULT_MAX_ORDERINGS = 5040


class EnumerationSolver:
    """Solve the fixed-``b`` master over the complete ordering set ``O``.

    Parameters
    ----------
    subset_table:
        Price ordering columns from the subset-memoized table instead of
        one kernel walk per ordering.  ``None`` (default) auto-enables
        it whenever the table amortizes (every ``|T| >= 3`` game here,
        since the full ``|T|!`` set is always priced); the legacy walk
        remains available via ``False`` as the bitwise reference.
    kernel_backend:
        Compiled-kernel selection for the subset tables
        (``"auto"`` | ``"numba"`` | ``"numpy"``, see
        :mod:`repro.core.kernels`); all choices price bitwise
        identically.
    compress:
        Deduplicate identical scenario rows (weight-aggregating) once at
        construction.  Exactly-enumerated sets are duplicate-free and
        pass through untouched.
    prune:
        Drop dominated attack rows and ordering columns before each
        master solve (lossless — see
        :meth:`~repro.solvers.master.MasterProblem.solve`); off by
        default so cached solutions stay bit-for-bit comparable with
        earlier releases.
    """

    def __init__(
        self,
        game: AuditGame,
        scenarios: ScenarioSet,
        backend: str = "scipy",
        max_orderings: int = DEFAULT_MAX_ORDERINGS,
        subset_table: bool | None = None,
        kernel_backend: str = "auto",
        compress: bool = True,
        prune: bool = False,
    ) -> None:
        n_orderings = math.factorial(game.n_types)
        if n_orderings > max_orderings:
            raise ValueError(
                f"{game.n_types} alert types give {n_orderings} orderings "
                f"(> max_orderings={max_orderings}); use CGGSSolver instead"
            )
        self.game = game
        self.scenarios = scenarios.compressed() if compress else scenarios
        self.backend = backend
        self._orderings = all_orderings(game.n_types)
        if subset_table is None:
            subset_table = subset_table_pays(n_orderings, game.n_types)
        self.subset_table = bool(subset_table)
        self.kernel_backend = resolve_kernel_backend(kernel_backend)
        self.prune = bool(prune)
        # Shared across every solve of this instance: the deduplicated
        # LP rows depend only on the game, the skeleton additionally on
        # the (fixed) column count |T|!.
        self._rep_rows = PolicyContext.representative_rows_for(game)
        self._skeleton = MasterSkeleton(
            game, self._rep_rows[0], n_orderings
        )

    def solve(self, thresholds: np.ndarray) -> FixedThresholdSolution:
        """Optimal restricted-strategy-space mixed policy for ``b``."""
        return self._solve_context(
            PolicyContext(
                self.game,
                self.scenarios,
                thresholds,
                subset_table=self.subset_table,
                kernel_backend=self.kernel_backend,
                representative_rows=self._rep_rows,
            )
        )

    def solve_batch(
        self, thresholds_batch: np.ndarray
    ) -> list[FixedThresholdSolution]:
        """Price a ``(B, T)`` stack of threshold vectors in one pass.

        The detection kernels for all vectors are built batched (one
        subset table per vector, or one vectorized legacy sweep per
        ordering — matching whatever :meth:`solve` uses); the per-vector
        master LPs then run on the pre-warmed contexts, all sharing this
        solver's LP skeleton.  Results are returned in input order and
        are bit-for-bit identical to ``[solve(b) for b in batch]`` — the
        parallel pricing layer depends on that identity.
        """
        arr = np.asarray(thresholds_batch, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError(
                f"thresholds batch must be 2-D (B, T), got {arr.shape}"
            )
        if arr.shape[0] == 0:
            return []
        contexts = batch_policy_contexts(
            self.game,
            self.scenarios,
            arr,
            self._orderings,
            subset_table=self.subset_table,
            kernel_backend=self.kernel_backend,
            representative_rows=self._rep_rows,
        )
        return [self._solve_context(context) for context in contexts]

    def _solve_context(
        self, context: PolicyContext
    ) -> FixedThresholdSolution:
        master = MasterProblem(
            context, backend=self.backend, skeleton=self._skeleton
        )
        for ordering in self._orderings:
            master.add_ordering(ordering)
        fixed, _ = master.solve(prune=self.prune)
        return FixedThresholdSolution(
            policy=fixed.policy.pruned(),
            objective=fixed.objective,
            lp_calls=fixed.lp_calls,
            n_columns=fixed.n_columns,
            adversary_utilities=fixed.adversary_utilities,
        )
