"""Exact master solve by enumerating every alert-type ordering.

For small numbers of alert types (Syn A has 4, hence 24 orderings) the LP
of eq. 5 with fixed thresholds can be solved to optimality by including
all ``|T|!`` ordering columns — the paper's "solving the linear program to
optimality" reference point for Tables III-VII.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.game import AuditGame
from ..core.policy import all_orderings
from ..distributions.joint import ScenarioSet
from .master import FixedThresholdSolution, MasterProblem, PolicyContext

__all__ = ["EnumerationSolver", "DEFAULT_MAX_ORDERINGS"]

#: Refuse to enumerate beyond this many orderings by default (7! = 5040).
DEFAULT_MAX_ORDERINGS = 5040


class EnumerationSolver:
    """Solve the fixed-``b`` master over the complete ordering set ``O``."""

    def __init__(
        self,
        game: AuditGame,
        scenarios: ScenarioSet,
        backend: str = "scipy",
        max_orderings: int = DEFAULT_MAX_ORDERINGS,
    ) -> None:
        n_orderings = math.factorial(game.n_types)
        if n_orderings > max_orderings:
            raise ValueError(
                f"{game.n_types} alert types give {n_orderings} orderings "
                f"(> max_orderings={max_orderings}); use CGGSSolver instead"
            )
        self.game = game
        self.scenarios = scenarios
        self.backend = backend
        self._orderings = all_orderings(game.n_types)

    def solve(self, thresholds: np.ndarray) -> FixedThresholdSolution:
        """Optimal restricted-strategy-space mixed policy for ``b``."""
        context = PolicyContext(self.game, self.scenarios, thresholds)
        master = MasterProblem(context, backend=self.backend)
        for ordering in self._orderings:
            master.add_ordering(ordering)
        fixed, _ = master.solve()
        return FixedThresholdSolution(
            policy=fixed.policy.pruned(),
            objective=fixed.objective,
            lp_calls=fixed.lp_calls,
            n_columns=fixed.n_columns,
            adversary_utilities=fixed.adversary_utilities,
        )
