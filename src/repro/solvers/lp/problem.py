"""Linear-program containers shared by all LP backends.

A problem is stored in the common "scipy" general form::

    minimize     c' x
    subject to   A_ub x <= b_ub
                 A_eq x == b_eq
                 lo <= x <= hi   (per-variable bounds, None = unbounded)

Both backends return an :class:`LPSolution` carrying the primal solution
*and* the dual prices of the two constraint blocks; the column-generation
solver (:mod:`repro.solvers.cggs`) prices new orderings off those duals.

Dual sign convention (matching scipy's HiGHS ``marginals``): for a
minimization, duals of ``<=`` rows are ``<= 0`` and equality-row duals are
free; the reduced cost of a column ``a_j`` with objective coefficient
``c_j`` is ``c_j - y_ub' a_j^ub - y_eq' a_j^eq``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["BasisTag", "LinearProgram", "LPSolution", "LPStatus"]

#: One basic variable of a standard-form basis, named *semantically* so a
#: basis survives structural edits to the problem it came from.  Tags:
#: ``("x", j)`` original variable ``j`` (its positive part when split),
#: ``("neg", j)`` the negative part of a free variable, ``("s_ub", i)``
#: the slack of ``<=`` row ``i``, ``("s_bnd", j)`` the slack of variable
#: ``j``'s finite-upper-bound row, and ``("art_ub", i)`` / ``("art_eq",
#: i)`` / ``("art_bnd", j)`` the artificial of a (redundant) row.  Warm
#: starts remap these names onto the new problem's columns, so callers
#: that add columns (column generation) only need to renumber variable
#: indices — see :meth:`repro.solvers.master.MasterProblem.solve`.
BasisTag = tuple[str, int]


class LPStatus:
    """String constants for solver outcomes."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    NUMERICAL_ERROR = "numerical_error"


@dataclass(frozen=True)
class LinearProgram:
    """General-form LP data (dense numpy arrays)."""

    objective: np.ndarray
    a_ub: np.ndarray | None = None
    b_ub: np.ndarray | None = None
    a_eq: np.ndarray | None = None
    b_eq: np.ndarray | None = None
    bounds: tuple[tuple[float | None, float | None], ...] | None = None

    def __post_init__(self) -> None:
        c = np.asarray(self.objective, dtype=np.float64)
        if c.ndim != 1 or c.size == 0:
            raise ValueError("objective must be a non-empty vector")
        n = c.size
        object.__setattr__(self, "objective", c)

        def check_block(a, b, label):
            if a is None and b is None:
                return None, None
            if a is None or b is None:
                raise ValueError(f"{label}: matrix and rhs must come "
                                 "together")
            a = np.asarray(a, dtype=np.float64)
            b = np.asarray(b, dtype=np.float64)
            if a.ndim != 2 or a.shape[1] != n:
                raise ValueError(
                    f"{label} matrix must be (m, {n}), got {a.shape}"
                )
            if b.shape != (a.shape[0],):
                raise ValueError(
                    f"{label} rhs must be ({a.shape[0]},), got {b.shape}"
                )
            return a, b

        a_ub, b_ub = check_block(self.a_ub, self.b_ub, "A_ub")
        a_eq, b_eq = check_block(self.a_eq, self.b_eq, "A_eq")
        object.__setattr__(self, "a_ub", a_ub)
        object.__setattr__(self, "b_ub", b_ub)
        object.__setattr__(self, "a_eq", a_eq)
        object.__setattr__(self, "b_eq", b_eq)

        if self.bounds is None:
            bounds = tuple((0.0, None) for _ in range(n))
        else:
            bounds = tuple(self.bounds)
            if len(bounds) != n:
                raise ValueError(
                    f"need {n} bound pairs, got {len(bounds)}"
                )
            for lo, hi in bounds:
                if lo is not None and hi is not None and lo > hi:
                    raise ValueError(f"empty bound interval ({lo}, {hi})")
        object.__setattr__(self, "bounds", bounds)

    @property
    def n_variables(self) -> int:
        return int(self.objective.size)

    @property
    def n_ub_rows(self) -> int:
        return 0 if self.a_ub is None else int(self.a_ub.shape[0])

    @property
    def n_eq_rows(self) -> int:
        return 0 if self.a_eq is None else int(self.a_eq.shape[0])


@dataclass(frozen=True)
class LPSolution:
    """Primal/dual result of an LP solve.

    ``basis`` is the optimal basis in semantic :data:`BasisTag` form when
    the backend exposes one (the from-scratch simplex does; HiGHS via
    ``scipy.optimize.linprog`` does not), enabling warm-started re-solves
    of structurally related problems.
    """

    status: str
    x: np.ndarray | None = None
    objective_value: float | None = None
    dual_ub: np.ndarray | None = None
    dual_eq: np.ndarray | None = None
    iterations: int = 0
    message: str = ""
    basis: tuple[BasisTag, ...] | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status == LPStatus.OPTIMAL

    def require_optimal(self) -> "LPSolution":
        """Raise RuntimeError unless the solve reached optimality."""
        if not self.is_optimal:
            raise RuntimeError(
                f"LP solve failed with status {self.status!r}: "
                f"{self.message}"
            )
        return self

    def reduced_cost(
        self,
        column_objective: float,
        column_ub: Sequence[float] | np.ndarray | None = None,
        column_eq: Sequence[float] | np.ndarray | None = None,
    ) -> float:
        """Reduced cost of a candidate new column under the current duals."""
        value = float(column_objective)
        if column_ub is not None and self.dual_ub is not None:
            value -= float(
                np.dot(self.dual_ub, np.asarray(column_ub, dtype=float))
            )
        if column_eq is not None and self.dual_eq is not None:
            value -= float(
                np.dot(self.dual_eq, np.asarray(column_eq, dtype=float))
            )
        return value
