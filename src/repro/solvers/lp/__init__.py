"""LP substrate: problem containers, simplex-from-scratch, HiGHS adapter."""

from .backend import DEFAULT_BACKEND, available_backends, solve_lp
from .problem import LinearProgram, LPSolution, LPStatus
from .scipy_backend import solve_with_scipy
from .simplex import SimplexSolver, solve_with_simplex

__all__ = [
    "DEFAULT_BACKEND",
    "LPSolution",
    "LPStatus",
    "LinearProgram",
    "SimplexSolver",
    "available_backends",
    "solve_lp",
    "solve_with_scipy",
    "solve_with_simplex",
]
