"""LP substrate: problem containers, revised simplex, HiGHS adapter."""

from .backend import (
    DEFAULT_BACKEND,
    available_backends,
    solve_lp,
    supports_warm_start,
    warm_start_backends,
)
from .problem import BasisTag, LinearProgram, LPSolution, LPStatus
from .scipy_backend import solve_with_scipy
from .simplex import FACTORIZATIONS, SimplexSolver, solve_with_simplex

__all__ = [
    "BasisTag",
    "DEFAULT_BACKEND",
    "FACTORIZATIONS",
    "LPSolution",
    "LPStatus",
    "LinearProgram",
    "SimplexSolver",
    "available_backends",
    "solve_lp",
    "solve_with_scipy",
    "solve_with_simplex",
    "supports_warm_start",
    "warm_start_backends",
]
