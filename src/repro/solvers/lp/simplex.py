"""Dense two-phase primal simplex with dual extraction.

A from-scratch LP solver so the reproduction does not *require* an external
optimizer: the paper's master problem (eq. 5) and its duals — which drive
column generation — can be solved end to end with this module alone.  The
SciPy HiGHS backend remains the default for speed; the test suite
cross-validates the two on random LPs and on every master problem shape the
solvers emit.

Implementation notes
--------------------
* General-form problems are first normalized to standard form
  ``min c'x, Ax = b, x >= 0, b >= 0``: finite lower bounds are shifted out,
  free variables are split into positive/negative parts, finite upper
  bounds become extra ``<=`` rows, and ``<=`` rows receive slack variables.
* Phase 1 minimizes the sum of artificial variables from the all-artificial
  basis; phase 2 re-prices with the true objective.
* Pivoting uses Dantzig's rule with a Bland fallback after a degeneracy
  streak, guaranteeing termination.
* Duals are recovered as ``y = c_B' B^{-1}`` on the standard-form rows and
  mapped back through the row bookkeeping (sign flips from rhs negation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .problem import LinearProgram, LPSolution, LPStatus

__all__ = ["SimplexSolver", "solve_with_simplex"]

_EPS = 1e-9
_DEGENERACY_STREAK = 12


@dataclass
class _StandardForm:
    """Standard-form data plus the bookkeeping to map back."""

    a: np.ndarray            # (m, n_std)
    b: np.ndarray            # (m,) all >= 0
    c: np.ndarray            # (n_std,)
    row_sign: np.ndarray     # +1 / -1 per row (rhs negation flips duals)
    row_kind: list[str]      # "ub" | "eq" | "bound" per row
    row_index: list[int]     # index into the original ub/eq block
    # Original variable j maps to columns pos_col[j] (and neg_col[j] when
    # split); its value is shift[j] + x[pos] - x[neg].
    pos_col: np.ndarray
    neg_col: np.ndarray      # -1 when not split
    shift: np.ndarray
    flip: np.ndarray         # True when variable was mirrored (hi-only)


def _standardize(problem: LinearProgram) -> _StandardForm:
    n = problem.n_variables
    pos_col = np.zeros(n, dtype=np.int64)
    neg_col = np.full(n, -1, dtype=np.int64)
    shift = np.zeros(n)
    flip = np.zeros(n, dtype=bool)

    columns = 0
    bound_rows: list[tuple[int, float]] = []  # (std column, rhs)
    for j, (lo, hi) in enumerate(problem.bounds):
        lo_f = -np.inf if lo is None else float(lo)
        hi_f = np.inf if hi is None else float(hi)
        if np.isfinite(lo_f):
            # x = lo + x',  x' >= 0  (optionally x' <= hi - lo)
            pos_col[j] = columns
            shift[j] = lo_f
            columns += 1
            if np.isfinite(hi_f):
                bound_rows.append((pos_col[j], hi_f - lo_f))
        elif np.isfinite(hi_f):
            # x = hi - x',  x' >= 0  (mirrored variable)
            pos_col[j] = columns
            shift[j] = hi_f
            flip[j] = True
            columns += 1
        else:
            # Free: x = x+ - x-
            pos_col[j] = columns
            neg_col[j] = columns + 1
            columns += 2

    n_ub = problem.n_ub_rows
    n_eq = problem.n_eq_rows
    m = n_ub + n_eq + len(bound_rows)
    n_std = columns + n_ub + len(bound_rows)  # slacks for every <= row

    a = np.zeros((m, n_std))
    b = np.zeros(m)
    c = np.zeros(n_std)
    row_kind: list[str] = []
    row_index: list[int] = []

    def emit_variable_coeffs(row: np.ndarray, coeffs: np.ndarray) -> float:
        """Write original-variable coefficients; return rhs adjustment."""
        adjust = 0.0
        for j in range(n):
            coeff = coeffs[j]
            if coeff == 0.0:
                continue
            sign = -1.0 if flip[j] else 1.0
            row[pos_col[j]] += coeff * sign
            if neg_col[j] >= 0:
                row[neg_col[j]] -= coeff
            adjust += coeff * shift[j]
        return adjust

    slack = columns
    row = 0
    for i in range(n_ub):
        adjust = emit_variable_coeffs(a[row], problem.a_ub[i])
        a[row, slack] = 1.0
        slack += 1
        b[row] = problem.b_ub[i] - adjust
        row_kind.append("ub")
        row_index.append(i)
        row += 1
    for i in range(n_eq):
        adjust = emit_variable_coeffs(a[row], problem.a_eq[i])
        b[row] = problem.b_eq[i] - adjust
        row_kind.append("eq")
        row_index.append(i)
        row += 1
    for col, rhs in bound_rows:
        a[row, col] = 1.0
        a[row, slack] = 1.0
        slack += 1
        b[row] = rhs
        row_kind.append("bound")
        row_index.append(-1)
        row += 1

    # Objective in standard-form variables.
    for j in range(n):
        coeff = problem.objective[j]
        if coeff == 0.0:
            continue
        sign = -1.0 if flip[j] else 1.0
        c[pos_col[j]] += coeff * sign
        if neg_col[j] >= 0:
            c[neg_col[j]] -= coeff

    # Normalize rhs signs (phase 1 needs b >= 0).
    row_sign = np.ones(m)
    negative = b < 0
    a[negative] *= -1.0
    b[negative] *= -1.0
    row_sign[negative] = -1.0

    return _StandardForm(
        a=a,
        b=b,
        c=c,
        row_sign=row_sign,
        row_kind=row_kind,
        row_index=row_index,
        pos_col=pos_col,
        neg_col=neg_col,
        shift=shift,
        flip=flip,
    )


class SimplexSolver:
    """Two-phase tableau simplex for small/medium dense LPs."""

    def __init__(
        self, max_iterations: int = 20_000, tolerance: float = _EPS
    ) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    # ------------------------------------------------------------------

    def solve(self, problem: LinearProgram) -> LPSolution:
        """Solve a general-form LP; see module docstring for conventions."""
        std = _standardize(problem)
        m, n_std = std.a.shape

        if m == 0:
            return self._solve_unconstrained(problem, std)

        # Phase 1: artificial variables with identity basis.
        tableau = np.hstack([std.a, np.eye(m), std.b.reshape(-1, 1)])
        basis = list(range(n_std, n_std + m))
        phase1_cost = np.zeros(n_std + m)
        phase1_cost[n_std:] = 1.0

        status, iters1 = self._run_simplex(
            tableau, basis, phase1_cost, restrict_to=None
        )
        if status != LPStatus.OPTIMAL:
            return LPSolution(status=status, message="phase 1 failed")
        infeasibility = float(
            sum(tableau[r, -1] for r, col in enumerate(basis)
                if col >= n_std)
        )
        if infeasibility > 1e-7:
            return LPSolution(
                status=LPStatus.INFEASIBLE,
                iterations=iters1,
                message=f"phase-1 objective {infeasibility:.3e}",
            )
        self._drive_out_artificials(tableau, basis, n_std)

        # Phase 2 on the original columns only.
        phase2_cost = np.zeros(n_std + m)
        phase2_cost[:n_std] = std.c
        status, iters2 = self._run_simplex(
            tableau, basis, phase2_cost, restrict_to=n_std
        )
        if status != LPStatus.OPTIMAL:
            return LPSolution(
                status=status,
                iterations=iters1 + iters2,
                message="phase 2 failed",
            )

        x_std = np.zeros(n_std)
        for r, col in enumerate(basis):
            if col < n_std:
                x_std[col] = tableau[r, -1]

        x = self._recover_primal(problem, std, x_std)
        dual_ub, dual_eq = self._recover_duals(problem, std, basis)
        objective = float(problem.objective @ x)
        return LPSolution(
            status=LPStatus.OPTIMAL,
            x=x,
            objective_value=objective,
            dual_ub=dual_ub,
            dual_eq=dual_eq,
            iterations=iters1 + iters2,
        )

    # ------------------------------------------------------------------

    def _solve_unconstrained(
        self, problem: LinearProgram, std: _StandardForm
    ) -> LPSolution:
        """No rows at all: each variable optimizes independently."""
        x = np.zeros(problem.n_variables)
        for j, (lo, hi) in enumerate(problem.bounds):
            coeff = problem.objective[j]
            if coeff > 0:
                if lo is None:
                    return LPSolution(status=LPStatus.UNBOUNDED)
                x[j] = lo
            elif coeff < 0:
                if hi is None:
                    return LPSolution(status=LPStatus.UNBOUNDED)
                x[j] = hi
            else:
                x[j] = 0.0 if lo is None else lo
        return LPSolution(
            status=LPStatus.OPTIMAL,
            x=x,
            objective_value=float(problem.objective @ x),
            dual_ub=np.zeros(0),
            dual_eq=np.zeros(0),
        )

    def _run_simplex(
        self,
        tableau: np.ndarray,
        basis: list[int],
        cost: np.ndarray,
        restrict_to: int | None,
    ) -> tuple[str, int]:
        """Pivot until optimal/unbounded. Mutates tableau and basis."""
        m = tableau.shape[0]
        n_total = tableau.shape[1] - 1
        limit = restrict_to if restrict_to is not None else n_total
        degenerate_streak = 0
        for iteration in range(self.max_iterations):
            c_basis = cost[basis]
            # Reduced costs: c_j - c_B' B^{-1} A_j over the tableau form.
            reduced = cost[:limit] - c_basis @ tableau[:, :limit]
            use_bland = degenerate_streak >= _DEGENERACY_STREAK
            if use_bland:
                candidates = np.nonzero(reduced < -self.tolerance)[0]
                if candidates.size == 0:
                    return LPStatus.OPTIMAL, iteration
                entering = int(candidates[0])
            else:
                entering = int(np.argmin(reduced))
                if reduced[entering] >= -self.tolerance:
                    return LPStatus.OPTIMAL, iteration

            column = tableau[:, entering]
            positive = column > self.tolerance
            if not positive.any():
                return LPStatus.UNBOUNDED, iteration
            ratios = np.full(m, np.inf)
            ratios[positive] = tableau[positive, -1] / column[positive]
            if use_bland:
                best = np.min(ratios)
                tied = np.nonzero(ratios <= best + self.tolerance)[0]
                # Bland: leave the row whose basic variable has the
                # smallest index.
                leaving = int(min(tied, key=lambda r: basis[r]))
            else:
                leaving = int(np.argmin(ratios))
            if ratios[leaving] <= self.tolerance:
                degenerate_streak += 1
            else:
                degenerate_streak = 0

            self._pivot(tableau, leaving, entering)
            basis[leaving] = entering
        return LPStatus.ITERATION_LIMIT, self.max_iterations

    @staticmethod
    def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
        tableau[row] /= tableau[row, col]
        factors = tableau[:, col].copy()
        factors[row] = 0.0
        tableau -= np.outer(factors, tableau[row])

    def _drive_out_artificials(
        self, tableau: np.ndarray, basis: list[int], n_std: int
    ) -> None:
        """Pivot basic artificials (at value 0) onto structural columns."""
        for r, col in enumerate(list(basis)):
            if col < n_std:
                continue
            row = tableau[r, :n_std]
            pivot_candidates = np.nonzero(np.abs(row) > self.tolerance)[0]
            if pivot_candidates.size == 0:
                # Redundant row; leave the zero-valued artificial basic.
                continue
            entering = int(pivot_candidates[0])
            self._pivot(tableau, r, entering)
            basis[r] = entering

    def _recover_primal(
        self,
        problem: LinearProgram,
        std: _StandardForm,
        x_std: np.ndarray,
    ) -> np.ndarray:
        x = np.zeros(problem.n_variables)
        for j in range(problem.n_variables):
            value = x_std[std.pos_col[j]]
            if std.neg_col[j] >= 0:
                value -= x_std[std.neg_col[j]]
            if std.flip[j]:
                x[j] = std.shift[j] - value
            else:
                x[j] = std.shift[j] + value
        return x

    def _recover_duals(
        self,
        problem: LinearProgram,
        std: _StandardForm,
        basis: list[int],
    ) -> tuple[np.ndarray, np.ndarray]:
        """``y = c_B' B^{-1}`` on standard rows, mapped to original rows."""
        m, n_std = std.a.shape
        full = np.hstack([std.a, np.eye(m)])
        cost = np.zeros(n_std + m)
        cost[:n_std] = std.c
        basis_matrix = full[:, basis]
        c_basis = cost[basis]
        try:
            y = np.linalg.solve(basis_matrix.T, c_basis)
        except np.linalg.LinAlgError:
            y = np.linalg.lstsq(basis_matrix.T, c_basis, rcond=None)[0]
        y = y * std.row_sign  # undo rhs negation

        dual_ub = np.zeros(problem.n_ub_rows)
        dual_eq = np.zeros(problem.n_eq_rows)
        for row, (kind, idx) in enumerate(
            zip(std.row_kind, std.row_index)
        ):
            if kind == "ub":
                dual_ub[idx] = y[row]
            elif kind == "eq":
                dual_eq[idx] = y[row]
        # Convention: <=-row duals are non-positive at a minimum; clip
        # stray positive round-off.
        dual_ub = np.minimum(dual_ub, 0.0)
        return dual_ub, dual_eq


def solve_with_simplex(
    problem: LinearProgram,
    max_iterations: int = 20_000,
    tolerance: float = _EPS,
) -> LPSolution:
    """Module-level convenience wrapper around :class:`SimplexSolver`."""
    return SimplexSolver(max_iterations, tolerance).solve(problem)
