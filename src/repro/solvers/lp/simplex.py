"""Revised two-phase primal simplex with warm starts and dual extraction.

A from-scratch LP solver so the reproduction does not *require* an external
optimizer: the paper's master problem (eq. 5) and its duals — which drive
column generation — can be solved end to end with this module alone.  The
SciPy HiGHS backend remains the default for speed; the test suite
cross-validates the two on random LPs and on every master problem shape the
solvers emit.

Implementation notes
--------------------
* General-form problems are first normalized to standard form
  ``min c'x, Ax = b, x >= 0, b >= 0``: finite lower bounds are shifted out,
  free variables are split into positive/negative parts, finite upper
  bounds become extra ``<=`` rows, and ``<=`` rows receive slack variables.
* The core is a *revised* simplex over a pluggable **factorization
  engine**.  The historical dense engine maintains the basis inverse
  ``B^{-1}`` explicitly and updates it with the product-form (eta) rank-1
  elimination on every pivot.  The sparse engine never materializes
  ``B^{-1}`` at all: it holds a sparse LU factorization of the basis
  (``scipy.sparse.linalg.splu``) plus the eta vectors of the pivots since
  the last refactorization, and answers BTRAN/FTRAN with triangular
  solves through that product form.  Either engine refactorizes from
  scratch every ``refactor_every`` pivots to bound drift.  Selection is
  by the ``factorization`` knob (``"auto" | "dense" | "sparse"``);
  ``"auto"`` picks sparse only for large, sparse standardized matrices —
  exactly the restricted-master regime with 10^4+ scenario rows, where
  dense ``B^{-1}`` costs O(m^2) memory and O(m^3) refactorizations.
* **Warm starts**: :meth:`SimplexSolver.solve` accepts a starting basis in
  semantic :data:`~repro.solvers.lp.problem.BasisTag` form (as exposed by
  a previous solve's :attr:`LPSolution.basis`).  When the named columns
  still exist and the basis is nonsingular and primal feasible, phase 1
  is skipped entirely and phase 2 re-enters directly — exactly the
  column-generation case, where adding a column preserves primal
  feasibility of the old optimal basis.  Any defect (missing tag,
  singular basis, infeasible point) silently falls back to the cold
  two-phase path, so warm solves can never fail where cold ones succeed.
  Both engines implement the identical warm-start contract.
* Phase 1 minimizes the sum of artificial variables from the
  all-artificial basis; phase 2 re-prices with the true objective.
* Pivoting uses Dantzig's rule with a Bland fallback after a degeneracy
  streak, guaranteeing termination.  The pivot rules read only reduced
  costs and ratio tests, so they are engine-independent.
* **Path-independent extraction**: once a phase-2 run reports optimality,
  the primal point, objective and duals are recomputed from a *fresh*
  factorization of the final basis — the outputs depend only on
  ``(A, b, c, basis)``, never on the pivot path taken to reach it.  The
  extraction scheme is chosen by **problem size alone** (sparse LU above
  :data:`_SPARSE_MIN_ROWS` rows, dense LAPACK below), never by which
  engine ran the pivots; dense and sparse runs that terminate in the
  same basis therefore return bit-for-bit identical objective, primal
  and duals — the property the factorization-parity tests pin down, and
  the same property that makes warm and cold solves comparable.
* Duals are recovered as ``y = c_B' B^{-1}`` on the standard-form rows and
  mapped back through the row bookkeeping (sign flips from rhs negation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse as _sp
from scipy.sparse.linalg import splu as _splu

from ... import obs
from .problem import BasisTag, LinearProgram, LPSolution, LPStatus

__all__ = ["SimplexSolver", "solve_with_simplex", "FACTORIZATIONS"]

_EPS = 1e-9
_DEGENERACY_STREAK = 12
_REFACTOR_EVERY = 64
#: A warm basis whose point violates ``x_B >= 0`` by more than this is
#: rejected (fall back to cold phase 1) rather than repaired.
_WARM_FEAS_TOL = 1e-7

#: Accepted values of the ``factorization`` knob.
FACTORIZATIONS = ("auto", "dense", "sparse")

#: ``factorization="auto"`` considers the sparse engine only at or above
#: this many standard-form rows (below it, dense ``B^{-1}`` wins on
#: constant factors), and the size-keyed extraction switches to sparse LU
#: at the same threshold.
_SPARSE_MIN_ROWS = 512

#: ``factorization="auto"`` requires the standardized constraint matrix
#: to be at most this dense before picking the sparse engine.
_SPARSE_MAX_DENSITY = 0.25


@dataclass
class _StandardForm:
    """Standard-form data plus the bookkeeping to map back."""

    a: np.ndarray            # (m, n_std)
    b: np.ndarray            # (m,) all >= 0
    c: np.ndarray            # (n_std,)
    row_sign: np.ndarray     # +1 / -1 per row (rhs negation flips duals)
    row_kind: list[str]      # "ub" | "eq" | "bound" per row
    row_index: list[int]     # index into the original ub/eq block, or the
    #                          bounded variable j for "bound" rows
    # Original variable j maps to columns pos_col[j] (and neg_col[j] when
    # split); its value is shift[j] + x[pos] - x[neg].
    pos_col: np.ndarray
    neg_col: np.ndarray      # -1 when not split
    shift: np.ndarray
    flip: np.ndarray         # True when variable was mirrored (hi-only)
    col_tags: list[BasisTag]  # semantic name per standard-form column

    def row_tag(self, row: int) -> BasisTag:
        """Artificial-variable tag for a standard-form row."""
        return (f"art_{'bnd' if self.row_kind[row] == 'bound' else self.row_kind[row]}",
                self.row_index[row])


def _standardize(problem: LinearProgram) -> _StandardForm:
    n = problem.n_variables
    pos_col = np.zeros(n, dtype=np.int64)
    neg_col = np.full(n, -1, dtype=np.int64)
    shift = np.zeros(n)
    flip = np.zeros(n, dtype=bool)
    col_tags: list[BasisTag] = []

    columns = 0
    bound_rows: list[tuple[int, float, int]] = []  # (std column, rhs, j)
    for j, (lo, hi) in enumerate(problem.bounds):
        lo_f = -np.inf if lo is None else float(lo)
        hi_f = np.inf if hi is None else float(hi)
        if np.isfinite(lo_f):
            # x = lo + x',  x' >= 0  (optionally x' <= hi - lo)
            pos_col[j] = columns
            shift[j] = lo_f
            col_tags.append(("x", j))
            columns += 1
            if np.isfinite(hi_f):
                bound_rows.append((pos_col[j], hi_f - lo_f, j))
        elif np.isfinite(hi_f):
            # x = hi - x',  x' >= 0  (mirrored variable)
            pos_col[j] = columns
            shift[j] = hi_f
            flip[j] = True
            col_tags.append(("x", j))
            columns += 1
        else:
            # Free: x = x+ - x-
            pos_col[j] = columns
            neg_col[j] = columns + 1
            col_tags.append(("x", j))
            col_tags.append(("neg", j))
            columns += 2

    n_ub = problem.n_ub_rows
    n_eq = problem.n_eq_rows
    m = n_ub + n_eq + len(bound_rows)
    n_std = columns + n_ub + len(bound_rows)  # slacks for every <= row

    a = np.zeros((m, n_std))
    b = np.zeros(m)
    c = np.zeros(n_std)
    row_kind: list[str] = []
    row_index: list[int] = []

    # Vectorized coefficient emission: each variable j owns a distinct
    # positive column (pos_col is injective), so a whole block of rows
    # scatters in one fancy-index write; split (free) variables add the
    # negated copy into their negative columns.
    sign = np.where(flip, -1.0, 1.0)
    split = neg_col >= 0

    def emit_block(rows: slice, coeffs: np.ndarray) -> np.ndarray:
        """Write original-variable coefficients; return rhs adjustments."""
        a[rows, :][:, pos_col] = coeffs * sign
        if split.any():
            a[rows, :][:, neg_col[split]] = -coeffs[:, split]
        return coeffs @ shift

    if n_ub:
        block = slice(0, n_ub)
        adjust = emit_block(block, problem.a_ub)
        a[block, columns:columns + n_ub] = np.eye(n_ub)
        b[block] = problem.b_ub - adjust
        col_tags.extend(("s_ub", i) for i in range(n_ub))
        row_kind.extend(["ub"] * n_ub)
        row_index.extend(range(n_ub))
    if n_eq:
        block = slice(n_ub, n_ub + n_eq)
        adjust = emit_block(block, problem.a_eq)
        b[block] = problem.b_eq - adjust
        row_kind.extend(["eq"] * n_eq)
        row_index.extend(range(n_eq))
    row = n_ub + n_eq
    slack = columns + n_ub
    for col, rhs, j in bound_rows:
        a[row, col] = 1.0
        a[row, slack] = 1.0
        col_tags.append(("s_bnd", j))
        slack += 1
        b[row] = rhs
        row_kind.append("bound")
        row_index.append(j)
        row += 1

    # Objective in standard-form variables.
    c[pos_col] = problem.objective * sign
    if split.any():
        c[neg_col[split]] = -problem.objective[split]

    # Normalize rhs signs (phase 1 needs b >= 0).
    row_sign = np.ones(m)
    negative = b < 0
    a[negative] *= -1.0
    b[negative] *= -1.0
    row_sign[negative] = -1.0

    return _StandardForm(
        a=a,
        b=b,
        c=c,
        row_sign=row_sign,
        row_kind=row_kind,
        row_index=row_index,
        pos_col=pos_col,
        neg_col=neg_col,
        shift=shift,
        flip=flip,
        col_tags=col_tags,
    )


def _encode_basis(
    std: _StandardForm, basis: np.ndarray, n_std: int
) -> tuple[BasisTag, ...]:
    """Name each basic standard-form column semantically."""
    tags: list[BasisTag] = []
    for col in basis:
        if col < n_std:
            tags.append(std.col_tags[col])
        else:
            tags.append(std.row_tag(int(col) - n_std))
    return tuple(tags)


def _decode_basis(
    std: _StandardForm, tags: tuple[BasisTag, ...] | None
) -> np.ndarray | None:
    """Map semantic tags onto this problem's columns; None when stale."""
    if tags is None:
        return None
    m, n_std = std.a.shape
    if len(tags) != m:
        return None
    col_of = {tag: i for i, tag in enumerate(std.col_tags)}
    art_of = {std.row_tag(r): n_std + r for r in range(m)}
    cols: list[int] = []
    for tag in tags:
        tag = (tag[0], int(tag[1]))
        idx = col_of.get(tag)
        if idx is None:
            idx = art_of.get(tag)
        if idx is None:
            return None
        cols.append(idx)
    if len(set(cols)) != m:
        return None
    return np.asarray(cols, dtype=np.int64)


# ----------------------------------------------------------------------
# Factorization engines
# ----------------------------------------------------------------------
#
# An engine owns the factorization of the current basis of the working
# matrix ``[A | I]`` and answers the four kernel queries of the revised
# simplex: BTRAN (``y = c_B' B^{-1}``), pricing (``y' A``), FTRAN
# (``B^{-1} a_j``) and the per-pivot update.  ``xb`` stays with the
# caller; engines update it alongside their internal state so both
# engines apply the exact same arithmetic to the iterate.


class _DenseEngine:
    """Historical scheme: explicit ``B^{-1}`` with eta rank-1 updates.

    Every operation reproduces the original implementation verbatim, so
    the dense path is bit-for-bit the solver this module always was.
    """

    kind = "dense"

    def __init__(self, std: _StandardForm) -> None:
        m = std.a.shape[0]
        self.m = m
        # Structural columns followed by one artificial per row.
        self.full = np.hstack([std.a, np.eye(m)])
        self.n_cols = self.full.shape[1]
        self.binv: np.ndarray | None = None

    def start_identity(self) -> None:
        """Factorize the all-artificial (identity) basis."""
        self.binv = np.eye(self.m)

    def start_basis(self, basis: np.ndarray) -> None:
        """Factorize an arbitrary basis; raises ``LinAlgError`` if singular."""
        self.binv = np.linalg.inv(self.full[:, basis])

    def solve_b(self, b: np.ndarray) -> np.ndarray:
        return self.binv @ b

    def btran_cost(self, cost_basis: np.ndarray) -> np.ndarray:
        return cost_basis @ self.binv

    def price(self, y: np.ndarray, lim: int) -> np.ndarray:
        return y @ self.full[:, :lim]

    def ftran(self, j: int) -> np.ndarray:
        return self.binv @ self.full[:, j]

    def pilot_row(self, r: int, lim: int) -> np.ndarray:
        return self.binv[r] @ self.full[:, :lim]

    def pivot(
        self, direction: np.ndarray, row: int, xb: np.ndarray
    ) -> None:
        """Product-form (eta) update of ``B^{-1}`` and ``x_B``."""
        binv = self.binv
        pivot = direction[row]
        binv[row] /= pivot
        xb[row] /= pivot
        factors = direction.copy()
        factors[row] = 0.0
        binv -= np.outer(factors, binv[row])
        xb -= factors * xb[row]

    def refactorize(
        self, basis: np.ndarray, b: np.ndarray, xb: np.ndarray
    ) -> np.ndarray:
        """Fresh factorization of the basis, bounding eta-drift."""
        basis_matrix = self.full[:, basis]
        try:
            fresh = np.linalg.inv(basis_matrix)
        except np.linalg.LinAlgError:  # pragma: no cover - drift guard
            return xb  # keep the eta product; better than nothing
        fresh_xb = fresh @ b
        # A refactorized point can pick up tiny negative components the
        # eta chain had kept at exactly 0; clamp round-off only.
        if fresh_xb.min() < -_WARM_FEAS_TOL:  # pragma: no cover - guard
            return xb
        np.clip(fresh_xb, 0.0, None, out=fresh_xb)
        self.binv = fresh
        return fresh_xb

    def basis_dense(self, basis: np.ndarray) -> np.ndarray:
        return self.full[:, basis]

    def basis_csc(self, basis: np.ndarray) -> _sp.csc_matrix:
        return _sp.csc_matrix(self.full[:, basis])


class _SparseEngine:
    """Sparse LU basis with product-form updates; ``B^{-1}`` never exists.

    The basis is held as ``splu(B)`` plus the eta vectors of the pivots
    since the last refactorization: with ``B^{-1} = E_k ... E_1 B_0^{-1}``,
    FTRAN solves through ``B_0`` (two triangular solves) and applies the
    etas forward; BTRAN applies the transposed etas in reverse and solves
    ``B_0'`` — O(nnz + k*m) per query instead of the dense engine's
    O(m^2), with O(nnz) memory instead of O(m^2).
    """

    kind = "sparse"

    def __init__(self, std: _StandardForm) -> None:
        m, n_std = std.a.shape
        self.m = m
        self.n_std = n_std
        self.n_cols = n_std + m
        # The standardized matrix is the dense path's single source of
        # truth; converting it keeps every coefficient bit-identical.
        a_csc = _sp.csc_matrix(std.a)
        self.full_csc = _sp.hstack(
            [a_csc, _sp.identity(m, format="csc", dtype=np.float64)],
            format="csc",
        )
        # Pricing wants y' A for all structural columns at once: one CSR
        # matvec of the transpose.  Artificial columns are unit vectors,
        # so their prices are just y itself (see :meth:`price`).
        self.struct_t = a_csc.T.tocsr()
        self.lu = None
        self.etas: list[tuple[int, np.ndarray]] = []

    def start_identity(self) -> None:
        self.lu = _splu(
            _sp.identity(self.m, format="csc", dtype=np.float64)
        )
        self.etas.clear()

    def start_basis(self, basis: np.ndarray) -> None:
        try:
            self.lu = _splu(self.basis_csc(basis))
        except RuntimeError as exc:
            # splu signals a singular basis with RuntimeError; normalize
            # to the exception the warm-start fallback logic catches.
            raise np.linalg.LinAlgError(str(exc)) from exc
        self.etas.clear()

    def _apply_etas(self, x: np.ndarray) -> np.ndarray:
        """``x <- E_k ... E_1 x`` (forward FTRAN sweep, in place)."""
        for r, d in self.etas:
            piv = x[r] / d[r]
            x -= d * piv
            x[r] = piv
        return x

    def _btran(self, y: np.ndarray) -> np.ndarray:
        """``y' <- y' E_k ... E_1 B_0^{-1}`` (mutates its argument)."""
        for r, d in reversed(self.etas):
            # y' E for eta (r, d) changes only component r:
            # y_r <- y_r + (y_r - y.d) / d_r.
            y[r] = y[r] + (y[r] - y @ d) / d[r]
        return self.lu.solve(y, trans="T")

    def solve_b(self, b: np.ndarray) -> np.ndarray:
        return self._apply_etas(self.lu.solve(b))

    def btran_cost(self, cost_basis: np.ndarray) -> np.ndarray:
        return self._btran(np.array(cost_basis, dtype=np.float64))

    def price(self, y: np.ndarray, lim: int) -> np.ndarray:
        values = self.struct_t @ y
        if lim <= self.n_std:
            return values[:lim]
        return np.concatenate([values, y[: lim - self.n_std]])

    def column(self, j: int) -> np.ndarray:
        col = np.zeros(self.m)
        if j < self.n_std:
            csc = self.full_csc
            lo, hi = csc.indptr[j], csc.indptr[j + 1]
            col[csc.indices[lo:hi]] = csc.data[lo:hi]
        else:
            col[j - self.n_std] = 1.0
        return col

    def ftran(self, j: int) -> np.ndarray:
        return self._apply_etas(self.lu.solve(self.column(j)))

    def pilot_row(self, r: int, lim: int) -> np.ndarray:
        e = np.zeros(self.m)
        e[r] = 1.0
        return self.price(self._btran(e), lim)

    def pivot(
        self, direction: np.ndarray, row: int, xb: np.ndarray
    ) -> None:
        d = direction.copy()
        piv = xb[row] / d[row]
        xb -= d * piv
        xb[row] = piv
        self.etas.append((row, d))

    def refactorize(
        self, basis: np.ndarray, b: np.ndarray, xb: np.ndarray
    ) -> np.ndarray:
        try:
            lu = _splu(self.basis_csc(basis))
        except RuntimeError:  # pragma: no cover - drift guard
            return xb  # keep the eta product; better than nothing
        fresh_xb = lu.solve(b)
        if fresh_xb.min() < -_WARM_FEAS_TOL:  # pragma: no cover - guard
            return xb
        np.clip(fresh_xb, 0.0, None, out=fresh_xb)
        self.lu = lu
        self.etas.clear()
        return fresh_xb

    def basis_dense(self, basis: np.ndarray) -> np.ndarray:
        return self.full_csc[:, basis].toarray()

    def basis_csc(self, basis: np.ndarray) -> _sp.csc_matrix:
        return self.full_csc[:, basis].tocsc()


class SimplexSolver:
    """Revised two-phase simplex over pluggable basis factorizations."""

    def __init__(
        self,
        max_iterations: int = 20_000,
        tolerance: float = _EPS,
        refactor_every: int = _REFACTOR_EVERY,
        factorization: str = "auto",
    ) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        if refactor_every < 1:
            raise ValueError(
                f"refactor_every must be >= 1, got {refactor_every}"
            )
        self.refactor_every = refactor_every
        if factorization not in FACTORIZATIONS:
            raise ValueError(
                f"unknown factorization {factorization!r}; "
                f"choose from {FACTORIZATIONS}"
            )
        self.factorization = factorization
        # Refactorizations of the current solve, counted as a plain
        # attribute in the pivot loop and emitted as telemetry only at
        # the solve() boundary (RPL701: no obs calls in hot kernels).
        self._refactorizations = 0
        # Engine kind the last solve actually ran on (None for the
        # unconstrained short-circuit, which factorizes nothing).
        self._factorization_used: str | None = None

    # ------------------------------------------------------------------

    def solve(
        self,
        problem: LinearProgram,
        warm_basis: tuple[BasisTag, ...] | None = None,
    ) -> LPSolution:
        """Solve a general-form LP; see module docstring for conventions.

        ``warm_basis`` is a previous solve's :attr:`LPSolution.basis`
        (possibly renamed by the caller after structural edits); a valid,
        primal-feasible warm basis skips phase 1 entirely.
        """
        self._refactorizations = 0
        self._factorization_used = None
        solution = self._solve_impl(problem, warm_basis)
        obs.counter("repro_simplex_solves_total", status=solution.status)
        obs.counter(
            "repro_simplex_iterations_total", solution.iterations
        )
        obs.counter(
            "repro_simplex_refactorizations_total", self._refactorizations
        )
        if self._factorization_used is not None:
            obs.counter(
                "repro_simplex_factorization_total",
                kind=self._factorization_used,
            )
        return solution

    def _make_engine(
        self, std: _StandardForm
    ) -> _DenseEngine | _SparseEngine:
        """Pick the basis-factorization engine for this problem.

        ``"auto"`` goes sparse only when the standardized matrix is both
        large (``m >= _SPARSE_MIN_ROWS``) and sparse (density at most
        ``_SPARSE_MAX_DENSITY``) — the restricted-master regime where
        slack/structure columns dominate.  Small or dense problems keep
        the historical dense engine, whose per-pivot constant factors
        win there.
        """
        mode = self.factorization
        if mode == "auto":
            m = std.a.shape[0]
            if m >= _SPARSE_MIN_ROWS and std.a.size:
                density = np.count_nonzero(std.a) / std.a.size
                mode = (
                    "sparse" if density <= _SPARSE_MAX_DENSITY else "dense"
                )
            else:
                mode = "dense"
        return _SparseEngine(std) if mode == "sparse" else _DenseEngine(std)

    def _solve_impl(
        self,
        problem: LinearProgram,
        warm_basis: tuple[BasisTag, ...] | None = None,
    ) -> LPSolution:
        std = _standardize(problem)
        m, n_std = std.a.shape

        if m == 0:
            return self._solve_unconstrained(problem, std)

        engine = self._make_engine(std)
        self._factorization_used = engine.kind

        basis: np.ndarray | None = None
        xb: np.ndarray | None = None
        iters1 = 0
        if warm_basis is not None:
            basis = _decode_basis(std, tuple(warm_basis))
            if basis is not None:
                try:
                    engine.start_basis(basis)
                except np.linalg.LinAlgError:
                    basis = None
                else:
                    xb = engine.solve_b(std.b)
                    artificial = basis >= n_std
                    if xb.min() < -_WARM_FEAS_TOL:
                        basis = None  # infeasible start: cold-solve
                    elif (
                        artificial.any()
                        and xb[artificial].max() > _WARM_FEAS_TOL
                    ):
                        # A basic artificial at a *positive* value means
                        # the carried basis does not actually satisfy
                        # this problem's rows (e.g. the rhs changed):
                        # accepting it would skip phase 1's
                        # infeasibility check and report a
                        # constraint-violating point as optimal.
                        # Zero-valued artificials (redundant rows) are
                        # fine — the cold path produces those too.
                        basis = None
                    else:
                        np.clip(xb, 0.0, None, out=xb)

        if basis is None:
            # Phase 1: artificial variables with identity basis.
            basis = np.arange(n_std, n_std + m, dtype=np.int64)
            engine.start_identity()
            xb = std.b.copy()
            phase1_cost = np.zeros(n_std + m)
            phase1_cost[n_std:] = 1.0
            status, iters1, xb = self._iterate(
                engine, std.b, basis, xb, phase1_cost, limit=None
            )
            if status != LPStatus.OPTIMAL:
                return LPSolution(status=status, message="phase 1 failed")
            infeasibility = float(
                sum(xb[r] for r in range(m) if basis[r] >= n_std)
            )
            if infeasibility > 1e-7:
                return LPSolution(
                    status=LPStatus.INFEASIBLE,
                    iterations=iters1,
                    message=f"phase-1 objective {infeasibility:.3e}",
                )
            self._drive_out_artificials(engine, basis, xb, n_std)

        # Phase 2 on the original columns only.
        phase2_cost = np.zeros(n_std + m)
        phase2_cost[:n_std] = std.c
        status, iters2, xb = self._iterate(
            engine, std.b, basis, xb, phase2_cost, limit=n_std
        )
        if status != LPStatus.OPTIMAL:
            return LPSolution(
                status=status,
                iterations=iters1 + iters2,
                message="phase 2 failed",
            )

        # Path-independent extraction: everything below depends only on
        # the final basis, so warm and cold runs — and dense and sparse
        # runs — that agree on it return bitwise-identical solutions.
        xb, y = self._extract(engine, basis, std.b, phase2_cost[basis])
        x_std = np.zeros(n_std)
        for r in range(m):
            if basis[r] < n_std:
                x_std[basis[r]] = xb[r]

        x = self._recover_primal(problem, std, x_std)
        dual_ub, dual_eq = self._recover_duals(problem, std, y)
        objective = float(problem.objective @ x)
        return LPSolution(
            status=LPStatus.OPTIMAL,
            x=x,
            objective_value=objective,
            dual_ub=dual_ub,
            dual_eq=dual_eq,
            iterations=iters1 + iters2,
            basis=_encode_basis(std, basis, n_std),
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _extract(
        engine: _DenseEngine | _SparseEngine,
        basis: np.ndarray,
        b: np.ndarray,
        cost_basis: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(x_B, y)`` from a fresh factorization of the final basis.

        The scheme is keyed on the row count alone — sparse LU at or
        above :data:`_SPARSE_MIN_ROWS`, dense LAPACK below — never on
        which engine ran the pivots, so any two runs terminating in the
        same basis extract bit-for-bit identical results regardless of
        their pivot paths.
        """
        m = len(basis)
        if m >= _SPARSE_MIN_ROWS:
            try:
                lu = _splu(engine.basis_csc(basis))
            except RuntimeError:  # pragma: no cover - drift guard
                pass  # fall through to the dense extraction
            else:
                return lu.solve(b), lu.solve(
                    np.array(cost_basis, dtype=np.float64), trans="T"
                )
        basis_matrix = engine.basis_dense(basis)
        try:
            xb = np.linalg.solve(basis_matrix, b)
            y = np.linalg.solve(basis_matrix.T, cost_basis)
        except np.linalg.LinAlgError:  # pragma: no cover - drift guard
            xb = np.linalg.lstsq(basis_matrix, b, rcond=None)[0]
            y = np.linalg.lstsq(
                basis_matrix.T, cost_basis, rcond=None
            )[0]
        return xb, y

    def _solve_unconstrained(
        self, problem: LinearProgram, std: _StandardForm
    ) -> LPSolution:
        """No rows at all: each variable optimizes independently."""
        x = np.zeros(problem.n_variables)
        for j, (lo, hi) in enumerate(problem.bounds):
            coeff = problem.objective[j]
            if coeff > 0:
                if lo is None:
                    return LPSolution(status=LPStatus.UNBOUNDED)
                x[j] = lo
            elif coeff < 0:
                if hi is None:
                    return LPSolution(status=LPStatus.UNBOUNDED)
                x[j] = hi
            else:
                x[j] = 0.0 if lo is None else lo
        return LPSolution(
            status=LPStatus.OPTIMAL,
            x=x,
            objective_value=float(problem.objective @ x),
            dual_ub=np.zeros(0),
            dual_eq=np.zeros(0),
            basis=(),
        )

    def _iterate(
        self,
        engine: _DenseEngine | _SparseEngine,
        b: np.ndarray,
        basis: np.ndarray,
        xb: np.ndarray,
        cost: np.ndarray,
        limit: int | None,
    ) -> tuple[str, int, np.ndarray]:
        """Revised-simplex pivots until optimal/unbounded.

        Mutates ``basis`` (and the engine's factorization state) in
        place; returns the (possibly refactorized) ``xb`` alongside the
        status and iteration count.
        """
        m = engine.m
        lim = limit if limit is not None else engine.n_cols
        degenerate_streak = 0
        since_refactor = 0
        just_refreshed = False
        for iteration in range(self.max_iterations):
            y = engine.btran_cost(cost[basis])
            reduced = cost[:lim] - engine.price(y, lim)
            use_bland = degenerate_streak >= _DEGENERACY_STREAK
            if use_bland:
                candidates = np.nonzero(reduced < -self.tolerance)[0]
                if candidates.size == 0:
                    return LPStatus.OPTIMAL, iteration, xb
                entering = int(candidates[0])
            else:
                entering = int(np.argmin(reduced))
                if reduced[entering] >= -self.tolerance:
                    return LPStatus.OPTIMAL, iteration, xb

            direction = engine.ftran(entering)
            positive = direction > self.tolerance
            if not positive.any():
                # A column that prices negative yet has no positive
                # direction entries is usually eta-chain noise (a
                # near-basic column after many updates), not genuine
                # unboundedness.  Re-price once against a fresh
                # factorization before concluding.
                if not just_refreshed:
                    xb = self._refresh(engine, basis, b, xb)
                    just_refreshed = True
                    since_refactor = 0
                    continue
                return LPStatus.UNBOUNDED, iteration, xb
            just_refreshed = False
            ratios = np.full(m, np.inf)
            ratios[positive] = xb[positive] / direction[positive]
            if use_bland:
                best = np.min(ratios)
                tied = np.nonzero(ratios <= best + self.tolerance)[0]
                # Bland: leave the row whose basic variable has the
                # smallest index.
                leaving = int(min(tied, key=lambda r: basis[r]))
            else:
                leaving = int(np.argmin(ratios))
            if ratios[leaving] <= self.tolerance:
                degenerate_streak += 1
            else:
                degenerate_streak = 0

            engine.pivot(direction, leaving, xb)
            basis[leaving] = entering
            since_refactor += 1
            if since_refactor >= self.refactor_every:
                xb = self._refresh(engine, basis, b, xb)
                since_refactor = 0
        return LPStatus.ITERATION_LIMIT, self.max_iterations, xb

    def _refresh(
        self,
        engine: _DenseEngine | _SparseEngine,
        basis: np.ndarray,
        b: np.ndarray,
        xb: np.ndarray,
    ) -> np.ndarray:
        """Refactorize through the engine (counted at the solve boundary)."""
        self._refactorizations += 1
        return engine.refactorize(basis, b, xb)

    def _drive_out_artificials(
        self,
        engine: _DenseEngine | _SparseEngine,
        basis: np.ndarray,
        xb: np.ndarray,
        n_std: int,
    ) -> None:
        """Pivot basic artificials (at value 0) onto structural columns."""
        for r in range(len(basis)):
            if basis[r] < n_std:
                continue
            row = engine.pilot_row(r, n_std)
            pivot_candidates = np.nonzero(
                np.abs(row) > self.tolerance
            )[0]
            if pivot_candidates.size == 0:
                # Redundant row; leave the zero-valued artificial basic.
                continue
            entering = int(pivot_candidates[0])
            direction = engine.ftran(entering)
            engine.pivot(direction, r, xb)
            basis[r] = entering

    def _recover_primal(
        self,
        problem: LinearProgram,
        std: _StandardForm,
        x_std: np.ndarray,
    ) -> np.ndarray:
        x = np.zeros(problem.n_variables)
        for j in range(problem.n_variables):
            value = x_std[std.pos_col[j]]
            if std.neg_col[j] >= 0:
                value -= x_std[std.neg_col[j]]
            if std.flip[j]:
                x[j] = std.shift[j] - value
            else:
                x[j] = std.shift[j] + value
        return x

    def _recover_duals(
        self,
        problem: LinearProgram,
        std: _StandardForm,
        y: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``y = c_B' B^{-1}`` on standard rows, mapped to original rows."""
        y = y * std.row_sign  # undo rhs negation

        dual_ub = np.zeros(problem.n_ub_rows)
        dual_eq = np.zeros(problem.n_eq_rows)
        for row, (kind, idx) in enumerate(
            zip(std.row_kind, std.row_index, strict=True)
        ):
            if kind == "ub":
                dual_ub[idx] = y[row]
            elif kind == "eq":
                dual_eq[idx] = y[row]
        # Convention: <=-row duals are non-positive at a minimum; clip
        # stray positive round-off.
        dual_ub = np.minimum(dual_ub, 0.0)
        return dual_ub, dual_eq


def solve_with_simplex(
    problem: LinearProgram,
    max_iterations: int = 20_000,
    tolerance: float = _EPS,
    warm_basis: tuple[BasisTag, ...] | None = None,
    factorization: str = "auto",
) -> LPSolution:
    """Module-level convenience wrapper around :class:`SimplexSolver`."""
    return SimplexSolver(
        max_iterations, tolerance, factorization=factorization
    ).solve(problem, warm_basis=warm_basis)
