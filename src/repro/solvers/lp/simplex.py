"""Revised two-phase primal simplex with warm starts and dual extraction.

A from-scratch LP solver so the reproduction does not *require* an external
optimizer: the paper's master problem (eq. 5) and its duals — which drive
column generation — can be solved end to end with this module alone.  The
SciPy HiGHS backend remains the default for speed; the test suite
cross-validates the two on random LPs and on every master problem shape the
solvers emit.

Implementation notes
--------------------
* General-form problems are first normalized to standard form
  ``min c'x, Ax = b, x >= 0, b >= 0``: finite lower bounds are shifted out,
  free variables are split into positive/negative parts, finite upper
  bounds become extra ``<=`` rows, and ``<=`` rows receive slack variables.
* The core is a *revised* simplex: instead of carrying the full dense
  tableau, it maintains the basis inverse ``B^{-1}`` and updates it with
  the product-form (eta) rank-1 elimination on every pivot, refactorizing
  from scratch (LU via ``numpy.linalg``) every ``refactor_every`` pivots
  to bound drift.  Per iteration this prices all columns against the
  dual vector ``y = c_B' B^{-1}`` — the classic trade that makes re-solves
  of column-generation masters cheap.
* **Warm starts**: :meth:`SimplexSolver.solve` accepts a starting basis in
  semantic :data:`~repro.solvers.lp.problem.BasisTag` form (as exposed by
  a previous solve's :attr:`LPSolution.basis`).  When the named columns
  still exist and the basis is nonsingular and primal feasible, phase 1
  is skipped entirely and phase 2 re-enters directly — exactly the
  column-generation case, where adding a column preserves primal
  feasibility of the old optimal basis.  Any defect (missing tag,
  singular basis, infeasible point) silently falls back to the cold
  two-phase path, so warm solves can never fail where cold ones succeed.
* Phase 1 minimizes the sum of artificial variables from the
  all-artificial basis; phase 2 re-prices with the true objective.
* Pivoting uses Dantzig's rule with a Bland fallback after a degeneracy
  streak, guaranteeing termination.
* **Path-independent extraction**: once a phase-2 run reports optimality,
  the primal point, objective and duals are recomputed from a *fresh*
  factorization of the final basis — the outputs depend only on
  ``(A, b, c, basis)``, never on the pivot path taken to reach it.  Warm
  and cold solves that terminate in the same basis therefore return
  bit-for-bit identical results; this is the property the master-problem
  warm-start equivalence tests pin down.
* Duals are recovered as ``y = c_B' B^{-1}`` on the standard-form rows and
  mapped back through the row bookkeeping (sign flips from rhs negation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ... import obs
from .problem import BasisTag, LinearProgram, LPSolution, LPStatus

__all__ = ["SimplexSolver", "solve_with_simplex"]

_EPS = 1e-9
_DEGENERACY_STREAK = 12
_REFACTOR_EVERY = 64
#: A warm basis whose point violates ``x_B >= 0`` by more than this is
#: rejected (fall back to cold phase 1) rather than repaired.
_WARM_FEAS_TOL = 1e-7


@dataclass
class _StandardForm:
    """Standard-form data plus the bookkeeping to map back."""

    a: np.ndarray            # (m, n_std)
    b: np.ndarray            # (m,) all >= 0
    c: np.ndarray            # (n_std,)
    row_sign: np.ndarray     # +1 / -1 per row (rhs negation flips duals)
    row_kind: list[str]      # "ub" | "eq" | "bound" per row
    row_index: list[int]     # index into the original ub/eq block, or the
    #                          bounded variable j for "bound" rows
    # Original variable j maps to columns pos_col[j] (and neg_col[j] when
    # split); its value is shift[j] + x[pos] - x[neg].
    pos_col: np.ndarray
    neg_col: np.ndarray      # -1 when not split
    shift: np.ndarray
    flip: np.ndarray         # True when variable was mirrored (hi-only)
    col_tags: list[BasisTag]  # semantic name per standard-form column

    def row_tag(self, row: int) -> BasisTag:
        """Artificial-variable tag for a standard-form row."""
        return (f"art_{'bnd' if self.row_kind[row] == 'bound' else self.row_kind[row]}",
                self.row_index[row])


def _standardize(problem: LinearProgram) -> _StandardForm:
    n = problem.n_variables
    pos_col = np.zeros(n, dtype=np.int64)
    neg_col = np.full(n, -1, dtype=np.int64)
    shift = np.zeros(n)
    flip = np.zeros(n, dtype=bool)
    col_tags: list[BasisTag] = []

    columns = 0
    bound_rows: list[tuple[int, float, int]] = []  # (std column, rhs, j)
    for j, (lo, hi) in enumerate(problem.bounds):
        lo_f = -np.inf if lo is None else float(lo)
        hi_f = np.inf if hi is None else float(hi)
        if np.isfinite(lo_f):
            # x = lo + x',  x' >= 0  (optionally x' <= hi - lo)
            pos_col[j] = columns
            shift[j] = lo_f
            col_tags.append(("x", j))
            columns += 1
            if np.isfinite(hi_f):
                bound_rows.append((pos_col[j], hi_f - lo_f, j))
        elif np.isfinite(hi_f):
            # x = hi - x',  x' >= 0  (mirrored variable)
            pos_col[j] = columns
            shift[j] = hi_f
            flip[j] = True
            col_tags.append(("x", j))
            columns += 1
        else:
            # Free: x = x+ - x-
            pos_col[j] = columns
            neg_col[j] = columns + 1
            col_tags.append(("x", j))
            col_tags.append(("neg", j))
            columns += 2

    n_ub = problem.n_ub_rows
    n_eq = problem.n_eq_rows
    m = n_ub + n_eq + len(bound_rows)
    n_std = columns + n_ub + len(bound_rows)  # slacks for every <= row

    a = np.zeros((m, n_std))
    b = np.zeros(m)
    c = np.zeros(n_std)
    row_kind: list[str] = []
    row_index: list[int] = []

    # Vectorized coefficient emission: each variable j owns a distinct
    # positive column (pos_col is injective), so a whole block of rows
    # scatters in one fancy-index write; split (free) variables add the
    # negated copy into their negative columns.
    sign = np.where(flip, -1.0, 1.0)
    split = neg_col >= 0

    def emit_block(rows: slice, coeffs: np.ndarray) -> np.ndarray:
        """Write original-variable coefficients; return rhs adjustments."""
        a[rows, :][:, pos_col] = coeffs * sign
        if split.any():
            a[rows, :][:, neg_col[split]] = -coeffs[:, split]
        return coeffs @ shift

    if n_ub:
        block = slice(0, n_ub)
        adjust = emit_block(block, problem.a_ub)
        a[block, columns:columns + n_ub] = np.eye(n_ub)
        b[block] = problem.b_ub - adjust
        col_tags.extend(("s_ub", i) for i in range(n_ub))
        row_kind.extend(["ub"] * n_ub)
        row_index.extend(range(n_ub))
    if n_eq:
        block = slice(n_ub, n_ub + n_eq)
        adjust = emit_block(block, problem.a_eq)
        b[block] = problem.b_eq - adjust
        row_kind.extend(["eq"] * n_eq)
        row_index.extend(range(n_eq))
    row = n_ub + n_eq
    slack = columns + n_ub
    for col, rhs, j in bound_rows:
        a[row, col] = 1.0
        a[row, slack] = 1.0
        col_tags.append(("s_bnd", j))
        slack += 1
        b[row] = rhs
        row_kind.append("bound")
        row_index.append(j)
        row += 1

    # Objective in standard-form variables.
    c[pos_col] = problem.objective * sign
    if split.any():
        c[neg_col[split]] = -problem.objective[split]

    # Normalize rhs signs (phase 1 needs b >= 0).
    row_sign = np.ones(m)
    negative = b < 0
    a[negative] *= -1.0
    b[negative] *= -1.0
    row_sign[negative] = -1.0

    return _StandardForm(
        a=a,
        b=b,
        c=c,
        row_sign=row_sign,
        row_kind=row_kind,
        row_index=row_index,
        pos_col=pos_col,
        neg_col=neg_col,
        shift=shift,
        flip=flip,
        col_tags=col_tags,
    )


def _encode_basis(
    std: _StandardForm, basis: np.ndarray, n_std: int
) -> tuple[BasisTag, ...]:
    """Name each basic standard-form column semantically."""
    tags: list[BasisTag] = []
    for col in basis:
        if col < n_std:
            tags.append(std.col_tags[col])
        else:
            tags.append(std.row_tag(int(col) - n_std))
    return tuple(tags)


def _decode_basis(
    std: _StandardForm, tags: tuple[BasisTag, ...] | None
) -> np.ndarray | None:
    """Map semantic tags onto this problem's columns; None when stale."""
    if tags is None:
        return None
    m, n_std = std.a.shape
    if len(tags) != m:
        return None
    col_of = {tag: i for i, tag in enumerate(std.col_tags)}
    art_of = {std.row_tag(r): n_std + r for r in range(m)}
    cols: list[int] = []
    for tag in tags:
        tag = (tag[0], int(tag[1]))
        idx = col_of.get(tag)
        if idx is None:
            idx = art_of.get(tag)
        if idx is None:
            return None
        cols.append(idx)
    if len(set(cols)) != m:
        return None
    return np.asarray(cols, dtype=np.int64)


class SimplexSolver:
    """Revised two-phase simplex for small/medium dense LPs."""

    def __init__(
        self,
        max_iterations: int = 20_000,
        tolerance: float = _EPS,
        refactor_every: int = _REFACTOR_EVERY,
    ) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        if refactor_every < 1:
            raise ValueError(
                f"refactor_every must be >= 1, got {refactor_every}"
            )
        self.refactor_every = refactor_every
        # Refactorizations of the current solve, counted as a plain
        # attribute in the pivot loop and emitted as telemetry only at
        # the solve() boundary (RPL701: no obs calls in hot kernels).
        self._refactorizations = 0

    # ------------------------------------------------------------------

    def solve(
        self,
        problem: LinearProgram,
        warm_basis: tuple[BasisTag, ...] | None = None,
    ) -> LPSolution:
        """Solve a general-form LP; see module docstring for conventions.

        ``warm_basis`` is a previous solve's :attr:`LPSolution.basis`
        (possibly renamed by the caller after structural edits); a valid,
        primal-feasible warm basis skips phase 1 entirely.
        """
        self._refactorizations = 0
        solution = self._solve_impl(problem, warm_basis)
        obs.counter("repro_simplex_solves_total", status=solution.status)
        obs.counter(
            "repro_simplex_iterations_total", solution.iterations
        )
        obs.counter(
            "repro_simplex_refactorizations_total", self._refactorizations
        )
        return solution

    def _solve_impl(
        self,
        problem: LinearProgram,
        warm_basis: tuple[BasisTag, ...] | None = None,
    ) -> LPSolution:
        std = _standardize(problem)
        m, n_std = std.a.shape

        if m == 0:
            return self._solve_unconstrained(problem, std)

        # Structural columns followed by one artificial per row.
        full = np.hstack([std.a, np.eye(m)])

        basis: np.ndarray | None = None
        binv: np.ndarray | None = None
        xb: np.ndarray | None = None
        iters1 = 0
        if warm_basis is not None:
            basis = _decode_basis(std, tuple(warm_basis))
            if basis is not None:
                try:
                    binv = np.linalg.inv(full[:, basis])
                except np.linalg.LinAlgError:
                    basis = None
                else:
                    xb = binv @ std.b
                    artificial = basis >= n_std
                    if xb.min() < -_WARM_FEAS_TOL:
                        basis = None  # infeasible start: cold-solve
                    elif (
                        artificial.any()
                        and xb[artificial].max() > _WARM_FEAS_TOL
                    ):
                        # A basic artificial at a *positive* value means
                        # the carried basis does not actually satisfy
                        # this problem's rows (e.g. the rhs changed):
                        # accepting it would skip phase 1's
                        # infeasibility check and report a
                        # constraint-violating point as optimal.
                        # Zero-valued artificials (redundant rows) are
                        # fine — the cold path produces those too.
                        basis = None
                    else:
                        np.clip(xb, 0.0, None, out=xb)

        if basis is None:
            # Phase 1: artificial variables with identity basis.
            basis = np.arange(n_std, n_std + m, dtype=np.int64)
            binv = np.eye(m)
            xb = std.b.copy()
            phase1_cost = np.zeros(n_std + m)
            phase1_cost[n_std:] = 1.0
            status, iters1, binv, xb = self._iterate(
                full, std.b, basis, binv, xb, phase1_cost, limit=None
            )
            if status != LPStatus.OPTIMAL:
                return LPSolution(status=status, message="phase 1 failed")
            infeasibility = float(
                sum(xb[r] for r in range(m) if basis[r] >= n_std)
            )
            if infeasibility > 1e-7:
                return LPSolution(
                    status=LPStatus.INFEASIBLE,
                    iterations=iters1,
                    message=f"phase-1 objective {infeasibility:.3e}",
                )
            self._drive_out_artificials(full, basis, binv, xb, n_std)

        # Phase 2 on the original columns only.
        phase2_cost = np.zeros(n_std + m)
        phase2_cost[:n_std] = std.c
        status, iters2, binv, xb = self._iterate(
            full, std.b, basis, binv, xb, phase2_cost, limit=n_std
        )
        if status != LPStatus.OPTIMAL:
            return LPSolution(
                status=status,
                iterations=iters1 + iters2,
                message="phase 2 failed",
            )

        # Path-independent extraction: everything below depends only on
        # the final basis, so warm and cold runs that agree on it return
        # bitwise-identical solutions.
        basis_matrix = full[:, basis]
        try:
            xb = np.linalg.solve(basis_matrix, std.b)
            y = np.linalg.solve(basis_matrix.T, phase2_cost[basis])
        except np.linalg.LinAlgError:  # pragma: no cover - drift guard
            xb = np.linalg.lstsq(basis_matrix, std.b, rcond=None)[0]
            y = np.linalg.lstsq(
                basis_matrix.T, phase2_cost[basis], rcond=None
            )[0]
        x_std = np.zeros(n_std)
        for r in range(m):
            if basis[r] < n_std:
                x_std[basis[r]] = xb[r]

        x = self._recover_primal(problem, std, x_std)
        dual_ub, dual_eq = self._recover_duals(problem, std, y)
        objective = float(problem.objective @ x)
        return LPSolution(
            status=LPStatus.OPTIMAL,
            x=x,
            objective_value=objective,
            dual_ub=dual_ub,
            dual_eq=dual_eq,
            iterations=iters1 + iters2,
            basis=_encode_basis(std, basis, n_std),
        )

    # ------------------------------------------------------------------

    def _solve_unconstrained(
        self, problem: LinearProgram, std: _StandardForm
    ) -> LPSolution:
        """No rows at all: each variable optimizes independently."""
        x = np.zeros(problem.n_variables)
        for j, (lo, hi) in enumerate(problem.bounds):
            coeff = problem.objective[j]
            if coeff > 0:
                if lo is None:
                    return LPSolution(status=LPStatus.UNBOUNDED)
                x[j] = lo
            elif coeff < 0:
                if hi is None:
                    return LPSolution(status=LPStatus.UNBOUNDED)
                x[j] = hi
            else:
                x[j] = 0.0 if lo is None else lo
        return LPSolution(
            status=LPStatus.OPTIMAL,
            x=x,
            objective_value=float(problem.objective @ x),
            dual_ub=np.zeros(0),
            dual_eq=np.zeros(0),
            basis=(),
        )

    def _iterate(
        self,
        full: np.ndarray,
        b: np.ndarray,
        basis: np.ndarray,
        binv: np.ndarray,
        xb: np.ndarray,
        cost: np.ndarray,
        limit: int | None,
    ) -> tuple[str, int, np.ndarray, np.ndarray]:
        """Revised-simplex pivots until optimal/unbounded.

        Mutates ``basis`` in place; returns the (possibly refactorized)
        ``binv`` and ``xb`` alongside the status and iteration count.
        """
        m = full.shape[0]
        lim = limit if limit is not None else full.shape[1]
        degenerate_streak = 0
        since_refactor = 0
        just_refreshed = False
        for iteration in range(self.max_iterations):
            y = cost[basis] @ binv
            reduced = cost[:lim] - y @ full[:, :lim]
            use_bland = degenerate_streak >= _DEGENERACY_STREAK
            if use_bland:
                candidates = np.nonzero(reduced < -self.tolerance)[0]
                if candidates.size == 0:
                    return LPStatus.OPTIMAL, iteration, binv, xb
                entering = int(candidates[0])
            else:
                entering = int(np.argmin(reduced))
                if reduced[entering] >= -self.tolerance:
                    return LPStatus.OPTIMAL, iteration, binv, xb

            direction = binv @ full[:, entering]
            positive = direction > self.tolerance
            if not positive.any():
                # A column that prices negative yet has no positive
                # direction entries is usually eta-chain noise (a
                # near-basic column after many updates), not genuine
                # unboundedness.  Re-price once against a fresh
                # factorization before concluding.
                if not just_refreshed:
                    binv, xb = self._refactorize(
                        full, b, basis, binv, xb
                    )
                    just_refreshed = True
                    since_refactor = 0
                    continue
                return LPStatus.UNBOUNDED, iteration, binv, xb
            just_refreshed = False
            ratios = np.full(m, np.inf)
            ratios[positive] = xb[positive] / direction[positive]
            if use_bland:
                best = np.min(ratios)
                tied = np.nonzero(ratios <= best + self.tolerance)[0]
                # Bland: leave the row whose basic variable has the
                # smallest index.
                leaving = int(min(tied, key=lambda r: basis[r]))
            else:
                leaving = int(np.argmin(ratios))
            if ratios[leaving] <= self.tolerance:
                degenerate_streak += 1
            else:
                degenerate_streak = 0

            self._pivot(binv, xb, direction, leaving)
            basis[leaving] = entering
            since_refactor += 1
            if since_refactor >= self.refactor_every:
                binv, xb = self._refactorize(full, b, basis, binv, xb)
                since_refactor = 0
        return LPStatus.ITERATION_LIMIT, self.max_iterations, binv, xb

    @staticmethod
    def _pivot(
        binv: np.ndarray,
        xb: np.ndarray,
        direction: np.ndarray,
        row: int,
    ) -> None:
        """Product-form (eta) update of ``B^{-1}`` and ``x_B``."""
        pivot = direction[row]
        binv[row] /= pivot
        xb[row] /= pivot
        factors = direction.copy()
        factors[row] = 0.0
        binv -= np.outer(factors, binv[row])
        xb -= factors * xb[row]

    def _refactorize(
        self,
        full: np.ndarray,
        b: np.ndarray,
        basis: np.ndarray,
        binv: np.ndarray,
        xb: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fresh LU factorization of the basis, bounding eta-drift."""
        self._refactorizations += 1
        basis_matrix = full[:, basis]
        try:
            fresh = np.linalg.inv(basis_matrix)
        except np.linalg.LinAlgError:  # pragma: no cover - drift guard
            return binv, xb  # keep the eta product; better than nothing
        fresh_xb = fresh @ b
        # A refactorized point can pick up tiny negative components the
        # eta chain had kept at exactly 0; clamp round-off only.
        if fresh_xb.min() < -_WARM_FEAS_TOL:  # pragma: no cover - guard
            return binv, xb
        np.clip(fresh_xb, 0.0, None, out=fresh_xb)
        return fresh, fresh_xb

    def _drive_out_artificials(
        self,
        full: np.ndarray,
        basis: np.ndarray,
        binv: np.ndarray,
        xb: np.ndarray,
        n_std: int,
    ) -> None:
        """Pivot basic artificials (at value 0) onto structural columns."""
        for r in range(len(basis)):
            if basis[r] < n_std:
                continue
            row = binv[r] @ full[:, :n_std]
            pivot_candidates = np.nonzero(
                np.abs(row) > self.tolerance
            )[0]
            if pivot_candidates.size == 0:
                # Redundant row; leave the zero-valued artificial basic.
                continue
            entering = int(pivot_candidates[0])
            direction = binv @ full[:, entering]
            self._pivot(binv, xb, direction, r)
            basis[r] = entering

    def _recover_primal(
        self,
        problem: LinearProgram,
        std: _StandardForm,
        x_std: np.ndarray,
    ) -> np.ndarray:
        x = np.zeros(problem.n_variables)
        for j in range(problem.n_variables):
            value = x_std[std.pos_col[j]]
            if std.neg_col[j] >= 0:
                value -= x_std[std.neg_col[j]]
            if std.flip[j]:
                x[j] = std.shift[j] - value
            else:
                x[j] = std.shift[j] + value
        return x

    def _recover_duals(
        self,
        problem: LinearProgram,
        std: _StandardForm,
        y: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``y = c_B' B^{-1}`` on standard rows, mapped to original rows."""
        y = y * std.row_sign  # undo rhs negation

        dual_ub = np.zeros(problem.n_ub_rows)
        dual_eq = np.zeros(problem.n_eq_rows)
        for row, (kind, idx) in enumerate(
            zip(std.row_kind, std.row_index, strict=True)
        ):
            if kind == "ub":
                dual_ub[idx] = y[row]
            elif kind == "eq":
                dual_eq[idx] = y[row]
        # Convention: <=-row duals are non-positive at a minimum; clip
        # stray positive round-off.
        dual_ub = np.minimum(dual_ub, 0.0)
        return dual_ub, dual_eq


def solve_with_simplex(
    problem: LinearProgram,
    max_iterations: int = 20_000,
    tolerance: float = _EPS,
    warm_basis: tuple[BasisTag, ...] | None = None,
) -> LPSolution:
    """Module-level convenience wrapper around :class:`SimplexSolver`."""
    return SimplexSolver(max_iterations, tolerance).solve(
        problem, warm_basis=warm_basis
    )
