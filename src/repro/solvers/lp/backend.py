"""LP backend dispatch.

Two interchangeable engines solve every LP in the library:

* ``"scipy"`` — HiGHS via :func:`scipy.optimize.linprog` (default, fast);
* ``"simplex"`` — the from-scratch two-phase simplex in
  :mod:`repro.solvers.lp.simplex` (no dependency beyond numpy, used for
  cross-validation and by the LP-backend ablation benchmark).
"""

from __future__ import annotations

from typing import Callable

from .problem import LinearProgram, LPSolution
from .scipy_backend import solve_with_scipy
from .simplex import solve_with_simplex

__all__ = ["solve_lp", "available_backends", "DEFAULT_BACKEND"]

DEFAULT_BACKEND = "scipy"

_BACKENDS: dict[str, Callable[[LinearProgram], LPSolution]] = {
    "scipy": solve_with_scipy,
    "simplex": solve_with_simplex,
}


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`solve_lp`."""
    return tuple(sorted(_BACKENDS))


def solve_lp(
    problem: LinearProgram, backend: str = DEFAULT_BACKEND
) -> LPSolution:
    """Solve ``problem`` with the chosen backend."""
    try:
        engine = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown LP backend {backend!r}; "
            f"choose from {available_backends()}"
        ) from None
    return engine(problem)
