"""LP backend dispatch.

Two interchangeable engines solve every LP in the library:

* ``"scipy"`` — HiGHS via :func:`scipy.optimize.linprog` (default, fast);
* ``"simplex"`` — the from-scratch revised simplex in
  :mod:`repro.solvers.lp.simplex` (no dependency beyond numpy, used for
  cross-validation, by the LP-backend ablation benchmark, and whenever a
  caller wants warm-started re-solves — the only backend that accepts
  and exposes simplex bases).

Warm starts are dispatched best-effort: :func:`solve_lp` forwards
``warm_basis`` only to backends in :func:`warm_start_backends`; the rest
cold-solve, so callers can pass a basis unconditionally and let the
backend decide (the :class:`~repro.solvers.master.MasterProblem`
contract).

The scipy path degrades gracefully: when HiGHS raises or reports
``NUMERICAL_ERROR``, the same problem is re-solved with the in-repo
simplex backend (counted on ``repro_lp_backend_fallbacks_total``), so
one flaky native solve cannot take a sweep down.  INFEASIBLE and
UNBOUNDED are legitimate answers and are returned as-is.
"""

from __future__ import annotations

from typing import Callable

from ... import obs
from .problem import BasisTag, LinearProgram, LPSolution, LPStatus
from .scipy_backend import solve_with_scipy
from .simplex import solve_with_simplex

__all__ = [
    "solve_lp",
    "available_backends",
    "supports_warm_start",
    "warm_start_backends",
    "DEFAULT_BACKEND",
]

DEFAULT_BACKEND = "scipy"

_BACKENDS: dict[str, Callable[[LinearProgram], LPSolution]] = {
    "scipy": solve_with_scipy,
    "simplex": solve_with_simplex,
}

#: Backends whose solver accepts a ``warm_basis`` and exposes the final
#: basis on the returned :class:`LPSolution`.
_WARM_BACKENDS = frozenset({"simplex"})


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`solve_lp`."""
    return tuple(sorted(_BACKENDS))


def warm_start_backends() -> tuple[str, ...]:
    """Backends that accept a starting basis (see :func:`solve_lp`)."""
    return tuple(sorted(_WARM_BACKENDS))


def supports_warm_start(backend: str) -> bool:
    """True when ``backend`` can re-enter from a previous optimal basis."""
    return backend in _WARM_BACKENDS


def solve_lp(
    problem: LinearProgram,
    backend: str = DEFAULT_BACKEND,
    warm_basis: tuple[BasisTag, ...] | None = None,
    factorization: str = "auto",
) -> LPSolution:
    """Solve ``problem`` with the chosen backend.

    ``warm_basis`` is forwarded to backends that support basis re-entry
    and silently ignored by the rest (they cold-solve), so callers never
    need to special-case the backend themselves.  ``factorization``
    (``"auto" | "dense" | "sparse"``) selects the simplex backend's
    basis-factorization engine and is likewise ignored by backends that
    manage their own linear algebra (HiGHS).
    """
    try:
        engine = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown LP backend {backend!r}; "
            f"choose from {available_backends()}"
        ) from None
    if backend == "simplex":
        if warm_basis is not None:
            return engine(
                problem,
                warm_basis=warm_basis,
                factorization=factorization,
            )
        return engine(problem, factorization=factorization)
    if backend == "scipy":
        return _solve_scipy_with_fallback(problem)
    return engine(problem)


def _solve_scipy_with_fallback(problem: LinearProgram) -> LPSolution:
    """HiGHS with simplex degradation on crash or numerical failure."""
    try:
        solution = solve_with_scipy(problem)
    except Exception as exc:
        obs.counter(
            "repro_lp_backend_fallbacks_total",
            from_backend="scipy",
            to_backend="simplex",
            error=type(exc).__name__,
        )
        return solve_with_simplex(problem)
    if solution.status == LPStatus.NUMERICAL_ERROR:
        obs.counter(
            "repro_lp_backend_fallbacks_total",
            from_backend="scipy",
            to_backend="simplex",
            error="numerical",
        )
        return solve_with_simplex(problem)
    return solution
