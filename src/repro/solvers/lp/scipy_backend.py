"""SciPy (HiGHS) LP backend.

Thin adapter from :class:`~repro.solvers.lp.problem.LinearProgram` to
``scipy.optimize.linprog`` that also surfaces the dual prices (HiGHS
"marginals") needed by column generation.

``scipy.optimize.linprog`` exposes no basis interface, so this backend
neither accepts a warm start nor populates :attr:`LPSolution.basis`;
:func:`repro.solvers.lp.backend.solve_lp` therefore never forwards a
``warm_basis`` here — warm-started master re-solves automatically fall
back to cold HiGHS solves on this backend.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from ... import faults
from .problem import LinearProgram, LPSolution, LPStatus

__all__ = ["solve_with_scipy"]

_STATUS_MAP = {
    0: LPStatus.OPTIMAL,
    1: LPStatus.ITERATION_LIMIT,
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
    4: LPStatus.NUMERICAL_ERROR,
}


def solve_with_scipy(problem: LinearProgram) -> LPSolution:
    """Solve with HiGHS; returns primal, objective, and dual marginals."""
    # An injected failure here exercises the scipy -> simplex fallback
    # in repro.solvers.lp.backend.
    faults.point("solvers.lp.scipy")
    result = linprog(
        c=problem.objective,
        A_ub=problem.a_ub,
        b_ub=problem.b_ub,
        A_eq=problem.a_eq,
        b_eq=problem.b_eq,
        bounds=list(problem.bounds),
        method="highs",
    )
    status = _STATUS_MAP.get(result.status, LPStatus.NUMERICAL_ERROR)
    if status != LPStatus.OPTIMAL:
        return LPSolution(status=status, message=str(result.message))

    dual_ub = None
    dual_eq = None
    if problem.n_ub_rows and result.ineqlin is not None:
        dual_ub = np.asarray(result.ineqlin.marginals, dtype=np.float64)
    elif problem.n_ub_rows:
        dual_ub = np.zeros(problem.n_ub_rows)
    if problem.n_eq_rows and result.eqlin is not None:
        dual_eq = np.asarray(result.eqlin.marginals, dtype=np.float64)
    elif problem.n_eq_rows:
        dual_eq = np.zeros(problem.n_eq_rows)

    return LPSolution(
        status=LPStatus.OPTIMAL,
        x=np.asarray(result.x, dtype=np.float64),
        objective_value=float(result.fun),
        dual_ub=dual_ub,
        dual_eq=dual_eq,
        iterations=int(getattr(result, "nit", 0)),
        message=str(result.message),
    )
