"""Brute-force solution of the Optimal Auditing Problem.

The paper's reference optimum (Table III) enumerates every integer
threshold vector ``b`` with ``0 <= b_t <= J_t * C_t`` and
``sum_t b_t >= B`` and solves the full-enumeration master LP for each.
The search space is ``O(prod_t (J_t + 1))`` — only feasible for small
instances such as Syn A — which is precisely why ISHM exists; OAP itself
is NP-hard (Theorem 1).
"""

from __future__ import annotations

import itertools
import math
import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.game import AuditGame
from ..core.policy import AuditPolicy
from ..distributions.joint import ScenarioSet
from .enumeration import EnumerationSolver
from .master import FixedThresholdSolution

__all__ = [
    "BruteForceResult",
    "run_solve_optimal",
    "solve_optimal",
    "threshold_grid_size",
]

DEFAULT_MAX_VECTORS = 500_000

#: Grid vectors priced per batch when a batched solver is used.
DEFAULT_CHUNK_SIZE = 64


def _grid_axes(game: AuditGame) -> list[range]:
    """Integer threshold choices per type.

    The ceiling is ``min(ceil(J_t C_t), ceil(B))``: a threshold above the
    total budget is *exactly* equivalent to one equal to it — the audit
    capacity ``floor((B - used) / C_t)`` already caps the quota, and once
    consumption reaches ``B`` later types get nothing either way — so
    larger values would only duplicate grid points.
    """
    upper = game.threshold_upper_bounds()
    budget_cap = int(math.ceil(game.budget))
    return [
        range(0, min(int(math.ceil(u)), budget_cap) + 1) for u in upper
    ]


def threshold_grid_size(game: AuditGame) -> int:
    """Total number of integer threshold vectors (before the budget cut)."""
    total = 1
    for axis in _grid_axes(game):
        total *= len(axis)
    return total


@dataclass(frozen=True)
class BruteForceResult:
    """Globally optimal OAP solution over the integer threshold grid."""

    thresholds: np.ndarray
    objective: float
    policy: AuditPolicy
    solution: FixedThresholdSolution
    n_vectors_evaluated: int
    n_vectors_total: int

    def describe(self, type_names=None) -> str:
        """Row in the spirit of Table III."""
        ints = np.asarray(self.thresholds, dtype=np.int64)
        return (
            f"optimal objective {self.objective:.4f} at thresholds "
            f"{ints.tolist()} "
            f"({self.n_vectors_evaluated}/{self.n_vectors_total} vectors)\n"
            + self.policy.describe(type_names)
        )


def run_solve_optimal(
    game: AuditGame,
    scenarios: ScenarioSet,
    backend: str = "scipy",
    max_vectors: int = DEFAULT_MAX_VECTORS,
    enforce_budget_floor: bool = True,
    tie_break: str = "smallest",
    solver: Callable[[np.ndarray], FixedThresholdSolution] | None = None,
    batch_solver: Callable[
        [np.ndarray], "list[FixedThresholdSolution]"
    ] | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> BruteForceResult:
    """Exhaustively search integer thresholds; LP-optimal orderings per b.

    This is the raw implementation invoked by the ``"bruteforce"``
    registry solver; prefer
    ``repro.engine.AuditEngine(game).solve("bruteforce")``.

    Parameters
    ----------
    enforce_budget_floor:
        Keep only vectors with ``sum_t b_t >= B`` (allocating less than
        the whole budget can only waste it — Section III-B).
    tie_break:
        ``"smallest"`` prefers the lexicographically/elementwise smallest
        optimal vector (the paper reports "the smallest optimal threshold"
        when ties occur); ``"first"`` keeps the first one found.
    solver:
        Optional fixed-threshold master solver; defaults to a fresh
        :class:`EnumerationSolver`.  The engine passes its shared
        memoizing solver here so grid points priced by earlier solves
        (e.g. ISHM probes) are reused.
    batch_solver:
        Batched pricer taking a ``(B, T)`` stack and returning solutions
        in input order (``FixedSolveCache.batch_solver``).  When given,
        the feasible grid is priced in ``chunk_size`` slices instead of
        one vector at a time; the incumbent/tie-break scan runs in grid
        order either way, so the result is identical to the serial path.
    chunk_size:
        Grid vectors per batch in the ``batch_solver`` path.
    """
    if tie_break not in ("smallest", "first"):
        raise ValueError(f"unknown tie_break {tie_break!r}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    total = threshold_grid_size(game)
    if total > max_vectors:
        raise ValueError(
            f"threshold grid has {total} vectors "
            f"(> max_vectors={max_vectors}); brute force is intractable — "
            "use the 'ishm' solver instead"
        )
    if batch_solver is None:
        if solver is None:
            # solve_batch is bit-for-bit equal to mapping solve() but
            # builds the detection kernels one vectorized pass per
            # ordering instead of per grid vector.
            batch_solver = EnumerationSolver(
                game, scenarios, backend=backend
            ).solve_batch
        else:
            base = solver

            def batch_solver(vectors: np.ndarray):
                return [base(b) for b in vectors]

    best_objective = math.inf
    best_thresholds: np.ndarray | None = None
    best_solution: FixedThresholdSolution | None = None
    evaluated = 0

    def scan(chunk: list[np.ndarray]) -> None:
        nonlocal best_objective, best_thresholds, best_solution, evaluated
        for b, candidate in zip(chunk, batch_solver(np.stack(chunk)), strict=True):
            evaluated += 1
            improved = candidate.objective < best_objective - 1e-12
            tied = (
                abs(candidate.objective - best_objective) <= 1e-9
                and tie_break == "smallest"
                and best_thresholds is not None
                and b.sum() < best_thresholds.sum()
            )
            if improved or tied:
                best_objective = candidate.objective
                best_thresholds = b
                best_solution = candidate

    chunk: list[np.ndarray] = []
    for combo in itertools.product(*_grid_axes(game)):
        b = np.asarray(combo, dtype=np.float64)
        if enforce_budget_floor and b.sum() < game.budget:
            continue
        chunk.append(b)
        if len(chunk) >= chunk_size:
            scan(chunk)
            chunk = []
    if chunk:
        scan(chunk)
    if best_solution is None:
        raise RuntimeError(
            "no feasible threshold vector (budget exceeds the whole grid?)"
        )
    return BruteForceResult(
        thresholds=best_thresholds,
        objective=best_objective,
        policy=best_solution.policy,
        solution=best_solution,
        n_vectors_evaluated=evaluated,
        n_vectors_total=total,
    )


def solve_optimal(
    game: AuditGame,
    scenarios: ScenarioSet,
    backend: str = "scipy",
    max_vectors: int = DEFAULT_MAX_VECTORS,
    enforce_budget_floor: bool = True,
    tie_break: str = "smallest",
) -> BruteForceResult:
    """Deprecated free-function entry point for the brute-force optimum.

    Delegates to the ``"bruteforce"`` solver of :mod:`repro.engine`'s
    registry and returns the native :class:`BruteForceResult`.  Use
    ``AuditEngine(game).solve("bruteforce")`` (or ``repro.engine.solve``)
    instead for the unified :class:`~repro.engine.SolveResult` contract
    and cross-call solution caching.
    """
    warnings.warn(
        "solve_optimal() is deprecated; use "
        "repro.engine.AuditEngine(game).solve('bruteforce') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..engine import BruteForceConfig, solve as engine_solve

    config = BruteForceConfig(
        backend=backend,
        max_vectors=max_vectors,
        enforce_budget_floor=enforce_budget_floor,
        tie_break=tie_break,
    )
    return engine_solve(game, scenarios, "bruteforce", config).raw
