"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP 517
editable installs fail there; this shim keeps ``python setup.py
develop`` working as the offline fallback.  All project metadata lives
in ``pyproject.toml``; networked environments should just ``pip
install -e .``.
"""

from setuptools import setup

setup()
