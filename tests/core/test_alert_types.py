"""AlertType and AlertTypeSet."""

import numpy as np
import pytest

from repro.core import AlertType, AlertTypeSet


class TestAlertType:
    def test_defaults(self):
        t = AlertType("vip-access")
        assert t.audit_cost == 1.0
        assert t.description == ""

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            AlertType("")

    def test_rejects_nonpositive_cost(self):
        with pytest.raises(ValueError):
            AlertType("x", audit_cost=0.0)
        with pytest.raises(ValueError):
            AlertType("x", audit_cost=-1.0)

    def test_frozen(self):
        t = AlertType("x")
        with pytest.raises(AttributeError):
            t.audit_cost = 2.0


class TestAlertTypeSet:
    def test_from_costs(self):
        ts = AlertTypeSet.from_costs([1.0, 2.5])
        assert len(ts) == 2
        assert ts.names == ("type-1", "type-2")
        assert np.allclose(ts.costs, [1.0, 2.5])

    def test_index_of(self):
        ts = AlertTypeSet.from_costs([1, 1, 1])
        assert ts.index_of("type-2") == 1
        with pytest.raises(ValueError):
            ts.index_of("nope")

    def test_iteration_and_getitem(self):
        ts = AlertTypeSet.from_costs([1, 2])
        assert [t.name for t in ts] == ["type-1", "type-2"]
        assert ts[1].audit_cost == 2.0

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            AlertTypeSet((AlertType("a"), AlertType("a")))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AlertTypeSet(())
