"""Subset-memoized detection kernel: equivalence with the legacy walk."""

import numpy as np
import pytest

from repro.core import (
    Ordering,
    OrderingPricer,
    PalTable,
    all_orderings,
    pal_for_ordering,
    pal_for_orderings,
    subset_table_pays,
)
from repro.distributions import (
    DiscretizedGaussian,
    EmpiricalCounts,
    JointCountModel,
    ScenarioSet,
)

TOL = 1e-9


def random_world(rng, n_types, n_scenarios=400, exact=False):
    """A (thresholds, scenarios, costs, budget) tuple for kernel tests."""
    joint = JointCountModel(
        [
            DiscretizedGaussian(2.5 + 0.7 * t, 0.9 + 0.15 * t)
            for t in range(n_types)
        ]
    )
    if exact:
        scenarios = joint.exact_scenarios()
    else:
        scenarios = joint.sample_scenarios(n_scenarios, rng)
    costs = np.array([1.0 + 0.5 * (t % 3) for t in range(n_types)])
    thresholds = rng.uniform(0.0, 6.0, size=n_types).round(1)
    budget = float(1.5 * n_types)
    return thresholds, scenarios, costs, budget


class TestSubsetTableEquivalence:
    @pytest.mark.parametrize("n_types", [3, 4, 5])
    @pytest.mark.parametrize("rule", ["unit", "strict"])
    def test_matches_legacy_over_all_orderings(self, rng, n_types, rule):
        b, sc, costs, budget = random_world(rng, n_types)
        pricer = OrderingPricer(b, sc, costs, budget, rule)
        table = PalTable.from_pricer(pricer)
        for o in all_orderings(n_types):
            legacy = pricer.pal(o)
            assert np.abs(table.pal(o) - legacy).max() <= TOL

    def test_matches_on_exact_scenario_set(self, rng):
        b, sc, costs, budget = random_world(rng, 4, exact=True)
        table = PalTable(b, sc, costs, budget)
        for o in all_orderings(4):
            legacy = pal_for_ordering(o, b, sc, costs, budget)
            assert np.abs(table.pal(o) - legacy).max() <= TOL

    def test_heterogeneous_costs_and_zero_counts(self, rng):
        # Rows with Z_t = 0 exercise both zero-count rules.
        counts = np.array(
            [[0, 2, 5], [3, 0, 0], [1, 1, 1], [0, 0, 4], [6, 2, 0]]
        )
        sc = ScenarioSet(counts=counts, weights=np.full(5, 0.2))
        b = np.array([2.5, 4.0, 3.0])
        costs = np.array([0.5, 2.0, 1.25])
        for rule in ("unit", "strict"):
            table = PalTable(b, sc, costs, 6.0, rule)
            for o in all_orderings(3):
                legacy = pal_for_ordering(o, b, sc, costs, 6.0, rule)
                assert np.abs(table.pal(o) - legacy).max() <= TOL

    def test_partial_orderings(self, rng):
        b, sc, costs, budget = random_world(rng, 4)
        table = PalTable(b, sc, costs, budget)
        for o in [(2,), (3, 0), (1, 3, 0), ()]:
            legacy = pal_for_ordering(o, b, sc, costs, budget)
            got = table.pal(o)
            assert np.abs(got - legacy).max() <= TOL
            placed = np.zeros(4, dtype=bool)
            placed[list(o)] = True
            assert np.all(got[~placed] == 0.0)

    def test_scenario_chunking_matches_single_chunk(self, rng):
        b, sc, costs, budget = random_world(rng, 4, n_scenarios=257)
        whole = PalTable(b, sc, costs, budget)
        chunked = PalTable(b, sc, costs, budget, scenario_chunk=19)
        for o in all_orderings(4):
            assert np.abs(chunked.pal(o) - whole.pal(o)).max() <= TOL

    def test_bitwise_on_integer_game(self, rng):
        # Integer thresholds/costs/counts keep every partial sum exact,
        # so the DP accumulation order cannot perturb a single bit.
        joint = JointCountModel(
            [EmpiricalCounts({1: 0.3, 2: 0.4, 4: 0.3}) for _ in range(4)]
        )
        sc = joint.exact_scenarios()
        b = np.array([2.0, 3.0, 1.0, 4.0])
        costs = np.array([1.0, 2.0, 1.0, 1.0])
        pricer = OrderingPricer(b, sc, costs, 6.0)
        table = PalTable.from_pricer(pricer)
        for o in all_orderings(4):
            assert np.array_equal(table.pal(o), pricer.pal(o))


class TestPalForOrderingsDispatch:
    def test_full_set_uses_table_and_matches(self, rng):
        b, sc, costs, budget = random_world(rng, 4)
        rows = pal_for_orderings(all_orderings(4), b, sc, costs, budget)
        pricer = OrderingPricer(b, sc, costs, budget)
        ref = np.stack([pricer.pal(o) for o in all_orderings(4)])
        assert rows.shape == ref.shape
        assert np.abs(rows - ref).max() <= TOL

    def test_small_set_stays_on_legacy_path(self, rng):
        b, sc, costs, budget = random_world(rng, 4)
        few = [Ordering((0, 1, 2, 3)), Ordering((3, 2, 1, 0))]
        rows = pal_for_orderings(few, b, sc, costs, budget)
        for row, o in zip(rows, few, strict=True):
            assert np.array_equal(
                row, pal_for_ordering(o, b, sc, costs, budget)
            )

    def test_rejects_empty(self, rng):
        b, sc, costs, budget = random_world(rng, 3)
        with pytest.raises(ValueError):
            pal_for_orderings([], b, sc, costs, budget)


class TestSubsetTablePays:
    def test_break_even_threshold(self):
        assert not subset_table_pays(8, 4)   # 8 == 2^(4-1): walk wins
        assert subset_table_pays(9, 4)
        assert subset_table_pays(24, 4)      # the full set always pays

    def test_tiny_and_huge_type_counts_refuse(self):
        assert not subset_table_pays(10**6, 2)
        assert not subset_table_pays(10**6, 13)

    def test_full_ordering_sets_pay_from_three_types(self):
        import math

        for t in range(3, 8):
            assert subset_table_pays(math.factorial(t), t)


class TestValidation:
    def test_rejects_unknown_zero_rule(self, rng):
        b, sc, costs, budget = random_world(rng, 3)
        with pytest.raises(ValueError, match="zero_count_rule"):
            PalTable(b, sc, costs, budget, "magic")

    def test_rejects_negative_budget(self, rng):
        b, sc, costs, budget = random_world(rng, 3)
        with pytest.raises(ValueError, match="budget"):
            PalTable(b, sc, costs, -1.0)

    def test_rejects_type_count_mismatch(self, rng):
        b, sc, costs, budget = random_world(rng, 3)
        with pytest.raises(ValueError, match="types"):
            PalTable(np.ones(2), sc, np.ones(2), budget)

    def test_rejects_too_many_types(self):
        n = 13
        counts = np.ones((4, n), dtype=np.int64)
        sc = ScenarioSet(counts=counts, weights=np.full(4, 0.25))
        with pytest.raises(ValueError, match="predecessor"):
            PalTable(np.ones(n), sc, np.ones(n), 5.0)

    def test_rejects_bad_chunk(self, rng):
        b, sc, costs, budget = random_world(rng, 3)
        with pytest.raises(ValueError, match="scenario_chunk"):
            PalTable(b, sc, costs, budget, scenario_chunk=0)

    def test_rejects_out_of_range_type_in_lookup(self, rng):
        b, sc, costs, budget = random_world(rng, 3)
        table = PalTable(b, sc, costs, budget)
        with pytest.raises(ValueError, match="out of range"):
            table.pal((0, 5))


class TestOrderingPricer:
    def test_bitwise_identical_to_one_shot_kernel(self, rng):
        b, sc, costs, budget = random_world(rng, 4)
        pricer = OrderingPricer(b, sc, costs, budget)
        for o in all_orderings(4)[:8]:
            assert np.array_equal(
                pricer.pal(o), pal_for_ordering(o, b, sc, costs, budget)
            )

    def test_validates_once_at_construction(self, rng):
        b, sc, costs, budget = random_world(rng, 3)
        with pytest.raises(ValueError, match="non-negative"):
            OrderingPricer(-b - 1.0, sc, costs, budget)
        with pytest.raises(ValueError, match="positive"):
            OrderingPricer(b, sc, np.zeros(3), budget)

    def test_rejects_out_of_range_type(self, rng):
        b, sc, costs, budget = random_world(rng, 3)
        with pytest.raises(ValueError, match="out of range"):
            OrderingPricer(b, sc, costs, budget).pal((7,))
