"""Orderings and audit policies."""

import numpy as np
import pytest

from repro.core import AuditPolicy, Ordering, all_orderings, random_ordering


class TestOrdering:
    def test_complete_check(self):
        o = Ordering((2, 0, 1))
        assert o.is_complete(3)
        assert not o.is_complete(4)

    def test_partial_extension(self):
        o = Ordering((1,))
        extended = o.extended(0)
        assert extended.positions == (1, 0)
        assert len(o) == 1  # original unchanged

    def test_position_of(self):
        o = Ordering((2, 0, 1))
        assert o.position_of(0) == 1
        with pytest.raises(ValueError):
            o.position_of(5)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Ordering((0, 0))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Ordering((-1, 0))

    def test_all_orderings_count(self):
        assert len(all_orderings(4)) == 24
        assert len({o.positions for o in all_orderings(4)}) == 24

    def test_all_orderings_rejects_zero(self):
        with pytest.raises(ValueError):
            all_orderings(0)

    def test_random_ordering_is_permutation(self, rng):
        o = random_ordering(5, rng)
        assert sorted(o.positions) == list(range(5))


class TestAuditPolicy:
    def test_pure_wrapper(self):
        policy = AuditPolicy.pure(Ordering((0, 1)), [2.0, 3.0])
        assert policy.support_size == 1
        assert np.allclose(policy.probabilities, [1.0])

    def test_uniform(self):
        policy = AuditPolicy.uniform(
            [Ordering((0, 1)), Ordering((1, 0))], [1.0, 1.0]
        )
        assert np.allclose(policy.probabilities, [0.5, 0.5])

    def test_rejects_probability_mismatch(self):
        with pytest.raises(ValueError):
            AuditPolicy(
                orderings=(Ordering((0, 1)),),
                probabilities=np.array([0.5, 0.5]),
                thresholds=np.array([1.0, 1.0]),
            )

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError):
            AuditPolicy(
                orderings=(Ordering((0, 1)),),
                probabilities=np.array([0.5]),
                thresholds=np.array([1.0, 1.0]),
            )

    def test_rejects_incomplete_ordering(self):
        with pytest.raises(ValueError):
            AuditPolicy.pure(Ordering((0,)), [1.0, 1.0])

    def test_rejects_negative_thresholds(self):
        with pytest.raises(ValueError):
            AuditPolicy.pure(Ordering((0, 1)), [-1.0, 1.0])

    def test_pruned_drops_zero_mass(self):
        policy = AuditPolicy(
            orderings=(Ordering((0, 1)), Ordering((1, 0))),
            probabilities=np.array([1.0, 0.0]),
            thresholds=np.array([1.0, 1.0]),
        )
        pruned = policy.pruned()
        assert pruned.support_size == 1
        assert pruned.orderings[0].positions == (0, 1)

    def test_sample_ordering_distribution(self, rng):
        policy = AuditPolicy(
            orderings=(Ordering((0, 1)), Ordering((1, 0))),
            probabilities=np.array([0.9, 0.1]),
            thresholds=np.array([1.0, 1.0]),
        )
        draws = [policy.sample_ordering(rng).positions
                 for _ in range(300)]
        share = sum(1 for d in draws if d == (0, 1)) / len(draws)
        assert 0.8 < share < 0.98

    def test_describe_mentions_names(self):
        policy = AuditPolicy.pure(Ordering((1, 0)), [1.0, 2.0])
        text = policy.describe(["alpha", "beta"])
        assert "beta > alpha" in text
