"""Attacker utilities, best responses and policy evaluation."""

import numpy as np
import pytest

from repro.core import (
    AuditPolicy,
    Ordering,
    PayoffModel,
    best_responses,
    evaluate_policy,
    expected_utility_matrix,
    utility_matrix_for_pal,
)
from repro.core.objective import REFRAIN


def simple_payoffs(refrain=False):
    return PayoffModel.create(
        n_adversaries=2,
        n_victims=2,
        benefit=np.array([[3.0, 1.0], [0.0, 2.0]]),
        penalty=4.0,
        attack_cost=0.5,
        attack_prior=1.0,
        attackers_can_refrain=refrain,
    )


class TestBestResponses:
    def test_argmax_without_refrain(self):
        eu = np.array([[1.0, 2.0], [-3.0, -1.0]])
        responses = best_responses(eu, simple_payoffs(refrain=False))
        assert responses[0].victim == 1
        assert responses[0].utility == 2.0
        # Even a negative best utility is played when refraining is
        # impossible.
        assert responses[1].victim == 1
        assert responses[1].utility == -1.0
        assert not responses[1].deterred

    def test_refrain_clamps_negative(self):
        eu = np.array([[1.0, 2.0], [-3.0, -1.0]])
        responses = best_responses(eu, simple_payoffs(refrain=True))
        assert responses[1].victim == REFRAIN
        assert responses[1].utility == 0.0
        assert responses[1].deterred

    def test_zero_utility_prefers_attack(self):
        eu = np.array([[0.0, -1.0], [0.0, 0.0]])
        responses = best_responses(eu, simple_payoffs(refrain=True))
        assert not responses[0].deterred


class TestExpectedUtilityMatrix:
    def test_mixing_is_affine_in_pal(self, syn_a_game, syn_a_scenarios):
        game = syn_a_game
        from repro.core import pal_for_ordering

        b = np.array([3.0, 3.0, 3.0, 3.0])
        o1, o2 = Ordering((0, 1, 2, 3)), Ordering((3, 2, 1, 0))
        pal_rows = np.stack([
            pal_for_ordering(o, b, syn_a_scenarios, game.costs,
                             game.budget)
            for o in (o1, o2)
        ])
        probs = np.array([0.3, 0.7])
        via_mixed_pal = expected_utility_matrix(
            pal_rows, probs, game.attack_map, game.payoffs
        )
        per_order = [
            utility_matrix_for_pal(row, game.attack_map, game.payoffs)
            for row in pal_rows
        ]
        direct = probs[0] * per_order[0] + probs[1] * per_order[1]
        assert np.allclose(via_mixed_pal, direct)

    def test_rejects_mismatched_probs(self, syn_a_game):
        with pytest.raises(ValueError):
            expected_utility_matrix(
                np.zeros((2, 4)), np.array([1.0]),
                syn_a_game.attack_map, syn_a_game.payoffs,
            )


class TestEvaluatePolicy:
    def test_consistent_with_game_evaluate(
        self, syn_a_game, syn_a_scenarios
    ):
        policy = AuditPolicy.uniform(
            [Ordering((0, 1, 2, 3)), Ordering((1, 0, 3, 2))],
            [3.0, 3.0, 3.0, 3.0],
        )
        direct = evaluate_policy(
            policy, syn_a_scenarios, syn_a_game.attack_map,
            syn_a_game.payoffs, syn_a_game.costs, syn_a_game.budget,
        )
        via_game = syn_a_game.evaluate(policy, syn_a_scenarios)
        assert np.isclose(direct.auditor_loss, via_game.auditor_loss)
        assert direct.pal_rows.shape == (2, 4)

    def test_loss_is_prior_weighted_sum(
        self, syn_a_game, syn_a_scenarios
    ):
        policy = AuditPolicy.pure(
            Ordering((0, 1, 2, 3)), [3.0, 3.0, 3.0, 3.0]
        )
        ev = syn_a_game.evaluate(policy, syn_a_scenarios)
        assert np.isclose(
            ev.auditor_loss,
            float(
                syn_a_game.payoffs.attack_prior
                @ ev.adversary_utilities
            ),
        )

    def test_n_deterred_counts(self, tiny_scenarios):
        from tests.conftest import make_tiny_game

        game = make_tiny_game(budget=0.0, attackers_can_refrain=True)
        # No budget: nobody is ever audited, so nobody is deterred.
        policy = AuditPolicy.pure(Ordering((0, 1)), [0.0, 0.0])
        ev = game.evaluate(policy, tiny_scenarios)
        assert ev.n_deterred == 0
