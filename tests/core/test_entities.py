"""Adversary / Victim / Event records."""

import pytest

from repro.core import Adversary, Event, Victim


class TestAdversary:
    def test_defaults(self):
        a = Adversary("nurse-7")
        assert a.attack_probability == 1.0
        assert dict(a.attributes) == {}

    def test_attributes(self):
        a = Adversary("e", attributes={"dept": "oncology"})
        assert a.attributes["dept"] == "oncology"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Adversary("")

    def test_rejects_bad_prior(self):
        with pytest.raises(ValueError):
            Adversary("e", attack_probability=1.5)
        with pytest.raises(ValueError):
            Adversary("e", attack_probability=-0.1)


class TestVictim:
    def test_basic(self):
        v = Victim("record-12")
        assert v.name == "record-12"

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Victim("")


class TestEvent:
    def test_pairing(self):
        event = Event(adversary="e1", victim="v9")
        assert (event.adversary, event.victim) == ("e1", "v9")
