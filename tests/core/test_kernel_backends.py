"""Kernel backend registry: resolve semantics and bitwise parity.

The contract under test is the bit-compatibility promise of
:mod:`repro.core.kernels`: every backend (numpy, numba when installed,
and the uncompiled nopython sources) fills identical product buffers,
and tables built through any backend agree *bitwise*, not merely
approximately.  The interpreted :data:`~repro.core.kernels.KERNEL_SOURCES`
reference makes the algorithm parity testable even where numba is not
installed; when it is, the compiled backend rides the same assertions.
"""

import logging

import numpy as np
import pytest

from repro.core import LazyPalTable, PalTable, all_orderings
from repro.core import kernels
from repro.core.kernels import (
    HAS_NUMBA,
    KERNEL_BACKENDS,
    KERNEL_SOURCES,
    available_kernel_backends,
    get_implementation,
    register_kernel_implementation,
    resolve_kernel_backend,
)
from repro.core.pal_table import _mask_recursion
from repro.distributions import DiscretizedGaussian, JointCountModel
from repro.engine import FixedSolveCache
from repro.engine.config import CGGSConfig, EnumerationConfig

#: Every backend importable here; "numba" joins on the kernels CI row.
CONCRETE = available_kernel_backends()


def random_world(rng, n_types, n_scenarios=400):
    """A (thresholds, scenarios, costs, budget) tuple for kernel tests."""
    joint = JointCountModel(
        [
            DiscretizedGaussian(2.5 + 0.7 * t, 0.9 + 0.15 * t)
            for t in range(n_types)
        ]
    )
    scenarios = joint.sample_scenarios(n_scenarios, rng)
    costs = np.array([1.0 + 0.5 * (t % 3) for t in range(n_types)])
    thresholds = rng.uniform(0.0, 6.0, size=n_types).round(1)
    budget = float(1.5 * n_types)
    return thresholds, scenarios, costs, budget


class TestResolveSemantics:
    def test_auto_prefers_numba_else_numpy(self):
        expected = "numba" if HAS_NUMBA else "numpy"
        assert resolve_kernel_backend("auto") == expected
        assert resolve_kernel_backend() == expected

    def test_explicit_numpy_always_available(self):
        assert resolve_kernel_backend("numpy") == "numpy"

    @pytest.mark.skipif(HAS_NUMBA, reason="numba installed")
    def test_explicit_numba_without_dependency_raises(self):
        with pytest.raises(ValueError, match="kernels"):
            resolve_kernel_backend("numba")

    @pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
    def test_explicit_numba_with_dependency(self):
        assert resolve_kernel_backend("numba") == "numba"

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(ValueError, match="choose from"):
            resolve_kernel_backend("fortran")

    @pytest.mark.skipif(HAS_NUMBA, reason="numba installed")
    def test_auto_fallback_logs_exactly_one_debug_note(
        self, monkeypatch, caplog
    ):
        monkeypatch.setattr(kernels, "_auto_fallback_noted", False)
        with caplog.at_level(logging.DEBUG, logger="repro.core.kernels"):
            assert resolve_kernel_backend("auto") == "numpy"
            assert resolve_kernel_backend("auto") == "numpy"
        notes = [
            r for r in caplog.records if "kernels' extra" in r.message
        ]
        assert len(notes) == 1
        assert notes[0].levelno == logging.DEBUG

    def test_config_validates_kernel_backend_at_parse_time(self):
        with pytest.raises(ValueError, match="kernel_backend"):
            EnumerationConfig.from_dict({"kernel_backend": "fortran"})
        cfg = CGGSConfig.from_dict({"kernel_backend": "numpy"})
        assert cfg.kernel_backend == "numpy"
        # The knob is stored verbatim: "auto" stays "auto" so defaulted
        # configs hash/compare equal regardless of the installed extras.
        assert EnumerationConfig().kernel_backend == "auto"

    @pytest.mark.skipif(HAS_NUMBA, reason="numba installed")
    def test_config_rejects_numba_without_dependency(self):
        with pytest.raises(ValueError, match="kernels"):
            EnumerationConfig.from_dict({"kernel_backend": "numba"})


class TestRegistry:
    def test_numpy_backend_always_registered(self):
        assert "numpy" in CONCRETE
        assert ("numba" in CONCRETE) == HAS_NUMBA
        assert list(CONCRETE) == sorted(CONCRETE)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_kernel_implementation(
                "numpy", lambda: KERNEL_SOURCES
            )

    def test_get_implementation_memoizes(self):
        first = get_implementation("numpy")
        assert get_implementation("numpy") is first
        assert first.name == "numpy"

    def test_knob_order_matches_registry(self):
        assert set(CONCRETE) <= set(KERNEL_BACKENDS)


def _kernel_inputs(rng, n_types=5, n_scenarios=203):
    """Realistic buffers for the four kernel primitives."""
    n_masks = 1 << n_types
    contrib = rng.uniform(0.0, 3.0, size=(n_scenarios, n_types))
    prev, bit = _mask_recursion(n_masks)
    masks = np.arange(n_masks)
    rows = masks[(masks >> 1) & 1 == 0]  # predecessor sets without t=1
    effective = rng.uniform(0.0, 8.0, size=(n_scenarios, n_types))
    zsafe = rng.uniform(0.5, 4.0, size=(n_scenarios, n_types))
    weights = rng.dirichlet(np.ones(n_scenarios))
    return {
        "n_masks": n_masks,
        "n_scenarios": n_scenarios,
        "contrib": contrib,
        "prev": prev,
        "bit": bit,
        "rows": rows,
        "effective": effective,
        "zsafe": zsafe,
        "weights": weights,
        "cost": 1.5,
        "quota": 4.0,
        "budget": float(1.5 * n_types),
    }


#: Pairs (reference, candidate) that must agree bitwise.  The uncompiled
#: sources pin the numpy backend everywhere; the compiled numba backend
#: joins on the kernels CI row, closing numba == source == numpy.
PARITY_PAIRS = [("source", "numpy")] + (
    [("numba", "numpy")] if HAS_NUMBA else []
)


def _impl(name):
    return KERNEL_SOURCES if name == "source" else get_implementation(name)


@pytest.mark.parametrize("left,right", PARITY_PAIRS)
class TestKernelParity:
    def test_dp_consumed(self, rng, left, right):
        k = _kernel_inputs(rng)
        out = {}
        for name in (left, right):
            consumed = np.empty((k["n_masks"], k["n_scenarios"]))
            _impl(name).dp_consumed(
                k["contrib"], k["prev"], k["bit"], consumed
            )
            out[name] = consumed
        assert np.array_equal(out[left], out[right])

    def test_type_products(self, rng, left, right):
        k = _kernel_inputs(rng)
        consumed = np.empty((k["n_masks"], k["n_scenarios"]))
        _impl("numpy").dp_consumed(
            k["contrib"], k["prev"], k["bit"], consumed
        )
        out = {}
        for name in (left, right):
            buf = np.empty((k["rows"].shape[0], k["n_scenarios"]))
            _impl(name).type_products(
                consumed,
                k["rows"],
                k["cost"],
                k["quota"],
                np.ascontiguousarray(k["effective"][:, 1]),
                np.ascontiguousarray(k["zsafe"][:, 1]),
                k["weights"],
                k["budget"],
                buf,
            )
            out[name] = buf
        assert np.array_equal(out[left], out[right])

    def test_extension_products(self, rng, left, right):
        k = _kernel_inputs(rng)
        consumed = rng.uniform(0.0, k["budget"], size=k["n_scenarios"])
        costs = np.array([1.0, 1.5, 2.0])
        quota = np.array([3.0, 5.0, 2.0])
        out = {}
        for name in (left, right):
            buf = np.empty((3, k["n_scenarios"]))
            _impl(name).extension_products(
                consumed,
                costs,
                quota,
                np.ascontiguousarray(k["effective"][:, :3].T),
                np.ascontiguousarray(k["zsafe"][:, :3].T),
                k["weights"],
                k["budget"],
                buf,
            )
            out[name] = buf
        assert np.array_equal(out[left], out[right])

    def test_consumed_step(self, rng, left, right):
        k = _kernel_inputs(rng)
        prev = rng.uniform(0.0, 4.0, size=k["n_scenarios"])
        col = np.ascontiguousarray(k["contrib"][:, 2])
        out = {}
        for name in (left, right):
            buf = np.empty_like(prev)
            _impl(name).consumed_step(prev, col, buf)
            out[name] = buf
        assert np.array_equal(out[left], out[right])


class TestTableBackendParity:
    """Tables built through any backend knob agree bitwise."""

    @pytest.mark.parametrize("backend", ["auto", *CONCRETE])
    def test_pal_table_bitwise_across_backends(self, rng, backend):
        b, sc, costs, budget = random_world(rng, 5)
        reference = PalTable(b, sc, costs, budget, kernel_backend="numpy")
        table = PalTable(b, sc, costs, budget, kernel_backend=backend)
        assert np.array_equal(table.table, reference.table)
        assert table.kernel_backend == resolve_kernel_backend(backend)

    @pytest.mark.parametrize("backend", CONCRETE)
    def test_pal_table_chunked_bitwise(self, rng, backend):
        # Chunking itself reorders the accumulation (tolerance-tested in
        # test_pal_table); at *equal* chunking, backends stay bitwise.
        b, sc, costs, budget = random_world(rng, 4, n_scenarios=257)
        reference = PalTable(
            b, sc, costs, budget,
            scenario_chunk=19, kernel_backend="numpy",
        )
        chunked = PalTable(
            b, sc, costs, budget,
            scenario_chunk=19, kernel_backend=backend,
        )
        assert np.array_equal(chunked.table, reference.table)

    @pytest.mark.parametrize("backend", ["auto", *CONCRETE])
    def test_lazy_table_bitwise_across_backends(self, rng, backend):
        b, sc, costs, budget = random_world(rng, 4)
        reference = LazyPalTable(
            b, sc, costs, budget, kernel_backend="numpy"
        )
        lazy = LazyPalTable(
            b, sc, costs, budget, kernel_backend=backend
        )
        for o in all_orderings(4):
            assert np.array_equal(lazy.pal(o), reference.pal(o))
        for mask in (0, 1, 5):
            free = [t for t in range(4) if not (mask >> t) & 1]
            assert np.array_equal(
                lazy.extension_values(mask, free),
                reference.extension_values(mask, free),
            )

    @pytest.mark.parametrize("backend", CONCRETE)
    def test_lazy_matches_eager_per_backend(self, rng, backend):
        b, sc, costs, budget = random_world(rng, 4)
        eager = PalTable(b, sc, costs, budget, kernel_backend=backend)
        lazy = LazyPalTable(
            b, sc, costs, budget, kernel_backend=backend
        )
        for o in all_orderings(4):
            assert np.array_equal(lazy.pal(o), eager.pal(o))


class TestWorkersDeterminism:
    """kernel_backend never perturbs the workers>1 == workers=1 identity."""

    def test_price_batch_parallel_equals_serial_per_backend(
        self, tiny_game, tiny_scenarios
    ):
        rng = np.random.default_rng(7)
        upper = np.ceil(tiny_game.threshold_upper_bounds())
        batch = rng.integers(
            0, upper + 1, size=(6, tiny_game.n_types)
        ).astype(np.float64)
        for backend in CONCRETE:
            serial = FixedSolveCache(
                tiny_game, tiny_scenarios
            ).price_batch(batch, workers=1, kernel_backend=backend)
            with FixedSolveCache(tiny_game, tiny_scenarios) as cache:
                fanned = cache.price_batch(
                    batch, workers=2, kernel_backend=backend
                )
            for a, b in zip(serial, fanned, strict=True):
                assert a.objective == b.objective
                assert np.array_equal(
                    a.adversary_utilities, b.adversary_utilities
                )
                assert tuple(map(tuple, a.policy.orderings)) == tuple(
                    map(tuple, b.policy.orderings)
                )
                assert np.array_equal(
                    a.policy.probabilities, b.policy.probabilities
                )

    def test_explicit_backend_equals_defaulted_solver(
        self, tiny_game, tiny_scenarios
    ):
        # The enumeration adapter omits kernel_backend="auto" from the
        # memo key; an explicit concrete backend must return the same
        # numbers through a distinct memo entry.
        cache = FixedSolveCache(tiny_game, tiny_scenarios)
        point = np.array([2.0, 2.0])
        defaulted = cache.solver()(point)
        for backend in CONCRETE:
            explicit = cache.solver(kernel_backend=backend)(point)
            assert explicit.objective == defaulted.objective
            assert np.array_equal(
                explicit.adversary_utilities,
                defaulted.adversary_utilities,
            )
