"""AuditGame facade: validation, derived quantities, evaluation."""

import numpy as np
import pytest

from repro.core import (
    AlertTypeSet,
    AuditGame,
    AuditPolicy,
    Ordering,
    PayoffModel,
)
from repro.distributions import ConstantCount, JointCountModel
from tests.conftest import make_tiny_game


class TestValidation:
    def test_dimension_mismatch_types(self, tiny_game):
        with pytest.raises(ValueError, match="count model"):
            AuditGame(
                alert_types=AlertTypeSet.from_costs([1.0]),
                counts=tiny_game.counts,
                attack_map=tiny_game.attack_map,
                payoffs=tiny_game.payoffs,
                budget=1.0,
            )

    def test_dimension_mismatch_adversaries(self, tiny_game):
        bad_payoffs = PayoffModel.create(
            n_adversaries=3, n_victims=3, benefit=1.0, penalty=1.0,
            attack_cost=0.0,
        )
        with pytest.raises(ValueError, match="adversary"):
            AuditGame(
                alert_types=tiny_game.alert_types,
                counts=tiny_game.counts,
                attack_map=tiny_game.attack_map,
                payoffs=bad_payoffs,
                budget=1.0,
            )

    def test_rejects_negative_budget(self, tiny_game):
        with pytest.raises(ValueError):
            make_tiny_game(budget=-1.0)

    def test_rejects_wrong_name_counts(self, tiny_game):
        with pytest.raises(ValueError, match="adversary_names"):
            AuditGame(
                alert_types=tiny_game.alert_types,
                counts=tiny_game.counts,
                attack_map=tiny_game.attack_map,
                payoffs=tiny_game.payoffs,
                budget=1.0,
                adversary_names=("just-one",),
            )

    def test_default_names(self, tiny_game):
        assert tiny_game.adversary_names == ("e1", "e2")
        assert tiny_game.victim_names == ("v1", "v2", "v3")


class TestDerived:
    def test_costs_vector(self, tiny_game):
        assert tiny_game.costs.tolist() == [1.0, 2.0]

    def test_threshold_upper_bounds_scale_by_cost(self):
        counts = JointCountModel([ConstantCount(3), ConstantCount(2)])
        game = make_tiny_game(counts=counts)
        # J = (3, 2), C = (1, 2) -> b_max = (3, 4).
        assert game.threshold_upper_bounds().tolist() == [3.0, 4.0]

    def test_with_budget_copies(self, tiny_game):
        other = tiny_game.with_budget(99.0)
        assert other.budget == 99.0
        assert tiny_game.budget == 3.0
        assert other.attack_map is tiny_game.attack_map

    def test_describe(self, tiny_game):
        text = tiny_game.describe()
        assert "2 alert types" in text
        assert "budget 3" in text


class TestEvaluate:
    def test_rejects_policy_type_mismatch(self, tiny_game,
                                          tiny_scenarios):
        policy = AuditPolicy.pure(Ordering((0, 1, 2)), [1.0, 1.0, 1.0])
        with pytest.raises(ValueError):
            tiny_game.evaluate(policy, tiny_scenarios)

    def test_zero_budget_zero_detection(self, tiny_scenarios):
        game = make_tiny_game(budget=0.0)
        policy = AuditPolicy.pure(Ordering((0, 1)), [5.0, 5.0])
        ev = game.evaluate(policy, tiny_scenarios)
        assert np.allclose(ev.mixed_pal, 0.0)
        # Everyone attacks their best victim at full benefit - cost.
        assert np.isclose(
            ev.auditor_loss,
            float((game.payoffs.benefit.max(axis=1) - 0.5).sum()),
        )

    def test_scenario_set_exact_for_small_games(self, tiny_game):
        sc = tiny_game.scenario_set()
        assert sc.exact
