"""PayoffModel: eq. 3 utilities and the auditor objective."""

import numpy as np
import pytest

from repro.core import PayoffModel


def make_payoffs(**overrides):
    kwargs = dict(
        n_adversaries=2,
        n_victims=2,
        benefit=np.array([[4.0, 0.0], [2.0, 6.0]]),
        penalty=5.0,
        attack_cost=0.5,
        attack_prior=1.0,
    )
    kwargs.update(overrides)
    return PayoffModel.create(**kwargs)


class TestCreate:
    def test_scalar_broadcast(self):
        p = make_payoffs()
        assert p.penalty.shape == (2, 2)
        assert np.all(p.penalty == 5.0)
        assert p.attack_prior.shape == (2,)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            make_payoffs(benefit=np.ones((3, 2)))

    def test_rejects_negative_penalty(self):
        with pytest.raises(ValueError):
            make_payoffs(penalty=-1.0)

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            make_payoffs(attack_cost=-0.1)

    def test_rejects_prior_out_of_range(self):
        with pytest.raises(ValueError):
            make_payoffs(attack_prior=1.5)

    def test_rejects_bad_prior_shape(self):
        with pytest.raises(ValueError):
            make_payoffs(attack_prior=np.array([0.5, 0.5, 0.5]))


class TestUtilityMatrix:
    def test_eq3_by_hand(self):
        # Ua = -Pat*M + (1 - Pat)*R - K.
        p = make_payoffs()
        pat = np.array([[0.5, 0.0], [1.0, 0.25]])
        ua = p.utility_matrix(pat)
        assert np.isclose(ua[0, 0], -0.5 * 5 + 0.5 * 4 - 0.5)
        assert np.isclose(ua[0, 1], 0.0 - 0.5)  # benign: R=0
        assert np.isclose(ua[1, 0], -5.0 - 0.5)  # always caught
        assert np.isclose(ua[1, 1], -0.25 * 5 + 0.75 * 6 - 0.5)

    def test_no_detection_gives_r_minus_k(self):
        p = make_payoffs()
        ua = p.utility_matrix(np.zeros((2, 2)))
        assert np.allclose(ua, p.benefit - p.attack_cost)

    def test_utility_decreases_with_detection(self):
        p = make_payoffs()
        low = p.utility_matrix(np.full((2, 2), 0.2))
        high = p.utility_matrix(np.full((2, 2), 0.8))
        assert np.all(high <= low)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            make_payoffs().utility_matrix(np.zeros((3, 3)))


class TestAuditorLoss:
    def test_weighted_sum(self):
        p = make_payoffs(attack_prior=np.array([0.5, 1.0]))
        assert np.isclose(
            p.auditor_loss(np.array([2.0, 3.0])), 0.5 * 2 + 3.0
        )

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            make_payoffs().auditor_loss(np.zeros(3))
