"""AttackTypeMap: construction, validation, detection probabilities."""

import numpy as np
import pytest

from repro.core import BENIGN, AttackTypeMap


class TestFromTypeMatrix:
    def test_one_hot_tensor(self):
        matrix = np.array([[0, 1], [BENIGN, 0]])
        amap = AttackTypeMap.from_type_matrix(matrix, n_types=2)
        probs = amap.probabilities
        assert probs.shape == (2, 2, 2)
        assert probs[0, 0, 0] == 1.0
        assert probs[0, 1, 1] == 1.0
        assert probs[1, 0].sum() == 0.0

    def test_stochastic_trigger(self):
        matrix = np.array([[0]])
        amap = AttackTypeMap.from_type_matrix(
            matrix, n_types=1, trigger_probability=0.7
        )
        assert np.isclose(amap.probabilities[0, 0, 0], 0.7)

    def test_roundtrip(self):
        matrix = np.array([[2, BENIGN, 1], [0, 0, BENIGN]])
        amap = AttackTypeMap.from_type_matrix(matrix, n_types=3)
        assert np.array_equal(amap.deterministic_types(), matrix)

    def test_rejects_out_of_range_types(self):
        with pytest.raises(ValueError):
            AttackTypeMap.from_type_matrix(np.array([[5]]), n_types=2)

    def test_rejects_bad_trigger_probability(self):
        with pytest.raises(ValueError):
            AttackTypeMap.from_type_matrix(
                np.array([[0]]), n_types=1, trigger_probability=0.0
            )

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            AttackTypeMap.from_type_matrix(np.zeros(3), n_types=1)


class TestValidation:
    def test_rejects_negative_probabilities(self):
        with pytest.raises(ValueError):
            AttackTypeMap(-np.ones((1, 1, 1)))

    def test_rejects_super_stochastic_rows(self):
        probs = np.full((1, 1, 2), 0.7)
        with pytest.raises(ValueError):
            AttackTypeMap(probs)

    def test_single_type_check(self):
        probs = np.zeros((1, 1, 2))
        probs[0, 0] = [0.4, 0.4]
        amap = AttackTypeMap(probs)
        with pytest.raises(ValueError, match="at most one"):
            amap.validate_single_type()

    def test_single_type_check_passes_one_hot(self):
        amap = AttackTypeMap.from_type_matrix(
            np.array([[0, 1]]), n_types=2
        )
        amap.validate_single_type()


class TestDetection:
    def test_detection_probability_eq2(self):
        # Pat = sum_t P[e,v,t] * Pal[t].
        probs = np.zeros((1, 2, 3))
        probs[0, 0, 1] = 1.0
        probs[0, 1, 2] = 0.5
        amap = AttackTypeMap(probs)
        pal = np.array([0.9, 0.4, 0.8])
        pat = amap.detection_probability(pal)
        assert np.isclose(pat[0, 0], 0.4)
        assert np.isclose(pat[0, 1], 0.4)

    def test_detection_rejects_bad_pal_shape(self):
        amap = AttackTypeMap.from_type_matrix(np.array([[0]]), n_types=1)
        with pytest.raises(ValueError):
            amap.detection_probability(np.zeros(2))

    def test_deterministic_types_rejects_stochastic(self):
        amap = AttackTypeMap.from_type_matrix(
            np.array([[0]]), n_types=1, trigger_probability=0.5
        )
        with pytest.raises(ValueError):
            amap.deterministic_types()

    def test_probabilities_readonly(self):
        amap = AttackTypeMap.from_type_matrix(np.array([[0]]), n_types=1)
        with pytest.raises(ValueError):
            amap.probabilities[0, 0, 0] = 0.5
