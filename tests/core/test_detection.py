"""Detection kernel: hand-verified B_t, n_t, Pal (eq. 1)."""

import numpy as np
import pytest

from repro.core import (
    Ordering,
    audited_counts,
    pal_for_ordering,
    pal_for_orderings,
    remaining_budget,
)
from repro.distributions import ScenarioSet


def single_scenario(counts):
    counts = np.atleast_2d(np.asarray(counts))
    return ScenarioSet(
        counts=counts, weights=np.ones(counts.shape[0]) / counts.shape[0]
    )


class TestRemainingBudget:
    def test_first_type_gets_everything(self):
        # B_t for the leading type is floor(B / C_t).
        out = remaining_budget(
            Ordering((0, 1)),
            thresholds=np.array([2.0, 4.0]),
            counts=np.array([[3, 2]]),
            costs=np.array([1.0, 2.0]),
            budget=5.0,
        )
        assert out[0, 0] == 5.0
        # Type 0 consumes min(b0, Z0*C0) = min(2, 3) = 2 -> floor(3/2)=1.
        assert out[0, 1] == 1.0

    def test_exhausted_budget_clamps_to_zero(self):
        out = remaining_budget(
            Ordering((0, 1)),
            thresholds=np.array([10.0, 1.0]),
            counts=np.array([[9, 5]]),
            costs=np.array([1.0, 1.0]),
            budget=4.0,
        )
        # Type 0 consumes min(10, 9) = 9 > B: nothing left for type 1.
        assert out[0, 1] == 0.0

    def test_unplaced_types_get_zero(self):
        out = remaining_budget(
            Ordering((1,)),
            thresholds=np.array([2.0, 2.0]),
            counts=np.array([[3, 3]]),
            costs=np.array([1.0, 1.0]),
            budget=5.0,
        )
        assert out[0, 0] == 0.0
        assert out[0, 1] == 5.0

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            remaining_budget(
                Ordering((0,)), np.array([1.0]),
                np.array([[1]]), np.array([1.0]), -1.0,
            )


class TestAuditedCounts:
    def test_hand_example(self):
        # T=2, C=[1,2], B=5, b=[2,4], Z=[3,2], order (0,1):
        # n_0 = min(5, floor(2/1), 3) = 2; consumed 2, remaining 3;
        # n_1 = min(floor(3/2), floor(4/2), 2) = 1.
        out = audited_counts(
            Ordering((0, 1)),
            thresholds=np.array([2.0, 4.0]),
            counts=np.array([[3, 2]]),
            costs=np.array([1.0, 2.0]),
            budget=5.0,
        )
        assert out[0].tolist() == [2.0, 1.0]

    def test_reversed_order(self):
        # Order (1,0): n_1 = min(floor(5/2), 2, 2) = 2; consumes
        # min(4, 4) = 4; n_0 = min(floor(1/1), 2, 3) = 1.
        out = audited_counts(
            Ordering((1, 0)),
            thresholds=np.array([2.0, 4.0]),
            counts=np.array([[3, 2]]),
            costs=np.array([1.0, 2.0]),
            budget=5.0,
        )
        assert out[0].tolist() == [1.0, 2.0]

    def test_never_exceeds_realized_counts(self):
        out = audited_counts(
            Ordering((0, 1)),
            thresholds=np.array([100.0, 100.0]),
            counts=np.array([[3, 2]]),
            costs=np.array([1.0, 1.0]),
            budget=100.0,
        )
        assert out[0].tolist() == [3.0, 2.0]


class TestPalForOrdering:
    def test_matches_audited_ratio_single_scenario(self):
        sc = single_scenario([3, 2])
        pal = pal_for_ordering(
            Ordering((0, 1)), np.array([2.0, 4.0]), sc,
            np.array([1.0, 2.0]), 5.0,
        )
        assert np.allclose(pal, [2 / 3, 1 / 2])

    def test_weighted_expectation(self):
        sc = ScenarioSet(
            counts=np.array([[1, 1], [4, 1]]),
            weights=np.array([0.25, 0.75]),
        )
        pal = pal_for_ordering(
            Ordering((0, 1)), np.array([2.0, 2.0]), sc,
            np.array([1.0, 1.0]), 10.0,
        )
        # Type 0: min(quota 2, Z) / Z = 1 at Z=1, 2/4 at Z=4.
        assert np.isclose(pal[0], 0.25 * 1.0 + 0.75 * 0.5)
        assert np.isclose(pal[1], 1.0)

    def test_pal_in_unit_interval(self, syn_a_game, syn_a_scenarios):
        pal = pal_for_ordering(
            Ordering((0, 1, 2, 3)),
            np.array([3.0, 3.0, 3.0, 3.0]),
            syn_a_scenarios,
            syn_a_game.costs,
            syn_a_game.budget,
        )
        assert np.all(pal >= 0.0) and np.all(pal <= 1.0)

    def test_partial_order_zeroes_unplaced(self):
        sc = single_scenario([3, 2])
        pal = pal_for_ordering(
            Ordering((1,)), np.array([5.0, 5.0]), sc,
            np.array([1.0, 1.0]), 5.0,
        )
        assert pal[0] == 0.0
        assert pal[1] == 1.0

    def test_zero_count_rule_unit(self):
        # Z_t = 0: singleton attack alert is caught iff capacity remains.
        sc = single_scenario([0, 2])
        pal = pal_for_ordering(
            Ordering((0, 1)), np.array([2.0, 2.0]), sc,
            np.array([1.0, 1.0]), 5.0, zero_count_rule="unit",
        )
        assert pal[0] == 1.0

    def test_zero_count_rule_strict(self):
        sc = single_scenario([0, 2])
        pal = pal_for_ordering(
            Ordering((0, 1)), np.array([2.0, 2.0]), sc,
            np.array([1.0, 1.0]), 5.0, zero_count_rule="strict",
        )
        assert pal[0] == 0.0

    def test_rejects_unknown_zero_rule(self):
        sc = single_scenario([1, 1])
        with pytest.raises(ValueError):
            pal_for_ordering(
                Ordering((0, 1)), np.array([1.0, 1.0]), sc,
                np.array([1.0, 1.0]), 1.0, zero_count_rule="magic",
            )

    def test_rejects_type_count_mismatch(self):
        sc = single_scenario([1, 1])
        with pytest.raises(ValueError):
            pal_for_ordering(
                Ordering((0,)), np.array([1.0]), sc,
                np.array([1.0]), 1.0,
            )

    def test_rejects_out_of_range_type(self):
        sc = single_scenario([1, 1])
        with pytest.raises(ValueError):
            pal_for_ordering(
                Ordering((0, 5)), np.array([1.0, 1.0]), sc,
                np.array([1.0, 1.0]), 1.0,
            )

    def test_budget_monotonicity(self):
        sc = single_scenario([5, 5])
        b = np.array([4.0, 4.0])
        costs = np.array([1.0, 1.0])
        pals = [
            pal_for_ordering(Ordering((0, 1)), b, sc, costs, float(B))
            for B in (0, 2, 4, 6, 8)
        ]
        for lo, hi in zip(pals, pals[1:], strict=False):
            assert np.all(hi >= lo - 1e-12)


class TestPalForOrderings:
    def test_stacks_rows(self, syn_a_game, syn_a_scenarios):
        rows = pal_for_orderings(
            [Ordering((0, 1, 2, 3)), Ordering((3, 2, 1, 0))],
            np.array([3.0, 3.0, 3.0, 3.0]),
            syn_a_scenarios,
            syn_a_game.costs,
            syn_a_game.budget,
        )
        assert rows.shape == (2, 4)
        # Leading type always gets at least as much as trailing type.
        assert rows[0, 0] >= rows[1, 0]

    def test_rejects_empty(self, syn_a_game, syn_a_scenarios):
        with pytest.raises(ValueError):
            pal_for_orderings(
                [], np.zeros(4), syn_a_scenarios,
                syn_a_game.costs, 1.0,
            )
