"""EnumerationSolver and CGGSSolver (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import AuditPolicy, Ordering, all_orderings
from repro.solvers import CGGSSolver, EnumerationSolver


class TestEnumerationSolver:
    def test_beats_every_pure_ordering(self, syn_a_game,
                                       syn_a_scenarios):
        b = np.array([3.0, 3.0, 3.0, 3.0])
        solution = EnumerationSolver(
            syn_a_game, syn_a_scenarios
        ).solve(b)
        for o in all_orderings(4):
            pure = AuditPolicy.pure(o, b)
            ev = syn_a_game.evaluate(pure, syn_a_scenarios)
            assert solution.objective <= ev.auditor_loss + 1e-9

    def test_known_syn_a_value(self, syn_a_game, syn_a_scenarios):
        # Regression anchor for the B=10 optimal thresholds of Table III.
        solution = EnumerationSolver(syn_a_game, syn_a_scenarios).solve(
            np.array([3.0, 3.0, 3.0, 3.0])
        )
        assert solution.objective == pytest.approx(-3.3868, abs=2e-3)

    def test_refuses_large_type_counts(self, syn_a_game,
                                       syn_a_scenarios):
        with pytest.raises(ValueError, match="orderings"):
            EnumerationSolver(
                syn_a_game, syn_a_scenarios, max_orderings=5
            )

    def test_policy_is_pruned(self, syn_a_game, syn_a_scenarios):
        solution = EnumerationSolver(syn_a_game, syn_a_scenarios).solve(
            np.array([3.0, 3.0, 3.0, 3.0])
        )
        assert solution.policy.support_size == len(
            solution.policy.orderings
        )
        assert solution.n_columns == 24


class TestSubsetKernelEquivalence:
    """Acceptance: subset-table pricing == legacy pricing (<= 1e-9)."""

    GRID = [
        np.array([3.0, 3.0, 3.0, 3.0]),
        np.array([3.0, 2.0, 3.0, 2.0]),
        np.array([0.0, 4.0, 1.0, 5.0]),
        np.array([10.0, 0.0, 0.0, 0.0]),
    ]

    def test_subset_table_matches_legacy_solver(
        self, syn_a_game, syn_a_scenarios
    ):
        fast = EnumerationSolver(
            syn_a_game, syn_a_scenarios, subset_table=True
        )
        legacy = EnumerationSolver(
            syn_a_game, syn_a_scenarios, subset_table=False
        )
        assert fast.subset_table and not legacy.subset_table
        for b in self.GRID:
            a = fast.solve(b)
            ref = legacy.solve(b)
            assert abs(a.objective - ref.objective) <= 1e-9
            assert np.abs(
                a.policy.thresholds - ref.policy.thresholds
            ).max() <= 1e-9
            assert {tuple(o) for o in a.policy.orderings} == {
                tuple(o) for o in ref.policy.orderings
            }

    def test_auto_enables_subset_table_on_syn_a(
        self, syn_a_game, syn_a_scenarios
    ):
        solver = EnumerationSolver(syn_a_game, syn_a_scenarios)
        assert solver.subset_table  # 24 orderings > 2^3

    def test_compression_is_noop_on_exact_sets(
        self, syn_a_game, syn_a_scenarios
    ):
        solver = EnumerationSolver(syn_a_game, syn_a_scenarios)
        assert solver.scenarios is syn_a_scenarios

    def test_compressed_sampled_set_matches_uncompressed(
        self, syn_a_game
    ):
        sampled = syn_a_game.counts.sample_scenarios(
            500, np.random.default_rng(11)
        )
        on = EnumerationSolver(syn_a_game, sampled, compress=True)
        off = EnumerationSolver(syn_a_game, sampled, compress=False)
        assert on.scenarios.n_scenarios < off.scenarios.n_scenarios
        for b in self.GRID[:2]:
            assert abs(
                on.solve(b).objective - off.solve(b).objective
            ) <= 1e-9


class TestCGGSSolver:
    def test_matches_enumeration_on_syn_a(self, syn_a_game,
                                          syn_a_scenarios):
        b = np.array([3.0, 3.0, 3.0, 3.0])
        exact = EnumerationSolver(syn_a_game, syn_a_scenarios).solve(b)
        approx = CGGSSolver(
            syn_a_game, syn_a_scenarios,
            rng=np.random.default_rng(0),
        ).solve(b)
        # The greedy column oracle is approximate; the paper observes a
        # small quality gap (Table VI: gamma2 close to gamma1).
        assert approx.objective >= exact.objective - 1e-9
        gap = abs(approx.objective - exact.objective)
        assert gap <= 0.05 * max(1.0, abs(exact.objective))

    def test_generates_few_columns(self, syn_a_game, syn_a_scenarios):
        result = CGGSSolver(
            syn_a_game, syn_a_scenarios,
            rng=np.random.default_rng(1),
        ).solve(np.array([3.0, 3.0, 3.0, 3.0]))
        assert result.converged
        assert result.n_columns < 24  # far fewer than |T|!

    def test_warm_start_pool_reused(self, syn_a_game, syn_a_scenarios):
        solver = CGGSSolver(
            syn_a_game, syn_a_scenarios,
            rng=np.random.default_rng(2),
        )
        solver.solve(np.array([3.0, 3.0, 3.0, 3.0]))
        assert len(solver._pool) > 0
        second = solver.solve(np.array([3.0, 3.0, 3.0, 2.0]))
        # Warm-started run begins with the previous support columns.
        assert second.n_columns >= second.columns_generated

    def test_seed_orderings_used(self, syn_a_game, syn_a_scenarios):
        seeds = (Ordering((0, 1, 2, 3)), Ordering((3, 2, 1, 0)))
        solver = CGGSSolver(
            syn_a_game, syn_a_scenarios,
            rng=np.random.default_rng(3),
            seed_orderings=seeds,
        )
        result = solver.solve(np.array([2.0, 2.0, 2.0, 2.0]))
        supported = {tuple(o) for o in result.policy.orderings}
        generated = result.n_columns - len(seeds)
        assert generated == result.columns_generated
        assert supported  # non-empty support

    def test_max_columns_cap(self, syn_a_game, syn_a_scenarios):
        result = CGGSSolver(
            syn_a_game, syn_a_scenarios,
            rng=np.random.default_rng(4),
            max_columns=2,
        ).solve(np.array([3.0, 3.0, 3.0, 3.0]))
        assert result.n_columns <= 2

    def test_deterministic_given_seed(self, syn_a_game,
                                      syn_a_scenarios):
        b = np.array([3.0, 2.0, 3.0, 2.0])
        a = CGGSSolver(
            syn_a_game, syn_a_scenarios,
            rng=np.random.default_rng(7),
        ).solve(b)
        c = CGGSSolver(
            syn_a_game, syn_a_scenarios,
            rng=np.random.default_rng(7),
        ).solve(b)
        assert a.objective == pytest.approx(c.objective, abs=1e-12)
