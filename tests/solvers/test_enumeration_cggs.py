"""EnumerationSolver and CGGSSolver (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import AuditPolicy, Ordering, all_orderings
from repro.solvers import CGGSSolver, EnumerationSolver


class TestEnumerationSolver:
    def test_beats_every_pure_ordering(self, syn_a_game,
                                       syn_a_scenarios):
        b = np.array([3.0, 3.0, 3.0, 3.0])
        solution = EnumerationSolver(
            syn_a_game, syn_a_scenarios
        ).solve(b)
        for o in all_orderings(4):
            pure = AuditPolicy.pure(o, b)
            ev = syn_a_game.evaluate(pure, syn_a_scenarios)
            assert solution.objective <= ev.auditor_loss + 1e-9

    def test_known_syn_a_value(self, syn_a_game, syn_a_scenarios):
        # Regression anchor for the B=10 optimal thresholds of Table III.
        solution = EnumerationSolver(syn_a_game, syn_a_scenarios).solve(
            np.array([3.0, 3.0, 3.0, 3.0])
        )
        assert solution.objective == pytest.approx(-3.3868, abs=2e-3)

    def test_refuses_large_type_counts(self, syn_a_game,
                                       syn_a_scenarios):
        with pytest.raises(ValueError, match="orderings"):
            EnumerationSolver(
                syn_a_game, syn_a_scenarios, max_orderings=5
            )

    def test_policy_is_pruned(self, syn_a_game, syn_a_scenarios):
        solution = EnumerationSolver(syn_a_game, syn_a_scenarios).solve(
            np.array([3.0, 3.0, 3.0, 3.0])
        )
        assert solution.policy.support_size == len(
            solution.policy.orderings
        )
        assert solution.n_columns == 24


class TestCGGSSolver:
    def test_matches_enumeration_on_syn_a(self, syn_a_game,
                                          syn_a_scenarios):
        b = np.array([3.0, 3.0, 3.0, 3.0])
        exact = EnumerationSolver(syn_a_game, syn_a_scenarios).solve(b)
        approx = CGGSSolver(
            syn_a_game, syn_a_scenarios,
            rng=np.random.default_rng(0),
        ).solve(b)
        # The greedy column oracle is approximate; the paper observes a
        # small quality gap (Table VI: gamma2 close to gamma1).
        assert approx.objective >= exact.objective - 1e-9
        gap = abs(approx.objective - exact.objective)
        assert gap <= 0.05 * max(1.0, abs(exact.objective))

    def test_generates_few_columns(self, syn_a_game, syn_a_scenarios):
        result = CGGSSolver(
            syn_a_game, syn_a_scenarios,
            rng=np.random.default_rng(1),
        ).solve(np.array([3.0, 3.0, 3.0, 3.0]))
        assert result.converged
        assert result.n_columns < 24  # far fewer than |T|!

    def test_warm_start_pool_reused(self, syn_a_game, syn_a_scenarios):
        solver = CGGSSolver(
            syn_a_game, syn_a_scenarios,
            rng=np.random.default_rng(2),
        )
        solver.solve(np.array([3.0, 3.0, 3.0, 3.0]))
        assert len(solver._pool) > 0
        second = solver.solve(np.array([3.0, 3.0, 3.0, 2.0]))
        # Warm-started run begins with the previous support columns.
        assert second.n_columns >= second.columns_generated

    def test_seed_orderings_used(self, syn_a_game, syn_a_scenarios):
        seeds = (Ordering((0, 1, 2, 3)), Ordering((3, 2, 1, 0)))
        solver = CGGSSolver(
            syn_a_game, syn_a_scenarios,
            rng=np.random.default_rng(3),
            seed_orderings=seeds,
        )
        result = solver.solve(np.array([2.0, 2.0, 2.0, 2.0]))
        supported = {tuple(o) for o in result.policy.orderings}
        generated = result.n_columns - len(seeds)
        assert generated == result.columns_generated
        assert supported  # non-empty support

    def test_max_columns_cap(self, syn_a_game, syn_a_scenarios):
        result = CGGSSolver(
            syn_a_game, syn_a_scenarios,
            rng=np.random.default_rng(4),
            max_columns=2,
        ).solve(np.array([3.0, 3.0, 3.0, 3.0]))
        assert result.n_columns <= 2

    def test_deterministic_given_seed(self, syn_a_game,
                                      syn_a_scenarios):
        b = np.array([3.0, 2.0, 3.0, 2.0])
        a = CGGSSolver(
            syn_a_game, syn_a_scenarios,
            rng=np.random.default_rng(7),
        ).solve(b)
        c = CGGSSolver(
            syn_a_game, syn_a_scenarios,
            rng=np.random.default_rng(7),
        ).solve(b)
        assert a.objective == pytest.approx(c.objective, abs=1e-12)
