"""Brute-force OAP solver (the paper's Table III reference)."""

import numpy as np
import pytest

from repro.solvers import (
    iterative_shrink,
    solve_optimal,
    threshold_grid_size,
)
from tests.conftest import make_tiny_game


class TestGridSize:
    def test_counts_product(self, tiny_game):
        # Tiny game: J = (support maxima), costs (1, 2); per-type axes
        # are capped at ceil(B) because larger thresholds are redundant.
        upper = tiny_game.threshold_upper_bounds()
        cap = int(np.ceil(tiny_game.budget))
        expected = int(
            np.prod(
                [min(int(np.ceil(u)), cap) + 1 for u in upper]
            )
        )
        assert threshold_grid_size(tiny_game) == expected

    def test_budget_cap_shrinks_grid(self, tiny_game):
        small = threshold_grid_size(tiny_game.with_budget(1.0))
        large = threshold_grid_size(tiny_game.with_budget(100.0))
        assert small < large


class TestSolveOptimal:
    def test_optimal_beats_ishm(self, tiny_game, tiny_scenarios):
        optimal = solve_optimal(tiny_game, tiny_scenarios)
        heuristic = iterative_shrink(tiny_game, tiny_scenarios, 0.25)
        assert optimal.objective <= heuristic.objective + 1e-9

    def test_budget_floor_respected(self, tiny_game, tiny_scenarios):
        result = solve_optimal(tiny_game, tiny_scenarios)
        assert result.thresholds.sum() >= tiny_game.budget

    def test_relaxing_floor_never_helps(self, tiny_game,
                                        tiny_scenarios):
        constrained = solve_optimal(tiny_game, tiny_scenarios)
        relaxed = solve_optimal(
            tiny_game, tiny_scenarios, enforce_budget_floor=False
        )
        assert relaxed.objective <= constrained.objective + 1e-9
        assert relaxed.n_vectors_evaluated >= \
            constrained.n_vectors_evaluated

    def test_guard_on_large_grids(self, tiny_game, tiny_scenarios):
        with pytest.raises(ValueError, match="intractable"):
            solve_optimal(tiny_game, tiny_scenarios, max_vectors=3)

    def test_tie_break_validation(self, tiny_game, tiny_scenarios):
        with pytest.raises(ValueError):
            solve_optimal(tiny_game, tiny_scenarios, tie_break="magic")

    def test_describe_mentions_thresholds(self, tiny_game,
                                          tiny_scenarios):
        result = solve_optimal(tiny_game, tiny_scenarios)
        assert "optimal objective" in result.describe()

    def test_impossible_budget(self, tiny_scenarios):
        # Budget above the whole grid sum: no vector satisfies the floor.
        game = make_tiny_game(budget=10_000.0)
        with pytest.raises(RuntimeError):
            solve_optimal(game, tiny_scenarios)

    def test_monotone_in_budget(self, tiny_scenarios):
        # More budget can only help the auditor (Table III trend).
        losses = []
        for budget in (0.0, 2.0, 4.0):
            game = make_tiny_game(budget=budget)
            losses.append(
                solve_optimal(game, tiny_scenarios).objective
            )
        assert losses[0] >= losses[1] - 1e-9
        assert losses[1] >= losses[2] - 1e-9
