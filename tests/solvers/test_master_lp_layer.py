"""Incremental master assembly, dominance pruning, warm re-solves.

Covers the structure-exploiting LP layer:

* O(rows) column appends assemble the same LP as the legacy restack;
* dominated-row/column pruning is lossless (equivalence vs the unpruned
  LP on the shapes the solvers emit);
* warm-started master re-solves (simplex backend) skip phase 1 and agree
  with cold re-solves to LP-roundoff, bitwise on re-entry into the same
  LP;
* the shared :class:`MasterSkeleton` changes nothing numerically;
* the CGGS table oracle matches the legacy oracle.
"""

import numpy as np
import pytest

from repro.core import LazyPalTable, Ordering, PalTable, all_orderings
from repro.solvers import (
    CGGSSolver,
    EnumerationSolver,
    MasterProblem,
    MasterSkeleton,
    PolicyContext,
)

THRESHOLD_GRID = [
    np.array([3.0, 3.0, 3.0, 3.0]),
    np.array([3.0, 2.0, 3.0, 2.0]),
    np.array([0.0, 4.0, 1.0, 5.0]),
    np.array([10.0, 0.0, 0.0, 0.0]),
]


class TestIncrementalAssembly:
    def test_lp_matches_reference_stack(
        self, syn_a_game, syn_a_scenarios
    ):
        """Growable-buffer assembly == restacking the utility tensor."""
        context = PolicyContext(
            syn_a_game, syn_a_scenarios, THRESHOLD_GRID[0]
        )
        master = MasterProblem(context)
        orderings = all_orderings(4)[:7]
        for o in orderings:
            master.add_ordering(o)
        lp = master.build_lp()
        e_rows, v_rows = context.representative_rows
        utilities = np.stack(
            [context.utilities(o) for o in orderings], axis=0
        )
        expected = utilities[:, e_rows, v_rows].T
        np.testing.assert_array_equal(
            lp.a_ub[:, : len(orderings)], expected
        )
        # u block: -1 at each row's adversary column.
        n_q = len(orderings)
        for r, e in enumerate(e_rows):
            assert lp.a_ub[r, n_q + e] == -1.0

    def test_interleaved_adds_and_solves_are_consistent(
        self, syn_a_game, syn_a_scenarios
    ):
        """solve / add / solve yields the same LP as building fresh."""
        context = PolicyContext(
            syn_a_game, syn_a_scenarios, THRESHOLD_GRID[1]
        )
        incremental = MasterProblem(context)
        orderings = all_orderings(4)
        for i, o in enumerate(orderings[:8]):
            incremental.add_ordering(o)
            if i % 3 == 0:
                incremental.solve()
        fresh = MasterProblem(context)
        for o in orderings[:8]:
            fresh.add_ordering(o)
        a, _ = incremental.solve()
        b, _ = fresh.solve()
        assert a.objective == b.objective
        np.testing.assert_array_equal(
            a.policy.probabilities, b.policy.probabilities
        )

    def test_growth_beyond_initial_capacity(
        self, syn_a_game, syn_a_scenarios
    ):
        """The column buffer doubles transparently past 16 columns."""
        context = PolicyContext(
            syn_a_game, syn_a_scenarios, THRESHOLD_GRID[0]
        )
        master = MasterProblem(context)
        for o in all_orderings(4):  # 24 > 16: forces one regrowth
            master.add_ordering(o)
        assert master.n_columns == 24
        fixed, _ = master.solve()
        assert fixed.objective == pytest.approx(-3.3868, abs=2e-3)


class TestDominancePruning:
    @pytest.mark.parametrize("idx", range(len(THRESHOLD_GRID)))
    def test_pruned_solve_is_lossless(
        self, syn_a_game, syn_a_scenarios, idx
    ):
        context = PolicyContext(
            syn_a_game, syn_a_scenarios, THRESHOLD_GRID[idx]
        )
        plain = MasterProblem(context)
        pruned = MasterProblem(context)
        for o in all_orderings(4):
            plain.add_ordering(o)
            pruned.add_ordering(o)
        fixed_plain, sol_plain = plain.solve()
        fixed_pruned, sol_pruned = pruned.solve(prune=True)
        assert abs(
            sol_plain.objective_value - sol_pruned.objective_value
        ) <= 1e-9
        assert abs(
            fixed_plain.objective - fixed_pruned.objective
        ) <= 1e-9
        # Expanded duals stay a valid pricing vector: every enumerated
        # column must price non-negative at the (pruned) optimum.
        for o in all_orderings(4):
            assert pruned.reduced_cost(sol_pruned, o) >= -1e-6

    def test_pruning_actually_prunes(self, syn_a_game, syn_a_scenarios):
        context = PolicyContext(
            syn_a_game, syn_a_scenarios, THRESHOLD_GRID[0]
        )
        master = MasterProblem(context)
        for o in all_orderings(4):
            master.add_ordering(o)
        master.solve(prune=True)
        assert master.pruned_columns > 0

    def test_identical_columns_keep_exactly_one(
        self, syn_a_game, syn_a_scenarios
    ):
        # With a budget large enough to audit everything, ordering stops
        # mattering: all columns identical, exactly one survives.
        rich = syn_a_game.with_budget(10_000.0)
        upper = rich.threshold_upper_bounds().astype(float)
        context = PolicyContext(rich, syn_a_scenarios, upper)
        master = MasterProblem(context)
        for o in all_orderings(4):
            master.add_ordering(o)
        row_keep, col_keep = master.prune_masks()
        assert col_keep.sum() == 1
        assert col_keep[0]  # lowest index survives

    def test_engine_prune_knob_matches_default(self, syn_a_game):
        from repro.engine import AuditEngine

        with AuditEngine(syn_a_game) as engine:
            base = engine.solve(
                "enumeration", thresholds=(3.0, 3.0, 3.0, 3.0)
            )
            pruned = engine.solve(
                "enumeration",
                thresholds=(3.0, 3.0, 3.0, 3.0),
                prune=True,
            )
        assert pruned.objective == pytest.approx(
            base.objective, abs=1e-9
        )


class TestWarmStartedMaster:
    def test_reentry_same_lp_is_bitwise(
        self, syn_a_game, syn_a_scenarios
    ):
        context = PolicyContext(
            syn_a_game, syn_a_scenarios, THRESHOLD_GRID[1]
        )
        master = MasterProblem(context, backend="simplex")
        for o in all_orderings(4)[:6]:
            master.add_ordering(o)
        first, sol_first = master.solve()
        # No structural change: the second solve re-enters the previous
        # basis and must reproduce the solution bit-for-bit.
        second, sol_second = master.solve()
        assert master.warm_solves == 1
        assert sol_first.objective_value == sol_second.objective_value
        np.testing.assert_array_equal(sol_first.x, sol_second.x)
        np.testing.assert_array_equal(
            sol_first.dual_ub, sol_second.dual_ub
        )
        np.testing.assert_array_equal(
            first.policy.probabilities, second.policy.probabilities
        )
        # lp_calls counts both solves: warm re-entry is still a solve.
        assert master.lp_calls == 2

    def test_column_adds_track_cold_objective(
        self, syn_a_game, syn_a_scenarios
    ):
        """Warm re-solves stay optimal through a CGGS-style add loop."""
        context = PolicyContext(
            syn_a_game, syn_a_scenarios, THRESHOLD_GRID[2]
        )
        warm = MasterProblem(context, backend="simplex")
        for o in all_orderings(4)[:10]:
            warm.add_ordering(o)
            _, sol_warm = warm.solve()
            cold = MasterProblem(
                context, backend="simplex", warm_start=False
            )
            for oo in warm.orderings:
                cold.add_ordering(oo)
            _, sol_cold = cold.solve()
            assert sol_warm.objective_value == pytest.approx(
                sol_cold.objective_value, abs=1e-9
            )
            # The expanded duals from either path price every known
            # column non-negatively (both are optimal dual solutions).
            for oo in warm.orderings:
                assert warm.reduced_cost(sol_warm, oo) >= -1e-6
        assert warm.warm_solves == 9  # every re-solve after the first

    def test_scipy_backend_never_warm_starts(
        self, syn_a_game, syn_a_scenarios
    ):
        context = PolicyContext(
            syn_a_game, syn_a_scenarios, THRESHOLD_GRID[0]
        )
        master = MasterProblem(context, backend="scipy")
        assert not master.warm_start
        master.add_ordering(Ordering((0, 1, 2, 3)))
        master.solve()
        master.solve()
        assert master.warm_solves == 0

    def test_cggs_warm_start_matches_cold_objective(
        self, syn_a_game, syn_a_scenarios
    ):
        b = THRESHOLD_GRID[1]
        warm = CGGSSolver(
            syn_a_game,
            syn_a_scenarios,
            backend="simplex",
            rng=np.random.default_rng(5),
            warm_start=True,
        ).solve(b)
        cold = CGGSSolver(
            syn_a_game,
            syn_a_scenarios,
            backend="simplex",
            rng=np.random.default_rng(5),
            warm_start=False,
        ).solve(b)
        assert warm.objective == pytest.approx(
            cold.objective, abs=1e-9
        )
        assert warm.lp_calls == cold.lp_calls


class TestSkeletonReuse:
    def test_skeleton_changes_nothing(
        self, syn_a_game, syn_a_scenarios
    ):
        rows = PolicyContext.representative_rows_for(syn_a_game)
        skeleton = MasterSkeleton(syn_a_game, rows[0], 24)
        context = PolicyContext(
            syn_a_game, syn_a_scenarios, THRESHOLD_GRID[1]
        )
        with_skel = MasterProblem(context, skeleton=skeleton)
        without = MasterProblem(context)
        for o in all_orderings(4):
            with_skel.add_ordering(o)
            without.add_ordering(o)
        a, sa = with_skel.solve()
        b, sb = without.solve()
        assert sa.objective_value == sb.objective_value
        np.testing.assert_array_equal(sa.x, sb.x)

    def test_mismatched_skeleton_is_ignored(
        self, syn_a_game, syn_a_scenarios
    ):
        rows = PolicyContext.representative_rows_for(syn_a_game)
        skeleton = MasterSkeleton(syn_a_game, rows[0], 99)  # wrong n_q
        context = PolicyContext(
            syn_a_game, syn_a_scenarios, THRESHOLD_GRID[0]
        )
        master = MasterProblem(context, skeleton=skeleton)
        master.add_ordering(Ordering((0, 1, 2, 3)))
        fixed, _ = master.solve()  # falls back to locally built blocks
        assert np.isfinite(fixed.objective)

    def test_solve_batch_equals_serial(self, syn_a_game, syn_a_scenarios):
        solver = EnumerationSolver(syn_a_game, syn_a_scenarios)
        batch = np.stack(THRESHOLD_GRID)
        batched = solver.solve_batch(batch)
        for b, got in zip(THRESHOLD_GRID, batched, strict=True):
            ref = solver.solve(b)
            assert got.objective == ref.objective
            np.testing.assert_array_equal(
                got.policy.probabilities, ref.policy.probabilities
            )


class TestCGGSTableOracle:
    def test_lazy_table_matches_eager_table(
        self, syn_a_game, syn_a_scenarios
    ):
        b = THRESHOLD_GRID[1]
        eager = PalTable(
            b, syn_a_scenarios, syn_a_game.costs, syn_a_game.budget
        )
        lazy = LazyPalTable(
            b, syn_a_scenarios, syn_a_game.costs, syn_a_game.budget
        )
        rng = np.random.default_rng(3)
        for _ in range(25):
            ordering = tuple(rng.permutation(4)[: rng.integers(1, 5)])
            np.testing.assert_array_equal(
                lazy.pal(ordering), eager.pal(ordering)
            )
        for mask in range(15):
            free = [t for t in range(4) if not (mask >> t) & 1]
            if not free:
                continue
            np.testing.assert_array_equal(
                lazy.extension_values(mask, free),
                eager.extension_values(mask, free),
            )

    def test_scalar_entries_match_vectorized_rows(
        self, syn_a_game, syn_a_scenarios
    ):
        """pal() single-entry fills == extension_values row sweeps."""
        b = THRESHOLD_GRID[2]
        args = (b, syn_a_scenarios, syn_a_game.costs, syn_a_game.budget)
        by_entry = LazyPalTable(*args)
        by_row = LazyPalTable(*args)
        ordering = (2, 0, 3, 1)
        entry_pal = by_entry.pal(ordering)
        mask = 0
        for t in ordering:
            by_row.extension_values(mask, [t])
            mask |= 1 << t
        np.testing.assert_array_equal(
            entry_pal, by_row.pal(ordering)
        )

    def test_table_oracle_matches_legacy_oracle_choice(
        self, syn_a_game, syn_a_scenarios
    ):
        """Same greedy orderings from both oracles on an exact game."""
        for seed in range(3):
            legacy = CGGSSolver(
                syn_a_game,
                syn_a_scenarios,
                rng=np.random.default_rng(seed),
                subset_table=False,
            )
            fast = CGGSSolver(
                syn_a_game,
                syn_a_scenarios,
                rng=np.random.default_rng(seed),
                subset_table=None,
            )
            for b in THRESHOLD_GRID[:2]:
                a = legacy.solve(b)
                c = fast.solve(b)
                assert c.objective == pytest.approx(
                    a.objective, abs=1e-9
                )

    def test_auto_rule(self, syn_a_game, syn_a_scenarios, tiny_game,
                       tiny_scenarios):
        assert CGGSSolver(
            syn_a_game, syn_a_scenarios
        ).subset_table == "lazy"
        # 2-type games stay on the legacy walk.
        assert CGGSSolver(
            tiny_game, tiny_scenarios
        ).subset_table is False

    def test_unknown_subset_table_string_rejected(
        self, syn_a_game, syn_a_scenarios
    ):
        # A typo must fail at construction, not silently truth-test
        # into the eager table.
        with pytest.raises(ValueError, match="lazy"):
            CGGSSolver(
                syn_a_game, syn_a_scenarios, subset_table="lzay"
            )
        with pytest.raises(ValueError, match="lazy"):
            PolicyContext(
                syn_a_game,
                syn_a_scenarios,
                THRESHOLD_GRID[0],
                subset_table="full",
            )
