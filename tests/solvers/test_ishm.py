"""ISHM (Algorithm 2): shrink mechanics, quantization, instrumentation."""

import numpy as np
import pytest

from repro.solvers import iterative_shrink, make_fixed_solver
from repro.solvers.ishm import _shrunk
from tests.conftest import make_tiny_game


class TestShrunk:
    def test_round_quantization(self):
        current = np.array([11.0, 9.0, 7.0])
        probe = _shrunk(current, (0,), 0.95, "round", 1.0)
        assert probe.tolist() == [10.0, 9.0, 7.0]

    def test_floor_quantization(self):
        probe = _shrunk(np.array([11.0]), (0,), 0.95, "floor", 1.0)
        assert probe.tolist() == [10.0]

    def test_no_quantization(self):
        probe = _shrunk(np.array([11.0]), (0,), 0.95, "none", 1.0)
        assert probe.tolist() == [pytest.approx(10.45)]

    def test_multi_index(self):
        probe = _shrunk(
            np.array([10.0, 10.0, 10.0]), (0, 2), 0.5, "round", 1.0
        )
        assert probe.tolist() == [5.0, 10.0, 5.0]

    def test_custom_quantum(self):
        probe = _shrunk(np.array([10.0]), (0,), 0.55, "round", 2.0)
        assert probe.tolist() == [6.0]  # 5.5 -> nearest multiple of 2

    def test_input_unchanged(self):
        current = np.array([8.0, 8.0])
        _shrunk(current, (1,), 0.1, "round", 1.0)
        assert current.tolist() == [8.0, 8.0]


class TestIterativeShrink:
    def test_validates_step_size(self, tiny_game, tiny_scenarios):
        with pytest.raises(ValueError):
            iterative_shrink(tiny_game, tiny_scenarios, step_size=0.0)
        with pytest.raises(ValueError):
            iterative_shrink(tiny_game, tiny_scenarios, step_size=1.0)

    def test_validates_quantize_mode(self, tiny_game, tiny_scenarios):
        with pytest.raises(ValueError):
            iterative_shrink(
                tiny_game, tiny_scenarios, 0.5, quantize="banana"
            )

    def test_validates_quantum(self, tiny_game, tiny_scenarios):
        with pytest.raises(ValueError):
            iterative_shrink(
                tiny_game, tiny_scenarios, 0.5, quantum=0.0
            )

    def test_validates_initial_shape(self, tiny_game, tiny_scenarios):
        with pytest.raises(ValueError):
            iterative_shrink(
                tiny_game, tiny_scenarios, 0.5,
                initial_thresholds=[1.0],
            )

    def test_history_monotone_improvement(self, tiny_game,
                                          tiny_scenarios):
        result = iterative_shrink(tiny_game, tiny_scenarios,
                                  step_size=0.25)
        objectives = [obj for _, obj in result.history]
        assert all(b < a for a, b in zip(objectives, objectives[1:], strict=False))

    def test_never_worse_than_initial(self, tiny_game, tiny_scenarios):
        solver = make_fixed_solver(tiny_game, tiny_scenarios)
        initial = tiny_game.threshold_upper_bounds().astype(float)
        start = solver(initial).objective
        result = iterative_shrink(tiny_game, tiny_scenarios, 0.25,
                                  solver=solver)
        assert result.objective <= start + 1e-12

    def test_final_policy_thresholds_match(self, tiny_game,
                                           tiny_scenarios):
        result = iterative_shrink(tiny_game, tiny_scenarios, 0.25)
        assert np.array_equal(
            result.policy.thresholds, result.thresholds
        )

    def test_lp_calls_counts_unique_probes(self, tiny_game,
                                           tiny_scenarios):
        calls = 0
        inner = make_fixed_solver(tiny_game, tiny_scenarios)

        def counting_solver(b):
            nonlocal calls
            calls += 1
            return inner(b)

        result = iterative_shrink(
            tiny_game, tiny_scenarios, 0.25, solver=counting_solver
        )
        assert result.lp_calls == calls

    def test_max_probes_cap(self, tiny_game, tiny_scenarios):
        result = iterative_shrink(
            tiny_game, tiny_scenarios, 0.1, max_probes=5
        )
        assert result.lp_calls <= 5

    def test_smaller_step_is_no_worse_on_syn_a(
        self, syn_a_game, syn_a_scenarios
    ):
        solver = make_fixed_solver(syn_a_game, syn_a_scenarios)
        coarse = iterative_shrink(
            syn_a_game, syn_a_scenarios, 0.5, solver=solver
        )
        solver2 = make_fixed_solver(syn_a_game, syn_a_scenarios)
        fine = iterative_shrink(
            syn_a_game, syn_a_scenarios, 0.1, solver=solver2
        )
        # The paper's Table IV trend: finer steps find better solutions
        # (allow a tiny tolerance for tie-breaking noise).
        assert fine.objective <= coarse.objective + 1e-6

    def test_syn_a_b10_recovers_table3_thresholds(
        self, syn_a_game, syn_a_scenarios
    ):
        result = iterative_shrink(syn_a_game, syn_a_scenarios, 0.1)
        assert result.thresholds.astype(int).tolist() == [3, 3, 3, 3]

    def test_quotas_helper(self, tiny_game, tiny_scenarios):
        result = iterative_shrink(tiny_game, tiny_scenarios, 0.5)
        quotas = result.quotas(tiny_game.costs)
        assert np.array_equal(
            quotas, np.floor(result.thresholds / tiny_game.costs)
        )

    def test_zero_budget_game(self, tiny_scenarios):
        game = make_tiny_game(budget=0.0)
        result = iterative_shrink(game, tiny_scenarios, 0.5)
        # With no budget nothing is detected; loss = sum of max benefits
        # minus attack cost.
        expected = float(
            (game.payoffs.benefit.max(axis=1) - 0.5).sum()
        )
        assert result.objective == pytest.approx(expected, abs=1e-9)


class TestMakeFixedSolver:
    def test_auto_small_uses_enumeration(self, tiny_game,
                                         tiny_scenarios):
        solver = make_fixed_solver(tiny_game, tiny_scenarios)
        solution = solver(np.array([2.0, 2.0]))
        assert solution.n_columns == 2  # 2! orderings

    def test_explicit_cggs(self, tiny_game, tiny_scenarios):
        solver = make_fixed_solver(
            tiny_game, tiny_scenarios, method="cggs",
            rng=np.random.default_rng(0),
        )
        solution = solver(np.array([2.0, 2.0]))
        assert solution.objective is not None

    def test_unknown_method(self, tiny_game, tiny_scenarios):
        with pytest.raises(ValueError):
            make_fixed_solver(tiny_game, tiny_scenarios, method="magic")
