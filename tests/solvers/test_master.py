"""Master problem: LP assembly, row collapsing, duals, reduced costs."""

import math

import numpy as np
import pytest

from repro.core import Ordering, all_orderings
from repro.solvers import MasterProblem, PolicyContext


@pytest.fixture()
def context(syn_a_game, syn_a_scenarios):
    return PolicyContext(
        syn_a_game, syn_a_scenarios, np.array([3.0, 3.0, 3.0, 3.0])
    )


class TestPolicyContext:
    def test_caches_pal(self, context):
        o = (0, 1, 2, 3)
        first = context.pal(o)
        second = context.pal(Ordering(o))
        assert first is second
        assert context.kernel_evaluations == 1

    def test_utilities_shape(self, context, syn_a_game):
        u = context.utilities((0, 1, 2, 3))
        assert u.shape == (
            syn_a_game.n_adversaries, syn_a_game.n_victims
        )

    def test_rejects_bad_thresholds(self, syn_a_game, syn_a_scenarios):
        with pytest.raises(ValueError):
            PolicyContext(syn_a_game, syn_a_scenarios, np.zeros(3))

    def test_representative_rows_collapse(self, context, syn_a_game):
        e_rows, v_rows = context.representative_rows
        # Syn A has at most 5 distinct alert-type signatures per
        # adversary (4 types + benign), far fewer than 8 victims.
        assert len(e_rows) < (
            syn_a_game.n_adversaries * syn_a_game.n_victims
        )
        per_adversary = np.bincount(e_rows)
        assert per_adversary.max() <= 5


class TestMasterProblem:
    def test_lp_shapes(self, context, syn_a_game):
        master = MasterProblem(context)
        master.add_ordering(Ordering((0, 1, 2, 3)))
        master.add_ordering(Ordering((1, 0, 2, 3)))
        lp = master.build_lp()
        n_rows = len(context.representative_rows[0])
        assert lp.a_ub.shape == (
            n_rows, 2 + syn_a_game.n_adversaries
        )
        assert lp.n_eq_rows == 1

    def test_duplicate_column_rejected(self, context):
        master = MasterProblem(context)
        assert master.add_ordering(Ordering((0, 1, 2, 3)))
        assert not master.add_ordering(Ordering((0, 1, 2, 3)))
        assert master.n_columns == 1

    def test_incomplete_column_raises(self, context):
        master = MasterProblem(context)
        with pytest.raises(ValueError):
            master.add_ordering(Ordering((0, 1)))

    def test_empty_master_raises(self, context):
        with pytest.raises(RuntimeError):
            MasterProblem(context).build_lp()

    def test_solution_matches_direct_evaluation(
        self, context, syn_a_game, syn_a_scenarios
    ):
        master = MasterProblem(context)
        for o in all_orderings(4)[:6]:
            master.add_ordering(o)
        fixed, _ = master.solve()
        ev = syn_a_game.evaluate(fixed.policy, syn_a_scenarios)
        assert math.isclose(
            fixed.objective, ev.auditor_loss, rel_tol=1e-9
        )

    def test_more_columns_never_hurt(self, context):
        master = MasterProblem(context)
        master.add_ordering(Ordering((0, 1, 2, 3)))
        few, _ = master.solve()
        for o in all_orderings(4):
            master.add_ordering(o)
        many, _ = master.solve()
        assert many.objective <= few.objective + 1e-9

    def test_existing_columns_have_nonnegative_reduced_cost(
        self, context
    ):
        master = MasterProblem(context)
        orderings = all_orderings(4)
        for o in orderings:
            master.add_ordering(o)
        _, lp_solution = master.solve()
        for o in orderings:
            assert master.reduced_cost(lp_solution, o) >= -1e-6

    def test_dual_prices_shapes(self, context, syn_a_game):
        master = MasterProblem(context)
        master.add_ordering(Ordering((0, 1, 2, 3)))
        _, lp_solution = master.solve()
        duals, y_eq = master.dual_prices(lp_solution)
        assert duals.shape == (
            syn_a_game.n_adversaries, syn_a_game.n_victims
        )
        assert np.all(duals <= 1e-9)
        assert isinstance(y_eq, float)

    def test_probabilities_form_distribution(self, context):
        master = MasterProblem(context)
        for o in all_orderings(4)[:5]:
            master.add_ordering(o)
        fixed, _ = master.solve()
        assert np.isclose(fixed.policy.probabilities.sum(), 1.0)
        assert np.all(fixed.policy.probabilities >= 0.0)

    def test_simplex_backend_agrees(self, context):
        master_scipy = MasterProblem(context, backend="scipy")
        master_simplex = MasterProblem(context, backend="simplex")
        for o in all_orderings(4)[:4]:
            master_scipy.add_ordering(o)
            master_simplex.add_ordering(o)
        a, _ = master_scipy.solve()
        b, _ = master_simplex.solve()
        assert math.isclose(a.objective, b.objective, rel_tol=1e-6)
