"""Best-response reports and deterrence-budget search."""

import numpy as np
import pytest

from repro.core import AuditPolicy, Ordering
from repro.solvers import (
    deterrence_budget,
    iterative_shrink,
    response_report,
)
from tests.conftest import make_tiny_game


class TestResponseReport:
    def test_report_fields(self, tiny_game, tiny_scenarios):
        policy = AuditPolicy.pure(Ordering((0, 1)), [2.0, 2.0])
        report = response_report(tiny_game, policy, tiny_scenarios)
        assert report.n_adversaries == 2
        assert len(report.attacks) == 2
        assert report.deterrence_rate == report.n_deterred / 2

    def test_describe_contains_names(self, tiny_game, tiny_scenarios):
        policy = AuditPolicy.pure(Ordering((0, 1)), [2.0, 2.0])
        text = response_report(
            tiny_game, policy, tiny_scenarios
        ).describe()
        assert "e1" in text
        assert "auditor loss" in text

    def test_refrain_marked(self, tiny_scenarios):
        game = make_tiny_game(budget=50.0, attackers_can_refrain=True)
        policy = AuditPolicy.pure(
            Ordering((0, 1)),
            game.threshold_upper_bounds().astype(float),
        )
        report = response_report(game, policy, tiny_scenarios)
        if report.n_deterred:
            assert any("refrains" in a[1] for a in report.attacks)


class TestDeterrenceBudget:
    def test_finds_first_reaching_budget(self, tiny_scenarios):
        def solve(game):
            result = iterative_shrink(
                game, tiny_scenarios, step_size=0.25
            )
            return result.policy, result.objective

        base = make_tiny_game(budget=0.0, attackers_can_refrain=True)
        budget = deterrence_budget(
            base, budgets=[0.0, 2.0, 6.0, 12.0], solve=solve
        )
        if budget is not None:
            # Verify the reported budget really achieves ~zero loss.
            _, loss = solve(base.with_budget(budget))
            assert loss <= 1e-6

    def test_returns_none_when_unreachable(self, tiny_scenarios):
        def solve(game):
            result = iterative_shrink(
                game, tiny_scenarios, step_size=0.5
            )
            return result.policy, result.objective

        # Without the refrain option the loss cannot reach 0 here.
        base = make_tiny_game(budget=0.0, attackers_can_refrain=False)
        assert deterrence_budget(
            base, budgets=[0.0, 2.0], solve=solve
        ) is None
