"""Best-response reports and deterrence-budget search."""

import numpy as np

from repro.core import AuditPolicy, Ordering
from repro.solvers import (
    deterrence_budget,
    iterative_shrink,
    response_report,
)
from tests.conftest import make_tiny_game


class TestResponseReport:
    def test_report_fields(self, tiny_game, tiny_scenarios):
        policy = AuditPolicy.pure(Ordering((0, 1)), [2.0, 2.0])
        report = response_report(tiny_game, policy, tiny_scenarios)
        assert report.n_adversaries == 2
        assert len(report.attacks) == 2
        assert report.deterrence_rate == report.n_deterred / 2

    def test_describe_contains_names(self, tiny_game, tiny_scenarios):
        policy = AuditPolicy.pure(Ordering((0, 1)), [2.0, 2.0])
        text = response_report(
            tiny_game, policy, tiny_scenarios
        ).describe()
        assert "e1" in text
        assert "auditor loss" in text

    def test_refrain_marked(self, tiny_scenarios):
        game = make_tiny_game(budget=50.0, attackers_can_refrain=True)
        policy = AuditPolicy.pure(
            Ordering((0, 1)),
            game.threshold_upper_bounds().astype(float),
        )
        report = response_report(game, policy, tiny_scenarios)
        if report.n_deterred:
            assert any("refrains" in a[1] for a in report.attacks)

    def test_adversary_free_game_rate_is_zero(self):
        # Regression: deterrence_rate raised ZeroDivisionError when
        # n_adversaries == 0 (and the game validators choked on the
        # empty payoff/trigger arrays before that).
        import numpy as np

        from repro.core import AttackTypeMap, AuditGame, PayoffModel
        from tests.conftest import make_tiny_game as _base

        template = _base()
        empty_map = AttackTypeMap.from_type_matrix(
            np.zeros((0, 3), dtype=np.int64), n_types=2
        )
        empty_payoffs = PayoffModel.create(
            n_adversaries=0,
            n_victims=3,
            benefit=np.zeros((0, 3)),
            penalty=5.0,
            attack_cost=0.5,
            attack_prior=1.0,
        )
        game = AuditGame(
            alert_types=template.alert_types,
            counts=template.counts,
            attack_map=empty_map,
            payoffs=empty_payoffs,
            budget=3.0,
            victim_names=("r1", "r2", "r3"),
        )
        policy = AuditPolicy.pure(Ordering((0, 1)), [2.0, 2.0])
        report = response_report(game, policy, game.scenario_set())
        assert report.n_adversaries == 0
        assert report.deterrence_rate == 0.0
        assert report.auditor_loss == 0.0
        assert "0/0 adversaries deterred" in report.describe()


class TestDeterrenceBudget:
    def test_finds_first_reaching_budget(self, tiny_scenarios):
        def solve(game):
            result = iterative_shrink(
                game, tiny_scenarios, step_size=0.25
            )
            return result.policy, result.objective

        base = make_tiny_game(budget=0.0, attackers_can_refrain=True)
        budget = deterrence_budget(
            base, budgets=[0.0, 2.0, 6.0, 12.0], solve=solve
        )
        if budget is not None:
            # Verify the reported budget really achieves ~zero loss.
            _, loss = solve(base.with_budget(budget))
            assert loss <= 1e-6

    def test_returns_none_when_unreachable(self, tiny_scenarios):
        def solve(game):
            result = iterative_shrink(
                game, tiny_scenarios, step_size=0.5
            )
            return result.policy, result.objective

        # Without the refrain option the loss cannot reach 0 here.
        base = make_tiny_game(budget=0.0, attackers_can_refrain=False)
        assert deterrence_budget(
            base, budgets=[0.0, 2.0], solve=solve
        ) is None
