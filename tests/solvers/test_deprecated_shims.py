"""The deprecated free-function shims: warning + registry equivalence.

``iterative_shrink`` and ``solve_optimal`` must emit a
``DeprecationWarning`` and delegate to the ``"ishm"`` / ``"bruteforce"``
registry solvers, returning results identical to the engine path at
equal seed.
"""

import numpy as np
import pytest

from repro.engine import (
    BruteForceConfig,
    ISHMConfig,
    solve as engine_solve,
)
from repro.solvers import iterative_shrink, solve_optimal


class TestIterativeShrinkShim:
    def test_emits_deprecation_warning(self, tiny_game, tiny_scenarios):
        with pytest.warns(DeprecationWarning, match="iterative_shrink"):
            iterative_shrink(tiny_game, tiny_scenarios, 0.5)

    def test_matches_registry_path_at_equal_seed(
        self, tiny_game, tiny_scenarios
    ):
        with pytest.warns(DeprecationWarning):
            legacy = iterative_shrink(
                tiny_game, tiny_scenarios, 0.5, max_probes=20
            )
        registry = engine_solve(
            tiny_game,
            tiny_scenarios,
            "ishm",
            ISHMConfig(step_size=0.5, max_probes=20),
        )
        assert legacy.objective == registry.objective
        assert np.array_equal(legacy.thresholds, registry.thresholds)
        assert np.array_equal(
            legacy.policy.probabilities, registry.policy.probabilities
        )
        assert legacy.lp_calls == registry.diagnostics["lp_calls"]


class TestSolveOptimalShim:
    def test_emits_deprecation_warning(self, tiny_game, tiny_scenarios):
        with pytest.warns(DeprecationWarning, match="solve_optimal"):
            solve_optimal(tiny_game, tiny_scenarios)

    def test_matches_registry_path_at_equal_seed(
        self, tiny_game, tiny_scenarios
    ):
        with pytest.warns(DeprecationWarning):
            legacy = solve_optimal(tiny_game, tiny_scenarios)
        registry = engine_solve(
            tiny_game, tiny_scenarios, "bruteforce", BruteForceConfig()
        )
        assert legacy.objective == registry.objective
        assert np.array_equal(legacy.thresholds, registry.thresholds)
        assert np.array_equal(
            legacy.policy.probabilities, registry.policy.probabilities
        )
        assert legacy.n_vectors_evaluated == registry.diagnostics[
            "n_vectors_evaluated"
        ]
