"""Cross-cutting solver behaviours: non-unit audit costs and refraining.

The paper's experiments all use C_t = 1; these tests pin down the
cost-aware semantics (quota = floor(b_t / C_t), consumption in budget
units) and the u_e >= 0 clamping that produces the deterrence plateaus
of Figures 1-2.
"""

import numpy as np
import pytest

from repro.core import (
    AlertType,
    AlertTypeSet,
    AttackTypeMap,
    AuditGame,
    AuditPolicy,
    Ordering,
    PayoffModel,
)
from repro.distributions import ConstantCount, JointCountModel
from repro.solvers import EnumerationSolver, iterative_shrink


def cost_game(budget: float, refrain: bool = False) -> AuditGame:
    """One cheap type (C=1) and one expensive type (C=3).

    Constant counts Z = (4, 2) make every detection probability exact.
    """
    alert_types = AlertTypeSet(
        (AlertType("cheap", audit_cost=1.0),
         AlertType("expensive", audit_cost=3.0))
    )
    counts = JointCountModel([ConstantCount(4), ConstantCount(2)])
    type_matrix = np.array([[0, 1], [1, 0]])
    attack_map = AttackTypeMap.from_type_matrix(type_matrix, n_types=2)
    payoffs = PayoffModel.create(
        n_adversaries=2,
        n_victims=2,
        benefit=np.where(type_matrix == 1, 8.0, 5.0),
        penalty=10.0,
        attack_cost=1.0,
        attackers_can_refrain=refrain,
    )
    return AuditGame(
        alert_types=alert_types,
        counts=counts,
        attack_map=attack_map,
        payoffs=payoffs,
        budget=budget,
    )


class TestNonUnitCosts:
    def test_expensive_type_quota(self):
        # b = (0, 6): quota for the expensive type is floor(6/3) = 2,
        # i.e. both alerts audited when it leads the order.
        game = cost_game(budget=6.0)
        scenarios = game.scenario_set()
        policy = AuditPolicy.pure(Ordering((1, 0)), [0.0, 6.0])
        ev = game.evaluate(policy, scenarios)
        assert ev.mixed_pal[1] == pytest.approx(1.0)
        assert ev.mixed_pal[0] == pytest.approx(0.0)

    def test_budget_unit_conversion(self):
        # Budget 6 after spending min(b1, Z1*C1) = 4 on the cheap type
        # leaves floor(2/3) = 0 audits for the expensive one.
        game = cost_game(budget=6.0)
        scenarios = game.scenario_set()
        policy = AuditPolicy.pure(Ordering((0, 1)), [4.0, 6.0])
        ev = game.evaluate(policy, scenarios)
        assert ev.mixed_pal[0] == pytest.approx(1.0)
        assert ev.mixed_pal[1] == pytest.approx(0.0)

    def test_threshold_upper_bounds_in_budget_units(self):
        game = cost_game(budget=6.0)
        assert game.threshold_upper_bounds().tolist() == [4.0, 6.0]

    def test_solver_handles_mixed_costs(self):
        game = cost_game(budget=6.0)
        scenarios = game.scenario_set()
        solution = EnumerationSolver(game, scenarios).solve(
            np.array([2.0, 4.0])
        )
        assert np.isfinite(solution.objective)
        # Partial coverage of both types: 2 cheap audits of 4 alerts,
        # one expensive audit of 2 alerts, depending on the order mix.
        assert 0 < solution.policy.support_size <= 2


class TestRefrainClamping:
    def test_huge_budget_fully_deters(self):
        game = cost_game(budget=50.0, refrain=True)
        scenarios = game.scenario_set()
        result = iterative_shrink(game, scenarios, step_size=0.5)
        assert result.objective == pytest.approx(0.0, abs=1e-9)

    def test_without_refrain_loss_goes_negative(self):
        game = cost_game(budget=50.0, refrain=False)
        scenarios = game.scenario_set()
        result = iterative_shrink(game, scenarios, step_size=0.5)
        # Full detection: Ua = -M - K < 0 for every attack.
        assert result.objective < 0

    def test_deterrence_plateau_is_stable(self):
        # Any budget above the deterrence point keeps the loss at 0
        # (the flat tail of Figures 1-2).
        for budget in (50.0, 80.0):
            game = cost_game(budget=budget, refrain=True)
            scenarios = game.scenario_set()
            result = iterative_shrink(game, scenarios, step_size=0.5)
            assert result.objective == pytest.approx(0.0, abs=1e-9)
